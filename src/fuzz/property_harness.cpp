#include "fuzz/property_harness.hpp"

#include <chrono>
#include <sstream>

#include "fault/fault_injector.hpp"
#include "multicore/machine.hpp"
#include "util/contracts.hpp"
#include "workloads/registry.hpp"

namespace xmig {

namespace {

/**
 * Deterministic fingerprint of everything the oracles compare:
 * machine counters, final active core, controller control plane and
 * recovery counters, and the injector's per-site totals. Two runs
 * are "bit-identical" iff their fingerprints match.
 */
std::string
fingerprint(const MigrationMachine &m)
{
    std::ostringstream out;
    const MachineStats &s = m.stats();
    out << "refs=" << s.refs << " l1m=" << s.l1Misses
        << " l2a=" << s.l2Accesses << " l2m=" << s.l2Misses
        << " fwd=" << s.l2ToL2Forwards << " wb=" << s.l3Writebacks
        << " mig=" << s.migrations << " bus=" << s.updateBusStores
        << " off=" << s.coreOffEvents << " on=" << s.coreOnEvents
        << " lost=" << s.dirtyLinesLost << " drop=" << s.busDrops
        << " scrub=" << s.coherenceRepairs
        << " active=" << m.activeCore();
    if (const MigrationController *c = m.controller()) {
        out << " live=" << c->liveMask() << " ways=" << c->splitWays()
            << " cactive=" << c->activeCore()
            << " req=" << c->stats().requests
            << " trans=" << c->stats().transitions
            << " cmig=" << c->stats().migrations;
        const RecoveryStats &r = c->recovery();
        out << " rlost=" << r.coresLost << " rjoin=" << r.coresJoined
            << " rsplit=" << r.resplits
            << " rforce=" << r.forcedMigrations
            << " rcorr=" << r.storeCorruptions
            << " rsdrop=" << r.storeDrops
            << " rmdrop=" << r.migDropped << " rmdel=" << r.migDelayed
            << " rmto=" << r.migTimeouts << " rmre=" << r.migRetries
            << " rfre=" << r.filterReinits;
    }
    if (const FaultInjector *inj = m.injector()) {
        out << " ticks=" << inj->stats().ticks;
        for (size_t i = 0;
             i < static_cast<size_t>(FaultSite::kCount); ++i) {
            out << ' '
                << faultSiteName(static_cast<FaultSite>(i)) << '='
                << inj->stats().injected[i];
        }
    }
    return out.str();
}

/** Feed refs [begin, end) of a recorded stream into a machine. */
void
feed(MigrationMachine &m, const std::vector<MemRef> &refs,
     size_t begin, size_t end)
{
    for (size_t i = begin; i < end; ++i)
        m.access(refs[i]);
}

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
popcount64(uint64_t v)
{
    unsigned n = 0;
    for (; v != 0; v &= v - 1)
        ++n;
    return n;
}

} // namespace

CaseResult
PropertyHarness::run(const FuzzCase &c) const
{
    CaseResult result;
    const auto addFailure = [&](const std::string &oracle,
                                const std::string &detail) {
        result.failures.push_back({oracle, detail});
    };

    // The machine constructor parseOrFatal()s its plan; a malformed
    // spec must be reported, not allowed to exit the process.
    FaultPlan plan;
    std::string parse_error;
    if (!FaultPlan::parse(c.plan, &plan, &parse_error)) {
        addFailure("invalid_plan", parse_error);
        return result;
    }

    // xmig-lint: allow(no-wallclock) -- wall-clock watchdog oracle:
    // host time bounds the *harness*, never reaches a sim result.
    const auto start = std::chrono::steady_clock::now();

    // Record the reference stream once; workload emission is
    // machine-independent, so every machine below sees the same
    // stream by construction.
    RefRecorder recorder;
    makeWorkload(c.benchmark)
        ->run(recorder, c.instructions, c.workloadSeed);
    const std::vector<MemRef> &refs = recorder.refs();
    XMIG_ASSERT(!refs.empty(), "workload emitted no references");

    MachineConfig config;
    config.faultPlan = c.plan;

    // Primary run, with a mid-stream checkpoint (about halfway, and
    // thus mid-fault for plans whose events cluster in the horizon).
    const size_t ckpt_at = refs.size() / 2;
    MigrationMachine a(config);
    feed(a, refs, 0, ckpt_at);
    const MachineCheckpoint ckpt = a.checkpoint();
    feed(a, refs, ckpt_at, refs.size());
    const std::string print_a = fingerprint(a);

    result.refs = a.stats().refs;
    result.migrations = a.stats().migrations;
    if (const FaultInjector *inj = a.injector())
        result.faultsInjected = inj->stats().total();
    result.coverage = collectCoverage(a);

    // Oracle: replay. Same (workload seed, plan) => same machine.
    {
        MigrationMachine b(config);
        feed(b, refs, 0, refs.size());
        const std::string print_b = fingerprint(b);
        if (print_b != print_a)
            addFailure("replay", "run A: " + print_a +
                                 "\nrun B: " + print_b);
    }

    // Oracle: checkpoint. Restore into two fresh machines and feed
    // both the identical suffix; they must agree with each other.
    // (The injector is architectural-state-free and restarts at tick
    // 0 on restore, so the restored pair is not compared to run A.)
    {
        MigrationMachine r1(config);
        MigrationMachine r2(config);
        r1.restore(ckpt);
        r2.restore(ckpt);
        feed(r1, refs, ckpt_at, refs.size());
        feed(r2, refs, ckpt_at, refs.size());
        const std::string p1 = fingerprint(r1);
        const std::string p2 = fingerprint(r2);
        if (p1 != p2)
            addFailure("checkpoint", "restored 1: " + p1 +
                                     "\nrestored 2: " + p2);
    }

    // Oracle: topology invariants on the primary run.
    const MigrationController *ctrl = a.controller();
    XMIG_ASSERT(ctrl != nullptr, "quadcore machine has a controller");
    {
        const uint64_t live = ctrl->liveMask();
        const unsigned live_cores = popcount64(live);
        if (live == 0)
            addFailure("topology", "live mask is empty");
        else if (((live >> ctrl->activeCore()) & 1) == 0)
            addFailure("topology",
                       "active core " +
                           std::to_string(ctrl->activeCore()) +
                           " not in live mask " + std::to_string(live));
        if (a.activeCore() != ctrl->activeCore())
            addFailure("topology",
                       "machine active core " +
                           std::to_string(a.activeCore()) +
                           " != controller " +
                           std::to_string(ctrl->activeCore()));
        if (!isPow2(ctrl->splitWays()) ||
            ctrl->splitWays() > live_cores)
            addFailure("topology",
                       "split ways " +
                           std::to_string(ctrl->splitWays()) +
                           " vs " + std::to_string(live_cores) +
                           " live cores");
        if (!plan.targets(FaultSite::CoreOff) &&
            live != (uint64_t{1} << config.numCores) - 1)
            addFailure("topology",
                       "no core_off rules but live mask is " +
                           std::to_string(live));
        // Post-core_on recovery: a rejoin is only accepted for a
        // core that actually left, so joins can never outrun losses.
        if (ctrl->recovery().coresJoined > ctrl->recovery().coresLost)
            addFailure("topology",
                       "more rejoins than losses: " +
                           std::to_string(ctrl->recovery().coresJoined) +
                           " > " +
                           std::to_string(ctrl->recovery().coresLost));
    }

    // Oracle: coherence. Plans that never touch the update bus must
    // end with the modified-bit invariant intact (bus-drop plans are
    // exempt: the scrubber repairs on a cadence, so a violation can
    // be legitimately in flight at shutdown).
    if (!plan.targets(FaultSite::BusDrop)) {
        const uint64_t multi = a.countMultiModifiedLines();
        if (multi != 0)
            addFailure("coherence",
                       std::to_string(multi) +
                           " lines with multiple modified copies");
    }

    // Oracle: accounting. Injector totals must reconcile with what
    // the machine and controller say happened.
    if (const FaultInjector *inj = a.injector()) {
        const FaultStats &fs = inj->stats();
        if (fs.ticks != a.stats().refs)
            addFailure("accounting",
                       "injector ticks " + std::to_string(fs.ticks) +
                           " != machine refs " +
                           std::to_string(a.stats().refs));
        if (a.stats().busDrops != fs.of(FaultSite::BusDrop))
            addFailure("accounting",
                       "machine bus drops " +
                           std::to_string(a.stats().busDrops) +
                           " != injected " +
                           std::to_string(fs.of(FaultSite::BusDrop)));
        if (a.stats().coreOffEvents > fs.of(FaultSite::CoreOff) ||
            a.stats().coreOnEvents > fs.of(FaultSite::CoreOn))
            addFailure("accounting",
                       "accepted churn exceeds injected churn");
        if (a.stats().coreOffEvents != ctrl->recovery().coresLost ||
            a.stats().coreOnEvents != ctrl->recovery().coresJoined)
            addFailure("accounting",
                       "machine and controller disagree on churn");
        for (size_t i = 0;
             i < static_cast<size_t>(FaultSite::kCount); ++i) {
            const auto site = static_cast<FaultSite>(i);
            if (!plan.targets(site) && fs.of(site) != 0)
                addFailure("accounting",
                           std::string("untargeted site ") +
                               faultSiteName(site) + " injected " +
                               std::to_string(fs.of(site)) +
                               " faults");
        }
    } else {
        addFailure("accounting", "fault injector not armed");
    }

    // Oracle: watchdog. The drive loops above are finite by
    // construction, so this is a backstop against livelock *inside*
    // the machine (it would show up as a grossly blown budget).
    if (config_.timeoutMs != 0) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                // xmig-lint: allow(no-wallclock) -- watchdog oracle
                // reads host time only to bound harness runtime.
                std::chrono::steady_clock::now() - start)
                .count();
        if (static_cast<uint64_t>(elapsed) > config_.timeoutMs)
            addFailure("watchdog",
                       "case took " + std::to_string(elapsed) +
                           " ms (budget " +
                           std::to_string(config_.timeoutMs) + " ms)");
    }

    // Test-only broken oracle (see HarnessConfig::brokenOracle).
    if (config_.brokenOracle && plan.targets(FaultSite::CoreOff) &&
        plan.targets(FaultSite::BusDrop))
        addFailure("broken_self_test",
                   "plan targets both core_off and bus_drop");

    return result;
}

} // namespace xmig
