#include "fuzz/plan_generator.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/contracts.hpp"
#include "util/logging.hpp"

namespace xmig {

namespace {

constexpr uint64_t kDefaultHorizon = 400'000;

/** Flip-site names, matching the `flip=` production. */
constexpr const char *kFlipNames[] = {"ae", "delta", "ar", "oe", "tag"};

std::string
formatRateShort(double v)
{
    char buf[64];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

} // namespace

std::string
FuzzPlan::spec() const
{
    std::string out;
    for (const std::string &s : statements) {
        if (!out.empty())
            out += ';';
        out += s;
    }
    return out;
}

PlanGenerator::PlanGenerator(uint64_t seed, GeneratorConfig config)
    : config_(config), rng_(seed)
{
    if (config_.tickHorizon == 0)
        config_.tickHorizon = kDefaultHorizon;
    XMIG_ASSERT(config_.cores >= 1, "need at least one core");
    XMIG_ASSERT(config_.maxStatements >= 2,
                "need room for at least a churn pair");
}

uint64_t
PlanGenerator::sampleTick(uint64_t previous_tick)
{
    if (rng_.chance(config_.boundaryBias)) {
        switch (rng_.below(5)) {
          case 0: return 0; // fires before the first reference retires
          case 1: return 1;
          case 2: return config_.tickHorizon;
          case 3: return config_.tickHorizon + 1; // never fires
          default: return previous_tick;          // same-tick pile-up
        }
    }
    return rng_.below(config_.tickHorizon + 1);
}

double
PlanGenerator::sampleRate()
{
    if (rng_.chance(config_.boundaryBias)) {
        switch (rng_.below(4)) {
          case 0: return 1.0; // fires at every opportunity
          case 1: return 0.0; // armed but silent
          case 2: return 0.5;
          default: return 1e-18; // denormal-adjacent but finite
        }
    }
    // Log-uniform-ish over [1e-7, ~1]: interesting injection
    // densities span orders of magnitude, and uniform sampling would
    // all but never produce the sparse rates real soft-error models
    // use. Built from multiplies only (no pow) so the draw is
    // bit-stable across libm versions.
    const uint64_t decade = rng_.inRange(1, 7);
    double rate = 1.0 + 9.0 * rng_.uniform();
    for (uint64_t i = 0; i < decade; ++i)
        rate *= 0.1;
    return rate;
}

double
PlanGenerator::sampleHotRate()
{
    // Log-uniform over [1e-3, 1e-1]: dense enough to fire many times
    // within one fuzz case's reference budget, sparse enough not to
    // destroy every single migration. Multiplies only, like
    // sampleRate(), for bit-stability.
    const uint64_t decade = rng_.inRange(2, 3);
    double rate = 1.0 + 9.0 * rng_.uniform();
    for (uint64_t i = 0; i < decade; ++i)
        rate *= 0.1;
    return rate;
}

std::string
PlanGenerator::statementFor(FaultSite site, uint64_t &tick_io, bool hot)
{
    std::string event;
    switch (site) {
      case FaultSite::Ae:       event = "flip=ae"; break;
      case FaultSite::Delta:    event = "flip=delta"; break;
      case FaultSite::Ar:       event = "flip=ar"; break;
      case FaultSite::OeEntry:  event = "flip=oe"; break;
      case FaultSite::CacheTag: event = "flip=tag"; break;
      case FaultSite::MigDrop:  event = "mig_drop"; break;
      case FaultSite::MigDelay:
        event = "mig_delay=" + std::to_string(rng_.inRange(1, 64));
        break;
      case FaultSite::BusDrop:  event = "bus_drop"; break;
      case FaultSite::CoreOff:
      case FaultSite::CoreOn: {
        const unsigned core =
            static_cast<unsigned>(rng_.below(config_.cores));
        const char *dir =
            site == FaultSite::CoreOff ? "core_off" : "core_on";
        const uint64_t tick =
            hot ? rng_.below(config_.tickHorizon / 2 + 1)
                : sampleTick(tick_io);
        tick_io = tick;
        return "at=" + std::to_string(tick) + ':' + dir + '=' +
               std::to_string(core);
      }
    }
    if (rng_.chance(hot ? 0.4 : 0.5)) {
        tick_io = hot ? rng_.below(config_.tickHorizon / 2 + 1)
                      : sampleTick(tick_io);
        return "at=" + std::to_string(tick_io) + ':' + event;
    }
    const double rate = hot ? sampleHotRate() : sampleRate();
    return "rate=" + formatRateShort(rate) + ':' + event;
}

std::string
PlanGenerator::sampleFlipOrFabric(bool &scheduled_out, uint64_t &tick_io)
{
    std::string event;
    switch (rng_.below(8)) {
      case 0: case 1: case 2: case 3: case 4:
        event = std::string("flip=") + kFlipNames[rng_.below(5)];
        break;
      case 5:
        event = "mig_drop";
        break;
      case 6:
        event = "mig_delay=" +
                std::to_string(rng_.inRange(1, 64));
        break;
      default:
        event = "bus_drop";
        break;
    }
    scheduled_out = rng_.chance(0.5);
    if (scheduled_out) {
        tick_io = sampleTick(tick_io);
        return "at=" + std::to_string(tick_io) + ':' + event;
    }
    return "rate=" + formatRateShort(sampleRate()) + ':' + event;
}

void
PlanGenerator::appendChurn(std::vector<std::string> &out,
                           uint64_t &tick_io)
{
    // Occasionally target a core id the controller must refuse or a
    // rejoin of a core that never left: both are warn-and-ignore
    // paths the oracles require to stay harmless.
    const bool bogus = rng_.chance(0.1);
    const unsigned core =
        bogus ? config_.cores + static_cast<unsigned>(rng_.below(4))
              : static_cast<unsigned>(rng_.below(config_.cores));

    if (rng_.chance(0.2)) {
        // Probabilistic churn, rate capped (see GeneratorConfig).
        const double rate =
            std::min(sampleRate(), config_.maxChurnRate);
        const char *dir = rng_.chance(0.5) ? "core_off" : "core_on";
        out.push_back("rate=" + formatRateShort(rate) + ':' + dir +
                      '=' + std::to_string(core));
        return;
    }

    // Scheduled pair. Back-to-back boundary: the rejoin lands on the
    // same tick or the very next one; sometimes the pair is reversed
    // (core_on of a live core, then core_off) to probe the
    // ignored-event path.
    const uint64_t off_tick = sampleTick(tick_io);
    uint64_t on_tick;
    if (rng_.chance(0.35)) {
        on_tick = off_tick + rng_.below(2);
    } else {
        on_tick = off_tick + 1 +
                  rng_.below(config_.tickHorizon / 4 + 1);
    }
    tick_io = on_tick;

    std::string off = "at=" + std::to_string(off_tick) +
                      ":core_off=" + std::to_string(core);
    std::string on = "at=" + std::to_string(on_tick) +
                     ":core_on=" + std::to_string(core);
    if (rng_.chance(0.15))
        std::swap(off, on);
    out.push_back(std::move(off));
    out.push_back(std::move(on));
}

FuzzPlan
PlanGenerator::next()
{
    FuzzPlan plan;
    plan.statements.push_back("seed=" +
                              std::to_string(rng_.next() >> 1));

    const unsigned budget = static_cast<unsigned>(
        rng_.inRange(1, config_.maxStatements));
    uint64_t tick = rng_.below(config_.tickHorizon + 1);

    while (plan.statements.size() - 1 < budget) {
        // Duplicate an earlier fault statement verbatim: the grammar
        // allows it and the injector must count both copies.
        if (plan.statements.size() > 1 &&
            rng_.chance(config_.duplicateBias)) {
            const size_t pick =
                1 + rng_.below(plan.statements.size() - 1);
            plan.statements.push_back(plan.statements[pick]);
            continue;
        }
        if (rng_.chance(0.3)) {
            appendChurn(plan.statements, tick);
            continue;
        }
        bool scheduled = false;
        plan.statements.push_back(
            sampleFlipOrFabric(scheduled, tick));
    }

    // Every emitted plan must be valid: the generator's whole
    // contract is "random but parseable".
    FaultPlan parsed;
    std::string error;
    if (!FaultPlan::parse(plan.spec(), &parsed, &error))
        XMIG_PANIC("generator emitted an unparseable plan '%s': %s",
                   plan.spec().c_str(), error.c_str());
    return plan;
}

} // namespace xmig
