#include "fuzz/soak.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <set>
#include <sstream>
#include <sys/stat.h>
#include <sys/types.h>

#include "multicore/machine.hpp"
#include "obs/journal.hpp"
#include "sim/runner/job_pool.hpp"
#include "util/contracts.hpp"
#include "util/logging.hpp"
#include "workloads/registry.hpp"

namespace xmig {

namespace {

size_t
statementCount(const std::string &spec)
{
    if (spec.empty())
        return 0;
    size_t n = 1;
    for (char c : spec)
        n += c == ';' ? 1 : 0;
    return n;
}

/** FNV-1a 64 over `s` — the content address of a corpus entry. */
uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 14695981039346656037ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

void
writeFileOrDie(const std::string &path, const std::string &body)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        XMIG_FATAL("cannot write soak file '%s'", path.c_str());
    const size_t n = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size() && std::fclose(f) == 0;
    if (!ok)
        XMIG_FATAL("short write to soak file '%s'", path.c_str());
}

bool
slurp(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    std::string body;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        body.append(buf, n);
    std::fclose(f);
    *out = std::move(body);
    return true;
}

void
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0755) == 0)
        return;
    struct stat st = {};
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
        return;
    XMIG_FATAL("cannot create soak directory '%s'", path.c_str());
}

/** Corpus entry file names in `dir`, sorted (deterministic load). */
std::vector<std::string>
listCorpusEntries(const std::string &dir)
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return names;
    while (const struct dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.rfind("case-", 0) == 0 && name.size() > 9 &&
            name.compare(name.size() - 4, 4, ".txt") == 0)
            names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

/**
 * Re-run one case with an xmig-lens journal attached and write the
 * JSONL next to its repro. The journal is an observer (PR 7), so the
 * re-run retires the exact same stream the harness saw.
 */
bool
writeJournalFor(const FuzzCase &c, const std::string &path)
{
    if (!obs::kJournalCompiled)
        return false;
    FaultPlan plan;
    std::string error;
    if (!FaultPlan::parse(c.plan, &plan, &error))
        return false;

    RefRecorder recorder;
    makeWorkload(c.benchmark)
        ->run(recorder, c.instructions, c.workloadSeed);

    MachineConfig config;
    config.faultPlan = c.plan;
    MigrationMachine machine(config);
    obs::Journal journal;
    machine.attachJournal(&journal);
    for (const MemRef &ref : recorder.refs())
        machine.access(ref);
    return journal.writeJsonl(path);
}

} // namespace

std::string
renderCorpusEntry(const FuzzCase &c)
{
    std::ostringstream out;
    out << "plan=" << c.plan << "\n"
        << "benchmark=" << c.benchmark << "\n"
        << "workload_seed=" << c.workloadSeed << "\n"
        << "instructions=" << c.instructions << "\n";
    return out.str();
}

std::string
corpusEntryName(const FuzzCase &c)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(renderCorpusEntry(c))));
    return std::string("case-") + buf + ".txt";
}

bool
parseCorpusEntry(const std::string &body, FuzzCase *out)
{
    FuzzCase c;
    bool sawPlan = false;
    size_t pos = 0;
    while (pos < body.size()) {
        size_t eol = body.find('\n', pos);
        if (eol == std::string::npos)
            eol = body.size();
        const std::string line = body.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const size_t eq = line.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        if (key == "plan") {
            // "" parses as a no-fault plan, but a corpus entry that
            // injects nothing is dead weight: reject it.
            if (value.empty())
                return false;
            c.plan = value;
            sawPlan = true;
        } else if (key == "benchmark") {
            if (value.empty())
                return false;
            c.benchmark = value;
        } else if (key == "workload_seed") {
            c.workloadSeed =
                std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "instructions") {
            c.instructions =
                std::strtoull(value.c_str(), nullptr, 10);
            if (c.instructions == 0)
                return false;
        } else {
            return false;
        }
    }
    if (!sawPlan)
        return false;
    FaultPlan parsed;
    std::string error;
    if (!FaultPlan::parse(c.plan, &parsed, &error))
        return false;
    *out = std::move(c);
    return true;
}

std::string
SoakResult::summary() const
{
    std::ostringstream out;
    out << "soak: cases=" << cases << " refs=" << refs
        << " faults_injected=" << faultsInjected
        << " failures=" << failures.size()
        << " corpus_loaded=" << corpusLoaded
        << " corpus_saved=" << corpusSaved << "\n";
    for (const SoakFailure &f : failures) {
        out << "FAIL case=" << f.caseIndex
            << " oracle=" << f.failure.oracle
            << " statements=" << statementCount(f.minimized.plan)
            << " plan=" << f.minimized.plan;
        if (!f.reproPath.empty())
            out << " repro=" << f.reproPath;
        if (!f.journalPath.empty())
            out << " journal=" << f.journalPath;
        out << "\n";
    }
    out << "oracle_failures:";
    std::vector<std::pair<std::string, uint64_t>> counts;
    for (const SoakFailure &f : failures) {
        bool found = false;
        for (auto &entry : counts) {
            if (entry.first == f.failure.oracle) {
                ++entry.second;
                found = true;
                break;
            }
        }
        if (!found)
            counts.emplace_back(f.failure.oracle, 1);
    }
    std::sort(counts.begin(), counts.end());
    if (counts.empty()) {
        out << " none";
    } else {
        for (const auto &entry : counts)
            out << ' ' << entry.first << '=' << entry.second;
    }
    out << "\n" << coverage.reportLine() << "\n";
    return out.str();
}

SoakResult
runSoak(const SoakConfig &config, const PropertyHarness &harness,
        const JobPool &pool)
{
    XMIG_ASSERT(config.budget > 0, "soak needs a case budget");
    XMIG_ASSERT(config.batch > 0, "batch must be positive");

    GuidedConfig g = config.guided;
    g.generator = config.campaign.generator;
    CoverageGuidedGenerator generator(config.campaign.seed, g);

    if (!config.corpusDir.empty())
        ensureDir(config.corpusDir);
    if (!config.campaign.reproDir.empty())
        ensureDir(config.campaign.reproDir);

    // Load the persisted corpus (sorted name order): these cases are
    // replayed first — they warm the coverage map and re-admit their
    // plans into the generator's in-memory corpus.
    std::vector<FuzzCase> loaded;
    std::set<std::string> known; // entry names already on disk
    if (!config.corpusDir.empty()) {
        for (const std::string &name :
             listCorpusEntries(config.corpusDir)) {
            known.insert(name);
            std::string body;
            FuzzCase c;
            if (slurp(config.corpusDir + "/" + name, &body) &&
                parseCorpusEntry(body, &c)) {
                loaded.push_back(std::move(c));
            } else {
                XMIG_WARN("skipping corrupt corpus entry '%s'",
                          name.c_str());
            }
        }
    }
    if (loaded.size() > config.budget)
        loaded.resize(static_cast<size_t>(config.budget));

    SoakResult out;

    // One failure pipeline for replayed and generated cases alike:
    // minimize, write the repro, arm a journaled re-run.
    const auto handleFailure = [&](uint64_t case_index,
                                   const FuzzCase &c,
                                   const OracleFailure &first) {
        SoakFailure f;
        f.caseIndex = case_index;
        f.original = c;
        f.minimized = c;
        f.failure = first;
        if (config.campaign.minimize) {
            PlanMinimizer minimizer(harness,
                                    config.campaign.minimizer);
            const MinimizeResult m =
                minimizer.minimize(c, first.oracle);
            if (m.stillFails)
                f.minimized = m.minimized;
            else
                XMIG_WARN("soak case %llu failure (%s) did not "
                          "reproduce under minimization; keeping the "
                          "full plan",
                          static_cast<unsigned long long>(case_index),
                          first.oracle.c_str());
        }
        if (!config.campaign.reproDir.empty()) {
            const std::string stem = config.campaign.reproDir +
                                     "/soak_repro_case" +
                                     std::to_string(case_index);
            f.reproPath = stem + ".txt";
            CampaignFailure render;
            render.caseIndex = case_index;
            render.original = f.original;
            render.minimized = f.minimized;
            render.failure = f.failure;
            writeFileOrDie(f.reproPath, renderRepro(render));
            if (config.journal && obs::kJournalCompiled) {
                const std::string jpath = stem + ".journal.jsonl";
                if (writeJournalFor(f.minimized, jpath))
                    f.journalPath = jpath;
            }
        }
        out.failures.push_back(std::move(f));
    };

    // Execute a slice of cases and fold everything back in
    // case-index order on this thread (byte-stable at any --jobs).
    uint64_t case_index = 0;
    const auto runSlice = [&](const std::vector<FuzzCase> &slice,
                              bool persist_novel) {
        const std::vector<CaseResult> results =
            runIndexed<CaseResult>(pool, slice.size(), [&](size_t i) {
                return harness.run(slice[i]);
            });
        for (size_t i = 0; i < slice.size(); ++i) {
            out.refs += results[i].refs;
            out.faultsInjected += results[i].faultsInjected;
            const unsigned novel =
                generator.feedback(slice[i], results[i].coverage);
            if (novel > 0 && persist_novel &&
                !config.corpusDir.empty()) {
                const std::string name = corpusEntryName(slice[i]);
                if (known.insert(name).second) {
                    writeFileOrDie(config.corpusDir + "/" + name,
                                   renderCorpusEntry(slice[i]));
                    ++out.corpusSaved;
                }
            }
            if (results[i].failed())
                handleFailure(case_index, slice[i],
                              results[i].failures.front());
            ++case_index;
        }
    };

    // Phase 1: corpus replay (already persisted — don't re-save).
    if (!loaded.empty()) {
        runSlice(loaded, false);
        out.corpusLoaded = loaded.size();
    }

    // Phase 2: guided batches for the remaining budget.
    while (case_index < config.budget) {
        const size_t n = static_cast<size_t>(std::min<uint64_t>(
            config.batch, config.budget - case_index));
        std::vector<FuzzCase> slice;
        slice.reserve(n);
        for (size_t i = 0; i < n; ++i)
            slice.push_back(
                generator.next(config.campaign.benchmark,
                               config.campaign.instructions));
        runSlice(slice, true);
    }

    out.cases = case_index;
    out.coverage = generator.coverage();
    return out;
}

} // namespace xmig
