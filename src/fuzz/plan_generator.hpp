/**
 * @file
 * xmig-forge plan generation: seeded sampling of random-but-valid
 * FaultPlan spec strings over the full fault_plan.hpp grammar.
 *
 * Instead of hand-picking adversarial fault schedules, the fuzzer
 * searches the plan space: every one of the ten fault sites, both
 * trigger flavors (scheduled `at=` and probabilistic `rate=`),
 * core-churn pairs, and deliberately nasty boundary shapes — events
 * at tick 0, back-to-back `core_off`/`core_on`, rates at exactly 0
 * and 1, duplicated statements, bogus core ids the machine must
 * shrug off. Every sampled plan is valid by construction (the
 * generator tests parse each one), and a generator seed replays the
 * exact same plan sequence, so a whole campaign is reproducible from
 * one campaign seed (see fuzz/campaign.hpp).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/rng.hpp"

namespace xmig {

/** Shape of the plans a PlanGenerator samples. */
struct GeneratorConfig
{
    /** Core count of the machine the plans will run against. */
    unsigned cores = 4;

    /**
     * Scheduled `at=` ticks land in [0, tickHorizon]; boundary picks
     * include 0, 1, the horizon itself and just past it (an event
     * that never fires). 0 = default horizon (400k ticks).
     */
    uint64_t tickHorizon = 0;

    /** Statement budget per plan (the seed= statement is extra). */
    unsigned maxStatements = 12;

    /** Probability that a numeric value is a boundary value. */
    double boundaryBias = 0.4;

    /** Probability that a statement duplicates an earlier one. */
    double duplicateBias = 0.15;

    /**
     * Cap on probabilistic core-churn rates. Rate churn draws once
     * per tick, so a rate near 1 would flip topology every reference
     * and drown stderr in ignored-event warnings; the churn boundary
     * is explored through scheduled back-to-back pairs instead.
     */
    double maxChurnRate = 1e-4;
};

/** One sampled plan: its statements, joinable into a spec string. */
struct FuzzPlan
{
    std::vector<std::string> statements;

    /** The statements joined with ';' (FaultPlan::parse input). */
    std::string spec() const;
};

/**
 * Seeded sampler of valid FaultPlan specs. Same (seed, config) =>
 * same plan sequence, bit for bit.
 */
class PlanGenerator
{
  public:
    explicit PlanGenerator(uint64_t seed, GeneratorConfig config = {});

    /** Sample the next plan. */
    FuzzPlan next();

    /**
     * Sample one statement targeting `site` (xmig-storm guidance:
     * the coverage-guided generator composes plans site by site
     * instead of taking the uniform site mix of next()). `tick_io`
     * carries the running tick so scheduled statements of one plan
     * stay loosely ordered. With `hot` set, values are drawn from
     * the ranges that actually fire within a fuzz case's horizon —
     * rates in [1e-3, 1e-1] and ticks in the first half of the
     * horizon — instead of the boundary-biased full ranges.
     */
    std::string statementFor(FaultSite site, uint64_t &tick_io,
                             bool hot = false);

    /**
     * Append a core-churn statement (usually an off/on pair; see
     * next()'s churn shapes) — public so the guided generator can
     * reuse the tested rejoin boundary shapes.
     */
    void appendChurn(std::vector<std::string> &out, uint64_t &tick_io);

    const GeneratorConfig &config() const { return config_; }

  private:
    uint64_t sampleTick(uint64_t previous_tick);
    double sampleRate();
    double sampleHotRate();
    std::string sampleFlipOrFabric(bool &scheduled_out,
                                   uint64_t &tick_io);

    GeneratorConfig config_;
    Rng rng_;
};

} // namespace xmig
