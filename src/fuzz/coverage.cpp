#include "fuzz/coverage.hpp"

#include <algorithm>

#include "multicore/machine.hpp"
#include "obs/registry.hpp"

namespace xmig {

namespace {

/** True if `path` belongs to the coverage surface. */
bool
isCoveragePath(const std::string &path)
{
    // Recovery, watchdog, and per-site injection counters carry the
    // whole "did we exercise this failure path" signal.
    if (path.find(".recovery.") != std::string::npos ||
        path.find(".watchdog.") != std::string::npos ||
        path.find(".faults.injected.") != std::string::npos)
        return true;
    // Machine-level churn / scrub counters (the acceptance side of
    // injected core and bus events).
    static const char *const kMachineEvents[] = {
        ".core_off_events", ".core_on_events", ".dirty_lines_lost",
        ".bus_drops",       ".coherence_repairs",
    };
    for (const char *suffix : kMachineEvents) {
        const size_t n = std::string(suffix).size();
        if (path.size() >= n &&
            path.compare(path.size() - n, n, suffix) == 0)
            return true;
    }
    return false;
}

} // namespace

std::vector<CoveragePoint>
collectCoverage(const MigrationMachine &machine)
{
    obs::MetricsRegistry registry;
    machine.registerMetrics(registry, "machine");
    std::vector<CoveragePoint> out;
    for (const auto &sample : registry.counterSnapshot()) {
        if (isCoveragePath(sample.name))
            out.push_back({sample.name, sample.value});
    }
    return out;
}

unsigned
CoverageMap::bucketOf(uint64_t value)
{
    unsigned b = 0;
    while (value != 0) {
        value >>= 1;
        ++b;
    }
    return b;
}

size_t
CoverageMap::indexOf(const std::string &path)
{
    for (size_t i = 0; i < paths_.size(); ++i) {
        if (paths_[i] == path)
            return i;
    }
    paths_.push_back(path);
    maxBucket_.push_back(0);
    return paths_.size() - 1;
}

unsigned
CoverageMap::observe(const std::vector<CoveragePoint> &points)
{
    unsigned novel = 0;
    for (const CoveragePoint &p : points) {
        const size_t i = indexOf(p.path);
        const unsigned bucket = bucketOf(p.value);
        if (bucket > maxBucket_[i]) {
            // Every newly reached bucket is one feature; jumping
            // several buckets at once earns them all.
            novel += bucket - maxBucket_[i];
            maxBucket_[i] = bucket;
        }
    }
    return novel;
}

size_t
CoverageMap::countersHit() const
{
    size_t hit = 0;
    for (const unsigned b : maxBucket_)
        hit += b > 0 ? 1 : 0;
    return hit;
}

size_t
CoverageMap::bucketsHit() const
{
    size_t features = 0;
    for (const unsigned b : maxBucket_)
        features += b;
    return features;
}

unsigned
CoverageMap::maxBucketOf(const std::string &path) const
{
    for (size_t i = 0; i < paths_.size(); ++i) {
        if (paths_[i] == path)
            return maxBucket_[i];
    }
    return 0;
}

bool
CoverageMap::hit(const std::string &path) const
{
    return maxBucketOf(path) > 0;
}

std::string
CoverageMap::reportLine() const
{
    return "coverage: counters_hit=" + std::to_string(countersHit()) +
           "/" + std::to_string(countersTotal()) +
           " buckets_hit=" + std::to_string(bucketsHit());
}

std::string
CoverageMap::report() const
{
    std::string out = reportLine() + "\n";
    std::vector<size_t> order(paths_.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
        return paths_[a] < paths_[b];
    });
    for (const size_t i : order) {
        if (maxBucket_[i] == 0)
            out += "  MISS " + paths_[i] + "\n";
    }
    return out;
}

} // namespace xmig
