/**
 * @file
 * xmig-storm guided generation: a seeded bandit that biases plan
 * sampling toward the recovery/injection counters a campaign has not
 * lit up yet.
 *
 * The guidance loop is classic coverage-guided fuzzing, transplanted
 * from edge coverage to the machine's counter surface:
 *
 *   1. draw a case — either a fresh plan composed site by site, or a
 *      mutation of a corpus entry that previously earned coverage;
 *   2. run it (PropertyHarness), read the coverage surface back
 *      (fuzz/coverage.hpp);
 *   3. feed the snapshot back: novel (counter, bucket) features admit
 *      the plan into the corpus and reshape the per-site weights.
 *
 * The bandit is a deterministic weight table, not a learned model:
 * each actuator site's weight grows with the number of unlit or
 * low-magnitude counters it is known to influence (see sitesFor).
 * Everything draws from one seeded Rng on the caller thread, and
 * feedback is applied in case-index order, so a guided campaign is
 * byte-stable at any `--jobs` — same contract as runCampaign.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/coverage.hpp"
#include "fuzz/plan_generator.hpp"
#include "fuzz/property_harness.hpp"
#include "util/rng.hpp"

namespace xmig {

/** Guidance knobs on top of the base GeneratorConfig. */
struct GuidedConfig
{
    GeneratorConfig generator;

    /**
     * Workloads the generator may pair a plan with. Empty = every
     * case keeps the benchmark passed to next(). Order matters for
     * determinism: callers must pass a fixed order, not a hash-map
     * iteration.
     */
    std::vector<std::string> workloadPool;

    /**
     * Probability of composing a fresh plan instead of mutating a
     * corpus entry (exploration vs exploitation). Corpus-empty draws
     * are always fresh.
     */
    double freshBias = 0.3;

    /**
     * Probability that a guided statement uses hot value ranges
     * (rates/ticks that reliably fire within a case) instead of the
     * boundary-biased full ranges.
     */
    double hotBias = 0.8;

    /** Corpus capacity; oldest entries are evicted first. */
    size_t maxCorpus = 64;
};

/**
 * Coverage-guided FuzzCase source. Same (seed, config, feedback
 * sequence) => same case sequence, bit for bit.
 */
class CoverageGuidedGenerator
{
  public:
    explicit CoverageGuidedGenerator(uint64_t seed,
                                     GuidedConfig config = {});

    /**
     * Draw the next case. `benchmark` is the fallback workload when
     * the pool is empty; `instructions` is copied through.
     */
    FuzzCase next(const std::string &benchmark, uint64_t instructions);

    /**
     * Fold one executed case's coverage snapshot back in. Must be
     * called in case-index order on the thread that calls next().
     * Returns the number of novel features the case earned.
     */
    unsigned feedback(const FuzzCase &c,
                      const std::vector<CoveragePoint> &coverage);

    /** The accumulated campaign coverage. */
    const CoverageMap &coverage() const { return map_; }

    size_t corpusSize() const { return corpus_.size(); }

    /**
     * Actuator sites known to influence the counter at `path` —
     * the static causality table behind the bandit weights (e.g.
     * `*.recovery.mig_timeouts` is reached by dropping migrations,
     * so it maps to MigDrop). Empty for counters no plan statement
     * can force (watchdog counters fire on workload pathology).
     */
    static std::vector<FaultSite> sitesFor(const std::string &path);

  private:
    FaultSite pickSite();
    FuzzPlan compose();
    FuzzPlan mutate(const std::string &spec);
    void appendGuided(std::vector<std::string> &out, uint64_t &tick);
    std::string pickBenchmark(const std::string &fallback);

    GuidedConfig config_;
    PlanGenerator gen_;
    Rng rng_;
    CoverageMap map_;
    std::vector<std::string> corpus_; ///< plan specs that earned coverage
};

} // namespace xmig
