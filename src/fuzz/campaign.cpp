#include "fuzz/campaign.hpp"

#include <cstdio>
#include <sstream>

#include "sim/runner/job_pool.hpp"
#include "util/contracts.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace xmig {

namespace {

/** Write `body` to `path`; fatal on I/O failure (repros must land). */
void
writeFile(const std::string &path, const std::string &body)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        XMIG_FATAL("cannot write repro file '%s'", path.c_str());
    const size_t n = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size() && std::fclose(f) == 0;
    if (!ok)
        XMIG_FATAL("short write to repro file '%s'", path.c_str());
}

size_t
statementCount(const std::string &spec)
{
    if (spec.empty())
        return 0;
    size_t n = 1;
    for (char c : spec)
        n += c == ';' ? 1 : 0;
    return n;
}

} // namespace

std::string
renderRepro(const CampaignFailure &f)
{
    std::ostringstream out;
    out << "# xmig-forge minimized repro (case " << f.caseIndex
        << ")\n"
        << "# replay: xmig_fuzz --replay '" << f.minimized.plan
        << "' --workload-seed " << f.minimized.workloadSeed
        << " --bench " << f.minimized.benchmark << " --instr "
        << f.minimized.instructions << "\n"
        << "plan=" << f.minimized.plan << "\n"
        << "benchmark=" << f.minimized.benchmark << "\n"
        << "workload_seed=" << f.minimized.workloadSeed << "\n"
        << "instructions=" << f.minimized.instructions << "\n"
        << "statements=" << statementCount(f.minimized.plan) << "\n"
        << "oracle=" << f.failure.oracle << "\n"
        << "original_plan=" << f.original.plan << "\n"
        << "detail=" << f.failure.detail << "\n";
    return out.str();
}

std::string
CampaignResult::summary() const
{
    std::ostringstream out;
    out << "cases=" << cases << " refs=" << refs
        << " faults_injected=" << faultsInjected
        << " failures=" << failures.size() << "\n";
    for (const CampaignFailure &f : failures) {
        out << "FAIL case=" << f.caseIndex
            << " oracle=" << f.failure.oracle
            << " statements=" << statementCount(f.minimized.plan)
            << " plan=" << f.minimized.plan;
        if (!f.reproPath.empty())
            out << " repro=" << f.reproPath;
        out << "\n";
    }
    return out.str();
}

CampaignResult
runCampaign(const CampaignConfig &config,
            const PropertyHarness &harness, const JobPool &pool)
{
    XMIG_ASSERT(config.plans > 0, "campaign needs at least one plan");

    // Draw every case on the caller thread, before the fan-out: the
    // case list (and therefore the whole campaign) depends only on
    // the campaign seed, never on worker scheduling.
    PlanGenerator generator(config.seed, config.generator);
    Rng seeder(config.seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<FuzzCase> cases;
    cases.reserve(config.plans);
    for (uint64_t i = 0; i < config.plans; ++i) {
        FuzzCase c;
        c.plan = generator.next().spec();
        c.benchmark = config.benchmark;
        c.workloadSeed = seeder.next() >> 1;
        c.instructions = config.instructions;
        cases.push_back(std::move(c));
    }

    const std::vector<CaseResult> results = runIndexed<CaseResult>(
        pool, cases.size(),
        [&](size_t i) { return harness.run(cases[i]); });

    CampaignResult out;
    out.cases = config.plans;
    for (size_t i = 0; i < results.size(); ++i) {
        out.refs += results[i].refs;
        out.faultsInjected += results[i].faultsInjected;
        if (!results[i].failed())
            continue;

        // Minimize serially, in case order: probe runs are
        // deterministic, so the minimized plans are too.
        CampaignFailure f;
        f.caseIndex = i;
        f.original = cases[i];
        f.minimized = cases[i];
        f.failure = results[i].failures.front();
        if (config.minimize) {
            PlanMinimizer minimizer(harness, config.minimizer);
            const MinimizeResult m =
                minimizer.minimize(cases[i], f.failure.oracle);
            f.probes = m.probes;
            if (m.stillFails)
                f.minimized = m.minimized;
            else
                XMIG_WARN("case %zu failure (%s) did not reproduce "
                          "under minimization; keeping the full plan",
                          i, f.failure.oracle.c_str());
        }
        if (!config.reproDir.empty()) {
            f.reproPath = config.reproDir + "/repro_case" +
                          std::to_string(i) + ".txt";
            writeFile(f.reproPath, renderRepro(f));
        }
        out.failures.push_back(std::move(f));
    }
    return out;
}

} // namespace xmig
