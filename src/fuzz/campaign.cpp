#include "fuzz/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sim/runner/job_pool.hpp"
#include "util/contracts.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace xmig {

namespace {

/** Write `body` to `path`; fatal on I/O failure (repros must land). */
void
writeFile(const std::string &path, const std::string &body)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        XMIG_FATAL("cannot write repro file '%s'", path.c_str());
    const size_t n = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size() && std::fclose(f) == 0;
    if (!ok)
        XMIG_FATAL("short write to repro file '%s'", path.c_str());
}

size_t
statementCount(const std::string &spec)
{
    if (spec.empty())
        return 0;
    size_t n = 1;
    for (char c : spec)
        n += c == ';' ? 1 : 0;
    return n;
}

} // namespace

std::string
renderRepro(const CampaignFailure &f)
{
    std::ostringstream out;
    out << "# xmig-forge minimized repro (case " << f.caseIndex
        << ")\n"
        << "# replay: xmig_fuzz --replay '" << f.minimized.plan
        << "' --workload-seed " << f.minimized.workloadSeed
        << " --bench " << f.minimized.benchmark << " --instr "
        << f.minimized.instructions << "\n"
        << "plan=" << f.minimized.plan << "\n"
        << "benchmark=" << f.minimized.benchmark << "\n"
        << "workload_seed=" << f.minimized.workloadSeed << "\n"
        << "instructions=" << f.minimized.instructions << "\n"
        << "statements=" << statementCount(f.minimized.plan) << "\n"
        << "oracle=" << f.failure.oracle << "\n"
        << "original_plan=" << f.original.plan << "\n"
        << "detail=" << f.failure.detail << "\n";
    return out.str();
}

std::vector<std::pair<std::string, uint64_t>>
CampaignResult::oracleCounts() const
{
    std::vector<std::pair<std::string, uint64_t>> counts;
    for (const CampaignFailure &f : failures) {
        bool found = false;
        for (auto &entry : counts) {
            if (entry.first == f.failure.oracle) {
                ++entry.second;
                found = true;
                break;
            }
        }
        if (!found)
            counts.emplace_back(f.failure.oracle, 1);
    }
    std::sort(counts.begin(), counts.end());
    return counts;
}

std::string
CampaignResult::summary() const
{
    std::ostringstream out;
    out << "cases=" << cases << " refs=" << refs
        << " faults_injected=" << faultsInjected
        << " failures=" << failures.size() << "\n";
    for (const CampaignFailure &f : failures) {
        out << "FAIL case=" << f.caseIndex
            << " oracle=" << f.failure.oracle
            << " statements=" << statementCount(f.minimized.plan)
            << " plan=" << f.minimized.plan;
        if (!f.reproPath.empty())
            out << " repro=" << f.reproPath;
        out << "\n";
    }
    out << "oracle_failures:";
    const auto counts = oracleCounts();
    if (counts.empty()) {
        out << " none";
    } else {
        for (const auto &entry : counts)
            out << ' ' << entry.first << '=' << entry.second;
    }
    out << "\n" << coverage.reportLine() << "\n";
    return out.str();
}

namespace {

/**
 * Shared back half of both campaign flavors: fold refs/coverage in
 * case-index order, minimize failures serially, write repros.
 */
CampaignResult
collate(const CampaignConfig &config, const PropertyHarness &harness,
        const std::vector<FuzzCase> &cases,
        const std::vector<CaseResult> &results)
{
    CampaignResult out;
    out.cases = config.plans;
    for (size_t i = 0; i < results.size(); ++i) {
        out.refs += results[i].refs;
        out.faultsInjected += results[i].faultsInjected;
        out.coverage.observe(results[i].coverage);
        if (!results[i].failed())
            continue;

        // Minimize serially, in case order: probe runs are
        // deterministic, so the minimized plans are too.
        CampaignFailure f;
        f.caseIndex = i;
        f.original = cases[i];
        f.minimized = cases[i];
        f.failure = results[i].failures.front();
        if (config.minimize) {
            PlanMinimizer minimizer(harness, config.minimizer);
            const MinimizeResult m =
                minimizer.minimize(cases[i], f.failure.oracle);
            f.probes = m.probes;
            if (m.stillFails)
                f.minimized = m.minimized;
            else
                XMIG_WARN("case %zu failure (%s) did not reproduce "
                          "under minimization; keeping the full plan",
                          i, f.failure.oracle.c_str());
        }
        if (!config.reproDir.empty()) {
            f.reproPath = config.reproDir + "/repro_case" +
                          std::to_string(i) + ".txt";
            writeFile(f.reproPath, renderRepro(f));
        }
        out.failures.push_back(std::move(f));
    }
    return out;
}

} // namespace

CampaignResult
runCampaign(const CampaignConfig &config,
            const PropertyHarness &harness, const JobPool &pool)
{
    XMIG_ASSERT(config.plans > 0, "campaign needs at least one plan");

    // Draw every case on the caller thread, before the fan-out: the
    // case list (and therefore the whole campaign) depends only on
    // the campaign seed, never on worker scheduling.
    PlanGenerator generator(config.seed, config.generator);
    Rng seeder(config.seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<FuzzCase> cases;
    cases.reserve(config.plans);
    for (uint64_t i = 0; i < config.plans; ++i) {
        FuzzCase c;
        c.plan = generator.next().spec();
        c.benchmark = config.benchmark;
        c.workloadSeed = seeder.next() >> 1;
        c.instructions = config.instructions;
        cases.push_back(std::move(c));
    }

    const std::vector<CaseResult> results = runIndexed<CaseResult>(
        pool, cases.size(),
        [&](size_t i) { return harness.run(cases[i]); });

    return collate(config, harness, cases, results);
}

CampaignResult
runGuidedCampaign(const CampaignConfig &config,
                  const GuidedConfig &guided,
                  const PropertyHarness &harness, const JobPool &pool,
                  uint64_t batch)
{
    XMIG_ASSERT(config.plans > 0, "campaign needs at least one plan");
    XMIG_ASSERT(batch > 0, "batch must be positive");

    // The guided generator samples from the campaign's plan shape;
    // only the guidance knobs come from `guided`.
    GuidedConfig g = guided;
    g.generator = config.generator;
    CoverageGuidedGenerator generator(config.seed, g);

    // Case drawing and feedback stay on the caller thread, batch by
    // batch in case-index order; only harness execution fans out.
    // The batch size is independent of the pool width, so the case
    // sequence — and the whole result — is byte-stable at any --jobs.
    std::vector<FuzzCase> cases;
    std::vector<CaseResult> results;
    cases.reserve(config.plans);
    results.reserve(config.plans);
    while (cases.size() < config.plans) {
        const size_t n = static_cast<size_t>(
            std::min<uint64_t>(batch, config.plans - cases.size()));
        const size_t base = cases.size();
        for (size_t i = 0; i < n; ++i)
            cases.push_back(generator.next(config.benchmark,
                                           config.instructions));
        const std::vector<CaseResult> batch_results =
            runIndexed<CaseResult>(pool, n, [&](size_t i) {
                return harness.run(cases[base + i]);
            });
        for (size_t i = 0; i < n; ++i) {
            generator.feedback(cases[base + i],
                               batch_results[i].coverage);
            results.push_back(batch_results[i]);
        }
    }

    return collate(config, harness, cases, results);
}

} // namespace xmig
