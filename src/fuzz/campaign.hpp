/**
 * @file
 * xmig-forge campaigns: sharded, replayable fuzzing runs.
 *
 * A campaign is fully determined by (campaign seed, plan count,
 * generator/harness config): every case's plan and workload seed is
 * drawn from the campaign RNG *before* the parallel fan-out, cases
 * execute on the JobPool in any order, and results are collated in
 * case-index order — so the summary text and any repro files are
 * byte-identical at every --jobs value (the xmig-swift contract,
 * docs/parallelism.md).
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/coverage.hpp"
#include "fuzz/coverage_generator.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/plan_generator.hpp"
#include "fuzz/property_harness.hpp"

namespace xmig {

class JobPool;

/** Campaign parameters. */
struct CampaignConfig
{
    uint64_t seed = 1;
    uint64_t plans = 200;
    std::string benchmark = "181.mcf";
    uint64_t instructions = 150'000;
    bool minimize = true;

    /** Directory for repro files; empty = don't write any. */
    std::string reproDir;

    GeneratorConfig generator;
    PlanMinimizer::Config minimizer;
};

/** One surviving (post-minimization) failure. */
struct CampaignFailure
{
    uint64_t caseIndex = 0;
    FuzzCase original;      ///< as generated
    FuzzCase minimized;     ///< == original when minimization is off
    OracleFailure failure;  ///< first failure of the case
    uint64_t probes = 0;    ///< minimizer probes spent
    std::string reproPath;  ///< file written, if reproDir was set
};

/** Campaign outcome. */
struct CampaignResult
{
    uint64_t cases = 0;
    uint64_t refs = 0;           ///< total references simulated
    uint64_t faultsInjected = 0; ///< total injector firings
    std::vector<CampaignFailure> failures;

    /**
     * Campaign-wide coverage (fuzz/coverage.hpp), folded from every
     * case's snapshot in case-index order — collected by uniform and
     * guided campaigns alike, so the two are directly comparable.
     */
    CoverageMap coverage;

    /**
     * Failure counts per oracle id, name-sorted (derived from
     * `failures`; each case contributes its first failure).
     */
    std::vector<std::pair<std::string, uint64_t>> oracleCounts() const;

    /**
     * Deterministic text summary (excludes jobs count and timing on
     * purpose: it must be byte-identical at any parallelism). The
     * first line keeps the PR 5 format; xmig-storm appends per-oracle
     * failure counts and the coverage report line.
     */
    std::string summary() const;
};

/**
 * The repro file body for one failure: the minimized plan plus
 * everything needed to replay it with `xmig_fuzz --replay`.
 */
std::string renderRepro(const CampaignFailure &f);

/**
 * Run a campaign: generate `config.plans` cases from `config.seed`,
 * execute them across `pool`, minimize any failures serially (in
 * case order), and write repro files if requested.
 */
CampaignResult runCampaign(const CampaignConfig &config,
                           const PropertyHarness &harness,
                           const JobPool &pool);

/**
 * Run a coverage-guided campaign: cases are drawn in fixed-size
 * batches from a CoverageGuidedGenerator, each batch executes across
 * `pool`, and its coverage feeds back before the next batch is drawn.
 * `guided.generator` is overridden by `config.generator` so the two
 * campaign flavors always sample from the same plan shape.
 *
 * The batch size is a guidance parameter, not a parallelism one: it
 * is fixed regardless of `pool` width, and all drawing/feedback runs
 * on the caller thread in case-index order, so the result is
 * byte-identical at any --jobs (the xmig-swift contract).
 */
CampaignResult runGuidedCampaign(const CampaignConfig &config,
                                 const GuidedConfig &guided,
                                 const PropertyHarness &harness,
                                 const JobPool &pool,
                                 uint64_t batch = 16);

} // namespace xmig
