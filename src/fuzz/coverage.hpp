/**
 * @file
 * xmig-storm coverage maps: which recovery and injection paths a
 * fuzzing campaign has actually exercised.
 *
 * PR 5's fuzzer samples fault plans uniformly, so it keeps re-probing
 * the recovery paths that are easy to reach and never learns which
 * counters it has failed to light up. The coverage layer closes that
 * loop: after each harness run the machine's recovery/injection
 * counter surface is read back through the xmig-scope MetricsRegistry
 * (controller `*.recovery.*`, `FaultInjector` `*.injected.*`,
 * watchdog and coherence-scrub counters — no JSONL re-parsing, see
 * MetricsRegistry::counterSnapshot) and folded into a CoverageMap.
 *
 * A coverage *feature* is a (counter, magnitude-bucket) pair, with
 * buckets on the log2 scale of the registry's Histogram: hitting a
 * counter at all is one feature, driving it 2x-4x-8x higher are
 * further features, so guidance keeps pushing even after first blood.
 *
 * Determinism: the map is a pure fold of the observed snapshots in
 * observation order. Campaigns feed it in case-index order on the
 * caller thread, so the map — and everything derived from it (site
 * weights, the summary's coverage report) — is byte-identical at any
 * `--jobs` (the xmig-swift contract, docs/parallelism.md).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xmig {

class MigrationMachine;

/** One observed counter of the coverage surface. */
struct CoveragePoint
{
    std::string path; ///< registry path, e.g. "machine.faults.injected.oe"
    uint64_t value = 0;

    bool operator==(const CoveragePoint &) const = default;
};

/**
 * Read the coverage surface of `machine` back through a fresh
 * MetricsRegistry: every counter under `machine.controller.recovery.*`,
 * `machine.controller.watchdog.*` and `machine.faults.injected.*`,
 * plus the machine-level churn/scrub counters (core_off/on events,
 * dirty lines lost, bus drops, coherence repairs). Name-sorted, so
 * the same machine state always yields the same point list.
 */
std::vector<CoveragePoint> collectCoverage(const MigrationMachine &machine);

/**
 * Accumulated (counter, bucket) coverage over a campaign.
 *
 * The counter universe is fixed by the first observe() call (the
 * machine's registered coverage surface is a function of its config,
 * so every case of a campaign sees the same universe); counters first
 * seen later are appended, which keeps corpus replays from older
 * configs safe.
 */
class CoverageMap
{
  public:
    /** Magnitude bucket of a counter value: 0 for 0, else bit width. */
    static unsigned bucketOf(uint64_t value);

    /**
     * Fold one observed snapshot into the map. Returns the number of
     * novel features: counters never lit before plus magnitude
     * buckets never reached before. 0 = this case taught us nothing.
     */
    unsigned observe(const std::vector<CoveragePoint> &points);

    /** Number of distinct counters ever observed (the universe). */
    size_t countersTotal() const { return paths_.size(); }

    /** Counters observed non-zero at least once. */
    size_t countersHit() const;

    /** Total (counter, bucket) features collected, bucket >= 1. */
    size_t bucketsHit() const;

    /** Highest bucket seen for `path` (0 = never non-zero/unknown). */
    unsigned maxBucketOf(const std::string &path) const;

    /** True if `path` was ever observed non-zero. */
    bool hit(const std::string &path) const;

    /** The universe, in first-observation order. */
    const std::vector<std::string> &paths() const { return paths_; }

    /**
     * Deterministic one-line summary for campaign output:
     * "coverage: counters_hit=12/27 buckets_hit=31".
     */
    std::string reportLine() const;

    /**
     * Multi-line report: the reportLine(), then one "  MISS <path>"
     * line per never-hit counter, name-sorted — the to-do list a
     * soak farm is trying to burn down.
     */
    std::string report() const;

  private:
    size_t indexOf(const std::string &path);

    std::vector<std::string> paths_;   ///< universe, stable order
    std::vector<unsigned> maxBucket_;  ///< per path, 0 = unlit
};

} // namespace xmig
