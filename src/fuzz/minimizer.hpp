/**
 * @file
 * xmig-forge plan minimizer: delta-debugs a failing fault plan down
 * to a minimal deterministic repro.
 *
 * Three passes, each preserving "still fails with the same oracle":
 *
 *  1. ddmin over the statement list (classic delta debugging:
 *     complement removal with doubling granularity) — drops whole
 *     statements;
 *  2. value shrinking per surviving statement — `at=` ticks are
 *     halved toward 0, `rate=` values decayed toward 0;
 *  3. a final ddmin, since shrinking values can make more statements
 *     droppable.
 *
 * Every probe is one deterministic harness run, so minimization of a
 * given failure is itself reproducible; the probe budget bounds the
 * worst case.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/property_harness.hpp"

namespace xmig {

/**
 * Generic ddmin: shrink `items` to a (1-minimal-ish) subset for
 * which `fails` still returns true, probing at most `max_probes`
 * times. `fails` must hold for the full input. Returns the reduced
 * list; `probes_io` accumulates the probe count.
 */
std::vector<std::string>
ddmin(std::vector<std::string> items,
      const std::function<bool(const std::vector<std::string> &)> &fails,
      uint64_t max_probes, uint64_t &probes_io);

/** Minimization outcome. */
struct MinimizeResult
{
    FuzzCase minimized;     ///< input case with the reduced plan
    std::string oracle;     ///< the oracle the repro still trips
    uint64_t probes = 0;    ///< harness runs spent
    bool stillFails = false; ///< false: the failure did not reproduce
};

/** Delta-debugging driver over PropertyHarness. */
class PlanMinimizer
{
  public:
    struct Config
    {
        uint64_t maxProbes = 2'000;
    };

    explicit PlanMinimizer(const PropertyHarness &harness)
        : PlanMinimizer(harness, Config())
    {
    }

    PlanMinimizer(const PropertyHarness &harness, Config config)
        : harness_(harness), config_(config)
    {
    }

    /**
     * Reduce `failing`'s plan while it keeps failing `oracle` (the
     * oracle id of the failure being chased). If the failure does
     * not reproduce on the first probe, returns the input unchanged
     * with stillFails == false.
     */
    MinimizeResult minimize(const FuzzCase &failing,
                            const std::string &oracle) const;

  private:
    const PropertyHarness &harness_;
    Config config_;
};

} // namespace xmig
