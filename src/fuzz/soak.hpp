/**
 * @file
 * xmig-storm soak mode: a standing coverage-guided campaign with a
 * persistent corpus.
 *
 * A soak run is what a nightly fuzz farm executes: load the corpus a
 * previous run left behind, re-run it to warm the coverage map and
 * the guided generator, then spend the remaining case budget on
 * guided batches. Every coverage-novel case is persisted back to the
 * corpus directory under a content-addressed name (FNV-1a of its
 * canonical body, so re-finding the same case is a no-op and two
 * racing soak runs cannot corrupt each other's entries). Every
 * failure is ddmin-minimized before write-out and — when the
 * xmig-lens journal is compiled in — re-run once with a journal
 * attached, so the repro ships with the causal event history of the
 * failing run (`<repro>.journal.jsonl`).
 *
 * Determinism: a soak run is a pure function of (seed, config,
 * corpus-directory contents). Corpus files are loaded in sorted name
 * order, case drawing/feedback happens on the caller thread in
 * case-index order, and the summary is byte-stable at any --jobs.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"

namespace xmig {

class JobPool;

/** Soak parameters on top of the campaign/guidance configs. */
struct SoakConfig
{
    /**
     * Base campaign knobs (seed, benchmark, instructions, generator
     * and minimizer shape). `campaign.plans` is ignored — the soak
     * budget below is the case count. `campaign.reproDir` is where
     * minimized failures and their journals land; empty = cwd-less
     * soak, failures are kept in memory only.
     */
    CampaignConfig campaign;

    /** Guidance knobs (workload pool, biases, corpus capacity). */
    GuidedConfig guided;

    /** Total case budget, corpus replays included. */
    uint64_t budget = 512;

    /** Guided batch size (see runGuidedCampaign). */
    uint64_t batch = 16;

    /**
     * Persistent corpus directory. Created if missing; empty string
     * disables persistence (the in-memory corpus still guides).
     */
    std::string corpusDir;

    /**
     * Attach an xmig-lens journal to a re-run of each minimized
     * failure and write it next to the repro. No-op when the journal
     * is compiled out (-DXMIG_JOURNAL=OFF).
     */
    bool journal = true;
};

/** One minimized soak failure. */
struct SoakFailure
{
    uint64_t caseIndex = 0;
    FuzzCase original;
    FuzzCase minimized;
    OracleFailure failure;
    std::string reproPath;   ///< written file, if reproDir was set
    std::string journalPath; ///< written journal, if armed + compiled
};

/** Soak outcome. */
struct SoakResult
{
    uint64_t cases = 0;
    uint64_t refs = 0;
    uint64_t faultsInjected = 0;
    uint64_t corpusLoaded = 0; ///< cases replayed from corpusDir
    uint64_t corpusSaved = 0;  ///< novel cases written to corpusDir
    std::vector<SoakFailure> failures;
    CoverageMap coverage;

    /** Deterministic text summary (byte-stable at any --jobs). */
    std::string summary() const;
};

/**
 * Content-addressed corpus entry name for a case: "case-<16 hex>.txt"
 * over the canonical body renderCorpusEntry() writes.
 */
std::string corpusEntryName(const FuzzCase &c);

/** Canonical corpus file body (key=value lines). */
std::string renderCorpusEntry(const FuzzCase &c);

/**
 * Parse a corpus file body back into a case. Returns false (and
 * leaves `out` untouched) on malformed bodies — a soak run skips
 * them with a warning instead of dying on a corrupt corpus.
 */
bool parseCorpusEntry(const std::string &body, FuzzCase *out);

/** Run a soak campaign. */
SoakResult runSoak(const SoakConfig &config,
                   const PropertyHarness &harness, const JobPool &pool);

} // namespace xmig
