#include "fuzz/minimizer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/contracts.hpp"

namespace xmig {

namespace {

/** Split a spec string into its ';'-separated statements. */
std::vector<std::string>
splitStatements(const std::string &spec)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= spec.size() && !spec.empty()) {
        size_t end = spec.find(';', pos);
        if (end == std::string::npos)
            end = spec.size();
        out.push_back(spec.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

std::string
joinStatements(const std::vector<std::string> &stmts)
{
    std::string out;
    for (const std::string &s : stmts) {
        if (!out.empty())
            out += ';';
        out += s;
    }
    return out;
}

/**
 * Shrunk variants of one statement, most aggressive first: `at=`
 * ticks jump to 0 then halve; `rate=` values jump to the smallest
 * still-firing-ish value then decay by half. Other statements have
 * no numeric trigger worth shrinking.
 */
std::vector<std::string>
shrinkVariants(const std::string &stmt)
{
    std::vector<std::string> out;
    const size_t colon = stmt.find(':');
    if (colon == std::string::npos)
        return out;
    const std::string event = stmt.substr(colon);

    if (stmt.rfind("at=", 0) == 0) {
        const uint64_t tick =
            std::strtoull(stmt.c_str() + 3, nullptr, 10);
        if (tick > 0)
            out.push_back("at=0" + event);
        if (tick > 1)
            out.push_back("at=" + std::to_string(tick / 2) + event);
    } else if (stmt.rfind("rate=", 0) == 0) {
        const double rate = std::strtod(stmt.c_str() + 5, nullptr);
        if (rate > 0.0) {
            out.push_back("rate=0" + event);
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", rate / 2);
            out.push_back(std::string("rate=") + buf + event);
        }
    }
    return out;
}

} // namespace

std::vector<std::string>
ddmin(std::vector<std::string> items,
      const std::function<bool(const std::vector<std::string> &)> &fails,
      uint64_t max_probes, uint64_t &probes_io)
{
    size_t granularity = 2;
    while (items.size() >= 2 && probes_io < max_probes) {
        const size_t chunk =
            (items.size() + granularity - 1) / granularity;
        bool reduced = false;
        for (size_t start = 0;
             start < items.size() && probes_io < max_probes;
             start += chunk) {
            // Probe the complement of items[start, start+chunk).
            std::vector<std::string> candidate;
            candidate.reserve(items.size());
            for (size_t i = 0; i < items.size(); ++i) {
                if (i < start || i >= start + chunk)
                    candidate.push_back(items[i]);
            }
            if (candidate.empty())
                continue;
            ++probes_io;
            if (fails(candidate)) {
                items = std::move(candidate);
                granularity = std::max<size_t>(granularity - 1, 2);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (granularity >= items.size())
                break;
            granularity = std::min(granularity * 2, items.size());
        }
    }
    return items;
}

MinimizeResult
PlanMinimizer::minimize(const FuzzCase &failing,
                        const std::string &oracle) const
{
    MinimizeResult result;
    result.minimized = failing;
    result.oracle = oracle;

    const auto failsWith = [&](const std::string &spec) {
        FuzzCase probe = failing;
        probe.plan = spec;
        const CaseResult r = harness_.run(probe);
        return std::any_of(r.failures.begin(), r.failures.end(),
                           [&](const OracleFailure &f) {
                               return f.oracle == oracle;
                           });
    };

    // The failure must reproduce before any reduction is meaningful.
    ++result.probes;
    if (!failsWith(failing.plan))
        return result;
    result.stillFails = true;

    const auto failsList = [&](const std::vector<std::string> &stmts) {
        // Reject unparseable candidates without burning a run (a
        // dropped statement can never make a valid plan invalid, but
        // the guard keeps the predicate total).
        FaultPlan parsed;
        if (!FaultPlan::parse(joinStatements(stmts), &parsed, nullptr))
            return false;
        return failsWith(joinStatements(stmts));
    };

    std::vector<std::string> stmts = splitStatements(failing.plan);

    // Pass 1: drop statements.
    stmts = ddmin(std::move(stmts), failsList, config_.maxProbes,
                  result.probes);

    // Pass 2: shrink numeric triggers, one statement at a time,
    // re-trying a statement as long as a variant sticks.
    for (size_t i = 0;
         i < stmts.size() && result.probes < config_.maxProbes; ++i) {
        bool shrunk = true;
        while (shrunk && result.probes < config_.maxProbes) {
            shrunk = false;
            for (const std::string &variant :
                 shrinkVariants(stmts[i])) {
                std::vector<std::string> candidate = stmts;
                candidate[i] = variant;
                ++result.probes;
                if (failsList(candidate)) {
                    stmts = std::move(candidate);
                    shrunk = true;
                    break;
                }
                if (result.probes >= config_.maxProbes)
                    break;
            }
        }
    }

    // Pass 3: shrunk values can strand now-redundant statements.
    stmts = ddmin(std::move(stmts), failsList, config_.maxProbes,
                  result.probes);

    result.minimized.plan = joinStatements(stmts);
    XMIG_ASSERT(failsList(stmts),
                "minimized plan no longer fails its oracle");
    return result;
}

} // namespace xmig
