/**
 * @file
 * xmig-forge property harness: runs one fault plan against the
 * quadcore machine and checks an oracle battery.
 *
 * Oracles (all in-process; a failure is a returned record, not an
 * abort, so a campaign can minimize it):
 *
 *  - invalid_plan      the spec must parse (checked up front — the
 *                      machine constructor exits the process on bad
 *                      specs, so the harness never hands it one);
 *  - replay            two machines fed the same (workload seed,
 *                      plan) pair must finish bit-identical;
 *  - checkpoint        a checkpoint captured mid-run and restored
 *                      into two fresh machines, both fed the same
 *                      suffix, must leave them bit-identical (the
 *                      injector is deliberately not checkpointed, so
 *                      the restored pair is compared to each other,
 *                      not to the original run);
 *  - topology          the live mask is never empty, the active core
 *                      is live, machine and controller agree on it,
 *                      the split arity fits the survivor count, and a
 *                      plan with no core_off rules leaves the full
 *                      mask intact;
 *  - coherence         countMultiModifiedLines() == 0 whenever the
 *                      plan does not target the update bus (bus-drop
 *                      plans legitimately leave transient violations
 *                      between scrub sweeps);
 *  - accounting        FaultStats totals reconcile with the machine
 *                      and controller counters (ticks == refs,
 *                      bus drops match, accepted churn <= injected
 *                      churn, untargeted sites stay at zero);
 *  - watchdog          the case must finish inside a generous
 *                      wall-clock budget (livelock backstop);
 *  - broken_self_test  a deliberately wrong test-only oracle used to
 *                      prove the minimizer pipeline end to end.
 *
 * Paranoid-audit violations and sanitizer findings abort the process
 * instead of returning a record — that is still a red fuzz campaign,
 * just one whose repro is the whole case rather than a minimized one.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fuzz/coverage.hpp"

namespace xmig {

/** One (plan, workload) pairing to execute. */
struct FuzzCase
{
    std::string plan;               ///< FaultPlan spec string
    std::string benchmark = "181.mcf";
    uint64_t workloadSeed = 42;
    uint64_t instructions = 150'000;
};

/** One oracle violation. */
struct OracleFailure
{
    std::string oracle; ///< stable id, e.g. "replay"
    std::string detail; ///< human-readable evidence
};

/** Outcome of one case. */
struct CaseResult
{
    std::vector<OracleFailure> failures;
    uint64_t refs = 0;
    uint64_t migrations = 0;
    uint64_t faultsInjected = 0;

    /**
     * The primary run's coverage surface (fuzz/coverage.hpp),
     * name-sorted — what the xmig-storm guidance loop folds back.
     */
    std::vector<CoveragePoint> coverage;

    bool failed() const { return !failures.empty(); }
};

/** Harness knobs. */
struct HarnessConfig
{
    /** Wall-clock budget per case; 0 disables the watchdog. */
    uint64_t timeoutMs = 60'000;

    /**
     * Arm the deliberately broken test-only oracle: any plan that
     * targets both core_off and bus_drop "fails". Lets tests and the
     * CI self-test prove the find -> minimize -> repro pipeline
     * without a real bug.
     */
    bool brokenOracle = false;
};

/**
 * Stateless executor of fuzz cases (safe to share across JobPool
 * workers: run() touches only locals).
 */
class PropertyHarness
{
  public:
    explicit PropertyHarness(HarnessConfig config = {})
        : config_(config)
    {
    }

    /** Execute `c` and its oracle battery. */
    CaseResult run(const FuzzCase &c) const;

    const HarnessConfig &config() const { return config_; }

  private:
    HarnessConfig config_;
};

} // namespace xmig
