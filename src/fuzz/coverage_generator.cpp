#include "fuzz/coverage_generator.hpp"

#include <utility>

#include "util/contracts.hpp"
#include "util/logging.hpp"

namespace xmig {

namespace {

/** Every actuator site, in enum order (deterministic pick order). */
constexpr FaultSite kAllSites[] = {
    FaultSite::Ae,       FaultSite::Delta,   FaultSite::Ar,
    FaultSite::OeEntry,  FaultSite::CacheTag, FaultSite::MigDrop,
    FaultSite::MigDelay, FaultSite::BusDrop, FaultSite::CoreOff,
    FaultSite::CoreOn,
};

constexpr size_t kSiteCount = sizeof(kAllSites) / sizeof(kAllSites[0]);

/** Last '.'-separated segment of a metric path. */
std::string
leafOf(const std::string &path)
{
    const size_t dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(dot + 1);
}

/**
 * Weight contribution of one counter: a site associated with an
 * unlit counter is strongly boosted; once lit, the boost decays as
 * the counter climbs magnitude buckets (so guidance keeps pushing
 * for 2x-4x-8x, then moves on).
 */
uint64_t
deficitOf(unsigned max_bucket)
{
    if (max_bucket == 0)
        return 8;
    return max_bucket < 6 ? 6 - max_bucket : 0;
}

} // namespace

std::vector<FaultSite>
CoverageGuidedGenerator::sitesFor(const std::string &path)
{
    const std::string leaf = leafOf(path);

    // Injection counters name their site directly.
    if (path.find(".faults.injected.") != std::string::npos) {
        for (const FaultSite s : kAllSites) {
            if (leaf == faultSiteName(s))
                return {s};
        }
        return {};
    }

    // Recovery and machine-event counters: which statements reach
    // them. Rejoin-side counters need a core_off first, so they map
    // to both churn directions.
    struct Edge
    {
        const char *leaf;
        FaultSite sites[2];
        unsigned n;
    };
    static const Edge kEdges[] = {
        {"cores_lost", {FaultSite::CoreOff, FaultSite::CoreOff}, 1},
        {"cores_joined", {FaultSite::CoreOff, FaultSite::CoreOn}, 2},
        {"resplits", {FaultSite::CoreOff, FaultSite::CoreOn}, 2},
        {"forced_migrations",
         {FaultSite::CoreOff, FaultSite::CoreOff}, 1},
        {"store_corruptions",
         {FaultSite::OeEntry, FaultSite::OeEntry}, 1},
        {"store_drops", {FaultSite::CacheTag, FaultSite::CacheTag}, 1},
        {"mig_dropped", {FaultSite::MigDrop, FaultSite::MigDrop}, 1},
        {"mig_delayed", {FaultSite::MigDelay, FaultSite::MigDelay}, 1},
        {"mig_timeouts", {FaultSite::MigDrop, FaultSite::MigDrop}, 1},
        {"mig_retries", {FaultSite::MigDrop, FaultSite::MigDrop}, 1},
        {"core_off_events",
         {FaultSite::CoreOff, FaultSite::CoreOff}, 1},
        {"core_on_events", {FaultSite::CoreOff, FaultSite::CoreOn}, 2},
        {"dirty_lines_lost",
         {FaultSite::CoreOff, FaultSite::CoreOff}, 1},
        {"bus_drops", {FaultSite::BusDrop, FaultSite::BusDrop}, 1},
        {"coherence_repairs",
         {FaultSite::BusDrop, FaultSite::BusDrop}, 1},
    };
    for (const Edge &e : kEdges) {
        if (leaf == e.leaf)
            return {e.sites, e.sites + e.n};
    }
    // Watchdog counters (and anything unrecognized): no statement
    // forces them — they stay out of the bandit.
    return {};
}

CoverageGuidedGenerator::CoverageGuidedGenerator(uint64_t seed,
                                                 GuidedConfig config)
    : config_(std::move(config)), gen_(seed, config_.generator),
      rng_(seed ^ 0xd1b54a32d192ed03ULL)
{
}

FaultSite
CoverageGuidedGenerator::pickSite()
{
    // Fold the coverage map into per-site weights. Before the first
    // feedback the map is empty and the pick is uniform.
    uint64_t weights[kSiteCount];
    uint64_t total = 0;
    for (size_t s = 0; s < kSiteCount; ++s)
        weights[s] = 1;
    const std::vector<std::string> &paths = map_.paths();
    for (const std::string &path : paths) {
        const uint64_t deficit = deficitOf(map_.maxBucketOf(path));
        if (deficit == 0)
            continue;
        for (const FaultSite site : sitesFor(path)) {
            for (size_t s = 0; s < kSiteCount; ++s) {
                if (kAllSites[s] == site)
                    weights[s] += deficit;
            }
        }
    }
    for (size_t s = 0; s < kSiteCount; ++s)
        total += weights[s];

    uint64_t r = rng_.below(total);
    for (size_t s = 0; s < kSiteCount; ++s) {
        if (r < weights[s])
            return kAllSites[s];
        r -= weights[s];
    }
    return kAllSites[kSiteCount - 1]; // unreachable
}

void
CoverageGuidedGenerator::appendGuided(std::vector<std::string> &out,
                                      uint64_t &tick)
{
    const FaultSite site = pickSite();
    const bool hot = rng_.chance(config_.hotBias);
    if ((site == FaultSite::CoreOff || site == FaultSite::CoreOn) &&
        rng_.chance(0.5)) {
        // The rejoin counters (cores_joined, resplits) need an off/on
        // pair on the same core; reuse the tested churn shapes.
        gen_.appendChurn(out, tick);
        return;
    }
    out.push_back(gen_.statementFor(site, tick, hot));
}

FuzzPlan
CoverageGuidedGenerator::compose()
{
    FuzzPlan plan;
    plan.statements.push_back("seed=" +
                              std::to_string(rng_.next() >> 1));
    const unsigned budget = static_cast<unsigned>(
        rng_.inRange(2, config_.generator.maxStatements));
    uint64_t tick =
        rng_.below(gen_.config().tickHorizon / 2 + 1);
    while (plan.statements.size() - 1 < budget)
        appendGuided(plan.statements, tick);
    return plan;
}

FuzzPlan
CoverageGuidedGenerator::mutate(const std::string &spec)
{
    // Split the corpus plan back into statements.
    FuzzPlan plan;
    std::string cur;
    for (const char c : spec) {
        if (c == ';') {
            plan.statements.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    plan.statements.push_back(cur);

    // Fresh injector seed: the interesting part of a corpus entry is
    // its statement shape, not the exact fault dice.
    if (!plan.statements.empty() &&
        plan.statements.front().rfind("seed=", 0) == 0)
        plan.statements.front() =
            "seed=" + std::to_string(rng_.next() >> 1);

    uint64_t tick = rng_.below(gen_.config().tickHorizon / 2 + 1);
    const uint64_t mutations = rng_.inRange(1, 3);
    for (uint64_t m = 0; m < mutations; ++m) {
        switch (rng_.below(4)) {
          case 0:
          case 1:
            appendGuided(plan.statements, tick);
            break;
          case 2:
            if (plan.statements.size() > 2) {
                const size_t pick =
                    1 + rng_.below(plan.statements.size() - 1);
                plan.statements.erase(plan.statements.begin() +
                                      static_cast<long>(pick));
            }
            break;
          default:
            if (plan.statements.size() > 1) {
                const size_t pick =
                    1 + rng_.below(plan.statements.size() - 1);
                plan.statements.push_back(plan.statements[pick]);
            }
            break;
        }
    }

    // Keep mutated plans from growing without bound.
    const size_t cap =
        static_cast<size_t>(config_.generator.maxStatements) + 5;
    while (plan.statements.size() > cap)
        plan.statements.erase(plan.statements.begin() + 1);
    return plan;
}

std::string
CoverageGuidedGenerator::pickBenchmark(const std::string &fallback)
{
    if (config_.workloadPool.empty())
        return fallback;
    return config_.workloadPool[rng_.below(
        config_.workloadPool.size())];
}

FuzzCase
CoverageGuidedGenerator::next(const std::string &benchmark,
                              uint64_t instructions)
{
    FuzzPlan plan;
    if (!corpus_.empty() && !rng_.chance(config_.freshBias)) {
        const size_t pick = rng_.below(corpus_.size());
        plan = mutate(corpus_[pick]);
    } else {
        plan = compose();
    }

    FuzzCase c;
    c.plan = plan.spec();
    c.benchmark = pickBenchmark(benchmark);
    c.workloadSeed = rng_.next() >> 1;
    c.instructions = instructions;

    // Same contract as PlanGenerator::next(): every emitted plan must
    // parse — mutation operates on whole statements, so a failure
    // here is a generator bug, not bad luck.
    FaultPlan parsed;
    std::string error;
    if (!FaultPlan::parse(c.plan, &parsed, &error))
        XMIG_PANIC("guided generator emitted an unparseable plan "
                   "'%s': %s",
                   c.plan.c_str(), error.c_str());
    return c;
}

unsigned
CoverageGuidedGenerator::feedback(
    const FuzzCase &c, const std::vector<CoveragePoint> &coverage)
{
    const unsigned novel = map_.observe(coverage);
    if (novel == 0)
        return 0;
    corpus_.push_back(c.plan);
    if (corpus_.size() > config_.maxCorpus)
        corpus_.erase(corpus_.begin());
    return novel;
}

} // namespace xmig
