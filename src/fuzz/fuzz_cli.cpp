#include "fuzz/fuzz_cli.hpp"

#include <cstdlib>

namespace xmig {

namespace {

/**
 * Strict unsigned parse: the whole token must be a decimal number.
 * BenchOptions::parseCount XMIG_FATALs (exit 1) on bad input; a
 * usage error must exit 2 instead, so this returns failure.
 */
bool
parseU64(const std::string &token, uint64_t *out)
{
    if (token.empty() || token[0] == '-' || token[0] == '+')
        return false;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    *out = v;
    return true;
}

} // namespace

const char *
fuzzCliUsage()
{
    return
        "usage: xmig_fuzz [mode] [options]\n"
        "\n"
        "modes (default: uniform campaign):\n"
        "  --guided              coverage-guided campaign\n"
        "  --soak                standing soak (guided + persisted corpus)\n"
        "  --replay 'PLAN'       re-run one case, report every oracle\n"
        "  --self-test           prove the find->minimize->repro pipeline\n"
        "\n"
        "campaign options:\n"
        "  --seed N              campaign seed (default 1)\n"
        "  --plans N             campaign case count (default 200)\n"
        "  --jobs N              worker threads (default: hardware)\n"
        "  --instr N             instructions per case (default 150000)\n"
        "  --bench NAME          workload (default 181.mcf)\n"
        "  --repro-dir DIR       write minimized repro files here\n"
        "  --no-minimize         keep failing plans unminimized\n"
        "  --smoke               small fast configuration\n"
        "  --verbose             progress to stderr\n"
        "\n"
        "guided/soak options:\n"
        "  --budget N            soak case budget (default 512)\n"
        "  --batch N             cases per guidance batch (default 16)\n"
        "  --corpus DIR          persistent soak corpus directory\n"
        "  --storm-workloads     pair the adversarial workload pool in\n"
        "  --no-journal          skip journal re-runs of soak failures\n"
        "\n"
        "replay options:\n"
        "  --workload-seed N     workload seed of the case (default 42)\n"
        "\n"
        "exit codes: 0 = clean, 1 = failures found, 2 = usage error\n";
}

FuzzCliParse
parseFuzzCli(int argc, const char *const *argv)
{
    FuzzCliParse p;
    FuzzCliOptions &o = p.options;

    const auto fail = [&](const std::string &message) {
        p.exitCode = 2;
        p.error = message;
        return p;
    };

    bool guided = false, soak = false, replay = false,
         self_test = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];

        // Flags taking a value.
        const auto value = [&](const char **out) {
            if (i + 1 >= argc)
                return false;
            *out = argv[++i];
            return true;
        };
        const auto count = [&](uint64_t *out, bool positive) {
            const char *token = nullptr;
            if (!value(&token)) {
                p.exitCode = 2;
                p.error = "missing value for " + arg;
                return false;
            }
            if (!parseU64(token, out)) {
                p.exitCode = 2;
                p.error = "malformed value for " + arg + ": '" +
                          token + "'";
                return false;
            }
            if (positive && *out == 0) {
                p.exitCode = 2;
                p.error = arg + " must be positive";
                return false;
            }
            return true;
        };

        if (arg == "--help" || arg == "-h") {
            p.exitCode = 0;
            return p;
        } else if (arg == "--guided") {
            guided = true;
        } else if (arg == "--soak") {
            soak = true;
        } else if (arg == "--self-test") {
            self_test = true;
        } else if (arg == "--replay") {
            const char *token = nullptr;
            if (!value(&token))
                return fail("missing plan for --replay");
            replay = true;
            o.replayPlan = token;
        } else if (arg == "--seed") {
            if (!count(&o.seed, false))
                return p;
        } else if (arg == "--plans") {
            if (!count(&o.plans, true))
                return p;
        } else if (arg == "--budget") {
            if (!count(&o.budget, true))
                return p;
        } else if (arg == "--batch") {
            if (!count(&o.batch, true))
                return p;
        } else if (arg == "--jobs") {
            uint64_t jobs = 0;
            if (!count(&jobs, true))
                return p;
            if (jobs > 1024)
                return fail("--jobs must be <= 1024");
            o.jobs = static_cast<unsigned>(jobs);
        } else if (arg == "--instr") {
            if (!count(&o.instructions, true))
                return p;
        } else if (arg == "--workload-seed") {
            if (!count(&o.workloadSeed, false))
                return p;
        } else if (arg == "--bench") {
            const char *token = nullptr;
            if (!value(&token))
                return fail("missing value for --bench");
            o.benchmark = token;
        } else if (arg == "--repro-dir") {
            const char *token = nullptr;
            if (!value(&token))
                return fail("missing value for --repro-dir");
            o.reproDir = token;
        } else if (arg == "--corpus") {
            const char *token = nullptr;
            if (!value(&token))
                return fail("missing value for --corpus");
            o.corpusDir = token;
        } else if (arg == "--no-minimize") {
            o.minimize = false;
        } else if (arg == "--no-journal") {
            o.journal = false;
        } else if (arg == "--storm-workloads") {
            o.stormWorkloads = true;
        } else if (arg == "--smoke") {
            o.smoke = true;
        } else if (arg == "--verbose") {
            o.verbose = true;
        } else {
            return fail("unknown flag '" + arg + "'");
        }
    }

    const int modes = (guided ? 1 : 0) + (soak ? 1 : 0) +
                      (replay ? 1 : 0) + (self_test ? 1 : 0);
    if (modes > 1)
        return fail("conflicting modes: pick one of --guided, "
                    "--soak, --replay, --self-test");
    if (soak)
        o.mode = FuzzCliOptions::Mode::Soak;
    else if (guided)
        o.mode = FuzzCliOptions::Mode::Guided;
    else if (replay)
        o.mode = FuzzCliOptions::Mode::Replay;
    else if (self_test)
        o.mode = FuzzCliOptions::Mode::SelfTest;

    if (!o.corpusDir.empty() &&
        o.mode != FuzzCliOptions::Mode::Soak)
        return fail("--corpus only makes sense with --soak");

    return p;
}

} // namespace xmig
