/**
 * @file
 * xmig-storm CLI parsing for the xmig_fuzz tool.
 *
 * Unlike BenchOptions::parse — which warn-and-ignores unknown flags
 * so that sweep tools can share argv — the fuzz driver is the kind of
 * binary CI scripts and soak farms call with machine-built argument
 * lists, where a typo silently ignored means a nightly run fuzzing
 * the wrong thing. This parser is strict: unknown flags, missing
 * values and malformed numbers all produce a diagnostic plus usage
 * text and exit code 2 (usage error, distinct from exit 1 = failures
 * found). It is a pure function of argv — no process exit, no
 * logging — so tests drive it in-process.
 */

#pragma once

#include <cstdint>
#include <string>

namespace xmig {

/** Everything the xmig_fuzz driver can be asked to do. */
struct FuzzCliOptions
{
    enum class Mode : uint8_t
    {
        Campaign, ///< uniform campaign (PR 5 behavior)
        Guided,   ///< coverage-guided campaign (--guided)
        Soak,     ///< standing soak with persisted corpus (--soak)
        Replay,   ///< one case, every oracle verdict (--replay)
        SelfTest, ///< minimizer pipeline proof (--self-test)
    };
    Mode mode = Mode::Campaign;

    uint64_t seed = 1;
    uint64_t plans = 200;         ///< campaign case count
    uint64_t budget = 512;        ///< soak case budget (--budget)
    uint64_t batch = 16;          ///< guided/soak batch size
    unsigned jobs = 0;            ///< 0 = hardware concurrency
    uint64_t instructions = 0;    ///< 0 = mode default
    bool smoke = false;
    std::string benchmark;        ///< empty = harness default
    std::string reproDir;
    std::string corpusDir;        ///< soak corpus (--corpus)
    bool minimize = true;
    bool journal = true;          ///< soak journal re-runs
    bool stormWorkloads = false;  ///< pair the adversarial pool in
    bool verbose = false;

    std::string replayPlan;
    uint64_t workloadSeed = 42;
};

/** Outcome of parsing one argv. */
struct FuzzCliParse
{
    FuzzCliOptions options;

    /**
     * -1: proceed with `options`. 0: --help was asked — print usage,
     * exit 0. 2: usage error — print `error` and usage, exit 2.
     */
    int exitCode = -1;

    std::string error; ///< diagnostic for exitCode == 2
};

/** The usage text (also printed on --help). */
const char *fuzzCliUsage();

/** Parse argv strictly; never exits, never logs. */
FuzzCliParse parseFuzzCli(int argc, const char *const *argv);

} // namespace xmig
