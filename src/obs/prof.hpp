/**
 * @file
 * Wall-clock profiling scopes for the simulation phases.
 *
 * XMIG_PROF_SCOPE("quadcore.run") at the top of a block records the
 * block's wall-clock time into the global ProfileRegistry, tracking
 * both *total* time (inclusive of nested scopes) and *self* time
 * (exclusive). Scopes are meant for phase granularity — a benchmark,
 * a warm-up, an export pass — not per-reference paths; each scope
 * costs two steady_clock reads. When a trace session is active the
 * scope additionally lands as a Chrome "X" (complete) event on the
 * wall-clock pid of the trace, so Perfetto shows simulated events and
 * host time side by side.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace xmig::obs {

/** Accumulated timing of one named scope. */
struct ProfEntry
{
    std::string name;
    uint64_t calls = 0;
    uint64_t totalNs = 0; ///< inclusive of nested scopes
    uint64_t childNs = 0; ///< time spent in nested scopes

    uint64_t
    selfNs() const
    {
        return totalNs >= childNs ? totalNs - childNs : 0;
    }
};

/**
 * Global accumulator of profiling scopes.
 */
class ProfileRegistry
{
  public:
    static ProfileRegistry &instance();

    void record(const char *name, uint64_t elapsed_ns,
                uint64_t child_ns);

    /**
     * All entries, in first-seen order. NOT synchronized: call only
     * when no scopes are live on other threads (i.e. after a sweep's
     * join) — the registry cannot hand out a stable reference under
     * concurrent record() calls. The analysis opt-out below encodes
     * exactly that quiescence argument.
     */
    const std::vector<ProfEntry> &
    entries() const XMIG_NO_THREAD_SAFETY_ANALYSIS
    {
        return entries_;
    }

    const ProfEntry *find(const std::string &name) const;

    /** AsciiTable report: phase, calls, total ms, self ms. */
    std::string report(const std::string &title =
                           "wall-clock profile (XMIG_PROF_SCOPE)") const;

    void reset();

  private:
    /**
     * Scopes close on every sweep worker (xmig-swift), so the
     * accumulator is mutex-guarded; two steady_clock reads dominate a
     * scope's cost anyway, and scopes are phase-, not per-reference-,
     * granular.
     */
    mutable std::mutex mutex_;
    /** small; linear lookup is fine */
    std::vector<ProfEntry> entries_ XMIG_GUARDED_BY(mutex_);
};

/**
 * RAII wall-clock scope; use through XMIG_PROF_SCOPE.
 */
class ProfScope
{
  public:
    explicit ProfScope(const char *name);
    ~ProfScope();

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    const char *name_;
    std::chrono::steady_clock::time_point start_;
    ProfScope *parent_;
    uint64_t childNs_ = 0;
};

} // namespace xmig::obs

#define XMIG_PROF_DETAIL_CONCAT2(a, b) a##b
#define XMIG_PROF_DETAIL_CONCAT(a, b) XMIG_PROF_DETAIL_CONCAT2(a, b)

/** Time the enclosing block as a named profiling phase. */
#define XMIG_PROF_SCOPE(name) \
    ::xmig::obs::ProfScope XMIG_PROF_DETAIL_CONCAT( \
        xmig_prof_scope_, __LINE__)(name)
