#include "obs/sampler.hpp"

#include <cstdio>

#include "util/contracts.hpp"

namespace xmig::obs {

TimeSeriesSampler::TimeSeriesSampler(const SamplerConfig &config)
    : config_(config),
      nextSampleAt_(config.sampleEvery)
{
    XMIG_ASSERT(config_.capacity >= 1,
                "sampler ring needs at least one row");
}

void
TimeSeriesSampler::addColumn(std::string name, Probe probe)
{
    XMIG_ASSERT(static_cast<bool>(probe), "null probe for column '%s'",
                name.c_str());
    XMIG_ASSERT(totalSamples_ == 0,
                "columns must be added before the first sample");
    names_.push_back(std::move(name));
    probes_.push_back(std::move(probe));
    deltaSrc_.push_back(nullptr);
    deltaPrev_.push_back(0);
}

void
TimeSeriesSampler::addDeltaColumn(std::string name,
                                  const uint64_t *counter)
{
    XMIG_ASSERT(counter != nullptr, "null counter for column '%s'",
                name.c_str());
    XMIG_ASSERT(totalSamples_ == 0,
                "columns must be added before the first sample");
    names_.push_back(std::move(name));
    probes_.emplace_back(); // unused for delta columns
    deltaSrc_.push_back(counter);
    deltaPrev_.push_back(*counter);
}

bool
TimeSeriesSampler::tick(uint64_t n)
{
    ticks_ += n;
    sinceLastSample_.add(n);
    if (config_.sampleEvery == 0 || ticks_ < nextSampleAt_)
        return false;
    bool sampled = false;
    while (ticks_ >= nextSampleAt_) {
        record();
        nextSampleAt_ += config_.sampleEvery;
        sampled = true;
    }
    return sampled;
}

void
TimeSeriesSampler::sampleNow()
{
    record();
}

void
TimeSeriesSampler::record()
{
    if (ring_.empty())
        ring_.assign(config_.capacity * stride(), 0.0);

    double *row = &ring_[head_ * stride()];
    row[0] = static_cast<double>(ticks_);
    // The interval column drains the tick counter so per-sample
    // deltas cannot drift from the cumulative tick total.
    row[1] = static_cast<double>(sinceLastSample_.snapshotAndReset());
    for (size_t c = 0; c < names_.size(); ++c) {
        if (deltaSrc_[c]) {
            const uint64_t now = *deltaSrc_[c];
            XMIG_AUDIT(now >= deltaPrev_[c],
                       "cumulative counter for column '%s' went "
                       "backwards (%llu -> %llu)",
                       names_[c].c_str(),
                       (unsigned long long)deltaPrev_[c],
                       (unsigned long long)now);
            row[2 + c] = static_cast<double>(now - deltaPrev_[c]);
            deltaPrev_[c] = now;
        } else {
            row[2 + c] = probes_[c]();
        }
    }

    head_ = (head_ + 1) % config_.capacity;
    ++totalSamples_;
}

size_t
TimeSeriesSampler::samples() const
{
    return totalSamples_ < config_.capacity
        ? static_cast<size_t>(totalSamples_)
        : config_.capacity;
}

size_t
TimeSeriesSampler::physicalRow(size_t i) const
{
    XMIG_ASSERT(i < samples(), "sample row %zu of %zu", i, samples());
    if (totalSamples_ <= config_.capacity)
        return i; // not yet wrapped: rows sit in write order
    return (head_ + i) % config_.capacity; // head_ is the oldest row
}

uint64_t
TimeSeriesSampler::rowTick(size_t i) const
{
    return static_cast<uint64_t>(ring_[physicalRow(i) * stride()]);
}

std::vector<double>
TimeSeriesSampler::rowValues(size_t i) const
{
    const double *row = &ring_[physicalRow(i) * stride()];
    return std::vector<double>(row + 2, row + stride());
}

std::string
TimeSeriesSampler::renderCsv() const
{
    std::string out = "t,interval";
    for (const auto &name : names_)
        out += "," + csvQuote(name);
    out += "\n";
    char buf[32];
    for (size_t i = 0; i < samples(); ++i) {
        const double *row = &ring_[physicalRow(i) * stride()];
        for (size_t c = 0; c < stride(); ++c) {
            if (c)
                out += ",";
            std::snprintf(buf, sizeof(buf), "%.10g", row[c]);
            out += buf;
        }
        out += "\n";
    }
    return out;
}

bool
TimeSeriesSampler::writeCsv(const std::string &path) const
{
    const std::string content = renderCsv();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        XMIG_WARN("cannot open '%s' for writing", path.c_str());
        return false;
    }
    const size_t written =
        std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return written == content.size();
}

} // namespace xmig::obs
