#include "obs/trace.hpp"

#include <cstdio>

#include "obs/json.hpp"
#include "util/contracts.hpp"

namespace xmig::obs {

Tracer &
tracer()
{
    static Tracer instance;
    return instance;
}

void
Tracer::start(const std::string &path)
{
    XMIG_ASSERT(!path.empty(), "trace output path must not be empty");
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled_) {
        XMIG_WARN("tracer restarted while a session to '%s' was "
                  "active; %zu buffered events discarded",
                  path_.c_str(), events_.size());
    }
    events_.clear();
    dropped_ = 0;
    clock_ = 0;
    path_ = path;
    enabled_ = true;
    detail::traceActive = true;
}

void
Tracer::emit(std::string event_json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= limit_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(event_json));
}

void
Tracer::instant(const char *category, const char *name,
                std::initializer_list<TraceArg> args)
{
    if (!enabled_)
        return;
    std::string e = "{\"name\":\"" + jsonEscape(name) +
                    "\",\"cat\":\"" + jsonEscape(category) +
                    "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
                    jsonNumber(static_cast<double>(clock_)) +
                    ",\"pid\":0,\"tid\":0";
    if (args.size() > 0) {
        e += ",\"args\":{";
        bool first = true;
        for (const TraceArg &a : args) {
            if (!first)
                e += ",";
            first = false;
            e += "\"" + jsonEscape(a.key) +
                 "\":" + jsonNumber(a.value);
        }
        e += "}";
    }
    e += "}";
    emit(std::move(e));
}

void
Tracer::instant(const char *category, const char *name,
                const char *note)
{
    if (!enabled_)
        return;
    emit("{\"name\":\"" + jsonEscape(name) + "\",\"cat\":\"" +
         jsonEscape(category) + "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
         jsonNumber(static_cast<double>(clock_)) +
         ",\"pid\":0,\"tid\":0,\"args\":{\"note\":\"" +
         jsonEscape(note) + "\"}}");
}

void
Tracer::counter(const char *category, const char *name, double value)
{
    if (!enabled_)
        return;
    emit("{\"name\":\"" + jsonEscape(name) + "\",\"cat\":\"" +
         jsonEscape(category) + "\",\"ph\":\"C\",\"ts\":" +
         jsonNumber(static_cast<double>(clock_)) +
         ",\"pid\":0,\"tid\":0,\"args\":{\"value\":" +
         jsonNumber(value) + "}}");
}

void
Tracer::completeWall(const char *name, uint64_t ts_us, uint64_t dur_us)
{
    if (!enabled_)
        return;
    emit("{\"name\":\"" + jsonEscape(name) +
         "\",\"cat\":\"prof\",\"ph\":\"X\",\"ts\":" +
         jsonNumber(static_cast<double>(ts_us)) + ",\"dur\":" +
         jsonNumber(static_cast<double>(dur_us)) +
         ",\"pid\":1,\"tid\":0}");
}

std::string
Tracer::renderJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return renderJsonLocked();
}

std::string
Tracer::renderJsonLocked() const
{
    std::string out = "{\"traceEvents\":[\n";
    // Process labels: pid 0 is the deterministic simulated timeline,
    // pid 1 the host wall-clock of the profiling scopes.
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
           "\"tid\":0,\"args\":{\"name\":\"simulated time "
           "(references)\"}},\n";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"wall clock "
           "(profiling scopes)\"}}";
    for (const auto &e : events_) {
        out += ",\n";
        out += e;
    }
    out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
           "\"tool\":\"xmig-scope\",\"droppedEvents\":" +
           jsonNumber(static_cast<double>(dropped_)) + "}}\n";
    return out;
}

void
Tracer::stop()
{
    if (!enabled_)
        return;
    enabled_ = false;
    detail::traceActive = false;
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string content = renderJsonLocked();
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        XMIG_WARN("cannot open trace output '%s' for writing",
                  path_.c_str());
        events_.clear();
        return;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    if (dropped_ > 0) {
        XMIG_WARN("trace '%s': %llu events dropped past the %zu-event "
                  "buffer limit",
                  path_.c_str(), (unsigned long long)dropped_, limit_);
    }
    events_.clear();
    events_.shrink_to_fit();
}

} // namespace xmig::obs
