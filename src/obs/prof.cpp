#include "obs/prof.hpp"

#include <cstdio>

#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace xmig::obs {

namespace {

/** Innermost live scope (single-threaded simulator). */
thread_local ProfScope *gCurrentScope = nullptr;

/** Wall-clock origin so trace "X" events start near ts = 0. */
std::chrono::steady_clock::time_point
profEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

std::string
msString(uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(ns) / 1e6);
    return buf;
}

} // namespace

ProfileRegistry &
ProfileRegistry::instance()
{
    static ProfileRegistry registry;
    return registry;
}

void
ProfileRegistry::record(const char *name, uint64_t elapsed_ns,
                        uint64_t child_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &e : entries_) {
        if (e.name == name) {
            ++e.calls;
            e.totalNs += elapsed_ns;
            e.childNs += child_ns;
            return;
        }
    }
    ProfEntry e;
    e.name = name;
    e.calls = 1;
    e.totalNs = elapsed_ns;
    e.childNs = child_ns;
    entries_.push_back(std::move(e));
}

const ProfEntry *
ProfileRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &e : entries_) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

std::string
ProfileRegistry::report(const std::string &title) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    AsciiTable table({"phase", "calls", "total_ms", "self_ms"});
    for (const auto &e : entries_) {
        char calls[32];
        std::snprintf(calls, sizeof(calls), "%llu",
                      (unsigned long long)e.calls);
        table.addRow({e.name, calls, msString(e.totalNs),
                      msString(e.selfNs())});
    }
    return table.render(title);
}

void
ProfileRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

ProfScope::ProfScope(const char *name)
    : name_(name),
      start_(std::chrono::steady_clock::now()),
      parent_(gCurrentScope)
{
    profEpoch(); // pin the epoch before the first scope ends
    gCurrentScope = this;
}

ProfScope::~ProfScope()
{
    const auto end = std::chrono::steady_clock::now();
    const uint64_t elapsed = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            end - start_)
            .count());
    ProfileRegistry::instance().record(name_, elapsed, childNs_);
    if (parent_)
        parent_->childNs_ += elapsed;
    gCurrentScope = parent_;

    Tracer &tr = tracer();
    if (tr.enabled()) {
        const uint64_t ts_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                start_ - profEpoch())
                .count());
        tr.completeWall(name_, ts_us, elapsed / 1000);
    }
}

} // namespace xmig::obs
