#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"
#include "util/contracts.hpp"

namespace xmig::obs {

namespace {

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

} // namespace

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    // Rank of the requested sample, 1-based; p = 0 selects the first.
    const double raw = p / 100.0 * static_cast<double>(count_);
    uint64_t target = static_cast<uint64_t>(raw);
    if (static_cast<double>(target) < raw)
        ++target; // ceil
    if (target == 0)
        target = 1;
    uint64_t cum = 0;
    for (size_t b = 0; b < buckets_.size(); ++b) {
        const uint64_t n = buckets_[b];
        if (n == 0 || cum + n < target) {
            cum += n;
            continue;
        }
        if (b == 0)
            return 0.0; // bucket 0 holds exactly v == 0
        const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
        const double hi = lo * 2.0 - 1.0;
        // 0-based index of the rank inside this bucket; single-sample
        // buckets land on the lower bound exactly.
        const double idx = static_cast<double>(target - cum - 1);
        const double frac =
            n > 1 ? idx / static_cast<double>(n - 1) : 0.0;
        return lo + frac * (hi - lo);
    }
    return 0.0; // unreachable: target <= count_
}

bool
MetricsRegistry::claim(const std::string &path)
{
    XMIG_ASSERT(!path.empty(), "metric path must not be empty");
    if (index_.count(path))
        return false;
    index_.emplace(path, entries_.size());
    return true;
}

bool
MetricsRegistry::addCounter(const std::string &path,
                            const uint64_t *counter)
{
    XMIG_ASSERT(counter != nullptr, "null counter for '%s'",
                path.c_str());
    if (!claim(path))
        return false;
    Entry e;
    e.name = path;
    e.kind = MetricKind::Counter;
    e.counter = counter;
    entries_.push_back(std::move(e));
    return true;
}

bool
MetricsRegistry::addGauge(const std::string &path, GaugeFn fn)
{
    XMIG_ASSERT(static_cast<bool>(fn), "null gauge for '%s'",
                path.c_str());
    if (!claim(path))
        return false;
    Entry e;
    e.name = path;
    e.kind = MetricKind::Gauge;
    e.gauge = std::move(fn);
    entries_.push_back(std::move(e));
    return true;
}

bool
MetricsRegistry::addHistogram(const std::string &path,
                              const Histogram *hist)
{
    XMIG_ASSERT(hist != nullptr, "null histogram for '%s'",
                path.c_str());
    if (!claim(path))
        return false;
    Entry e;
    e.name = path;
    e.kind = MetricKind::Histogram;
    e.hist = hist;
    entries_.push_back(std::move(e));
    return true;
}

bool
MetricsRegistry::contains(const std::string &path) const
{
    return index_.count(path) != 0;
}

std::optional<MetricKind>
MetricsRegistry::kindOf(const std::string &path) const
{
    auto it = index_.find(path);
    if (it == index_.end())
        return std::nullopt;
    return entries_[it->second].kind;
}

double
MetricsRegistry::read(const Entry &e) const
{
    switch (e.kind) {
      case MetricKind::Counter:
        return static_cast<double>(*e.counter);
      case MetricKind::Gauge:
        return e.gauge();
      case MetricKind::Histogram:
        return static_cast<double>(e.hist->count());
    }
    return 0.0;
}

std::optional<double>
MetricsRegistry::value(const std::string &path) const
{
    auto it = index_.find(path);
    if (it == index_.end())
        return std::nullopt;
    return read(entries_[it->second]);
}

std::optional<uint64_t>
MetricsRegistry::counterValue(const std::string &path) const
{
    auto it = index_.find(path);
    if (it == index_.end())
        return std::nullopt;
    const Entry &e = entries_[it->second];
    if (e.kind != MetricKind::Counter)
        return std::nullopt;
    return *e.counter;
}

std::vector<MetricsRegistry::CounterSample>
MetricsRegistry::counterSnapshot() const
{
    std::vector<CounterSample> out;
    for (const size_t i : sortedOrder()) {
        const Entry &e = entries_[i];
        if (e.kind == MetricKind::Counter)
            out.push_back({e.name, *e.counter});
    }
    return out;
}

std::vector<size_t>
MetricsRegistry::sortedOrder() const
{
    std::vector<size_t> order(entries_.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return entries_[a].name < entries_[b].name;
    });
    return order;
}

std::string
MetricsRegistry::renderJsonl() const
{
    std::string out;
    for (const size_t i : sortedOrder()) {
        const Entry &e = entries_[i];
        out += "{\"name\":\"" + jsonEscape(e.name) + "\",\"kind\":\"";
        out += kindName(e.kind);
        out += "\",\"value\":" + jsonNumber(read(e));
        if (e.kind == MetricKind::Histogram) {
            out += ",\"p50\":" + jsonNumber(e.hist->percentile(50));
            out += ",\"p95\":" + jsonNumber(e.hist->percentile(95));
            out += ",\"p99\":" + jsonNumber(e.hist->percentile(99));
            out += ",\"p999\":" + jsonNumber(e.hist->percentile(99.9));
            out += ",\"buckets\":[";
            const auto &buckets = e.hist->buckets();
            for (size_t b = 0; b < buckets.size(); ++b) {
                if (b)
                    out += ",";
                out += jsonNumber(static_cast<double>(buckets[b]));
            }
            out += "]";
        }
        out += "}\n";
    }
    return out;
}

std::string
MetricsRegistry::renderCsv() const
{
    std::string out = "name,kind,value\n";
    for (const size_t i : sortedOrder()) {
        const Entry &e = entries_[i];
        out += csvQuote(e.name) + "," + kindName(e.kind) + "," +
               jsonNumber(read(e)) + "\n";
    }
    return out;
}

std::string
MetricsRegistry::renderTable(const std::string &title) const
{
    AsciiTable table({"metric", "kind", "value", "p50", "p95", "p99"});
    for (const size_t i : sortedOrder()) {
        const Entry &e = entries_[i];
        if (e.kind == MetricKind::Histogram) {
            table.addRow({e.name, kindName(e.kind), jsonNumber(read(e)),
                          jsonNumber(e.hist->percentile(50)),
                          jsonNumber(e.hist->percentile(95)),
                          jsonNumber(e.hist->percentile(99))});
        } else {
            table.addRow({e.name, kindName(e.kind), jsonNumber(read(e)),
                          "", "", ""});
        }
    }
    return table.render(title);
}

namespace {

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        XMIG_WARN("cannot open '%s' for writing", path.c_str());
        return false;
    }
    const size_t written =
        std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return written == content.size();
}

} // namespace

bool
MetricsRegistry::writeJsonl(const std::string &path) const
{
    return writeFile(path, renderJsonl());
}

bool
MetricsRegistry::writeCsv(const std::string &path) const
{
    return writeFile(path, renderCsv());
}

} // namespace xmig::obs
