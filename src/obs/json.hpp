/**
 * @file
 * Minimal JSON helpers for the observability layer.
 *
 * The exporters (metrics JSONL, Chrome trace_event files) emit JSON
 * by string concatenation — no external dependency is available in
 * this environment — so this header centralizes the two things that
 * must be exactly right: string escaping on the way out, and a
 * validating parser the tests use to prove every emitted byte stream
 * is well-formed JSON before shipping it to pandas / Perfetto.
 */

#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <string>

namespace xmig::obs {

/** Escape a string for embedding between JSON double quotes. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Format a double as a JSON number: finite values print with enough
 * precision to round-trip; NaN / infinity (not representable in JSON)
 * degrade to null.
 */
inline std::string
jsonNumber(double v)
{
    if (v != v || v > 1.7e308 || v < -1.7e308)
        return "null";
    // Integral values (the common case for counters) print without a
    // fractional part so JSONL diffs stay stable.
    if (v == static_cast<double>(static_cast<int64_t>(v)) &&
        v >= -9.0e15 && v <= 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

namespace detail {

/** Recursive-descent JSON validator (structure only, no DOM). */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text)
        : s_(text)
    {
    }

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (depth_ > 256 || pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == '-' || (c >= '0' && c <= '9'))
            return number();
        return literal("true") || literal("false") || literal("null");
    }

    bool
    object()
    {
        ++depth_;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (peek() != '"' || !string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++depth_;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        ++pos_; // opening quote
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control char inside a string
            if (c == '\\') {
                if (pos_ + 1 >= s_.size())
                    return false;
                const char e = s_[pos_ + 1];
                if (e == 'u') {
                    if (pos_ + 5 >= s_.size())
                        return false;
                    for (size_t i = pos_ + 2; i < pos_ + 6; ++i) {
                        if (!std::isxdigit(
                                static_cast<unsigned char>(s_[i])))
                            return false;
                    }
                    pos_ += 6;
                    continue;
                }
                if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                    e != 'f' && e != 'n' && e != 'r' && e != 't')
                    return false;
                pos_ += 2;
                continue;
            }
            if (c == '"') {
                ++pos_;
                return true;
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digits())
                return false;
        }
        return pos_ > start;
    }

    bool
    digits()
    {
        const size_t start = pos_;
        while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9')
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const size_t len = std::char_traits<char>::length(word);
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string &s_;
    size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace detail

/** True if `text` is one complete, well-formed JSON value. */
inline bool
jsonParseOk(const std::string &text)
{
    return detail::JsonValidator(text).valid();
}

} // namespace xmig::obs
