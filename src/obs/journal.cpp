#include "obs/journal.hpp"

#include <cstdio>
#include <mutex>

#include "obs/json.hpp"
#include "util/contracts.hpp"
#include "util/logging.hpp"
#include "util/thread_annotations.hpp"

namespace xmig::obs {

namespace {

/**
 * Process-wide registry of live journals, consulted by the XMIG_PANIC
 * hook to flush armed flight recorders post-mortem. Journals are
 * single-thread confined, but construction/destruction can race
 * across sweep cells, so the registry itself takes a lock.
 */
struct JournalRegistry
{
    std::mutex mutex;
    std::vector<Journal *> journals XMIG_GUARDED_BY(mutex);
};

JournalRegistry &
journalRegistry()
{
    static JournalRegistry registry;
    return registry;
}

/**
 * Flushes every armed journal. Runs on the abort path, where the
 * crashing thread may *be* a sweep cell mid-record: the dump is
 * best-effort by design — a torn final record beats losing the
 * whole causal history.
 */
void
dumpArmedJournals()
{
    JournalRegistry &registry = journalRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const Journal *journal : registry.journals) {
        if (!journal->dumpPath().empty())
            journal->dumpNow("XMIG_PANIC");
    }
}

void
registerJournal(Journal *journal)
{
    JournalRegistry &registry = journalRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    if (registry.journals.empty())
        xmig::setPanicHook(&dumpArmedJournals);
    registry.journals.push_back(journal);
}

void
unregisterJournal(Journal *journal)
{
    JournalRegistry &registry = journalRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    std::erase(registry.journals, journal);
}

} // namespace

const char *
journalKindName(JournalKind kind)
{
    switch (kind) {
      case JournalKind::Migration:
        return "migration";
      case JournalKind::MigrationVeto:
        return "migration_veto";
      case JournalKind::MigrationDrop:
        return "migration_drop";
      case JournalKind::MigrationDelay:
        return "migration_delay";
      case JournalKind::MigrationTimeout:
        return "migration_timeout";
      case JournalKind::MigrationRetry:
        return "migration_retry";
      case JournalKind::Transition:
        return "transition";
      case JournalKind::NodeFlip:
        return "node_flip";
      case JournalKind::Resplit:
        return "resplit";
      case JournalKind::ForcedMigration:
        return "forced_migration";
      case JournalKind::CoreOff:
        return "core_off";
      case JournalKind::CoreOn:
        return "core_on";
      case JournalKind::FaultInject:
        return "fault_inject";
      case JournalKind::FilterReinit:
        return "filter_reinit";
      case JournalKind::WatchdogTrip:
        return "watchdog_trip";
      case JournalKind::Checkpoint:
        return "checkpoint";
      case JournalKind::Restore:
        return "restore";
      case JournalKind::CoherenceScrub:
        return "coherence_scrub";
      case JournalKind::ShadowDisarm:
        return "shadow_disarm";
      case JournalKind::TenantAdmit:
        return "tenant_admit";
      case JournalKind::TenantTurn:
        return "tenant_turn";
      case JournalKind::TenantFinish:
        return "tenant_finish";
      case JournalKind::TenantPartition:
        return "tenant_partition";
      case JournalKind::kCount:
        break;
    }
    return "unknown";
}

const char *
journalCauseName(JournalCause cause)
{
    switch (cause) {
      case JournalCause::None:
        return "none";
      case JournalCause::Threshold:
        return "threshold";
      case JournalCause::FabricDelivery:
        return "fabric_delivery";
      case JournalCause::FaultForced:
        return "fault_forced";
      case JournalCause::WatchdogVeto:
        return "watchdog_veto";
      case JournalCause::WatchdogReinit:
        return "watchdog_reinit";
      case JournalCause::Livelock:
        return "livelock";
      case JournalCause::PlanEvent:
        return "plan_event";
      case JournalCause::Explicit:
        return "explicit";
      case JournalCause::Tenant:
        return "tenant";
      case JournalCause::kCount:
        break;
    }
    return "unknown";
}

const char *const *
journalArgNames(JournalKind kind)
{
    // One nullptr-terminated name table per kind; slots past the
    // table are not exported. Keep in sync with the emission sites.
    static const char *const kMigration[] = {"from", "to", "n", "ar",
                                             "filter", nullptr};
    static const char *const kVeto[] = {"target", "ar", "filter",
                                        nullptr};
    static const char *const kDrop[] = {"target", nullptr};
    static const char *const kDelay[] = {"target", "delay", nullptr};
    static const char *const kTimeout[] = {"target", "backoff",
                                           nullptr};
    static const char *const kRetry[] = {"target", "retries", nullptr};
    static const char *const kTransition[] = {"subset", "ae", "filter",
                                              "ar", nullptr};
    static const char *const kNodeFlip[] = {"node", "level", "filter",
                                            nullptr};
    static const char *const kResplit[] = {"ways", "live_mask", "gap",
                                           nullptr};
    static const char *const kForced[] = {"from", "to", nullptr};
    static const char *const kCoreOff[] = {"core", "dirty_lost",
                                           nullptr};
    static const char *const kCoreOn[] = {"core", nullptr};
    static const char *const kFault[] = {"site", "tick", nullptr};
    static const char *const kReinit[] = {"at", nullptr};
    static const char *const kTrip[] = {"migrations", "cooldown",
                                        nullptr};
    static const char *const kCkpt[] = {"refs", nullptr};
    static const char *const kScrub[] = {"repairs", "tick", nullptr};
    static const char *const kDisarm[] = {"refs", nullptr};
    static const char *const kAdmit[] = {"tenant", "slot", "score",
                                         nullptr};
    static const char *const kTurn[] = {"tenant", "refs", "cycles",
                                        nullptr};
    static const char *const kFinish[] = {"tenant", "refs", "cycles",
                                          nullptr};
    static const char *const kPartition[] = {"tenant", "cluster",
                                             "ways", nullptr};
    static const char *const kNone[] = {nullptr};
    switch (kind) {
      case JournalKind::Migration:
        return kMigration;
      case JournalKind::MigrationVeto:
        return kVeto;
      case JournalKind::MigrationDrop:
        return kDrop;
      case JournalKind::MigrationDelay:
        return kDelay;
      case JournalKind::MigrationTimeout:
        return kTimeout;
      case JournalKind::MigrationRetry:
        return kRetry;
      case JournalKind::Transition:
        return kTransition;
      case JournalKind::NodeFlip:
        return kNodeFlip;
      case JournalKind::Resplit:
        return kResplit;
      case JournalKind::ForcedMigration:
        return kForced;
      case JournalKind::CoreOff:
        return kCoreOff;
      case JournalKind::CoreOn:
        return kCoreOn;
      case JournalKind::FaultInject:
        return kFault;
      case JournalKind::FilterReinit:
        return kReinit;
      case JournalKind::WatchdogTrip:
        return kTrip;
      case JournalKind::Checkpoint:
      case JournalKind::Restore:
        return kCkpt;
      case JournalKind::CoherenceScrub:
        return kScrub;
      case JournalKind::ShadowDisarm:
        return kDisarm;
      case JournalKind::TenantAdmit:
        return kAdmit;
      case JournalKind::TenantTurn:
        return kTurn;
      case JournalKind::TenantFinish:
        return kFinish;
      case JournalKind::TenantPartition:
        return kPartition;
      case JournalKind::kCount:
        break;
    }
    return kNone;
}

Journal::Journal(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1)
{
    ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
    registerJournal(this);
}

Journal::~Journal()
{
    unregisterJournal(this);
}

void
Journal::record(JournalKind kind, JournalCause cause, int64_t a,
                int64_t b, int64_t c, int64_t d, int64_t e)
{
    XMIG_ASSERT(kind < JournalKind::kCount &&
                    cause < JournalCause::kCount,
                "journal record with out-of-range kind/cause");
    JournalEvent event;
    event.seq = recorded_;
    event.time = clock_;
    event.arg[0] = a;
    event.arg[1] = b;
    event.arg[2] = c;
    event.arg[3] = d;
    event.arg[4] = e;
    event.kind = kind;
    event.cause = cause;
    if (ring_.size() < capacity_) {
        ring_.push_back(event);
    } else {
        // Ring full: overwrite the oldest slot in place.
        ring_[recorded_ % capacity_] = event;
    }
    ++recorded_;
}

size_t
Journal::size() const
{
    return ring_.size();
}

uint64_t
Journal::dropped() const
{
    return recorded_ - ring_.size();
}

const JournalEvent &
Journal::eventAt(size_t i) const
{
    XMIG_ASSERT(i < ring_.size(), "journal event %zu out of %zu", i,
                ring_.size());
    if (recorded_ <= capacity_)
        return ring_[i];
    // Oldest surviving event sits at the next overwrite slot.
    return ring_[(recorded_ + i) % capacity_];
}

void
Journal::clear()
{
    ring_.clear();
    recorded_ = 0;
}

void
Journal::setDumpPath(std::string path)
{
    dumpPath_ = std::move(path);
}

bool
Journal::dumpNow(const char *reason) const
{
    if (dumpPath_.empty())
        return false;
    std::string text = renderJsonl();
    text += "{\"incident\":\"";
    text += jsonEscape(reason != nullptr ? reason : "unknown");
    text += "\"}\n";
    std::FILE *f = std::fopen(dumpPath_.c_str(), "w");
    if (f == nullptr) {
        XMIG_WARN("journal dump failed: cannot open %s",
                  dumpPath_.c_str());
        return false;
    }
    const size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return written == text.size();
}

std::string
Journal::renderJsonl() const
{
    std::string out;
    out.reserve(128 + size() * 96);
    out += "{\"journal\":\"xmig-lens\",\"capacity\":";
    out += jsonNumber(static_cast<double>(capacity_));
    out += ",\"recorded\":";
    out += jsonNumber(static_cast<double>(recorded_));
    out += ",\"dropped\":";
    out += jsonNumber(static_cast<double>(dropped()));
    out += "}\n";
    for (size_t i = 0; i < size(); ++i) {
        const JournalEvent &event = eventAt(i);
        out += "{\"seq\":";
        out += jsonNumber(static_cast<double>(event.seq));
        out += ",\"t\":";
        out += jsonNumber(static_cast<double>(event.time));
        out += ",\"kind\":\"";
        out += journalKindName(event.kind);
        out += "\",\"cause\":\"";
        out += journalCauseName(event.cause);
        out += "\"";
        const char *const *names = journalArgNames(event.kind);
        for (size_t a = 0; a < 5 && names[a] != nullptr; ++a) {
            out += ",\"";
            out += names[a];
            out += "\":";
            out += jsonNumber(static_cast<double>(event.arg[a]));
        }
        out += "}\n";
    }
    return out;
}

bool
Journal::writeJsonl(const std::string &path) const
{
    const std::string text = renderJsonl();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        XMIG_WARN("cannot open journal output %s", path.c_str());
        return false;
    }
    const size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (written != text.size()) {
        XMIG_WARN("short write on journal output %s", path.c_str());
        return false;
    }
    return true;
}

} // namespace xmig::obs
