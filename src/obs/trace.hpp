/**
 * @file
 * xmig-scope structured event tracing: Chrome trace_event output.
 *
 * The Tracer records lightweight structured events — migrations,
 * transition-filter flips, affinity-cache evictions, shadow-audit
 * disarms — as Chrome trace_event JSON that chrome://tracing and
 * Perfetto open directly. The timeline's clock is *simulated logical
 * time* (post-L1 references), advanced by the machine via
 * XMIG_TRACE_CLOCK, so traces are deterministic across hosts;
 * wall-clock profiling scopes (obs/prof.hpp) land on a second "pid"
 * of the same file.
 *
 * Cost model: every emission site is wrapped in the XMIG_TRACE macro,
 * which tests a single global bool before doing any work — dormant
 * tracing costs one predictable branch on the (already rare) event
 * paths. Building with -DXMIG_TRACE=OFF compiles the macros away
 * entirely (their arguments are parsed but never evaluated, exactly
 * like the disabled contract macros), for bit-identical hot loops.
 *
 * Memory stays bounded: past `limit()` events, new events are dropped
 * and counted; the drop count is recorded in the trace metadata.
 */

#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

#ifndef XMIG_TRACE_ENABLED
#define XMIG_TRACE_ENABLED 1
#endif

namespace xmig::obs {

/** True when the XMIG_TRACE macros are compiled in. */
inline constexpr bool kTraceCompiled = XMIG_TRACE_ENABLED != 0;

/** One numeric argument attached to a trace event. */
struct TraceArg
{
    /** Accepts any arithmetic value (avoids narrowing-in-braced-init
     *  errors at XMIG_TRACE call sites passing counters). */
    template <typename T>
    TraceArg(const char *k, T v)
        : key(k),
          value(static_cast<double>(v))
    {
    }

    const char *key;
    double value;
};

/**
 * Collector of Chrome trace_event records.
 */
class Tracer
{
  public:
    /** Begin a tracing session that will be written to `path`. */
    void start(const std::string &path);

    /** Flush the session to its file and disable tracing. */
    void stop();

    /** True between start() and stop(). */
    bool enabled() const { return enabled_; }

    /** Advance the simulated-time clock (microsecond ticks). */
    void setClock(uint64_t t) { clock_ = t; }
    uint64_t clock() const { return clock_; }

    /** Instant event ("i" phase) with numeric args. */
    void instant(const char *category, const char *name,
                 std::initializer_list<TraceArg> args = {});

    /** Instant event carrying a free-form note string. */
    void instant(const char *category, const char *name,
                 const char *note);

    /** Counter event ("C" phase): one sample of a counter track. */
    void counter(const char *category, const char *name, double value);

    /**
     * Complete event ("X" phase) on the wall-clock pid, used by the
     * profiling scopes. `ts_us`/`dur_us` are host microseconds.
     */
    void completeWall(const char *name, uint64_t ts_us, uint64_t dur_us);

    /** Events currently buffered. */
    size_t
    events() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return events_.size();
    }

    /** Events dropped after the buffer limit was reached. */
    uint64_t
    dropped() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return dropped_;
    }

    /** Cap on buffered events (default 1M). */
    void setLimit(size_t max_events) { limit_ = max_events; }
    size_t limit() const { return limit_; }

    /** Render the full Chrome trace JSON document. */
    std::string renderJson() const;

  private:
    /** Buffer one pre-rendered event, or count it as dropped once
     *  the limit is reached. The only write path into events_. */
    void emit(std::string event_json) XMIG_EXCLUDES(mutex_);

    std::string renderJsonLocked() const XMIG_REQUIRES(mutex_);

    // Session state (enabled_/path_/clock_/limit_) is owned by the
    // simulation thread that runs start()/stop(): sessions never
    // overlap a sweep (--trace-out forces --jobs 1, sim/options),
    // so only the event *buffer* below needs a lock — profiling
    // scopes may close on pool workers while a session is active.
    bool enabled_ = false;
    std::string path_;
    uint64_t clock_ = 0;
    size_t limit_ = 1'000'000;

    mutable std::mutex mutex_;
    /** pre-rendered JSON objects */
    std::vector<std::string> events_ XMIG_GUARDED_BY(mutex_);
    uint64_t dropped_ XMIG_GUARDED_BY(mutex_) = 0;
};

/** The process-wide tracer the XMIG_TRACE macros talk to. */
Tracer &tracer();

namespace detail {

/**
 * The "single global bool" of the cost model above: mirrors
 * tracer().enabled() so dormant trace sites — including the
 * per-reference XMIG_TRACE_CLOCK — test one inlined load instead of
 * paying a function call plus a guarded-static check. Maintained by
 * Tracer::start()/stop(); never write it elsewhere.
 */
inline bool traceActive = false;

/** Parse-only sink for compiled-out trace macros (arguments must
 *  stay syntactically valid at every build setting). */
inline void
traceNoop(const char *, const char *,
          std::initializer_list<TraceArg> = {})
{
}

inline void
traceNoop(const char *, const char *, const char *)
{
}

} // namespace detail

} // namespace xmig::obs

#if XMIG_TRACE_ENABLED

/**
 * Record a structured instant event:
 *   XMIG_TRACE("migration", "migrate", {{"from", 0}, {"to", 2}});
 *   XMIG_TRACE("shadow", "disarm", reason_string);
 * Costs one branch when no tracing session is active.
 */
#define XMIG_TRACE(category, name, ...) \
    do { \
        if (::xmig::obs::detail::traceActive) \
            ::xmig::obs::tracer().instant((category), (name), \
                                          ##__VA_ARGS__); \
    } while (0)

/** Record one sample of a named counter track. */
#define XMIG_TRACE_COUNTER(category, name, value) \
    do { \
        if (::xmig::obs::detail::traceActive) \
            ::xmig::obs::tracer().counter( \
                (category), (name), static_cast<double>(value)); \
    } while (0)

/** Advance the simulated-time clock of the trace. */
#define XMIG_TRACE_CLOCK(t) \
    do { \
        if (::xmig::obs::detail::traceActive) \
            ::xmig::obs::tracer().setClock( \
                static_cast<uint64_t>(t)); \
    } while (0)

#else // !XMIG_TRACE_ENABLED

#define XMIG_TRACE(category, name, ...) \
    do { \
        if (false) \
            ::xmig::obs::detail::traceNoop((category), (name), \
                                           ##__VA_ARGS__); \
    } while (0)

#define XMIG_TRACE_COUNTER(category, name, value) \
    do { \
        if (false) { \
            (void)(category); \
            (void)(name); \
            (void)static_cast<double>(value); \
        } \
    } while (0)

#define XMIG_TRACE_CLOCK(t) \
    do { \
        if (false) \
            (void)static_cast<uint64_t>(t); \
    } while (0)

#endif // XMIG_TRACE_ENABLED
