/**
 * @file
 * xmig-scope time-series sampler: bounded-memory periodic probes.
 *
 * A TimeSeriesSampler owns a set of named columns — absolute probes
 * (closures read at sample time: A_R, Delta, occupancies) and delta
 * columns (pointers to cumulative event counters, reported as
 * per-interval differences: migration rate, L2-miss rate). Calling
 * tick() once per simulated reference advances logical time; every
 * `sampleEvery` ticks one row is recorded into a fixed-capacity ring
 * buffer, so memory stays bounded no matter how long the run is.
 * The buffer dumps as CSV (oldest surviving row first) for
 * Figure-3-style plots of the affinity algorithm over time.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace xmig::obs {

/** Sampling cadence and memory bound. */
struct SamplerConfig
{
    /** Ticks (references) between samples; 0 disables tick sampling. */
    uint64_t sampleEvery = 10'000;

    /** Ring-buffer capacity in rows; older rows are overwritten. */
    size_t capacity = 4096;
};

/**
 * Periodic multi-column sampler over a ring buffer.
 */
class TimeSeriesSampler
{
  public:
    using Probe = std::function<double()>;

    explicit TimeSeriesSampler(const SamplerConfig &config = {});

    /** Add an absolute column; `probe` is called at each sample. */
    void addColumn(std::string name, Probe probe);

    /**
     * Add a per-interval delta column over the cumulative counter at
     * `*counter`: each sample reports the increase since the previous
     * sample, turning running totals into rates without touching the
     * hot-path struct. The pointer must stay valid while sampling.
     */
    void addDeltaColumn(std::string name, const uint64_t *counter);

    /** Advance logical time by `n` ticks; samples rows as they come
     *  due. Returns true if at least one row was recorded. */
    bool tick(uint64_t n = 1);

    /** Record one row now, regardless of cadence. */
    void sampleNow();

    /** Rows currently held (<= capacity). */
    size_t samples() const;

    /** Rows recorded over the sampler's lifetime. */
    uint64_t totalSamples() const { return totalSamples_; }

    /** True once old rows have been overwritten. */
    bool wrapped() const { return totalSamples_ > config_.capacity; }

    /** Logical time (ticks seen so far). */
    uint64_t ticks() const { return ticks_; }

    const SamplerConfig &config() const { return config_; }
    const std::vector<std::string> &columnNames() const { return names_; }

    /**
     * Read back row `i` (0 = oldest surviving): the tick it was
     * sampled at and one value per column, in column order.
     */
    uint64_t rowTick(size_t i) const;
    std::vector<double> rowValues(size_t i) const;

    /**
     * CSV dump, oldest surviving row first. Columns: `t` (tick of the
     * sample), `interval` (ticks since the previous sample), then
     * every added column. Headers are csvQuote()d.
     */
    std::string renderCsv() const;

    /** Write renderCsv() to a file; false on I/O error. */
    bool writeCsv(const std::string &path) const;

  private:
    size_t stride() const { return 2 + names_.size(); }
    size_t physicalRow(size_t i) const;
    void record();

    SamplerConfig config_;
    std::vector<std::string> names_;
    std::vector<Probe> probes_;              ///< 1:1 with names_
    std::vector<const uint64_t *> deltaSrc_; ///< null for absolute cols
    std::vector<uint64_t> deltaPrev_;        ///< last cumulative value

    /** Flat ring: rows of [tick, interval, col...]. */
    std::vector<double> ring_;
    size_t head_ = 0; ///< next physical row to write
    uint64_t totalSamples_ = 0;

    uint64_t ticks_ = 0;
    uint64_t nextSampleAt_;
    Counter sinceLastSample_; ///< drained via snapshotAndReset()
};

} // namespace xmig::obs
