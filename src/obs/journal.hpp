/**
 * @file
 * xmig-lens causal event journal: a deterministic flight recorder.
 *
 * The Journal records every decision-relevant event of one simulated
 * machine — migrations with the A_R / transition-filter values at
 * decision time, split and re-split transitions, fault injections,
 * watchdog vetoes and reinits, checkpoint/restore, coherence scrubs —
 * into a compact bounded ring of fixed-size binary records stamped
 * with *simulated* time (post-L1 references, the same clock as
 * XMIG_TRACE_CLOCK). Because the journal is owned by one machine and
 * written only from that machine's sweep cell, its JSONL export is a
 * pure function of (seed, config, fault plan): byte-identical at any
 * `--jobs`, unlike the process-global Tracer (which forces jobs 1).
 *
 * Cost model: every emission site is wrapped in the XMIG_JOURNAL
 * macro, which tests one pointer before doing any work — an
 * unjournaled machine pays a predictable null-check branch on the
 * (already rare) event paths and nothing per reference. Building with
 * -DXMIG_JOURNAL=OFF compiles the macros away entirely (arguments are
 * parsed but never evaluated, like the disabled XMIG_TRACE macros).
 * The `journal-in-hot-loop` xmig_lint rule statically enforces that
 * simulation code never calls the Journal directly.
 *
 * Post-mortem: journals with a dump path registered (see setDumpPath)
 * are flushed automatically when XMIG_PANIC fires — i.e. on any
 * XMIG_ASSERT / XMIG_AUDIT failure — and when the livelock watchdog
 * trips, so the causal history leading into a crash is preserved.
 *
 * Thread-safety: like FaultInjector, a Journal instance is
 * single-thread confined to its sweep cell — confinement, not
 * locking, is the thread-safety story (docs/analysis.md). Only the
 * process-wide dump registry behind the panic hook takes a lock.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef XMIG_JOURNAL_ENABLED
#define XMIG_JOURNAL_ENABLED 1
#endif

namespace xmig::obs {

/** True when the XMIG_JOURNAL macros are compiled in. */
inline constexpr bool kJournalCompiled = XMIG_JOURNAL_ENABLED != 0;

/** What happened. One enumerator per decision-relevant event. */
enum class JournalKind : uint8_t {
    Migration,        ///< execution moved cores: {from, to, n, ar, filter}
    MigrationVeto,    ///< watchdog refused a request: {target, ar, filter}
    MigrationDrop,    ///< fabric lost the request: {target}
    MigrationDelay,   ///< fabric delayed delivery: {target, delay}
    MigrationTimeout, ///< in-flight request timed out: {target, backoff}
    MigrationRetry,   ///< timed-out request re-issued: {target, retries}
    Transition,       ///< subset changed: {subset, ae, filter, ar}
    NodeFlip,         ///< k-way node filter flipped: {node, level, filter}
    Resplit,          ///< topology rebuilt: {ways, live_mask, gap}
    ForcedMigration,  ///< active core died: {from, to}
    CoreOff,          ///< core left the live mask: {core, dirty_lost}
    CoreOn,           ///< core rejoined the live mask: {core}
    FaultInject,      ///< injector fired: {site, tick}
    FilterReinit,     ///< watchdog reset all filters: {at}
    WatchdogTrip,     ///< livelock detected: {migrations, cooldown}
    Checkpoint,       ///< state captured: {refs}
    Restore,          ///< state restored: {refs}
    CoherenceScrub,   ///< update-bus scrub pass: {repairs, tick}
    ShadowDisarm,     ///< shadow oracle disarmed: {refs}
    TenantAdmit,      ///< arena admitted a tenant: {tenant, slot, score}
    TenantTurn,       ///< scheduler granted a quantum: {tenant, refs, cycles}
    TenantFinish,     ///< tenant retired its budget: {tenant, refs, cycles}
    TenantPartition,  ///< shared-L3 cluster assigned: {tenant, cluster, ways}
    kCount
};

/** Why it happened — the causal tag on each event. */
enum class JournalCause : uint8_t {
    None,           ///< no finer cause than the kind itself
    Threshold,      ///< A_R / filter threshold crossing (normal path)
    FabricDelivery, ///< delayed request finally delivered
    FaultForced,    ///< consequence of an injected fault
    WatchdogVeto,   ///< watchdog cooldown suppressed it
    WatchdogReinit, ///< watchdog-requested filter reinit
    Livelock,       ///< ping-pong livelock detection
    PlanEvent,      ///< scheduled by the fault plan
    Explicit,       ///< explicit API call (checkpoint(), restore())
    Tenant,         ///< multi-tenant arena scheduling decision
    kCount
};

/** Stable lowercase name for JSONL export ("migration", ...). */
const char *journalKindName(JournalKind kind);
/** Stable lowercase name for JSONL export ("threshold", ...). */
const char *journalCauseName(JournalCause cause);
/** Per-kind argument names, nullptr-terminated, at most 5 entries. */
const char *const *journalArgNames(JournalKind kind);

/** One fixed-size binary journal record. */
struct JournalEvent
{
    uint64_t seq;     ///< 0-based global sequence number
    uint64_t time;    ///< simulated time (post-L1 references)
    int64_t arg[5];   ///< payload, named per-kind (journalArgNames)
    JournalKind kind;
    JournalCause cause;
};

/**
 * Bounded ring of JournalEvents ("flight recorder").
 *
 * Past capacity() events the oldest record is overwritten and counted
 * in dropped(); seq numbers keep increasing so the export records the
 * truncation honestly.
 */
class Journal
{
  public:
    explicit Journal(size_t capacity = 65536);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Advance the simulated-time clock stamped onto new events. */
    void setClock(uint64_t t) { clock_ = t; }
    uint64_t clock() const { return clock_; }

    /** Append one event (the only write path; see XMIG_JOURNAL). */
    void record(JournalKind kind, JournalCause cause, int64_t a = 0,
                int64_t b = 0, int64_t c = 0, int64_t d = 0,
                int64_t e = 0);

    /** Events currently held in the ring. */
    size_t size() const;
    /** Total events ever recorded (size() + dropped()). */
    uint64_t recorded() const { return recorded_; }
    /** Events overwritten after the ring filled. */
    uint64_t dropped() const;
    size_t capacity() const { return capacity_; }

    /** i-th oldest event still in the ring (0 <= i < size()). */
    const JournalEvent &eventAt(size_t i) const;

    /** Forget all events (clock and dump path are kept). */
    void clear();

    /**
     * Arm post-mortem dumping: on XMIG_PANIC or a watchdog incident
     * the journal writes its JSONL to `path`. Empty disarms.
     */
    void setDumpPath(std::string path);
    const std::string &dumpPath() const { return dumpPath_; }

    /**
     * Write the JSONL to the dump path immediately, appending a
     * final "incident" header line naming `reason`. Returns false
     * when no dump path is armed or the write fails.
     */
    bool dumpNow(const char *reason) const;

    /**
     * Render the journal as JSONL: one header line (capacity,
     * recorded, dropped), then one line per retained event, oldest
     * first. Every line is a complete JSON object.
     */
    std::string renderJsonl() const;

    /** Write renderJsonl() to `path`; false on I/O failure. */
    bool writeJsonl(const std::string &path) const;

  private:
    size_t capacity_;
    std::vector<JournalEvent> ring_;
    uint64_t recorded_ = 0;
    uint64_t clock_ = 0;
    std::string dumpPath_;
};

namespace detail {

/** Parse-only sink for compiled-out journal macros. */
template <typename... Args>
inline void
journalNoop(const Journal *, JournalKind, JournalCause, Args...)
{
}

} // namespace detail

} // namespace xmig::obs

#if XMIG_JOURNAL_ENABLED

/**
 * Record a causal event on a (possibly null) Journal pointer:
 *   XMIG_JOURNAL(journal_, JournalKind::Migration,
 *                JournalCause::Threshold, from, to, n, ar, filter);
 * Costs one null-check branch when no journal is attached.
 */
#define XMIG_JOURNAL(journal_ptr, ...) \
    do { \
        if (::xmig::obs::Journal *xj_lens_ = (journal_ptr)) \
            xj_lens_->record(__VA_ARGS__); \
    } while (0)

/** Advance the simulated-time clock of the journal. */
#define XMIG_JOURNAL_CLOCK(journal_ptr, t) \
    do { \
        if (::xmig::obs::Journal *xj_lens_ = (journal_ptr)) \
            xj_lens_->setClock(static_cast<uint64_t>(t)); \
    } while (0)

/** Flush the journal to its dump path on a non-fatal incident. */
#define XMIG_JOURNAL_INCIDENT(journal_ptr, reason) \
    do { \
        if (::xmig::obs::Journal *xj_lens_ = (journal_ptr)) \
            xj_lens_->dumpNow(reason); \
    } while (0)

#else // !XMIG_JOURNAL_ENABLED

#define XMIG_JOURNAL(journal_ptr, ...) \
    do { \
        if (false) \
            ::xmig::obs::detail::journalNoop((journal_ptr), \
                                             __VA_ARGS__); \
    } while (0)

#define XMIG_JOURNAL_CLOCK(journal_ptr, t) \
    do { \
        if (false) { \
            (void)(journal_ptr); \
            (void)static_cast<uint64_t>(t); \
        } \
    } while (0)

#define XMIG_JOURNAL_INCIDENT(journal_ptr, reason) \
    do { \
        if (false) { \
            (void)(journal_ptr); \
            (void)(reason); \
        } \
    } while (0)

#endif // XMIG_JOURNAL_ENABLED
