/**
 * @file
 * xmig-scope metrics registry: one namespace for every counter the
 * simulator keeps.
 *
 * Components keep their existing `*Stats` structs as the hot-path
 * storage; the registry holds *pointers* (or read-only closures) into
 * that storage under hierarchical dotted names such as
 * `machine.core0.l2.misses` or `engine.migrations`. Registration is
 * therefore free on the simulation path — values are only read when
 * an exporter runs. Exporters emit JSONL (one metric per line, for
 * pandas / jq), CSV, and the repo's AsciiTable format.
 *
 * Lifetime rule: a registered pointer/closure must outlive the last
 * export. The intended pattern is one registry per run, registered
 * right after the machines are built and exported right before they
 * are destroyed (see sim/observe.hpp).
 *
 * Thread contract: single-thread confined. Each sweep cell builds
 * and exports its own registry on the worker that runs it; no
 * instance is ever shared across pool workers, so the class carries
 * no locks or capability annotations by design (see
 * docs/analysis.md, "Static analysis: xmig-sentinel").
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"

namespace xmig::obs {

/** What kind of instrument a registry entry is. */
enum class MetricKind : uint8_t
{
    Counter,   ///< monotonically increasing uint64 (pointer)
    Gauge,     ///< point-in-time value (closure, read at export)
    Histogram, ///< log2-bucketed distribution (pointer)
};

/**
 * Power-of-two-bucketed histogram: bucket i counts samples v with
 * bit_width(v) == i (bucket 0 is v == 0). Cheap enough for warm
 * paths; the last bucket absorbs everything wider.
 */
class Histogram
{
  public:
    explicit Histogram(unsigned buckets = 33)
        : buckets_(buckets > 1 ? buckets : 2, 0)
    {
    }

    void
    record(uint64_t v)
    {
        unsigned b = 0;
        while (v != 0 && b + 1 < buckets_.size()) {
            v >>= 1;
            ++b;
        }
        ++buckets_[b];
        ++count_;
    }

    uint64_t count() const { return count_; }
    const std::vector<uint64_t> &buckets() const { return buckets_; }

    /**
     * Estimate the p-th percentile (p in [0, 100]) by linear
     * interpolation inside the log2 bucket holding that rank.
     * Bucket 0 is exactly v == 0 and bucket b >= 1 spans
     * [2^(b-1), 2^b - 1], so single-sample buckets — and in
     * particular exact powers of two — report their lower bound
     * exactly. The open-ended last bucket is treated as its nominal
     * span. Returns 0.0 for an empty histogram.
     */
    double percentile(double p) const;

    void
    reset()
    {
        count_ = 0;
        for (auto &b : buckets_)
            b = 0;
    }

  private:
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
};

/**
 * Named registry of counters, gauges and histograms.
 */
class MetricsRegistry
{
  public:
    using GaugeFn = std::function<double()>;

    /**
     * Register a counter living at `*counter`. Returns false (and
     * registers nothing) if `path` is already taken — callers that
     * re-attach the same component twice get dedup, not aliasing.
     */
    bool addCounter(const std::string &path, const uint64_t *counter);

    /** Register a gauge computed by `fn` at export time. */
    bool addGauge(const std::string &path, GaugeFn fn);

    /** Register a histogram living at `*hist`. */
    bool addHistogram(const std::string &path, const Histogram *hist);

    /** True if a metric is registered under `path`. */
    bool contains(const std::string &path) const;

    /** Kind of the metric at `path`, if registered. */
    std::optional<MetricKind> kindOf(const std::string &path) const;

    /**
     * Current value of the metric at `path`: counters and gauges read
     * their storage; histograms report their sample count.
     */
    std::optional<double> value(const std::string &path) const;

    /**
     * Exact read of the *counter* at `path` (xmig-storm coverage
     * maps need lossless uint64 values, not the double that value()
     * reports). std::nullopt if `path` is missing or not a counter.
     */
    std::optional<uint64_t> counterValue(const std::string &path) const;

    /** One (name, value) pair of counterSnapshot(). */
    struct CounterSample
    {
        std::string name;
        uint64_t value = 0;

        bool operator==(const CounterSample &) const = default;
    };

    /**
     * Ordered snapshot of every registered *counter*: name-sorted
     * (the renderJsonl order), values read exactly. This is the
     * programmatic read-back surface — consumers such as the
     * xmig-storm coverage map use it instead of re-parsing their own
     * JSONL export.
     */
    std::vector<CounterSample> counterSnapshot() const;

    /** Number of registered metrics. */
    size_t size() const { return entries_.size(); }

    /**
     * One metric per line:
     *   {"name":"machine.l2.misses","kind":"counter","value":123}
     * Histograms carry an extra "buckets" array. Lines are sorted by
     * name so dumps diff cleanly.
     */
    std::string renderJsonl() const;

    /** CSV with a `name,kind,value` header, cells quoted as needed. */
    std::string renderCsv() const;

    /** Human-readable dump in the repo's AsciiTable format. */
    std::string renderTable(const std::string &title = "") const;

    /** Write renderJsonl() / renderCsv() to a file; false on error. */
    bool writeJsonl(const std::string &path) const;
    bool writeCsv(const std::string &path) const;

  private:
    struct Entry
    {
        std::string name;
        MetricKind kind;
        const uint64_t *counter = nullptr;
        GaugeFn gauge;
        const Histogram *hist = nullptr;
    };

    bool claim(const std::string &path);
    double read(const Entry &e) const;

    /** Indices of entries_, sorted by metric name. */
    std::vector<size_t> sortedOrder() const;

    std::vector<Entry> entries_;
    std::unordered_map<std::string, size_t> index_;
};

} // namespace xmig::obs
