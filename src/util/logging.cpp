#include "util/logging.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace xmig {

namespace {

// Written once at startup (journal registration) and read on the
// abort path; a plain pointer keeps panicImpl allocation-free.
PanicHook panicHook = nullptr;

} // namespace

void
setPanicHook(PanicHook hook)
{
    panicHook = hook;
}

namespace detail {

std::string
formatString(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    if (panicHook != nullptr)
        panicHook();
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace xmig
