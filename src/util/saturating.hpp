/**
 * @file
 * Runtime-width signed saturating integers.
 *
 * The affinity algorithm (Michaud, HPCA 2004, section 3.2) works with
 * saturating addition on values coded with a limited number of bits:
 * 16-bit affinities O_e / I_e, bits[A_R] = bits[O_e] + log2(|R|),
 * bits[Delta] = bits[O_e] + 1, and 18/20-bit transition filters. The
 * width is a run-time experiment parameter, so SatInt carries its bit
 * count as state rather than as a template argument.
 */

#pragma once

#include <cstdint>
#include <limits>

#include "util/contracts.hpp"

namespace xmig {

/**
 * Signed integer with saturating arithmetic at a runtime-chosen width.
 *
 * A SatInt of width b holds values in [-2^(b-1), 2^(b-1) - 1]. Adding
 * past either bound clamps to the bound. Widths from 2 to 62 bits are
 * supported, which covers every configuration in the paper.
 */
class SatInt
{
  public:
    /** Construct a counter of the given bit width, initialized to 0. */
    explicit SatInt(unsigned bits)
        : value_(0),
          min_(minForBits(bits)),
          max_(maxForBits(bits)),
          bits_(bits)
    {
    }

    /** Construct with an explicit initial value (clamped). */
    SatInt(unsigned bits, int64_t initial)
        : SatInt(bits)
    {
        value_ = clamp(initial);
    }

    /** Smallest representable value for a b-bit signed integer. */
    static int64_t
    minForBits(unsigned bits)
    {
        XMIG_ASSERT(bits >= 2 && bits <= 62, "SatInt width %u", bits);
        return -(int64_t(1) << (bits - 1));
    }

    /** Largest representable value for a b-bit signed integer. */
    static int64_t
    maxForBits(unsigned bits)
    {
        XMIG_ASSERT(bits >= 2 && bits <= 62, "SatInt width %u", bits);
        return (int64_t(1) << (bits - 1)) - 1;
    }

    int64_t get() const { return value_; }
    int64_t min() const { return min_; }
    int64_t max() const { return max_; }
    unsigned bits() const { return bits_; }

    /** True if the counter sits at either saturation bound. */
    bool saturated() const { return value_ == min_ || value_ == max_; }

    /**
     * Replace the value, clamping into range. Returns true if the
     * value was actually clamped (v was out of range) — the signal
     * the shadow-model checker uses to disarm, since the unsaturated
     * reference model diverges from here on.
     */
    bool
    set(int64_t v)
    {
        value_ = clamp(v);
        return value_ != v;
    }

    /** Saturating add. Returns true if the sum was clamped. */
    bool
    add(int64_t delta)
    {
        // Widths are <= 62 bits and |delta| in practice fits 62 bits as
        // well, so plain 64-bit addition cannot wrap before clamping.
        const int64_t raw = value_ + delta;
        value_ = clamp(raw);
        return value_ != raw;
    }

    SatInt &
    operator+=(int64_t delta)
    {
        add(delta);
        return *this;
    }

    SatInt &
    operator-=(int64_t delta)
    {
        add(-delta);
        return *this;
    }

  private:
    int64_t
    clamp(int64_t v) const
    {
        if (v < min_)
            return min_;
        if (v > max_)
            return max_;
        return v;
    }

    int64_t value_;
    int64_t min_;
    int64_t max_;
    unsigned bits_;
};

/**
 * The sign function of the paper: sign(x) = +1 if x >= 0, else -1.
 *
 * Note the asymmetry: sign(0) = +1, exactly as in section 3.2.
 */
inline int
affinitySign(int64_t x)
{
    return x >= 0 ? 1 : -1;
}

/** Clamp a plain value into the range of a b-bit signed integer. */
inline int64_t
saturateToBits(int64_t v, unsigned bits)
{
    const int64_t lo = SatInt::minForBits(bits);
    const int64_t hi = SatInt::maxForBits(bits);
    if (v < lo)
        return lo;
    if (v > hi)
        return hi;
    return v;
}

} // namespace xmig
