/**
 * @file
 * The xmig-audit contract layer: graded invariant checking.
 *
 * Three macros, three costs, one failure path (panic):
 *
 *  - XMIG_ASSERT   — always compiled. API preconditions and
 *                    invariants whose violation makes further
 *                    execution meaningless (out-of-range width,
 *                    structural desync that would corrupt memory).
 *  - XMIG_AUDIT    — compiled at audit level >= 1 (cheap). O(1)
 *                    checks on hot paths: occupancy bounds, counter
 *                    monotonicity, subset-index ranges. The default
 *                    build keeps these on; they cost a compare and a
 *                    predictable branch.
 *  - XMIG_EXPECT   — compiled at audit level >= 2 (paranoid).
 *                    Expensive structural walks: O(|R|) window sums,
 *                    tag/payload reconciliation, whole-machine
 *                    coherence sweeps. Enable with
 *                    -DXMIG_AUDIT_LEVEL=paranoid when chasing a
 *                    silent-corruption bug or validating a refactor.
 *
 * The level is fixed at compile time by the XMIG_AUDIT_LEVEL
 * preprocessor define (0 = off, 1 = cheap, 2 = paranoid), normally
 * set through the CMake cache variable of the same name. Disabled
 * macros compile to nothing: their condition and message arguments
 * are parsed (so they cannot rot) but never evaluated.
 *
 * Code that must *prepare* data for an expensive check should guard
 * the preparation with `if constexpr (kAuditParanoid)` so the whole
 * block folds away below the paranoid level.
 */

#pragma once

#include "util/logging.hpp"

#ifndef XMIG_AUDIT_LEVEL
#define XMIG_AUDIT_LEVEL 1
#endif

#if XMIG_AUDIT_LEVEL < 0 || XMIG_AUDIT_LEVEL > 2
#error "XMIG_AUDIT_LEVEL must be 0 (off), 1 (cheap) or 2 (paranoid)"
#endif

namespace xmig {

/** Compile-time audit level: 0 = off, 1 = cheap, 2 = paranoid. */
inline constexpr int kAuditLevel = XMIG_AUDIT_LEVEL;

/** True when XMIG_AUDIT checks are compiled in. */
inline constexpr bool kAuditCheap = kAuditLevel >= 1;

/** True when XMIG_EXPECT checks are compiled in. */
inline constexpr bool kAuditParanoid = kAuditLevel >= 2;

} // namespace xmig

/** panic() unless the condition holds; always compiled. */
#define XMIG_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            XMIG_PANIC("assertion failed: %s -- %s", #cond, \
                       ::xmig::detail::formatString(__VA_ARGS__).c_str()); \
        } \
    } while (0)

/* Disabled checks keep their arguments compiled-but-unevaluated so
 * that every audit level parses the same code and variables used only
 * inside audits do not become "unused" in release builds. */
#define XMIG_DETAIL_NOOP_CHECK(cond, ...) \
    do { \
        if (false) { \
            (void)(cond); \
            (void)::xmig::detail::formatString(__VA_ARGS__); \
        } \
    } while (0)

#if XMIG_AUDIT_LEVEL >= 1
/** Cheap O(1) invariant audit; panics at audit level >= cheap. */
#define XMIG_AUDIT(cond, ...) \
    do { \
        if (!(cond)) { \
            XMIG_PANIC("audit failed: %s -- %s", #cond, \
                       ::xmig::detail::formatString(__VA_ARGS__).c_str()); \
        } \
    } while (0)
#else
#define XMIG_AUDIT(cond, ...) XMIG_DETAIL_NOOP_CHECK(cond, __VA_ARGS__)
#endif

#if XMIG_AUDIT_LEVEL >= 2
/** Expensive structural audit; panics at audit level paranoid. */
#define XMIG_EXPECT(cond, ...) \
    do { \
        if (!(cond)) { \
            XMIG_PANIC("paranoid audit failed: %s -- %s", #cond, \
                       ::xmig::detail::formatString(__VA_ARGS__).c_str()); \
        } \
    } while (0)
#else
#define XMIG_EXPECT(cond, ...) XMIG_DETAIL_NOOP_CHECK(cond, __VA_ARGS__)
#endif
