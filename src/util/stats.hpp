/**
 * @file
 * Event counters and report formatting.
 *
 * The paper reports most results as "instructions per event" (Table 2)
 * or as miss-ratio curves (Figures 4-5). This module provides the
 * counters and the ASCII table / CSV series formatters the bench
 * harnesses use to print paper-shaped output.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace xmig {

/** A simple monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(uint64_t n = 1) { add(n); }

    /**
     * Add `n` events. A 64-bit event counter wrapping means the run's
     * totals are garbage, so the wrap is audited rather than silently
     * reduced modulo 2^64.
     */
    void
    add(uint64_t n)
    {
        XMIG_AUDIT(count_ + n >= count_,
                   "event counter wrapped past 2^64 (was %llu, "
                   "adding %llu)",
                   (unsigned long long)count_, (unsigned long long)n);
        count_ += n;
    }

    uint64_t value() const { return count_; }
    void reset() { count_ = 0; }

    /**
     * Read-and-zero in one step, for interval sampling: the sampler
     * takes the per-interval delta without racing a separately
     * maintained cumulative total.
     */
    uint64_t
    snapshotAndReset()
    {
        const uint64_t v = count_;
        count_ = 0;
        return v;
    }

  private:
    uint64_t count_ = 0;
};

/**
 * Format "instructions per event" the way Table 2 does: an integer
 * when small, otherwise an abbreviated power-of-ten form (e.g. 2.2e6).
 * Returns "inf" when the event never occurred.
 */
std::string perEvent(uint64_t instructions, uint64_t events);

/** Format an event frequency such as 0.0134 with 4 decimals. */
std::string frequency(uint64_t events, uint64_t total);

/** Format a byte count with the paper's axis labels: 16k, 64k, 1M, ... */
std::string sizeLabel(uint64_t bytes);

/** Format a ratio like Table 2's L2-miss reduction column (2 decimals). */
std::string ratio2(double r);

/**
 * Quote a CSV cell per RFC 4180 when it needs it: cells containing a
 * comma, double quote, whitespace or newline are wrapped in double
 * quotes with inner quotes doubled, so emitted series load cleanly in
 * pandas / gnuplot. Clean cells pass through untouched.
 */
std::string csvQuote(const std::string &cell);

/**
 * Column-aligned ASCII table writer.
 *
 * Collects rows of strings and prints them with per-column widths, a
 * header rule, and an optional title; the bench binaries use it to
 * reproduce the paper's tables row for row.
 */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> header);

    /** Append one row; must have as many cells as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a full-width section label row (e.g. "SPEC2000"). */
    void addSection(std::string label);

    /**
     * Pre-size the table with `n` addressable slots (xmig-swift):
     * parallel sweep cells fill their own slot via setRow /
     * setSection in *completion* order, yet render() always emits in
     * *slot* order. Slots left unfilled are skipped. Mixed use with
     * addRow() appends after the reserved block.
     */
    void reserveRows(size_t n);

    /** Fill reserved slot `i` with a data row (header-width cells). */
    void setRow(size_t i, std::vector<std::string> row);

    /** Fill reserved slot `i` with a section label row. */
    void setSection(size_t i, std::string label);

    /** Render the table to a string. */
    std::string render(const std::string &title = "") const;

  private:
    struct Row
    {
        bool section = false;
        bool filled = true; ///< reserved-but-unset slots render as nothing
        std::vector<std::string> cells;
    };

    std::vector<std::string> header_;
    std::vector<Row> rows_;
    size_t reserved_ = 0;
};

/**
 * (x, y...) series writer for figure reproduction.
 *
 * Prints one line per x value with all series values, plus a header
 * naming each series — effectively CSV that is also readable inline.
 */
class SeriesWriter
{
  public:
    SeriesWriter(std::string x_name, std::vector<std::string> series_names);

    void addPoint(const std::string &x, const std::vector<double> &ys);

    /**
     * Pre-size with `n` addressable point slots; parallel sweep cells
     * fill theirs with setPoint in any order, render emits slot order
     * and skips unfilled slots (same contract as AsciiTable slots).
     */
    void reservePoints(size_t n);

    /** Fill reserved slot `i`. */
    void setPoint(size_t i, const std::string &x,
                  const std::vector<double> &ys);

    /** Render with an optional leading `# title` comment line. */
    std::string render(const std::string &title = "") const;

    /**
     * Render as machine-readable CSV: no title rule, every cell
     * quoted/escaped as needed (csvQuote), ready for pandas/gnuplot.
     */
    std::string renderCsv() const;

  private:
    struct Point
    {
        bool filled = true;
        std::string x;
        std::vector<double> ys;
    };

    std::string xName_;
    std::vector<std::string> seriesNames_;
    std::vector<Point> points_;
    size_t reserved_ = 0;
};

} // namespace xmig
