/**
 * @file
 * Hash functions used by the migration controller and skewed caches.
 *
 * Two families live here:
 *  - the working-set sampling hash H(e) = e mod 31 of section 3.5,
 *    computed the way the paper suggests hardware would (summing 5-bit
 *    blocks of the address, since 2^5 = 1 mod 31);
 *  - the inter-bank skewing functions of a skewed-associative cache
 *    (Bodin & Seznec), built from XOR-folding and bit rotation.
 */

#pragma once

#include <cstdint>

namespace xmig {

/**
 * Working-set sampling hash H(e) = e mod 31 (section 3.5).
 *
 * Implemented as hardware would: split e into 5-bit blocks e_i with
 * e = sum_i 2^(5i) e_i; since 2^5 = 32 = 1 (mod 31), H(e) =
 * sum_i e_i mod 31 — a carry-save adder tree plus a small ROM. The
 * software version iterates the block sum until it fits 5 bits, then
 * folds the single remaining value 31 to 0.
 */
uint32_t hashMod31(uint64_t e);

/**
 * Sampling predicate of section 3.5: keep line e iff H(e) < cutoff.
 *
 * cutoff = 8 gives the paper's 25% sampling (8 of 31 residues, 25.8%).
 * cutoff >= 31 disables sampling (every line tracked).
 */
inline bool
sampledLine(uint64_t e, uint32_t cutoff)
{
    return hashMod31(e) < cutoff;
}

/**
 * Skewing function for bank `bank` of a skewed-associative cache.
 *
 * Maps a line address to a set index in [0, numSets). Different banks
 * use different mixes so that two lines conflicting in one bank are
 * unlikely to conflict in another — the defining property of skewed
 * associativity. numSets must be a power of two.
 */
uint64_t skewHash(uint64_t line_addr, unsigned bank, uint64_t num_sets);

/** SplitMix64 finalizer; a good 64-bit bit mixer. */
uint64_t mix64(uint64_t x);

} // namespace xmig
