#include "util/hashing.hpp"

namespace xmig {

uint32_t
hashMod31(uint64_t e)
{
    // Sum the 5-bit blocks; repeat until the sum itself fits 5 bits.
    // This mirrors the carry-save-adder + ROM structure of section 3.5.
    uint64_t sum = e;
    while (sum >= 32) {
        uint64_t next = 0;
        while (sum != 0) {
            next += sum & 0x1f;
            sum >>= 5;
        }
        sum = next;
    }
    // 31 = 0 (mod 31); every other residue is already reduced.
    return sum == 31 ? 0 : static_cast<uint32_t>(sum);
}

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
skewHash(uint64_t line_addr, unsigned bank, uint64_t num_sets)
{
    // Bank 0 indexes conventionally; each other bank applies an
    // independent full-avalanche permutation of the line address, so
    // two lines conflicting in one bank are (near-)independently
    // placed in every other bank — the defining skewed-associativity
    // property. Sequential line streams disperse uniformly in every
    // bank.
    const uint64_t mask = num_sets - 1;
    if (bank == 0)
        return line_addr & mask;
    return mix64(line_addr + 0xd6e8feb86659fd93ULL * bank) & mask;
}

} // namespace xmig
