#include "util/hashing.hpp"

namespace xmig {

uint32_t
hashMod31(uint64_t e)
{
    // Section 3.5's hardware sums the 5-bit blocks of the address with
    // a carry-save-adder tree + ROM; because 2^5 = 1 (mod 31), that
    // digit-sum equals e mod 31 exactly (same theorem as casting out
    // nines), so in software a single modulo computes the identical
    // value without the iterative fold.
    return static_cast<uint32_t>(e % 31);
}

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
skewHash(uint64_t line_addr, unsigned bank, uint64_t num_sets)
{
    // Bank 0 indexes conventionally; each other bank applies an
    // independent full-avalanche permutation of the line address, so
    // two lines conflicting in one bank are (near-)independently
    // placed in every other bank — the defining skewed-associativity
    // property. Sequential line streams disperse uniformly in every
    // bank.
    const uint64_t mask = num_sets - 1;
    if (bank == 0)
        return line_addr & mask;
    return mix64(line_addr + 0xd6e8feb86659fd93ULL * bank) & mask;
}

} // namespace xmig
