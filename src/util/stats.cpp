#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace xmig {

std::string
perEvent(uint64_t instructions, uint64_t events)
{
    if (events == 0)
        return "inf";
    const double per = static_cast<double>(instructions) /
                       static_cast<double>(events);
    char buf[32];
    if (per < 100000.0) {
        std::snprintf(buf, sizeof(buf), "%.0f", per);
    } else {
        const int exp = static_cast<int>(std::floor(std::log10(per)));
        const double mant = per / std::pow(10.0, exp);
        std::snprintf(buf, sizeof(buf), "%.1fe%d", mant, exp);
    }
    return buf;
}

std::string
frequency(uint64_t events, uint64_t total)
{
    char buf[32];
    const double f = total == 0
        ? 0.0
        : static_cast<double>(events) / static_cast<double>(total);
    std::snprintf(buf, sizeof(buf), "%.4f", f);
    return buf;
}

std::string
sizeLabel(uint64_t bytes)
{
    char buf[32];
    if (bytes >= (uint64_t(1) << 30) && bytes % (uint64_t(1) << 30) == 0)
        std::snprintf(buf, sizeof(buf), "%lluG",
                      (unsigned long long)(bytes >> 30));
    else if (bytes >= (uint64_t(1) << 20) && bytes % (uint64_t(1) << 20) == 0)
        std::snprintf(buf, sizeof(buf), "%lluM",
                      (unsigned long long)(bytes >> 20));
    else if (bytes >= 1024 && bytes % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%lluk",
                      (unsigned long long)(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%llu",
                      (unsigned long long)bytes);
    return buf;
}

std::string
ratio2(double r)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", r);
    return buf;
}

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    XMIG_ASSERT(row.size() == header_.size(),
                "row has %zu cells, header has %zu",
                row.size(), header_.size());
    rows_.push_back({false, std::move(row)});
}

void
AsciiTable::addSection(std::string label)
{
    rows_.push_back({true, {std::move(label)}});
}

std::string
AsciiTable::render(const std::string &title) const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        if (row.section)
            continue;
        for (size_t c = 0; c < row.cells.size(); ++c)
            width[c] = std::max(width[c], row.cells[c].size());
    }

    auto emit_row = [&](std::string &out,
                        const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            // Left-align the first column (names), right-align numbers.
            const std::string &cell = cells[c];
            if (c == 0) {
                out += cell;
                out.append(width[c] - cell.size(), ' ');
            } else {
                out.append(width[c] - cell.size(), ' ');
                out += cell;
            }
            out += (c + 1 == cells.size()) ? "\n" : "  ";
        }
    };

    std::string out;
    if (!title.empty()) {
        out += title;
        out += "\n";
    }
    emit_row(out, header_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 == width.size() ? 0 : 2);
    out.append(total, '-');
    out += "\n";
    for (const auto &row : rows_) {
        if (row.section) {
            out += "-- " + row.cells[0] + "\n";
        } else {
            emit_row(out, row.cells);
        }
    }
    return out;
}

SeriesWriter::SeriesWriter(std::string x_name,
                           std::vector<std::string> series_names)
    : xName_(std::move(x_name)),
      seriesNames_(std::move(series_names))
{
}

void
SeriesWriter::addPoint(const std::string &x, const std::vector<double> &ys)
{
    XMIG_ASSERT(ys.size() == seriesNames_.size(),
                "point has %zu series, expected %zu",
                ys.size(), seriesNames_.size());
    points_.emplace_back(x, ys);
}

std::string
SeriesWriter::render(const std::string &title) const
{
    std::string out;
    if (!title.empty()) {
        out += "# " + title + "\n";
    }
    out += xName_;
    for (const auto &name : seriesNames_)
        out += "," + name;
    out += "\n";
    char buf[32];
    for (const auto &[x, ys] : points_) {
        out += x;
        for (double y : ys) {
            std::snprintf(buf, sizeof(buf), "%.6g", y);
            out += ",";
            out += buf;
        }
        out += "\n";
    }
    return out;
}

} // namespace xmig
