#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace xmig {

std::string
perEvent(uint64_t instructions, uint64_t events)
{
    // 0/0 is "no instructions, no events" — report 0, not infinity;
    // a genuine never-occurred event over a real run stays "inf".
    if (events == 0)
        return instructions == 0 ? "0" : "inf";
    const double per = static_cast<double>(instructions) /
                       static_cast<double>(events);
    char buf[32];
    // %.0f rounds, so switch to the abbreviated form at the value
    // that *rounds* to 100000 — otherwise 99999.7 prints as a
    // six-digit "100000" while 100000.0 prints as "1.0e5".
    if (per < 99999.5) {
        std::snprintf(buf, sizeof(buf), "%.0f", per);
    } else {
        int exp = static_cast<int>(std::floor(std::log10(per)));
        double mant = per / std::pow(10.0, exp);
        // %.1f rounds 9.95+ up to "10.0"; carry into the exponent so
        // 9.96e5 prints as 1.0e6, never 10.0e5.
        if (mant >= 9.95) {
            mant /= 10.0;
            ++exp;
        }
        std::snprintf(buf, sizeof(buf), "%.1fe%d", mant, exp);
    }
    return buf;
}

std::string
frequency(uint64_t events, uint64_t total)
{
    char buf[32];
    const double f = total == 0
        ? 0.0
        : static_cast<double>(events) / static_cast<double>(total);
    std::snprintf(buf, sizeof(buf), "%.4f", f);
    return buf;
}

std::string
sizeLabel(uint64_t bytes)
{
    char buf[32];
    if (bytes >= (uint64_t(1) << 30) && bytes % (uint64_t(1) << 30) == 0)
        std::snprintf(buf, sizeof(buf), "%lluG",
                      (unsigned long long)(bytes >> 30));
    else if (bytes >= (uint64_t(1) << 20) && bytes % (uint64_t(1) << 20) == 0)
        std::snprintf(buf, sizeof(buf), "%lluM",
                      (unsigned long long)(bytes >> 20));
    else if (bytes >= 1024 && bytes % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%lluk",
                      (unsigned long long)(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%llu",
                      (unsigned long long)bytes);
    return buf;
}

std::string
ratio2(double r)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", r);
    return buf;
}

std::string
csvQuote(const std::string &cell)
{
    const bool needs_quoting =
        cell.find_first_of(",\" \t\n\r") != std::string::npos;
    if (!needs_quoting)
        return cell;
    std::string out;
    out.reserve(cell.size() + 2);
    out += '"';
    for (const char c : cell) {
        if (c == '"')
            out += '"'; // RFC 4180: double the inner quote
        out += c;
    }
    out += '"';
    return out;
}

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    XMIG_ASSERT(row.size() == header_.size(),
                "row has %zu cells, header has %zu",
                row.size(), header_.size());
    rows_.push_back({false, true, std::move(row)});
}

void
AsciiTable::addSection(std::string label)
{
    rows_.push_back({true, true, {std::move(label)}});
}

void
AsciiTable::reserveRows(size_t n)
{
    XMIG_ASSERT(rows_.size() == reserved_,
                "reserveRows after %zu appended rows",
                rows_.size() - reserved_);
    reserved_ += n;
    rows_.resize(reserved_, Row{false, false, {}});
}

void
AsciiTable::setRow(size_t i, std::vector<std::string> row)
{
    XMIG_ASSERT(i < reserved_, "slot %zu of %zu reserved", i, reserved_);
    XMIG_ASSERT(row.size() == header_.size(),
                "row has %zu cells, header has %zu",
                row.size(), header_.size());
    rows_[i] = Row{false, true, std::move(row)};
}

void
AsciiTable::setSection(size_t i, std::string label)
{
    XMIG_ASSERT(i < reserved_, "slot %zu of %zu reserved", i, reserved_);
    rows_[i] = Row{true, true, {std::move(label)}};
}

std::string
AsciiTable::render(const std::string &title) const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        if (row.section || !row.filled)
            continue;
        for (size_t c = 0; c < row.cells.size(); ++c)
            width[c] = std::max(width[c], row.cells[c].size());
    }

    auto emit_row = [&](std::string &out,
                        const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            // Left-align the first column (names), right-align numbers.
            const std::string &cell = cells[c];
            if (c == 0) {
                out += cell;
                out.append(width[c] - cell.size(), ' ');
            } else {
                out.append(width[c] - cell.size(), ' ');
                out += cell;
            }
            out += (c + 1 == cells.size()) ? "\n" : "  ";
        }
    };

    std::string out;
    if (!title.empty()) {
        out += title;
        out += "\n";
    }
    emit_row(out, header_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 == width.size() ? 0 : 2);
    out.append(total, '-');
    out += "\n";
    for (const auto &row : rows_) {
        if (!row.filled) {
            continue; // reserved slot its sweep cell never filled
        } else if (row.section) {
            out += "-- " + row.cells[0] + "\n";
        } else {
            emit_row(out, row.cells);
        }
    }
    return out;
}

SeriesWriter::SeriesWriter(std::string x_name,
                           std::vector<std::string> series_names)
    : xName_(std::move(x_name)),
      seriesNames_(std::move(series_names))
{
}

void
SeriesWriter::addPoint(const std::string &x, const std::vector<double> &ys)
{
    XMIG_ASSERT(ys.size() == seriesNames_.size(),
                "point has %zu series, expected %zu",
                ys.size(), seriesNames_.size());
    points_.push_back({true, x, ys});
}

void
SeriesWriter::reservePoints(size_t n)
{
    XMIG_ASSERT(points_.size() == reserved_,
                "reservePoints after %zu appended points",
                points_.size() - reserved_);
    reserved_ += n;
    points_.resize(reserved_, Point{false, {}, {}});
}

void
SeriesWriter::setPoint(size_t i, const std::string &x,
                       const std::vector<double> &ys)
{
    XMIG_ASSERT(i < reserved_, "slot %zu of %zu reserved", i, reserved_);
    XMIG_ASSERT(ys.size() == seriesNames_.size(),
                "point has %zu series, expected %zu",
                ys.size(), seriesNames_.size());
    points_[i] = Point{true, x, ys};
}

std::string
SeriesWriter::render(const std::string &title) const
{
    std::string out;
    if (!title.empty()) {
        out += "# " + title + "\n";
    }
    out += renderCsv();
    return out;
}

std::string
SeriesWriter::renderCsv() const
{
    std::string out;
    out += csvQuote(xName_);
    for (const auto &name : seriesNames_)
        out += "," + csvQuote(name);
    out += "\n";
    char buf[32];
    for (const auto &p : points_) {
        if (!p.filled)
            continue;
        out += csvQuote(p.x);
        for (double y : p.ys) {
            std::snprintf(buf, sizeof(buf), "%.6g", y);
            out += ",";
            out += buf;
        }
        out += "\n";
    }
    return out;
}

} // namespace xmig
