/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs, aborts), fatal() is for user errors such
 * as bad configuration (clean exit), warn()/inform() are advisory.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace xmig {

/**
 * Hook invoked by panicImpl() after printing the message and before
 * abort(). Higher layers use it to flush post-mortem state — the
 * xmig-lens journal registers one to dump armed flight recorders —
 * without util/ growing a dependency on them. At most one hook;
 * registering replaces the previous one. Must be async-safe enough
 * for an abort path (no throwing, no re-panicking).
 */
using PanicHook = void (*)();
void setPanicHook(PanicHook hook);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort on an internal invariant violation (a bug in this library). */
#define XMIG_PANIC(...) \
    ::xmig::detail::panicImpl(__FILE__, __LINE__, \
                              ::xmig::detail::formatString(__VA_ARGS__))

/** Exit cleanly on a user error (bad configuration, invalid argument). */
#define XMIG_FATAL(...) \
    ::xmig::detail::fatalImpl(__FILE__, __LINE__, \
                              ::xmig::detail::formatString(__VA_ARGS__))

/** Advise the user that something is off but simulation continues. */
#define XMIG_WARN(...) \
    ::xmig::detail::warnImpl(::xmig::detail::formatString(__VA_ARGS__))

/** Neutral status message. */
#define XMIG_INFORM(...) \
    ::xmig::detail::informImpl(::xmig::detail::formatString(__VA_ARGS__))

// XMIG_ASSERT and the graded audit macros (XMIG_AUDIT, XMIG_EXPECT)
// live in util/contracts.hpp, the xmig-audit contract layer.

} // namespace xmig
