/**
 * @file
 * Portable Clang thread-safety annotations (xmig-sentinel).
 *
 * These macros expand to Clang's `-Wthread-safety` capability
 * attributes when the compiler supports them and to nothing
 * everywhere else, so the annotated headers stay warning-free under
 * GCC. Together with the dynamic TSan CI job (docs/parallelism.md)
 * they give the repo a *static* race detector: the CI `clang-race`
 * job builds the runner/obs/fault targets with
 * `-Wthread-safety -Werror=thread-safety`, so acquiring the wrong
 * lock — or none — around annotated state fails the build instead of
 * flaking a soak.
 *
 * Conventions (docs/analysis.md, "Static analysis: xmig-sentinel"):
 *  - every `std::mutex` / `std::shared_mutex` member names the state
 *    it guards via XMIG_GUARDED_BY on that state (the `naked-mutex`
 *    lint rule enforces this);
 *  - accessors that are documented as safe only in a quiescent phase
 *    (after a sweep's join) carry XMIG_NO_THREAD_SAFETY_ANALYSIS plus
 *    a comment saying *why* the lock is not taken;
 *  - single-thread-confined classes (one instance per sweep cell:
 *    MetricsRegistry, FaultInjector, ...) are documented as such and
 *    carry no annotations — confinement, not locking, is their
 *    thread-safety story.
 */

#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define XMIG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define XMIG_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability (rarely needed: std::mutex
 *  is already annotated inside libc++/libstdc++ under clang). */
#define XMIG_CAPABILITY(x) XMIG_THREAD_ANNOTATION(capability(x))

/** Marks a member as readable/writable only with `x` held. */
#define XMIG_GUARDED_BY(x) XMIG_THREAD_ANNOTATION(guarded_by(x))

/** As XMIG_GUARDED_BY, for the pointee of a pointer member. */
#define XMIG_PT_GUARDED_BY(x) XMIG_THREAD_ANNOTATION(pt_guarded_by(x))

/** Declares that callers must hold `...` when calling the function. */
#define XMIG_REQUIRES(...) \
    XMIG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Declares that callers must NOT hold `...` (deadlock guard). */
#define XMIG_EXCLUDES(...) \
    XMIG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** The function acquires `...` and does not release it. */
#define XMIG_ACQUIRE(...) \
    XMIG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases `...`. */
#define XMIG_RELEASE(...) \
    XMIG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** RAII types that acquire in the ctor and release in the dtor. */
#define XMIG_SCOPED_CAPABILITY XMIG_THREAD_ANNOTATION(scoped_lockable)

/** The function returns a reference to the capability guarding it. */
#define XMIG_RETURN_CAPABILITY(x) \
    XMIG_THREAD_ANNOTATION(lock_returned(x))

/**
 * Opts a function out of the analysis. Use only with a comment
 * explaining the manual reasoning (e.g. "quiescent after join").
 */
#define XMIG_NO_THREAD_SAFETY_ANALYSIS \
    XMIG_THREAD_ANNOTATION(no_thread_safety_analysis)
