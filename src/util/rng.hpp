/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic workloads in this repository draw from Rng so that
 * every experiment is exactly reproducible from its seed.
 */

#pragma once

#include <cstdint>

namespace xmig {

/**
 * xoshiro256** generator, seeded via SplitMix64.
 *
 * Small, fast, and high quality; more than adequate for driving
 * synthetic reference streams.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly random bits. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection-free Lemire reduction (tiny bias is irrelevant for
        // workload generation and keeps this branch-free).
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    inRange(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace xmig
