/**
 * @file
 * The migration controller (section 3).
 *
 * The controller monitors the L1-miss request stream of the active
 * core, runs the working-set splitter over it, and decides when and
 * where to migrate execution. With L2 filtering enabled (section
 * 3.4), the affinity machinery advances on every L1 miss but the
 * transition filters — and therefore the migration target — can only
 * change on an L2 miss.
 *
 * xmig-iron extends the controller with a resilience layer:
 *
 *  - **topology**: cores can go offline/online at run time
 *    (setCoreOffline / setCoreOnline). The controller keeps a live
 *    mask and splits across the largest power-of-two subset of the
 *    survivors, rebuilding the splitter (and a fresh O_e store — the
 *    retired store's affinities are relative to retired Delta
 *    registers) whenever the split arity changes. Splitter subsets
 *    map to live cores through `subsetToCore_`.
 *
 *  - **migration fabric faults**: with a FaultPlan targeting
 *    mig_drop / mig_delay, an ordered migration becomes an in-flight
 *    request that can be delayed or silently dropped; a timeout
 *    declares it lost and retries under exponential backoff. Without
 *    such a plan the classic instantaneous path is taken, bit-
 *    identically to a build without fault hooks.
 *
 *  - **watchdog**: an opt-in fault/watchdog.hpp instance vetoes
 *    migrations during livelock cooldowns and re-initializes the
 *    transition filters when the split degenerates.
 *
 *  - **checkpoint/restore**: the full control-plane state can be
 *    captured and restored (crash recovery); see checkpoint().
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/kway_splitter.hpp"
#include "core/oe_store.hpp"
#include "core/splitter.hpp"
#include "fault/watchdog.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace xmig {

/** Timeout/backoff parameters of the lossy migration fabric. */
struct MigrationRetryConfig
{
    /** Requests after which an unacknowledged migration is lost. */
    uint64_t timeoutRequests = 64;
    /** Initial retry backoff, in requests; doubles per timeout. */
    uint64_t backoffBase = 32;
    /** Backoff ceiling. */
    uint64_t backoffCap = 8192;
};

/** Complete configuration of a migration controller. */
struct MigrationControllerConfig
{
    /**
     * Number of cores to split across: a power of two from 2 to 64.
     * 2 and 4 use the paper's exact structures; larger counts use
     * the generalized recursive splitter (KWaySplitter), realizing
     * the section 6 conjecture.
     */
    unsigned numCores = 4;

    unsigned affinityBits = 16;
    size_t windowX = 128;
    size_t windowY = 64;
    WindowKind window = WindowKind::Fifo;
    ArKind ar = ArKind::Exact;

    /** Filter width: 20 bits in section 4.1, 18 in section 4.2. */
    unsigned filterBits = 20;

    /** H(e) sampling cutoff: 31 = track all lines, 8 = 25 %. */
    uint32_t samplingCutoff = 31;

    /** Update the transition filter only on L2 misses (section 3.4). */
    bool l2Filtering = false;

    /**
     * Update the transition filter only on pointer-load requests
     * (section 6): restricts migration triggers to the linked-data-
     * structure accesses whose misses are the most expensive.
     * Composes with l2Filtering (both conditions must hold).
     */
    bool pointerLoadFilter = false;

    /** Use a finite affinity cache instead of unlimited storage. */
    bool boundedStore = false;
    AffinityCacheConfig affinityCache;

    /**
     * Arm the shadow-model oracle (shadow_audit.hpp) on the
     * whole-working-set mechanism: the O(|S|) DirectAffinityEngine
     * runs in lockstep and panics on the first divergence. With a
     * finite affinity cache or narrow affinity widths the oracle
     * disarms itself (warn once) at the first eviction or
     * saturation rather than false-alarming. An injected fault that
     * touches the audited mechanism also disarms it — corruption the
     * controller *knowingly* caused is not a model divergence.
     */
    bool shadowAudit = false;
    uint64_t shadowDeepCheckEvery = 4096;

    /**
     * xmig-iron fault hook (non-owning; may be null). Drives soft
     * errors in the engines (Ae/Delta/Ar), O_e store corruption, and
     * the lossy migration fabric.
     */
    FaultInjector *faults = nullptr;

    /** Livelock/degenerate-split watchdog (disabled by default). */
    WatchdogConfig watchdog;

    /** Migration retry/backoff tuning (used only under fault plans). */
    MigrationRetryConfig retry;
};

/** Aggregate controller statistics. */
struct MigrationStats
{
    uint64_t requests = 0;      ///< L1-miss requests observed
    uint64_t filterUpdates = 0; ///< requests that updated a filter
    uint64_t transitions = 0;   ///< subset-index changes
    uint64_t migrations = 0;    ///< active-core changes ordered
};

/** Degradation / self-healing event counts (xmig-iron). */
struct RecoveryStats
{
    uint64_t coresLost = 0;         ///< accepted core_off events
    uint64_t coresJoined = 0;       ///< accepted core_on events
    uint64_t resplits = 0;          ///< splitter rebuilds (arity change)
    uint64_t forcedMigrations = 0;  ///< active core died under execution
    uint64_t storeCorruptions = 0;  ///< injected O_e bit flips landed
    uint64_t storeDrops = 0;        ///< injected tag kills landed
    uint64_t migDropped = 0;        ///< migration requests lost in fabric
    uint64_t migDelayed = 0;        ///< migration requests delayed
    uint64_t migTimeouts = 0;       ///< in-flight requests timed out
    uint64_t migRetries = 0;        ///< re-issues after timeout+backoff
    uint64_t filterReinits = 0;     ///< watchdog filter re-inits applied
};

/**
 * Checkpointed control-plane state (see checkpoint()). An in-flight
 * (delayed) migration is not part of the record: checkpointing
 * quiesces the fabric, and a restore resumes with an idle fabric and
 * reset backoff. Watchdog dynamics (cooldown, windows) restart too.
 */
struct ControllerCheckpoint
{
    unsigned numCores = 0;
    unsigned splitWays = 0;
    uint64_t liveMask = 0;
    unsigned activeCore = 0;
    MigrationStats stats;
    RecoveryStats recovery;
    /** Engine states in splitter layout order (splitter.hpp). */
    std::vector<EngineCheckpoint> engines;
    std::vector<FilterCheckpoint> filters;
    std::vector<OeEntrySnapshot> storeEntries;
    OeStoreStats storeStats;
};

/**
 * Decides when and where to migrate execution.
 */
class MigrationController
{
  public:
    explicit MigrationController(const MigrationControllerConfig &config);

    /**
     * Present one post-L1 request for `line`.
     *
     * @param l2_miss whether the request missed the active core's L2
     *        (meaningful only with L2 filtering)
     * @param pointer_load whether the request came from a pointer
     *        load (meaningful only with pointerLoadFilter)
     * @return the core that should be active after this request; a
     *         change relative to the previous value is a migration
     */
    unsigned onRequest(uint64_t line, bool l2_miss = true,
                       bool pointer_load = true);

    /** One pre-decoded post-L1 request for onRequestBatch(). */
    struct Request
    {
        uint64_t line = 0;
        bool l2Miss = true;
        bool pointerLoad = true;
    };

    /**
     * Present a run of `n` requests; returns the active core after
     * the last one — the xmig-bolt batch entry point for consumers
     * that drive the controller directly (bench kernels, splitter
     * studies, traces with precomputed miss bits). The machine's
     * event loop cannot use it: each request's `l2Miss` bit comes
     * from probing the L2 of the core that is active *after* the
     * previous request's migration decision, a loop-carried
     * dependency (docs/parallelism.md, "batching").
     */
    unsigned onRequestBatch(const Request *reqs, size_t n);

    /** Core the controller currently maps the execution to. */
    unsigned activeCore() const { return activeCore_; }

    /** Subset the splitter currently selects. */
    unsigned subset() const;

    const MigrationStats &stats() const { return stats_; }
    const MigrationControllerConfig &config() const { return config_; }
    const OeStore &store() const { return *store_; }

    /** Current affinity of a line, if tracked (snapshots, tests). */
    std::optional<int64_t> affinityOf(uint64_t line) const;

    /** Transition counts of the underlying splitter. */
    uint64_t splitterTransitions() const;

    /**
     * Register controller, O_e-store, and splitter state under
     * `prefix` (xmig-scope): `<prefix>.requests`, `.filter_updates`,
     * `.transitions`, `.migrations`, `.active_core`, the store's
     * `.store.*` counters, the splitter tree under `.splitter.*`,
     * recovery counters under `.recovery.*`, and — if the watchdog
     * is enabled — `.watchdog.*`.
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Shadow oracle of the audited mechanism (X for 2/4 cores, the
     * tree root otherwise); nullptr unless shadowAudit was set.
     */
    const ShadowAudit *shadowAudit() const;

    /** Whole-working-set mechanism (X / the tree root). */
    const AffinityEngine &rootEngine() const;

    /** Whole-working-set transition filter. */
    const TransitionFilter &rootFilter() const;

    // ---- xmig-iron resilience interface ----------------------------

    /**
     * Hot-unplug a core. Its subset load is re-split across the
     * surviving cores; if the execution was on the lost core it is
     * force-migrated to the lowest live core. Taking the last live
     * core offline is refused with a warning.
     */
    void setCoreOffline(unsigned core);

    /** Hot-plug a core back; the splitter re-expands when possible. */
    void setCoreOnline(unsigned core);

    /** Bitmask of live cores. */
    uint64_t liveMask() const { return liveMask_; }

    /** Number of live cores. */
    unsigned liveCores() const;

    /** Current split arity (largest power of two <= live cores). */
    unsigned splitWays() const { return splitWays_; }

    /** Live core a splitter subset currently maps to. */
    unsigned coreForSubset(unsigned subset) const;

    /** True while a (delayed) migration request is in flight. */
    bool migrationPending() const { return pendingValid_; }

    const RecoveryStats &recovery() const { return recovery_; }
    const Watchdog &watchdog() const { return watchdog_; }

    /** Zero every transition filter (watchdog re-init path). */
    void resetFilters();

    /**
     * Attach the xmig-lens causal journal (non-owning; null detaches).
     * Propagated to the live splitter's engines, the watchdog, and the
     * armed fault injector, and re-propagated across resplits and
     * restores. All emission sites are rare paths behind the
     * XMIG_JOURNAL macro, so attachment costs nothing per request.
     */
    void attachJournal(obs::Journal *journal);

    /** Requests between consecutive splitter rebuilds (xmig-lens). */
    const obs::Histogram &resplitGapHistogram() const
    {
        return resplitGap_;
    }

    /** Capture the control-plane state (crash-recovery support). */
    ControllerCheckpoint checkpoint() const;

    /**
     * Restore a checkpoint taken from a controller with the same
     * configuration. The splitter is rebuilt at the checkpointed
     * arity and its engine/filter/store state reloaded; shadow
     * oracles disarm (their lockstep history is gone). The record is
     * trusted: a tampered engine state is caught by the paranoid
     * audits on subsequent requests, not here.
     */
    void restore(const ControllerCheckpoint &ckpt);

  private:
    std::unique_ptr<OeStore> makeStore() const;
    void buildSplitter(unsigned ways);
    void recomputeMapping();
    void applyTopology();
    void retireSplitter();
    void injectStoreFaults();
    void disarmRootShadow(const char *reason);
    void serviceMigrationFabric(uint64_t now);
    void requestMigration(unsigned target, uint64_t now);
    void completeMigration(unsigned target, uint64_t now,
                           obs::JournalCause cause);
    /** A_R / root-filter values for journal payloads (0 if no root). */
    int64_t rootArForJournal() const;
    int64_t rootFilterForJournal() const;

    MigrationControllerConfig config_;
    std::unique_ptr<OeStore> store_;
    std::unique_ptr<TwoWaySplitter> two_;
    std::unique_ptr<FourWaySplitter> four_;
    std::unique_ptr<KWaySplitter> kway_;
    unsigned activeCore_ = 0;
    MigrationStats stats_;

    // Topology / recovery state.
    uint64_t liveMask_ = 0;
    unsigned splitWays_ = 0;
    std::vector<unsigned> subsetToCore_;
    RecoveryStats recovery_;
    Watchdog watchdog_;
    /** stats_.transitions at the last splitter rebuild; keeps the
     *  transitions==splitterTransitions() audit exact across
     *  resplits and restores. */
    uint64_t transitionsBase_ = 0;

    // xmig-lens: causal journal hook and resplit-cadence distribution.
    obs::Journal *journal_ = nullptr;
    obs::Histogram resplitGap_;
    uint64_t lastResplitAt_ = 0; ///< stats_.requests at the last resplit

    // Retired splitters/stores: registered metric gauges hold
    // references into them, so a resplit parks rather than frees.
    std::vector<std::unique_ptr<OeStore>> retiredStores_;
    std::vector<std::unique_ptr<TwoWaySplitter>> retiredTwo_;
    std::vector<std::unique_ptr<FourWaySplitter>> retiredFour_;
    std::vector<std::unique_ptr<KWaySplitter>> retiredKway_;

    // Migration fabric state (engaged only under mig_drop/mig_delay
    // fault plans; otherwise migrations complete instantaneously).
    bool pendingValid_ = false;
    unsigned pendingTarget_ = 0;
    uint64_t pendingIssued_ = 0;
    uint64_t pendingDue_ = 0; ///< UINT64_MAX: dropped, will time out
    uint64_t nextIssueAllowed_ = 0;
    uint64_t backoff_ = 0;
    bool retryPending_ = false; ///< next issue counts as a retry
};

} // namespace xmig
