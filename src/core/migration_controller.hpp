/**
 * @file
 * The migration controller (section 3).
 *
 * The controller monitors the L1-miss request stream of the active
 * core, runs the working-set splitter over it, and decides when and
 * where to migrate execution. With L2 filtering enabled (section
 * 3.4), the affinity machinery advances on every L1 miss but the
 * transition filters — and therefore the migration target — can only
 * change on an L2 miss.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/kway_splitter.hpp"
#include "core/oe_store.hpp"
#include "core/splitter.hpp"

namespace xmig {

/** Complete configuration of a migration controller. */
struct MigrationControllerConfig
{
    /**
     * Number of cores to split across: a power of two from 2 to 64.
     * 2 and 4 use the paper's exact structures; larger counts use
     * the generalized recursive splitter (KWaySplitter), realizing
     * the section 6 conjecture.
     */
    unsigned numCores = 4;

    unsigned affinityBits = 16;
    size_t windowX = 128;
    size_t windowY = 64;
    WindowKind window = WindowKind::Fifo;
    ArKind ar = ArKind::Exact;

    /** Filter width: 20 bits in section 4.1, 18 in section 4.2. */
    unsigned filterBits = 20;

    /** H(e) sampling cutoff: 31 = track all lines, 8 = 25 %. */
    uint32_t samplingCutoff = 31;

    /** Update the transition filter only on L2 misses (section 3.4). */
    bool l2Filtering = false;

    /**
     * Update the transition filter only on pointer-load requests
     * (section 6): restricts migration triggers to the linked-data-
     * structure accesses whose misses are the most expensive.
     * Composes with l2Filtering (both conditions must hold).
     */
    bool pointerLoadFilter = false;

    /** Use a finite affinity cache instead of unlimited storage. */
    bool boundedStore = false;
    AffinityCacheConfig affinityCache;

    /**
     * Arm the shadow-model oracle (shadow_audit.hpp) on the
     * whole-working-set mechanism: the O(|S|) DirectAffinityEngine
     * runs in lockstep and panics on the first divergence. With a
     * finite affinity cache or narrow affinity widths the oracle
     * disarms itself (warn once) at the first eviction or
     * saturation rather than false-alarming.
     */
    bool shadowAudit = false;
    uint64_t shadowDeepCheckEvery = 4096;
};

/** Aggregate controller statistics. */
struct MigrationStats
{
    uint64_t requests = 0;      ///< L1-miss requests observed
    uint64_t filterUpdates = 0; ///< requests that updated a filter
    uint64_t transitions = 0;   ///< subset-index changes
    uint64_t migrations = 0;    ///< active-core changes ordered
};

/**
 * Decides when and where to migrate execution.
 */
class MigrationController
{
  public:
    explicit MigrationController(const MigrationControllerConfig &config);

    /**
     * Present one post-L1 request for `line`.
     *
     * @param l2_miss whether the request missed the active core's L2
     *        (meaningful only with L2 filtering)
     * @param pointer_load whether the request came from a pointer
     *        load (meaningful only with pointerLoadFilter)
     * @return the core that should be active after this request; a
     *         change relative to the previous value is a migration
     */
    unsigned onRequest(uint64_t line, bool l2_miss = true,
                       bool pointer_load = true);

    /** Core the controller currently maps the execution to. */
    unsigned activeCore() const { return activeCore_; }

    /** Subset the splitter currently selects (== activeCore()). */
    unsigned subset() const;

    const MigrationStats &stats() const { return stats_; }
    const MigrationControllerConfig &config() const { return config_; }
    const OeStore &store() const { return *store_; }

    /** Current affinity of a line, if tracked (snapshots, tests). */
    std::optional<int64_t> affinityOf(uint64_t line) const;

    /** Transition counts of the underlying splitter. */
    uint64_t splitterTransitions() const;

    /**
     * Register controller, O_e-store, and splitter state under
     * `prefix` (xmig-scope): `<prefix>.requests`, `.filter_updates`,
     * `.transitions`, `.migrations`, `.active_core`, the store's
     * `.store.*` counters, and the splitter tree under `.splitter.*`.
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Shadow oracle of the audited mechanism (X for 2/4 cores, the
     * tree root otherwise); nullptr unless shadowAudit was set.
     */
    const ShadowAudit *shadowAudit() const;

    /** Whole-working-set mechanism (X / the tree root). */
    const AffinityEngine &rootEngine() const;

    /** Whole-working-set transition filter. */
    const TransitionFilter &rootFilter() const;

  private:
    MigrationControllerConfig config_;
    std::unique_ptr<OeStore> store_;
    std::unique_ptr<TwoWaySplitter> two_;
    std::unique_ptr<FourWaySplitter> four_;
    std::unique_ptr<KWaySplitter> kway_;
    unsigned activeCore_ = 0;
    MigrationStats stats_;
};

} // namespace xmig
