/**
 * @file
 * Generalized recursive k-way working-set splitting (k = 2^depth).
 *
 * The paper demonstrates 2-way and 4-way splitting and conjectures
 * ("we believe it is possible") that the scheme adapts to a larger
 * number of cores (section 6). This module realizes that conjecture:
 * a complete binary tree of 2-way mechanisms, one per internal node.
 * The root mechanism splits the whole working-set; the node at path
 * p (a sign string) splits the subset selected by p. Which node a
 * sampled line drives is chosen by H(e) mod depth — the same idea as
 * section 3.6's odd/even split of the hash residues, extended so
 * every tree level receives a share of the sampled lines. All nodes
 * share one O_e store, and a node's R-window is |R_root| / 2^level,
 * matching the paper's |R_Y| = |R_X| / 2 choice.
 *
 * The subset index of a line is the root-to-leaf path of filter
 * signs. With depth = 2 this degenerates to exactly the paper's
 * 4-way structure (modulo the level-selection hash, which maps odd
 * residues to the root as section 3.6 does for depth 2).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/splitter.hpp" // SplitDecision
#include "core/transition_filter.hpp"

namespace xmig {

/**
 * Recursive splitter for 2^depth subsets.
 */
class KWaySplitter
{
  public:
    struct Config
    {
        unsigned depth = 3; ///< 2^depth subsets (1 => 2-way, 3 => 8-way)
        unsigned affinityBits = 16;
        size_t rootWindow = 128; ///< |R| of the root mechanism
        WindowKind window = WindowKind::Fifo;
        ArKind ar = ArKind::Exact;
        unsigned filterBits = 20;
        uint32_t samplingCutoff = 31;

        /**
         * Arm the shadow-model oracle on the root mechanism. Only
         * the root is shadowable: its lines always drive it, while
         * deeper nodes swap lines as the sign path above them moves.
         */
        ShadowMode shadow = ShadowMode::Off;
        uint64_t shadowDeepCheckEvery = 4096;

        /** Soft-error hook shared by all tree nodes (xmig-iron). */
        FaultInjector *faults = nullptr;
    };

    KWaySplitter(const Config &config, OeStore &store);

    /** Present one reference; see FourWaySplitter::onReference. */
    SplitDecision onReference(uint64_t line, bool update_filter = true);

    /** Current subset in [0, 2^depth). */
    unsigned subset() const;

    unsigned numSubsets() const { return 1u << config_.depth; }
    uint64_t transitions() const { return transitions_; }

    /** Mechanisms allocated (2^depth - 1 internal tree nodes). */
    size_t numMechanisms() const { return nodes_.size(); }

    /** Root mechanism (the only shadow-auditable one; see Config). */
    const AffinityEngine &rootEngine() const { return *nodes_[0].engine; }
    AffinityEngine &rootEngine() { return *nodes_[0].engine; }

    /** Root transition filter (the whole-working-set split). */
    const TransitionFilter &rootFilter() const
    {
        return *nodes_[0].filter;
    }

    /** Zero every node's filter (watchdog re-initialization). */
    void resetFilters();

    /** Append engine/filter state in heap (tree-index) order. */
    void checkpoint(std::vector<EngineCheckpoint> &engines,
                    std::vector<FilterCheckpoint> &filters) const;

    /** Restore state captured by checkpoint() (sizes must match). */
    void restore(const std::vector<EngineCheckpoint> &engines,
                 const std::vector<FilterCheckpoint> &filters);

    /** Register every tree node's mechanism under `prefix`. */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Attach the xmig-lens journal (may be null): forwarded to every
     * node's engine, and used by onReference to record node filter
     * flips (JournalKind::NodeFlip) on the rare transition branch.
     */
    void attachJournal(obs::Journal *journal);

  private:
    /** One tree node: a 2-way mechanism. */
    struct Node
    {
        std::unique_ptr<AffinityEngine> engine;
        std::unique_ptr<TransitionFilter> filter;
    };

    /**
     * Tree index of the node on the current sign path at `level`
     * (level 0 = root). Uses heap indexing: children of i are
     * 2i+1 (filter positive) and 2i+2 (negative).
     */
    size_t nodeOnPath(unsigned level) const;

    Config config_;
    std::vector<Node> nodes_; ///< heap-ordered complete binary tree
    uint64_t transitions_ = 0;
    obs::Journal *journal_ = nullptr; ///< xmig-lens hook (may be null)
};

} // namespace xmig
