/**
 * @file
 * Working-set splitters: 2-way (section 3.2-3.4) and recursive 4-way
 * (section 3.6).
 *
 * A splitter combines affinity engines with transition filters and
 * working-set sampling into the decision structure of the paper: the
 * *sign of the filter(s)*, not of the raw affinity, names the subset
 * each referenced line belongs to.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/transition_filter.hpp"
#include "util/hashing.hpp"

namespace xmig {

/**
 * Register a transition filter's live state under `prefix`
 * (xmig-scope): `<prefix>.value`, `.transitions`, `.updates`,
 * `.saturated`. Shared by every splitter flavor.
 */
void registerFilterMetrics(obs::MetricsRegistry &registry,
                           const std::string &prefix,
                           const TransitionFilter &filter);

/** Capture one transition filter's state (checkpoint.hpp). */
inline FilterCheckpoint
checkpointFilter(const TransitionFilter &filter)
{
    return {filter.value(), filter.transitions(), filter.updates()};
}

/** Restore one transition filter from a checkpoint. */
inline void
restoreFilter(TransitionFilter &filter, const FilterCheckpoint &ckpt)
{
    filter.restore(ckpt.value, ckpt.transitions, ckpt.updates);
}

/** Outcome of presenting one reference to a splitter. */
struct SplitDecision
{
    unsigned subset = 0;     ///< subset index after the update
    bool transition = false; ///< the subset index changed
    bool sampled = false;    ///< line participated in affinity tracking
    int64_t ae = 0;          ///< A_e used (0 when not sampled)
};

/**
 * 2-way splitter: one mechanism X = engine + filter F_X.
 */
class TwoWaySplitter
{
  public:
    struct Config
    {
        EngineConfig engine;
        unsigned filterBits = 20;
        /** Track lines with H(e) < cutoff; 31 disables sampling. */
        uint32_t samplingCutoff = 31;
    };

    TwoWaySplitter(const Config &config, OeStore &store);

    /**
     * Present a reference.
     * @param update_filter false implements L2 filtering: the engine
     *        state advances but the filter (and hence the subset)
     *        cannot change.
     */
    SplitDecision onReference(uint64_t line, bool update_filter = true);

    /** Current subset: 0 (filter >= 0) or 1 (filter < 0). */
    unsigned subset() const { return filter_.side() > 0 ? 0 : 1; }

    uint64_t transitions() const { return transitions_; }
    const TransitionFilter &filter() const { return filter_; }
    const AffinityEngine &engine() const { return engine_; }
    AffinityEngine &engine() { return engine_; }

    /** Zero the filter (watchdog re-initialization). */
    void resetFilters() { filter_.reset(); }

    /** Append engine/filter state in layout order: [engine]. */
    void checkpoint(std::vector<EngineCheckpoint> &engines,
                    std::vector<FilterCheckpoint> &filters) const;

    /** Restore state captured by checkpoint() (sizes must match). */
    void restore(const std::vector<EngineCheckpoint> &engines,
                 const std::vector<FilterCheckpoint> &filters);

    /** Register mechanism state under `prefix` (xmig-scope). */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    /** Attach the xmig-lens journal to the mechanism (may be null). */
    void attachJournal(obs::Journal *journal)
    {
        engine_.attachJournal(journal);
    }

  private:
    Config config_;
    AffinityEngine engine_;
    TransitionFilter filter_;
    uint64_t transitions_ = 0;
};

/**
 * 4-way splitter: mechanism X over the whole working-set plus
 * mechanisms Y[+1], Y[-1] over the two halves, all sharing one O_e
 * store. Odd H(e) drives X; even H(e) drives Y[sign(F_X)]. The
 * subset is (sign(F_X), sign(F_Y[sign(F_X)])).
 */
class FourWaySplitter
{
  public:
    struct Config
    {
        unsigned affinityBits = 16;
        size_t windowX = 128; ///< |R_X|
        size_t windowY = 64;  ///< |R_Y[+1]| = |R_Y[-1]| = |R_X| / 2
        WindowKind window = WindowKind::Fifo;
        ArKind ar = ArKind::Exact;
        unsigned filterBits = 20;
        uint32_t samplingCutoff = 31;

        /**
         * Arm the shadow-model oracle on mechanism X. Only X is
         * shadowable: its lines (odd hash residues) never visit a
         * sibling, while Y lines migrate between Y[+1] and Y[-1] as
         * sign(F_X) changes, leaving O_e values no single-engine
         * reference model can predict.
         */
        ShadowMode shadow = ShadowMode::Off;
        uint64_t shadowDeepCheckEvery = 4096;

        /** Soft-error hook shared by all three engines (xmig-iron). */
        FaultInjector *faults = nullptr;
    };

    FourWaySplitter(const Config &config, OeStore &store);

    SplitDecision onReference(uint64_t line, bool update_filter = true);

    /**
     * Current subset in [0, 4): bit 1 encodes sign(F_X), bit 0 the
     * sign of the selected Y filter.
     */
    unsigned subset() const;

    uint64_t transitions() const { return transitions_; }

    const TransitionFilter &filterX() const { return filterX_; }
    const TransitionFilter &filterY(int side_x) const;
    const AffinityEngine &engineX() const { return engineX_; }
    AffinityEngine &engineX() { return engineX_; }

    /** Zero all three filters (watchdog re-initialization). */
    void resetFilters();

    /** Append engine/filter state in order [X, Y[+1], Y[-1]]. */
    void checkpoint(std::vector<EngineCheckpoint> &engines,
                    std::vector<FilterCheckpoint> &filters) const;

    /** Restore state captured by checkpoint() (sizes must match). */
    void restore(const std::vector<EngineCheckpoint> &engines,
                 const std::vector<FilterCheckpoint> &filters);

    /** Register every mechanism (X, Y[+1], Y[-1]) under `prefix`. */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    /** Attach the xmig-lens journal to all three mechanisms. */
    void attachJournal(obs::Journal *journal)
    {
        engineX_.attachJournal(journal);
        engineYPos_.attachJournal(journal);
        engineYNeg_.attachJournal(journal);
    }

  private:
    AffinityEngine &engineY(int side_x);
    TransitionFilter &filterYMut(int side_x);

    Config config_;
    AffinityEngine engineX_;
    AffinityEngine engineYPos_;
    AffinityEngine engineYNeg_;
    TransitionFilter filterX_;
    TransitionFilter filterYPos_;
    TransitionFilter filterYNeg_;
    uint64_t transitions_ = 0;
};

} // namespace xmig
