/**
 * @file
 * Direct (non-postponed) implementation of Definition 1.
 *
 * This engine stores the affinity A_e of every element explicitly and
 * updates all of them on every reference — O(|S|) per reference, the
 * very cost the postponed-update scheme exists to avoid. It is the
 * executable specification: the property tests check that
 * AffinityEngine (with ArKind::Exact) produces element-for-element
 * identical affinities.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/rwindow.hpp"

namespace xmig {

/** Parameters of the direct engine (no saturation: test use only). */
struct DirectEngineConfig
{
    size_t windowSize = 128;
    WindowKind window = WindowKind::Fifo;
};

/**
 * Executable specification of the affinity algorithm (Definition 1).
 */
class DirectAffinityEngine
{
  public:
    explicit DirectAffinityEngine(const DirectEngineConfig &config);

    /**
     * Process a reference; returns A_e(t) of the referenced element
     * before any update, exactly like AffinityEngine::reference.
     */
    int64_t reference(uint64_t line);

    /** Current affinity of `line` (nullopt if never referenced). */
    std::optional<int64_t> affinityOf(uint64_t line) const;

    /** Current sum of affinities over the R-window. */
    int64_t windowAffinity() const { return windowAffinity_; }

    /** Affinity of every element ever referenced (shadow sweeps). */
    const std::unordered_map<uint64_t, int64_t> &
    affinities() const
    {
        return affinity_;
    }

    uint64_t references() const { return references_; }

  private:
    bool inWindow(uint64_t line) const;

    DirectEngineConfig config_;
    std::unordered_map<uint64_t, int64_t> affinity_; // all of S
    std::unordered_map<uint64_t, uint64_t> windowCount_; // line -> slots
    std::unique_ptr<FifoWindow> fifo_;
    std::unique_ptr<DistinctLruWindow> lru_;
    int64_t windowAffinity_ = 0;
    uint64_t references_ = 0;
};

} // namespace xmig
