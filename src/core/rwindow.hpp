/**
 * @file
 * The R-window: the |R| most recently referenced lines.
 *
 * The paper implements R as a FIFO (a memory array plus a circular
 * pointer) storing, for each slot, the line address and its I_e value
 * (section 3.2, "Postponed update"). A FIFO may hold duplicates; the
 * paper notes that exact distinct-LRU semantics would need a fully
 * associative memory and is "not an essential feature". Both variants
 * are provided: Fifo is the hardware-faithful default, DistinctLru is
 * the idealized reference used by the equivalence tests.
 */

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/contracts.hpp"

namespace xmig {

/** Window organization. */
enum class WindowKind : uint8_t
{
    Fifo,        ///< circular buffer; duplicates possible (hardware)
    DistinctLru, ///< true set of |R| distinct lines, LRU-ordered
};

/** One R-window slot. */
struct WindowSlot
{
    uint64_t line = 0;
    int64_t ie = 0;
};

/**
 * FIFO R-window.
 */
class FifoWindow
{
  public:
    explicit FifoWindow(size_t capacity)
        : slots_(capacity)
    {
        XMIG_ASSERT(capacity >= 1, "R-window must hold at least 1 entry");
    }

    /**
     * Push (line, ie); if the window was full, the displaced slot is
     * copied to `evicted` and true is returned.
     */
    bool
    push(uint64_t line, int64_t ie, WindowSlot *evicted)
    {
        XMIG_AUDIT(size_ <= slots_.size() && head_ < slots_.size(),
                   "FIFO occupancy desync: size %zu / %zu, head %zu",
                   size_, slots_.size(), head_);
        bool full = size_ == slots_.size();
        if (full)
            *evicted = slots_[head_];
        // FIFO order invariant: when full, the slot at head_ is the
        // oldest entry, so overwriting it displaces exactly the
        // |R|-references-old line the postponed-update identities
        // assume (O_f = I_f + 2 Delta for the *oldest* member).
        XMIG_AUDIT(!full || (head_ + slots_.size() - size_) %
                                slots_.size() == head_,
                   "FIFO eviction is not the oldest slot");
        slots_[head_] = {line, ie};
        head_ = (head_ + 1) % slots_.size();
        if (!full)
            ++size_;
        return full;
    }

    size_t size() const { return size_; }
    size_t capacity() const { return slots_.size(); }
    bool full() const { return size_ == slots_.size(); }

    /**
     * Find the most recent slot holding `line` (nullptr if absent).
     * O(|R|); used only by snapshots and tests, never on the fast
     * path, mirroring the fact that the hardware FIFO is not
     * associatively searchable.
     */
    const WindowSlot *
    find(uint64_t line) const
    {
        for (size_t i = 0; i < size_; ++i) {
            // Scan from most recent to oldest.
            size_t idx = (head_ + slots_.size() - 1 - i) % slots_.size();
            if (slots_[idx].line == line)
                return &slots_[idx];
        }
        return nullptr;
    }

    /** Visit slots oldest-first. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (size_t i = 0; i < size_; ++i) {
            size_t idx = (head_ + slots_.size() - size_ + i) % slots_.size();
            fn(slots_[idx]);
        }
    }

    /** Append the live slots, oldest-first (checkpointing). */
    void
    snapshot(std::vector<WindowSlot> &out) const
    {
        forEach([&out](const WindowSlot &slot) { out.push_back(slot); });
    }

    /**
     * Replace the contents with `slots` (oldest-first). Re-pushing
     * reproduces the logical FIFO order regardless of where head_
     * sat when the snapshot was taken.
     */
    void
    restore(const std::vector<WindowSlot> &slots)
    {
        XMIG_ASSERT(slots.size() <= slots_.size(),
                    "checkpoint window %zu exceeds capacity %zu",
                    slots.size(), slots_.size());
        head_ = 0;
        size_ = 0;
        WindowSlot dropped;
        for (const WindowSlot &slot : slots)
            push(slot.line, slot.ie, &dropped);
    }

  private:
    std::vector<WindowSlot> slots_;
    size_t head_ = 0;
    size_t size_ = 0;
};

/**
 * Distinct-LRU R-window: an LRU-ordered set of at most |R| lines.
 */
class DistinctLruWindow
{
  public:
    explicit DistinctLruWindow(size_t capacity)
        : capacity_(capacity)
    {
        XMIG_ASSERT(capacity >= 1, "R-window must hold at least 1 entry");
    }

    /** True if `line` is in the window. */
    bool contains(uint64_t line) const { return map_.count(line) != 0; }

    /** I_e of a member line (must be present). */
    int64_t
    ieOf(uint64_t line) const
    {
        auto it = map_.find(line);
        XMIG_ASSERT(it != map_.end(), "line not in R-window");
        return it->second->ie;
    }

    /** Move a member line to most-recent position. */
    void
    touch(uint64_t line)
    {
        auto it = map_.find(line);
        XMIG_ASSERT(it != map_.end(), "line not in R-window");
        order_.splice(order_.begin(), order_, it->second);
    }

    /**
     * Insert a non-member line; if the window was full, the evicted
     * LRU slot is copied to `evicted` and true is returned.
     */
    bool
    insert(uint64_t line, int64_t ie, WindowSlot *evicted)
    {
        XMIG_ASSERT(!contains(line), "line already in R-window");
        XMIG_AUDIT(order_.size() == map_.size() &&
                       order_.size() <= capacity_,
                   "LRU window desync: list %zu, map %zu, capacity %zu",
                   order_.size(), map_.size(), capacity_);
        bool evict = order_.size() == capacity_;
        if (evict) {
            *evicted = order_.back();
            map_.erase(order_.back().line);
            order_.pop_back();
        }
        order_.push_front({line, ie});
        map_[line] = order_.begin();
        if constexpr (kAuditParanoid) {
            // Full recency-structure reconciliation: every map entry
            // must point at a live list node holding its own key.
            for (const auto &[key, it] : map_) {
                XMIG_EXPECT(it->line == key,
                            "LRU map entry %llu points at slot of %llu",
                            (unsigned long long)key,
                            (unsigned long long)it->line);
            }
        }
        return evict;
    }

    size_t size() const { return order_.size(); }
    size_t capacity() const { return capacity_; }
    bool full() const { return order_.size() == capacity_; }

    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (auto it = order_.rbegin(); it != order_.rend(); ++it)
            fn(*it);
    }

    /** Append the live slots, oldest-first (checkpointing). */
    void
    snapshot(std::vector<WindowSlot> &out) const
    {
        forEach([&out](const WindowSlot &slot) { out.push_back(slot); });
    }

    /** Replace the contents with `slots` (oldest-first, distinct). */
    void
    restore(const std::vector<WindowSlot> &slots)
    {
        XMIG_ASSERT(slots.size() <= capacity_,
                    "checkpoint window %zu exceeds capacity %zu",
                    slots.size(), capacity_);
        order_.clear();
        map_.clear();
        WindowSlot dropped;
        for (const WindowSlot &slot : slots)
            insert(slot.line, slot.ie, &dropped);
    }

  private:
    size_t capacity_;
    std::list<WindowSlot> order_; // front = MRU
    std::unordered_map<uint64_t, std::list<WindowSlot>::iterator> map_;
};

} // namespace xmig
