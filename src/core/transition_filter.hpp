/**
 * @file
 * The transition filter of section 3.4.
 *
 * An up-down saturating counter F accumulates the affinity of each
 * reference: F += A_e. The subset an element is assigned to is the
 * sign of F rather than the sign of A_e, which damps migrations on
 * working-sets that are not "splittable": with b extra filter bits
 * beyond the affinity width, a random saturated-affinity stream flips
 * F's sign about every 2^(1+b) references.
 */

#pragma once

#include <cstdint>

#include "util/saturating.hpp"

namespace xmig {

/**
 * Up-down saturating transition filter.
 */
class TransitionFilter
{
  public:
    /** @param bits counter width (paper: 18 or 20). */
    explicit TransitionFilter(unsigned bits)
        : counter_(bits)
    {
    }

    /**
     * Accumulate the affinity of a reference. Returns true if the
     * filter's sign flipped (a *transition*).
     */
    bool
    update(int64_t ae)
    {
        const int before = side();
        counter_.add(ae);
        const bool flipped = side() != before;
        if (flipped)
            ++transitions_;
        ++updates_;
        return flipped;
    }

    /** Which subset the filter currently selects: +1 or -1. */
    int side() const { return affinitySign(counter_.get()); }

    int64_t value() const { return counter_.get(); }
    bool saturated() const { return counter_.saturated(); }

    uint64_t transitions() const { return transitions_; }
    uint64_t updates() const { return updates_; }
    uint64_t resets() const { return resets_; }

    /**
     * Zero the counter (watchdog re-initialization after a degenerate
     * all-one-sign split). The transition/update history is kept; the
     * reset itself is counted.
     */
    void
    reset()
    {
        counter_.set(0);
        ++resets_;
    }

    /** Restore a checkpointed state (value is clamped to the width). */
    void
    restore(int64_t value, uint64_t transitions, uint64_t updates)
    {
        counter_.set(value);
        transitions_ = transitions;
        updates_ = updates;
    }

  private:
    SatInt counter_;
    uint64_t transitions_ = 0;
    uint64_t updates_ = 0;
    uint64_t resets_ = 0;
};

} // namespace xmig
