/**
 * @file
 * Storage for the postponed affinity values O_e (the "affinity cache").
 *
 * Section 3.2's postponed-update scheme keeps O_e = A_e + Delta for
 * every working-set line that is outside the R-window. Section 4.1
 * assumes unlimited storage; section 4.2 uses a finite 8k-entry 4-way
 * skewed-associative affinity cache with age-based replacement where a
 * miss forces A_e = 0 by installing O_e = Delta.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/tags.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/saturating.hpp"

namespace xmig {

/** Hit/miss statistics for an O_e store. */
struct OeStoreStats
{
    uint64_t lookups = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;
    uint64_t evictions = 0; ///< entries displaced (finite cache only)

    /** Lookups served from an existing entry. */
    uint64_t hits() const { return lookups - misses; }
};

/** One snapshotted (line, O_e) pair (checkpointing). */
struct OeEntrySnapshot
{
    uint64_t line = 0;
    int64_t oe = 0;
};

/**
 * Abstract O_e storage.
 *
 * lookup() is called when a line enters the R-window; store() when it
 * leaves. Values are saturated to the configured affinity width.
 */
class OeStore
{
  public:
    virtual ~OeStore() = default;

    /**
     * Fetch O_e for `line`. If no entry exists, one is created with
     * O_e = `delta`, which forces A_e = O_e - Delta = 0 — the paper's
     * initialization rule and its affinity-cache miss policy.
     */
    virtual int64_t lookup(uint64_t line, int64_t delta) = 0;

    /** Write O_e back when `line` leaves the R-window. */
    virtual void store(uint64_t line, int64_t oe) = 0;

    /** Inspect O_e without allocating (snapshots, tests). */
    virtual std::optional<int64_t> peek(uint64_t line) const = 0;

    virtual const OeStoreStats &stats() const = 0;

    /**
     * xmig-iron fault hook: flip one random bit of one uniformly
     * chosen entry's O_e value (re-saturated to the affinity width).
     * Returns false when the store is empty. O(entries); faults are
     * rare, so the scan cost is irrelevant.
     */
    virtual bool corruptRandomEntry(Rng &rng) = 0;

    /**
     * xmig-iron fault hook: lose one uniformly chosen entry outright,
     * modeling a corrupted affinity-cache tag (the entry can no
     * longer be found, so its next lookup misses and re-initializes
     * A_e = 0). Returns false when the store is empty.
     */
    virtual bool dropRandomEntry(Rng &rng) = 0;

    /** Append every entry, sorted by line (checkpointing). */
    virtual void snapshotEntries(std::vector<OeEntrySnapshot> &out)
        const = 0;

    /**
     * Replace the contents with `entries` and adopt `stats`. Exact
     * for the unbounded store; for the finite affinity cache the
     * replacement ages are rebuilt by re-insertion, so subsequent
     * victim choices may differ from the original run (documented in
     * docs/robustness.md).
     */
    virtual void restoreEntries(const std::vector<OeEntrySnapshot> &entries,
                                const OeStoreStats &stats) = 0;
};

/**
 * How the affinity of a line first referenced is initialized.
 *
 * The paper's definition forces A_e(t_e) = 0, but section 3.3
 * ("Initial affinity") also experiments with non-null constants and
 * random values, observing that the algorithm still adapts and the
 * transition frequency stays below one per 2|R| references.
 */
enum class OeInitPolicy : uint8_t
{
    ZeroAffinity,     ///< A_e = 0 (the paper's definition; default)
    ConstantAffinity, ///< A_e = a fixed non-null constant
    RandomAffinity,   ///< A_e = uniform over the affinity range
};

/**
 * Unlimited O_e storage (hash map), as assumed in section 4.1.
 */
class UnboundedOeStore : public OeStore
{
  public:
    /** @param affinity_bits saturation width for stored values. */
    explicit UnboundedOeStore(unsigned affinity_bits = 16,
                              OeInitPolicy init =
                                  OeInitPolicy::ZeroAffinity,
                              int64_t init_constant = 1000,
                              uint64_t seed = 17)
        : bits_(affinity_bits),
          init_(init),
          initConstant_(init_constant),
          rng_(seed)
    {
    }

    int64_t
    lookup(uint64_t line, int64_t delta) override
    {
        ++stats_.lookups;
        // Entries appear on lookup misses and direct store() writes,
        // never otherwise; the unbounded store never evicts.
        XMIG_AUDIT(stats_.misses <= stats_.lookups &&
                       map_.size() <= stats_.misses + stats_.stores &&
                       stats_.evictions == 0,
                   "O_e store accounting desync: %llu misses, %llu "
                   "lookups, %llu stores, %zu entries",
                   (unsigned long long)stats_.misses,
                   (unsigned long long)stats_.lookups,
                   (unsigned long long)stats_.stores, map_.size());
        auto it = map_.find(line);
        if (it != map_.end())
            return it->second;
        ++stats_.misses;
        const int64_t oe = saturateToBits(delta + initialAffinity(),
                                          bits_);
        map_.emplace(line, oe);
        return oe;
    }

    void
    store(uint64_t line, int64_t oe) override
    {
        ++stats_.stores;
        map_[line] = saturateToBits(oe, bits_);
    }

    std::optional<int64_t>
    peek(uint64_t line) const override
    {
        auto it = map_.find(line);
        if (it == map_.end())
            return std::nullopt;
        return it->second;
    }

    const OeStoreStats &stats() const override { return stats_; }

    bool
    corruptRandomEntry(Rng &rng) override
    {
        if (map_.empty())
            return false;
        auto it = map_.begin();
        std::advance(it, static_cast<long>(rng.below(map_.size())));
        const uint64_t flipped = static_cast<uint64_t>(it->second) ^
                                 (uint64_t{1} << rng.below(bits_));
        it->second = saturateToBits(static_cast<int64_t>(flipped), bits_);
        return true;
    }

    bool
    dropRandomEntry(Rng &rng) override
    {
        if (map_.empty())
            return false;
        auto it = map_.begin();
        std::advance(it, static_cast<long>(rng.below(map_.size())));
        map_.erase(it);
        return true;
    }

    void
    snapshotEntries(std::vector<OeEntrySnapshot> &out) const override
    {
        out.reserve(out.size() + map_.size());
        for (const auto &[line, oe] : map_)
            out.push_back({line, oe});
        std::sort(out.begin(), out.end(),
                  [](const OeEntrySnapshot &a, const OeEntrySnapshot &b) {
                      return a.line < b.line;
                  });
    }

    void
    restoreEntries(const std::vector<OeEntrySnapshot> &entries,
                   const OeStoreStats &stats) override
    {
        map_.clear();
        for (const OeEntrySnapshot &e : entries)
            map_[e.line] = saturateToBits(e.oe, bits_);
        stats_ = stats;
    }

    uint64_t entries() const { return map_.size(); }

  private:
    /** A_e assigned at first reference (O_e = Delta + this). */
    int64_t
    initialAffinity()
    {
        switch (init_) {
          case OeInitPolicy::ZeroAffinity:
            return 0;
          case OeInitPolicy::ConstantAffinity:
            return initConstant_;
          case OeInitPolicy::RandomAffinity: {
            const int64_t range = SatInt::maxForBits(bits_);
            return static_cast<int64_t>(
                       rng_.below(2 * static_cast<uint64_t>(range))) -
                   range;
          }
        }
        return 0;
    }

    unsigned bits_;
    OeInitPolicy init_;
    int64_t initConstant_;
    Rng rng_;
    std::unordered_map<uint64_t, int64_t> map_;
    OeStoreStats stats_;
};

/** Configuration of the finite affinity cache (section 3.5 / 4.2). */
struct AffinityCacheConfig
{
    uint64_t entries = 8 * 1024;  ///< total entries (paper: 8k)
    unsigned ways = 4;            ///< associativity (paper: 4, skewed)
    bool skewed = true;
    ReplPolicy repl = ReplPolicy::Age; ///< "age-based replacement"
    unsigned affinityBits = 16;
    uint64_t seed = 7;

    /**
     * Structure-of-arrays frame layout (soa_oe_store.hpp, xmig-bolt).
     * Bit-identical to the AoS layout by contract — the knob exists
     * so tests can drive both layouts through the same stimulus and
     * the perf delta can be measured (bench_speedup probe microbench).
     */
    bool soa = true;
};

/**
 * Finite, tagged affinity cache.
 *
 * The O_e value rides in the tag frame itself (CacheEntry::payload),
 * exactly as section 3.5's hardware array stores tag + affinity side
 * by side: a hit is ONE probe — tag match and value together — with
 * no separate line-to-O_e map to hash (xmig-swift hot-path layout).
 * Misses install O_e = Delta so the transition filter is not
 * perturbed by untracked lines (section 4.2 relies on this to
 * suppress migrations for working-sets far larger than the total L2
 * capacity).
 */
class AffinityCacheStore : public OeStore
{
  public:
    explicit AffinityCacheStore(const AffinityCacheConfig &config);

    int64_t lookup(uint64_t line, int64_t delta) override;
    void store(uint64_t line, int64_t oe) override;
    std::optional<int64_t> peek(uint64_t line) const override;
    const OeStoreStats &stats() const override { return stats_; }

    bool corruptRandomEntry(Rng &rng) override;

    /** Tag corruption drops the tag *and* its O_e word together. */
    bool dropRandomEntry(Rng &rng) override;

    void snapshotEntries(std::vector<OeEntrySnapshot> &out) const override;
    void restoreEntries(const std::vector<OeEntrySnapshot> &entries,
                        const OeStoreStats &stats) override;

    /** Valid entries; maintained incrementally, O(1). */
    uint64_t occupancy() const { return resident_; }
    const AffinityCacheConfig &config() const { return config_; }

    /**
     * Approximate storage cost in bytes: per entry, `tag_bits` of tag,
     * the affinity value, and 2 age bits (section 3.5's accounting).
     */
    uint64_t storageBits(unsigned tag_bits = 20) const;

  private:
    /** Cheap per-call accounting audit + periodic paranoid sweep. */
    void auditConsistency();

    /** The `target`-th valid frame's line, for uniform fault picks. */
    uint64_t nthValidLine(uint64_t target) const;

    AffinityCacheConfig config_;
    std::unique_ptr<TagStore> tags_;
    uint64_t resident_ = 0; ///< valid entries (mirrors tag occupancy)
    OeStoreStats stats_;
    uint64_t auditTick_ = 0; ///< paranoid reconciliation cadence
};

} // namespace xmig
