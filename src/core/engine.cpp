#include "core/engine.hpp"

#include <bit>

#include "util/logging.hpp"

namespace xmig {

namespace {

unsigned
arBits(const EngineConfig &config)
{
    // bits[A_R] = bits[O_e] + log2(|R|)  (section 3.2)
    const unsigned log_r = config.windowSize <= 1
        ? 0
        : static_cast<unsigned>(std::bit_width(config.windowSize - 1));
    return config.affinityBits + log_r;
}

} // namespace

AffinityEngine::AffinityEngine(const EngineConfig &config, OeStore &store)
    : config_(config),
      store_(store),
      delta_(config.affinityBits + 1),
      windowAffinity_(arBits(config))
{
    if (config_.window == WindowKind::Fifo)
        fifo_ = std::make_unique<FifoWindow>(config_.windowSize);
    else
        lru_ = std::make_unique<DistinctLruWindow>(config_.windowSize);
}

int64_t
AffinityEngine::saturate(int64_t v) const
{
    return saturateToBits(v, config_.affinityBits);
}

RefOutcome
AffinityEngine::reference(uint64_t line)
{
    ++references_;
    RefOutcome out;
    const int64_t delta = delta_.get();
    size_t members;

    if (config_.window == WindowKind::DistinctLru && lru_->contains(line)) {
        // Already in R: recency update only; A_e = I_e + Delta.
        out.ae = lru_->ieOf(line) + delta;
        out.inWindow = true;
        lru_->touch(line);
        members = lru_->size();
        // Neither sum(I_e) nor the Figure-2 register changes.
    } else {
        // e enters R from outside: fetch O_e (miss installs Delta,
        // forcing A_e = 0), derive A_e and I_e with the pre-update
        // Delta, and handle the displaced line f symmetrically.
        const int64_t oe = store_.lookup(line, delta);
        out.ae = oe - delta;
        const int64_t ie = saturate(oe - 2 * delta);

        WindowSlot evicted;
        bool have_evicted;
        if (config_.window == WindowKind::Fifo) {
            have_evicted = fifo_->push(line, ie, &evicted);
            members = fifo_->size();
        } else {
            have_evicted = lru_->insert(line, ie, &evicted);
            members = lru_->size();
        }

        int64_t of = 0;
        if (have_evicted) {
            of = saturate(evicted.ie + 2 * delta);
            store_.store(evicted.line, of);
        }

        if (config_.ar == ArKind::Figure2) {
            // Literal datapath: A_R += O_e - O_f.
            windowAffinity_.add(oe - of);
        } else {
            sumIe_ += ie;
            if (have_evicted)
                sumIe_ -= evicted.ie;
        }
    }

    if (config_.ar == ArKind::Exact) {
        // A_R = sum over members of A_e = sum(I_e) + |R| * Delta.
        windowAffinity_.set(sumIe_ +
                            static_cast<int64_t>(members) * delta);
    }

    // Delta accumulates the sign of the (updated) window affinity;
    // conceptually every member gains sign(A_R) and every outsider
    // loses it, which the I_e / O_e invariants realize lazily.
    delta_.add(affinitySign(windowAffinity_.get()));

    if (config_.ar == ArKind::Exact) {
        // Delta moved, so recompute the exact A_R for observers.
        windowAffinity_.set(sumIe_ +
                            static_cast<int64_t>(members) * delta_.get());
    }
    return out;
}

std::optional<int64_t>
AffinityEngine::affinityOf(uint64_t line) const
{
    if (config_.window == WindowKind::Fifo) {
        if (const WindowSlot *slot = fifo_->find(line))
            return slot->ie + delta_.get();
    } else if (lru_->contains(line)) {
        return lru_->ieOf(line) + delta_.get();
    }
    if (auto oe = store_.peek(line))
        return *oe - delta_.get();
    return std::nullopt;
}

} // namespace xmig
