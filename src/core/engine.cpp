#include "core/engine.hpp"

#include <bit>

#include "core/shadow_audit.hpp"
#include "core/soa_oe_store.hpp"
#include "fault/fault_injector.hpp"
#include "obs/journal.hpp"
#include "util/contracts.hpp"

namespace xmig {

namespace {

unsigned
arBits(const EngineConfig &config)
{
    // bits[A_R] = bits[O_e] + log2(|R|)  (section 3.2)
    const unsigned log_r = config.windowSize <= 1
        ? 0
        : static_cast<unsigned>(std::bit_width(config.windowSize - 1));
    return config.affinityBits + log_r;
}

} // namespace

AffinityEngine::AffinityEngine(const EngineConfig &config, OeStore &store)
    : config_(config),
      store_(store),
      delta_(config.affinityBits + 1),
      windowAffinity_(arBits(config))
{
    XMIG_ASSERT(config_.windowSize > 0 && config_.affinityBits > 0,
                "degenerate engine config: windowSize=%zu "
                "affinityBits=%u",
                config_.windowSize, config_.affinityBits);
    if (config_.window == WindowKind::Fifo)
        fifo_ = std::make_unique<FifoWindow>(config_.windowSize);
    else
        lru_ = std::make_unique<DistinctLruWindow>(config_.windowSize);
    if (config_.shadow == ShadowMode::Armed)
        shadow_ = std::make_unique<ShadowAudit>(config_, config_.shadowTag);
    soaStore_ = dynamic_cast<SoaAffinityStore *>(&store_);
}

AffinityEngine::~AffinityEngine() = default;

int64_t
AffinityEngine::saturate(int64_t v) const
{
    return saturateToBits(v, config_.affinityBits);
}

void
AffinityEngine::auditWindowSum(size_t members) const
{
    if constexpr (kAuditParanoid) {
        if (config_.ar != ArKind::Exact)
            return;
        int64_t sum = 0;
        size_t count = 0;
        const auto acc = [&](const WindowSlot &slot) {
            sum += slot.ie;
            ++count;
        };
        if (config_.window == WindowKind::Fifo)
            fifo_->forEach(acc);
        else
            lru_->forEach(acc);
        XMIG_EXPECT(sum == sumIe_ && count == members,
                    "A_R drift: cached sum(I_e) %lld over %zu members, "
                    "recomputed %lld over %zu",
                    (long long)sumIe_, members, (long long)sum, count);
    } else {
        (void)members;
    }
}

RefOutcome
AffinityEngine::reference(uint64_t line)
{
    ++references_;
    RefOutcome out;
    const int64_t delta = delta_.get();
    size_t members;
    // Legitimate departures from the unsaturated single-engine
    // reference model disarm the shadow *before* it compares this
    // reference; everything else that mismatches is a real bug.
    bool shadow_live = shadow_ && shadow_->armed();

    if (config_.window == WindowKind::DistinctLru && lru_->contains(line)) {
        // Already in R: recency update only; A_e = I_e + Delta.
        out.ae = lru_->ieOf(line) + delta;
        out.inWindow = true;
        lru_->touch(line);
        members = lru_->size();
        // Neither sum(I_e) nor the Figure-2 register changes.
    } else {
        if (shadow_live && config_.window == WindowKind::Fifo &&
            fifo_->find(line) != nullptr) {
            // The line re-enters R while still a member: the O_e
            // fetched below predates its entry, so the postponed
            // identities are stale by construction (section 3.2
            // tolerates this; the spec model does not reproduce it).
            shadow_->disarm("duplicate entry in FIFO R-window");
            shadow_live = false;
        }

        // e enters R from outside: fetch O_e (miss installs Delta,
        // forcing A_e = 0), derive A_e and I_e with the pre-update
        // Delta, and handle the displaced line f symmetrically.
        const uint64_t misses_before =
            shadow_live ? store_.stats().misses : 0;
        const int64_t oe = store_.lookup(line, delta);
        if (shadow_live) {
            const bool missed = store_.stats().misses != misses_before;
            if (missed && oe != delta) {
                // Miss-install clamped O_e = Delta to the affinity
                // width, or a non-zero initial-affinity policy is
                // active; either way first-touch A_e != 0.
                shadow_->disarm("miss-installed O_e differs from Delta");
                shadow_live = false;
            } else if (missed && shadow_->knowsLine(line)) {
                shadow_->disarm("O_e entry lost (finite affinity cache "
                                "eviction)");
                shadow_live = false;
            } else if (!missed && !shadow_->knowsLine(line)) {
                shadow_->disarm("foreign O_e entry (shared store written "
                                "by a sibling mechanism)");
                shadow_live = false;
            }
        }
        out.ae = oe - delta;

        const int64_t ie_raw = oe - 2 * delta;
        const int64_t ie = saturate(ie_raw);
        if (shadow_live && ie != ie_raw) {
            shadow_->disarm("I_e saturated");
            shadow_live = false;
        }

        WindowSlot evicted;
        bool have_evicted;
        if (config_.window == WindowKind::Fifo) {
            have_evicted = fifo_->push(line, ie, &evicted);
            members = fifo_->size();
        } else {
            have_evicted = lru_->insert(line, ie, &evicted);
            members = lru_->size();
        }
        XMIG_AUDIT(members >= 1 && members <= config_.windowSize,
                   "R-window occupancy %zu out of [1, %zu]", members,
                   config_.windowSize);

        int64_t of = 0;
        if (have_evicted) {
            const int64_t of_raw = evicted.ie + 2 * delta;
            of = saturate(of_raw);
            if (shadow_live && of != of_raw) {
                shadow_->disarm("O_f saturated on write-back");
                shadow_live = false;
            }
            store_.store(evicted.line, of);
        }

        if (config_.ar == ArKind::Figure2) {
            // Literal datapath: A_R += O_e - O_f.
            windowAffinity_.add(oe - of);
        } else {
            sumIe_ += ie;
            if (have_evicted)
                sumIe_ -= evicted.ie;
        }
    }

    int64_t arRaw = 0; // Exact only: unclamped sum(I_e) + |R| * Delta
    if (config_.ar == ArKind::Exact) {
        // A_R = sum over members of A_e = sum(I_e) + |R| * Delta.
        // The register range straddles zero, so saturating preserves
        // the sign (affinitySign(0) = +1 on both sides); the Delta
        // step below can therefore read sign(A_R) off the raw sum and
        // the register is written ONCE, after the step, instead of
        // before and after it (xmig-swift hot path).
        arRaw = sumIe_ + static_cast<int64_t>(members) * delta;
        if (shadow_live &&
            saturateToBits(arRaw, windowAffinity_.bits()) != arRaw) {
            shadow_->disarm("A_R saturated");
            shadow_live = false;
        }
    }

    // Delta accumulates the sign of the (updated) window affinity;
    // conceptually every member gains sign(A_R) and every outsider
    // loses it, which the I_e / O_e invariants realize lazily.
    const int64_t arSign = config_.ar == ArKind::Exact
        ? affinitySign(arRaw)
        : affinitySign(windowAffinity_.get());
    if (delta_.add(arSign) && shadow_live) {
        shadow_->disarm("Delta saturated");
        shadow_live = false;
    }
    XMIG_AUDIT(delta_.get() - delta >= -1 && delta_.get() - delta <= 1,
               "Delta stepped by %lld, not +/-1",
               (long long)(delta_.get() - delta));

    if (config_.ar == ArKind::Exact) {
        // Delta moved by step = Delta' - Delta, so the exact A_R for
        // observers is arRaw + step * |R| — no second full recompute.
        const int64_t step = delta_.get() - delta;
        const bool clamped = windowAffinity_.set(
            arRaw + step * static_cast<int64_t>(members));
        if (shadow_live && clamped) {
            shadow_->disarm("A_R saturated");
            shadow_live = false;
        }
    }

    auditWindowSum(members);

    if constexpr (kFaultEnabled) {
        if (config_.faults)
            injectSoftErrors(out);
    }

    if (shadow_)
        shadow_->onReference(line, *this, out.ae);
    return out;
}

void
AffinityEngine::referenceBatch(const uint64_t *lines, size_t n,
                               RefOutcome *out)
{
    // The fast loop is reference() with the configuration checks and
    // the shadow's disarm ladder hoisted out of the per-reference
    // body. Any configuration the loop below does not replicate
    // exactly falls back to per-reference processing, so batched and
    // unbatched runs are byte-identical by construction.
    const bool fast = config_.window == WindowKind::Fifo &&
                      config_.ar == ArKind::Exact &&
                      !(shadow_ && shadow_->armed()) &&
                      !(kFaultEnabled && config_.faults != nullptr);
    if (!fast) {
        for (size_t i = 0; i < n; ++i) {
            // xmig-lint: allow(alloc-in-hot-loop) -- exact per-ref
            // fallback for shadow/fault/LRU configs, cold by design.
            out[i] = reference(lines[i]);
        }
        return;
    }

    FifoWindow &fifo = *fifo_;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t line = lines[i];
        ++references_;
        const int64_t delta = delta_.get();

        // O_e fetch: devirtualized when the shared store is the SoA
        // affinity cache (the default bounded configuration).
        int64_t oe;
        if (soaStore_) {
            oe = soaStore_->lookupFast(line, delta);
        } else {
            // xmig-lint: allow(alloc-in-hot-loop) -- the virtual arm
            // serves the unbounded store only; bounded devirtualizes.
            oe = store_.lookup(line, delta);
        }
        out[i].ae = oe - delta;
        out[i].inWindow = false;

        const int64_t ie = saturate(oe - 2 * delta);
        WindowSlot evicted;
        const bool have_evicted = fifo.push(line, ie, &evicted);
        const size_t members = fifo.size();
        XMIG_AUDIT(members >= 1 && members <= config_.windowSize,
                   "R-window occupancy %zu out of [1, %zu]", members,
                   config_.windowSize);

        if (have_evicted) {
            const int64_t of = saturate(evicted.ie + 2 * delta);
            if (soaStore_) {
                soaStore_->storeFast(evicted.line, of);
            } else {
                // xmig-lint: allow(alloc-in-hot-loop) -- unbounded-
                // store arm (see the lookup above).
                store_.store(evicted.line, of);
            }
            sumIe_ += ie - evicted.ie;
        } else {
            sumIe_ += ie;
        }

        const int64_t arRaw =
            sumIe_ + static_cast<int64_t>(members) * delta;
        delta_.add(affinitySign(arRaw));
        XMIG_AUDIT(delta_.get() - delta >= -1 &&
                       delta_.get() - delta <= 1,
                   "Delta stepped by %lld, not +/-1",
                   (long long)(delta_.get() - delta));
        const int64_t step = delta_.get() - delta;
        windowAffinity_.set(arRaw +
                            step * static_cast<int64_t>(members));
        auditWindowSum(members);
    }
}

void
AffinityEngine::injectSoftErrors(RefOutcome &out)
{
    XMIG_ASSERT(config_.faults != nullptr,
                "injectSoftErrors called with no injector armed");
    FaultInjector &fi = *config_.faults;
    bool injected = false;
    if (fi.armedFor(FaultSite::Ae) && fi.draw(FaultSite::Ae)) {
        // Transient: corrupts this reference's A_e on the way to the
        // transition filter; engine-internal state is untouched.
        out.ae = fi.flipBit(out.ae, config_.affinityBits);
        injected = true;
    }
    if (fi.armedFor(FaultSite::Delta) && fi.draw(FaultSite::Delta)) {
        // Persistent until the +/-1 walk re-converges.
        delta_.set(fi.flipBit(delta_.get(), config_.affinityBits + 1));
        injected = true;
    }
    if (fi.armedFor(FaultSite::Ar) && fi.draw(FaultSite::Ar)) {
        // In ArKind::Exact the register is recomputed from sum(I_e)
        // next reference, so the flip self-heals after one Delta step;
        // in ArKind::Figure2 the corruption persists in the recurrence.
        windowAffinity_.set(
            fi.flipBit(windowAffinity_.get(), windowAffinity_.bits()));
        injected = true;
    }
    if (injected && shadow_)
        shadow_->disarm("injected soft error");
}

void
AffinityEngine::disarmShadow(const char *reason)
{
    XMIG_ASSERT(reason != nullptr && *reason != '\0',
                "shadow disarm needs a stated reason");
    if (shadow_) {
        if (shadow_->armed()) {
            XMIG_JOURNAL(journal_, obs::JournalKind::ShadowDisarm,
                         obs::JournalCause::Explicit,
                         static_cast<int64_t>(references_));
        }
        shadow_->disarm(reason);
    }
}

EngineCheckpoint
AffinityEngine::checkpoint() const
{
    EngineCheckpoint c;
    c.delta = delta_.get();
    c.windowAffinity = windowAffinity_.get();
    c.sumIe = sumIe_;
    c.references = references_;
    if (config_.window == WindowKind::Fifo)
        fifo_->snapshot(c.window);
    else
        lru_->snapshot(c.window);
    return c;
}

void
AffinityEngine::restore(const EngineCheckpoint &ckpt)
{
    XMIG_ASSERT(ckpt.window.size() <= config_.windowSize,
                "checkpoint window (%zu slots) exceeds capacity of the "
                "engine's configured |R| = %zu",
                ckpt.window.size(), config_.windowSize);
    delta_.set(ckpt.delta);
    windowAffinity_.set(ckpt.windowAffinity);
    sumIe_ = ckpt.sumIe;
    references_ = ckpt.references;
    if (config_.window == WindowKind::Fifo)
        fifo_->restore(ckpt.window);
    else
        lru_->restore(ckpt.window);
    disarmShadow("state restored from checkpoint");
}

std::optional<int64_t>
AffinityEngine::affinityOf(uint64_t line) const
{
    if (config_.window == WindowKind::Fifo) {
        if (const WindowSlot *slot = fifo_->find(line))
            return slot->ie + delta_.get();
    } else if (lru_->contains(line)) {
        return lru_->ieOf(line) + delta_.get();
    }
    if (auto oe = store_.peek(line))
        return *oe - delta_.get();
    return std::nullopt;
}

} // namespace xmig
