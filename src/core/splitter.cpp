#include "core/splitter.hpp"

#include "util/contracts.hpp"

namespace xmig {

TwoWaySplitter::TwoWaySplitter(const Config &config, OeStore &store)
    : config_(config),
      engine_(config.engine, store),
      filter_(config.filterBits)
{
}

SplitDecision
TwoWaySplitter::onReference(uint64_t line, bool update_filter)
{
    SplitDecision out;
    const unsigned before = subset();
    out.sampled = sampledLine(line, config_.samplingCutoff);
    if (out.sampled) {
        out.ae = engine_.reference(line).ae;
        if (update_filter)
            filter_.update(out.ae);
    }
    out.subset = subset();
    out.transition = out.subset != before;
    if (out.transition)
        ++transitions_;
    return out;
}

namespace {

EngineConfig
engineConfigOf(const FourWaySplitter::Config &config, size_t window,
               ShadowMode shadow, const char *tag)
{
    EngineConfig ec;
    ec.affinityBits = config.affinityBits;
    ec.windowSize = window;
    ec.window = config.window;
    ec.ar = config.ar;
    ec.shadow = shadow;
    ec.shadowDeepCheckEvery = config.shadowDeepCheckEvery;
    ec.shadowTag = tag;
    return ec;
}

} // namespace

FourWaySplitter::FourWaySplitter(const Config &config, OeStore &store)
    : config_(config),
      engineX_(engineConfigOf(config, config.windowX, config.shadow, "X"),
               store),
      engineYPos_(engineConfigOf(config, config.windowY, ShadowMode::Off,
                                 "Y[+1]"),
                  store),
      engineYNeg_(engineConfigOf(config, config.windowY, ShadowMode::Off,
                                 "Y[-1]"),
                  store),
      filterX_(config.filterBits),
      filterYPos_(config.filterBits),
      filterYNeg_(config.filterBits)
{
}

const TransitionFilter &
FourWaySplitter::filterY(int side_x) const
{
    return side_x >= 0 ? filterYPos_ : filterYNeg_;
}

TransitionFilter &
FourWaySplitter::filterYMut(int side_x)
{
    return side_x >= 0 ? filterYPos_ : filterYNeg_;
}

AffinityEngine &
FourWaySplitter::engineY(int side_x)
{
    return side_x >= 0 ? engineYPos_ : engineYNeg_;
}

unsigned
FourWaySplitter::subset() const
{
    const int sx = filterX_.side();
    const int sy = filterY(sx).side();
    return (sx > 0 ? 0u : 2u) | (sy > 0 ? 0u : 1u);
}

SplitDecision
FourWaySplitter::onReference(uint64_t line, bool update_filter)
{
    SplitDecision out;
    const unsigned before = subset();

    const uint32_t h = hashMod31(line);
    out.sampled = h < config_.samplingCutoff;
    if (out.sampled) {
        if (h & 1) {
            // Odd residues drive the whole-set mechanism X.
            out.ae = engineX_.reference(line).ae;
            if (update_filter)
                filterX_.update(out.ae);
        } else {
            // Even residues drive the half-set mechanism selected by
            // the current sign of F_X.
            const int sx = filterX_.side();
            out.ae = engineY(sx).reference(line).ae;
            if (update_filter)
                filterYMut(sx).update(out.ae);
        }
    }

    out.subset = subset();
    XMIG_AUDIT(out.subset < 4, "4-way subset index %u", out.subset);
    out.transition = out.subset != before;
    if (out.transition)
        ++transitions_;
    return out;
}

} // namespace xmig
