#include "core/splitter.hpp"

#include "util/contracts.hpp"

namespace xmig {

TwoWaySplitter::TwoWaySplitter(const Config &config, OeStore &store)
    : config_(config),
      engine_(config.engine, store),
      filter_(config.filterBits)
{
}

SplitDecision
TwoWaySplitter::onReference(uint64_t line, bool update_filter)
{
    SplitDecision out;
    const unsigned before = subset();
    out.sampled = sampledLine(line, config_.samplingCutoff);
    if (out.sampled) {
        out.ae = engine_.reference(line).ae;
        if (update_filter)
            filter_.update(out.ae);
    }
    out.subset = subset();
    XMIG_AUDIT(out.subset < 2, "2-way subset index %u", out.subset);
    out.transition = out.subset != before;
    if (out.transition)
        ++transitions_;
    return out;
}

void
TwoWaySplitter::checkpoint(std::vector<EngineCheckpoint> &engines,
                           std::vector<FilterCheckpoint> &filters) const
{
    engines.push_back(engine_.checkpoint());
    filters.push_back(checkpointFilter(filter_));
}

void
TwoWaySplitter::restore(const std::vector<EngineCheckpoint> &engines,
                        const std::vector<FilterCheckpoint> &filters)
{
    XMIG_ASSERT(engines.size() == 1 && filters.size() == 1,
                "2-way checkpoint holds %zu engines / %zu filters",
                engines.size(), filters.size());
    engine_.restore(engines[0]);
    restoreFilter(filter_, filters[0]);
}

namespace {

EngineConfig
engineConfigOf(const FourWaySplitter::Config &config, size_t window,
               ShadowMode shadow, const char *tag)
{
    EngineConfig ec;
    ec.affinityBits = config.affinityBits;
    ec.windowSize = window;
    ec.window = config.window;
    ec.ar = config.ar;
    ec.shadow = shadow;
    ec.shadowDeepCheckEvery = config.shadowDeepCheckEvery;
    ec.shadowTag = tag;
    ec.faults = config.faults;
    return ec;
}

} // namespace

FourWaySplitter::FourWaySplitter(const Config &config, OeStore &store)
    : config_(config),
      engineX_(engineConfigOf(config, config.windowX, config.shadow, "X"),
               store),
      engineYPos_(engineConfigOf(config, config.windowY, ShadowMode::Off,
                                 "Y[+1]"),
                  store),
      engineYNeg_(engineConfigOf(config, config.windowY, ShadowMode::Off,
                                 "Y[-1]"),
                  store),
      filterX_(config.filterBits),
      filterYPos_(config.filterBits),
      filterYNeg_(config.filterBits)
{
}

const TransitionFilter &
FourWaySplitter::filterY(int side_x) const
{
    return side_x >= 0 ? filterYPos_ : filterYNeg_;
}

TransitionFilter &
FourWaySplitter::filterYMut(int side_x)
{
    return side_x >= 0 ? filterYPos_ : filterYNeg_;
}

AffinityEngine &
FourWaySplitter::engineY(int side_x)
{
    return side_x >= 0 ? engineYPos_ : engineYNeg_;
}

unsigned
FourWaySplitter::subset() const
{
    const int sx = filterX_.side();
    const int sy = filterY(sx).side();
    return (sx > 0 ? 0u : 2u) | (sy > 0 ? 0u : 1u);
}

SplitDecision
FourWaySplitter::onReference(uint64_t line, bool update_filter)
{
    SplitDecision out;
    const unsigned before = subset();

    const uint32_t h = hashMod31(line);
    out.sampled = h < config_.samplingCutoff;
    if (out.sampled) {
        if (h & 1) {
            // Odd residues drive the whole-set mechanism X.
            out.ae = engineX_.reference(line).ae;
            if (update_filter)
                filterX_.update(out.ae);
        } else {
            // Even residues drive the half-set mechanism selected by
            // the current sign of F_X.
            const int sx = filterX_.side();
            out.ae = engineY(sx).reference(line).ae;
            if (update_filter)
                filterYMut(sx).update(out.ae);
        }
    }

    out.subset = subset();
    XMIG_AUDIT(out.subset < 4, "4-way subset index %u", out.subset);
    out.transition = out.subset != before;
    if (out.transition)
        ++transitions_;
    return out;
}

void
FourWaySplitter::resetFilters()
{
    filterX_.reset();
    filterYPos_.reset();
    filterYNeg_.reset();
}

void
FourWaySplitter::checkpoint(std::vector<EngineCheckpoint> &engines,
                            std::vector<FilterCheckpoint> &filters) const
{
    engines.push_back(engineX_.checkpoint());
    engines.push_back(engineYPos_.checkpoint());
    engines.push_back(engineYNeg_.checkpoint());
    filters.push_back(checkpointFilter(filterX_));
    filters.push_back(checkpointFilter(filterYPos_));
    filters.push_back(checkpointFilter(filterYNeg_));
}

void
FourWaySplitter::restore(const std::vector<EngineCheckpoint> &engines,
                         const std::vector<FilterCheckpoint> &filters)
{
    XMIG_ASSERT(engines.size() == 3 && filters.size() == 3,
                "4-way checkpoint holds %zu engines / %zu filters",
                engines.size(), filters.size());
    engineX_.restore(engines[0]);
    engineYPos_.restore(engines[1]);
    engineYNeg_.restore(engines[2]);
    restoreFilter(filterX_, filters[0]);
    restoreFilter(filterYPos_, filters[1]);
    restoreFilter(filterYNeg_, filters[2]);
}

} // namespace xmig
