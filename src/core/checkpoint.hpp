/**
 * @file
 * xmig-iron checkpoint records for the affinity control plane.
 *
 * A checkpoint captures the *architectural* state of the splitting
 * mechanism — Delta, A_R, sum(I_e), the R-window contents (oldest
 * first) and the O_e store — plus enough counters to keep the
 * cross-layer audits coherent after a restore. Micro-architectural
 * state that only shapes timing (L1 contents, cache replacement ages,
 * CacheStats) is deliberately *not* part of a checkpoint: restoring
 * models a crash-recovery reboot with cold caches, so a restored run
 * is control-plane-exact but not cycle-identical for finite caches.
 *
 * Checkpoints are plain in-memory value types; serialization to disk
 * is out of scope (the crash-recovery tests restore within one
 * process).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/oe_store.hpp"
#include "core/rwindow.hpp"

namespace xmig {

/** Architectural state of one AffinityEngine. */
struct EngineCheckpoint
{
    int64_t delta = 0;
    int64_t windowAffinity = 0;
    int64_t sumIe = 0;          ///< ArKind::Exact running sum
    uint64_t references = 0;
    /** R-window contents, oldest first. */
    std::vector<WindowSlot> window;
};

/** State of one TransitionFilter. */
struct FilterCheckpoint
{
    int64_t value = 0;
    uint64_t transitions = 0;
    uint64_t updates = 0;
};

} // namespace xmig
