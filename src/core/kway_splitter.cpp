#include "core/kway_splitter.hpp"

#include "obs/journal.hpp"
#include "util/hashing.hpp"
#include "util/contracts.hpp"

namespace xmig {

KWaySplitter::KWaySplitter(const Config &config, OeStore &store)
    : config_(config)
{
    XMIG_ASSERT(config.depth >= 1 && config.depth <= 6,
                "depth %u out of range", config.depth);
    const size_t num_nodes = (size_t(1) << config.depth) - 1;
    nodes_.reserve(num_nodes);
    for (size_t i = 0; i < num_nodes; ++i) {
        // Level of heap node i is floor(log2(i+1)).
        unsigned level = 0;
        for (size_t v = i + 1; v > 1; v >>= 1)
            ++level;
        EngineConfig ec;
        ec.affinityBits = config.affinityBits;
        ec.windowSize =
            std::max<size_t>(4, config.rootWindow >> level);
        ec.window = config.window;
        ec.ar = config.ar;
        if (i == 0) {
            ec.shadow = config.shadow;
            ec.shadowDeepCheckEvery = config.shadowDeepCheckEvery;
            ec.shadowTag = "root";
        }
        ec.faults = config.faults;
        Node node;
        node.engine = std::make_unique<AffinityEngine>(ec, store);
        node.filter =
            std::make_unique<TransitionFilter>(config.filterBits);
        nodes_.push_back(std::move(node));
    }
}

size_t
KWaySplitter::nodeOnPath(unsigned level) const
{
    size_t idx = 0;
    for (unsigned l = 0; l < level; ++l)
        idx = 2 * idx + (nodes_[idx].filter->side() > 0 ? 1 : 2);
    // Heap-shape balance bound: the node selected for `level` must
    // lie inside that level's index band [2^level - 1, 2^(level+1) - 1)
    // and inside the allocated complete tree.
    XMIG_AUDIT(idx < nodes_.size() &&
                   idx + 1 >= (size_t(1) << level) &&
                   idx + 1 < (size_t(1) << (level + 1)),
               "k-way path node %zu outside level-%u band (of %zu nodes)",
               idx, level, nodes_.size());
    return idx;
}

unsigned
KWaySplitter::subset() const
{
    unsigned bits = 0;
    size_t idx = 0;
    for (unsigned l = 0; l < config_.depth; ++l) {
        const bool negative = nodes_[idx].filter->side() < 0;
        bits = (bits << 1) | (negative ? 1u : 0u);
        idx = 2 * idx + (negative ? 2 : 1);
    }
    return bits;
}

SplitDecision
KWaySplitter::onReference(uint64_t line, bool update_filter)
{
    SplitDecision out;
    const unsigned before = subset();

    const uint32_t h = hashMod31(line);
    out.sampled = h < config_.samplingCutoff;
    if (out.sampled) {
        // Spread sampled residues over the tree levels. The offset
        // makes depth 2 reproduce section 3.6 exactly: odd residues
        // drive the root (X), even ones the selected second-level
        // node (Y[sign(F_X)]).
        const unsigned level =
            (h + config_.depth - 1) % config_.depth;
        const size_t idx = nodeOnPath(level);
        Node &node = nodes_[idx];
        out.ae = node.engine->reference(line).ae;
        if (update_filter && node.filter->update(out.ae)) {
            XMIG_JOURNAL(journal_, obs::JournalKind::NodeFlip,
                         obs::JournalCause::Threshold,
                         static_cast<int64_t>(idx),
                         static_cast<int64_t>(level),
                         node.filter->value());
        }
    }

    out.subset = subset();
    XMIG_AUDIT(out.subset < numSubsets(),
               "k-way subset %u out of %u", out.subset, numSubsets());
    out.transition = out.subset != before;
    if (out.transition)
        ++transitions_;
    return out;
}

void
KWaySplitter::attachJournal(obs::Journal *journal)
{
    journal_ = journal;
    for (Node &node : nodes_)
        node.engine->attachJournal(journal);
}

void
KWaySplitter::resetFilters()
{
    for (Node &node : nodes_)
        node.filter->reset();
}

void
KWaySplitter::checkpoint(std::vector<EngineCheckpoint> &engines,
                         std::vector<FilterCheckpoint> &filters) const
{
    for (const Node &node : nodes_) {
        engines.push_back(node.engine->checkpoint());
        filters.push_back(checkpointFilter(*node.filter));
    }
}

void
KWaySplitter::restore(const std::vector<EngineCheckpoint> &engines,
                      const std::vector<FilterCheckpoint> &filters)
{
    XMIG_ASSERT(engines.size() == nodes_.size() &&
                    filters.size() == nodes_.size(),
                "k-way checkpoint holds %zu engines / %zu filters for "
                "%zu nodes",
                engines.size(), filters.size(), nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
        nodes_[i].engine->restore(engines[i]);
        restoreFilter(*nodes_[i].filter, filters[i]);
    }
}

} // namespace xmig
