/**
 * @file
 * The postponed-update affinity engine — Figure 2 of the paper.
 *
 * One engine realizes one 2-way splitting mechanism: it owns an
 * R-window, the running Delta, and the incremental window affinity
 * A_R, and shares an OeStore (the affinity cache) with sibling
 * mechanisms. Per reference it performs O(1) work:
 *
 *   O_e  = affinity_cache.lookup(e)        (miss: O_e = Delta)
 *   A_e  = O_e - Delta
 *   I_e  = O_e - 2 Delta                   (e enters R)
 *   O_f  = I_f + 2 Delta                   (f leaves R; written back)
 *   A_R += O_e - O_f
 *   Delta += sign(A_R)
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/checkpoint.hpp"
#include "core/oe_store.hpp"
#include "core/rwindow.hpp"
#include "util/saturating.hpp"

namespace xmig::obs {
class Journal;
class MetricsRegistry;
} // namespace xmig::obs

namespace xmig {

class FaultInjector;
class ShadowAudit;
class SoaAffinityStore;

/** Whether an engine runs the shadow-model oracle (shadow_audit.hpp). */
enum class ShadowMode : uint8_t
{
    Off,   ///< no shadow model (default; zero overhead)
    Armed, ///< lockstep DirectAffinityEngine, panic on divergence
};

/**
 * How the window affinity A_R is maintained.
 *
 * Definition 1 makes every member's A_e drift by sign(A_R) each
 * reference, so the true A_R = sum of member affinities also moves by
 * |R|*sign(A_R) per step. The Figure-2 register update
 * A_R += O_e - O_f captures entry/exit exactly but not that drift;
 * it is the literal hardware datapath. Exact instead tracks
 * sum(I_e) over the window and computes A_R = sum(I_e) + |R|*Delta,
 * which equals Definition 1's sum at every step and is still O(1).
 */
enum class ArKind : uint8_t
{
    Exact,   ///< A_R == Definition 1's sum of member affinities
    Figure2, ///< the paper's literal register recurrence
};

/** Static parameters of one affinity engine. */
struct EngineConfig
{
    unsigned affinityBits = 16; ///< bits[O_e] = bits[I_e]
    size_t windowSize = 128;    ///< |R|
    WindowKind window = WindowKind::Fifo;
    ArKind ar = ArKind::Exact;

    /** Run the shadow-model oracle in lockstep (shadow_audit.hpp). */
    ShadowMode shadow = ShadowMode::Off;

    /**
     * With the shadow armed, compare the affinity of *every* tracked
     * element each N references (0 disables the deep sweeps and
     * keeps only the per-reference A_e / A_R comparison).
     */
    uint64_t shadowDeepCheckEvery = 4096;

    /** Diagnostic tag naming this engine in shadow-audit messages. */
    const char *shadowTag = "engine";

    /**
     * xmig-iron soft-error hook: when non-null and the plan targets
     * Ae / Delta / Ar, reference() may flip a bit of the respective
     * register after the normal update. Null (the default) costs one
     * predictable branch; -DXMIG_FAULT=OFF removes the hook entirely.
     */
    FaultInjector *faults = nullptr;
};

/** Result of processing one reference. */
struct RefOutcome
{
    int64_t ae = 0;    ///< A_e(t) of the referenced line, pre-update
    bool inWindow = false; ///< DistinctLru only: e was already in R
};

/**
 * One 2-way working-set splitting mechanism (postponed update).
 */
class AffinityEngine
{
  public:
    /**
     * @param config engine parameters
     * @param store shared O_e storage (affinity cache); must outlive
     *        the engine
     */
    AffinityEngine(const EngineConfig &config, OeStore &store);
    ~AffinityEngine(); // = default; here for the ShadowAudit pimpl

    /** Process a reference to `line`; returns its affinity A_e(t). */
    RefOutcome reference(uint64_t line);

    /**
     * Process a run of `n` references, filling `out[0..n)` — the
     * xmig-bolt batch entry point. Byte-identical to n reference()
     * calls by construction: the common configuration (FIFO window,
     * exact A_R, no armed shadow, no armed fault plan) runs a tight
     * loop with the store probe devirtualized through a cached
     * concrete pointer; every other configuration falls back to
     * per-reference processing in the same order.
     */
    void referenceBatch(const uint64_t *lines, size_t n, RefOutcome *out);

    /** Current Delta value. */
    int64_t delta() const { return delta_.get(); }

    /** Current window affinity A_R. */
    int64_t windowAffinity() const { return windowAffinity_.get(); }

    /**
     * Current affinity of `line`: I_e + Delta if in the window,
     * O_e - Delta if in the store, nullopt if unknown. O(|R|) in the
     * FIFO case; snapshot/test use only.
     */
    std::optional<int64_t> affinityOf(uint64_t line) const;

    /** References processed. */
    uint64_t references() const { return references_; }

    const EngineConfig &config() const { return config_; }
    const OeStore &store() const { return store_; }

    /** The shadow-model oracle (nullptr when ShadowMode::Off). */
    const ShadowAudit *shadow() const { return shadow_.get(); }

    /**
     * Disarm the shadow oracle with a reason (no-op when off or
     * already disarmed). Used when an *external* actor knowingly
     * departs from the reference model: injected store corruption,
     * state restored from a checkpoint.
     */
    void disarmShadow(const char *reason);

    /** Capture the architectural engine state (checkpoint.hpp). */
    EngineCheckpoint checkpoint() const;

    /**
     * Restore a checkpoint taken from an engine with the same config.
     * The shadow oracle, if armed, is disarmed: its lockstep history
     * no longer matches. The checkpoint is trusted — a tampered
     * sumIe is *not* revalidated here, the paranoid A_R-drift audit
     * catches it on the next reference.
     */
    void restore(const EngineCheckpoint &ckpt);

    /**
     * Register this engine's live state under `prefix` (xmig-scope):
     * `<prefix>.references`, `.delta`, `.window_affinity`,
     * `.window_occupancy`. The engine must outlive the registry's
     * last export.
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Attach the xmig-lens causal journal (non-owning; may be null).
     * The engine records rare-path events only — external shadow
     * disarms — so an attached journal costs nothing per reference.
     */
    void attachJournal(obs::Journal *journal) { journal_ = journal; }

  private:
    int64_t saturate(int64_t v) const;

    /** O(|R|) paranoid check that the cached sum(I_e) has not drifted. */
    void auditWindowSum(size_t members) const;

    /** Apply armed Ae/Delta/Ar bit flips to this reference's outcome. */
    void injectSoftErrors(RefOutcome &out);

    EngineConfig config_;
    OeStore &store_;
    SoaAffinityStore *soaStore_ = nullptr; ///< store_, when SoA-backed
    SatInt delta_;          ///< bits[Delta] = bits[O_e] + 1
    SatInt windowAffinity_; ///< bits[A_R] = bits[O_e] + log2 |R|
    int64_t sumIe_ = 0;     ///< ArKind::Exact: sum of window I_e
    std::unique_ptr<FifoWindow> fifo_;
    std::unique_ptr<DistinctLruWindow> lru_;
    std::unique_ptr<ShadowAudit> shadow_;
    obs::Journal *journal_ = nullptr; ///< xmig-lens hook (may be null)
    uint64_t references_ = 0;
};

} // namespace xmig
