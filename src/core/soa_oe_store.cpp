#include "core/soa_oe_store.hpp"

#include <algorithm>
#include <bit>

#include "obs/trace.hpp"

namespace xmig {

SoaAffinityStore::SoaAffinityStore(const AffinityCacheConfig &config)
    : config_(config),
      rng_(config.seed)
{
    XMIG_ASSERT(config.entries % config.ways == 0,
                "affinity cache entries not divisible by ways");
    setsPerWay_ = config.entries / config.ways;
    XMIG_ASSERT(std::has_single_bit(setsPerWay_),
                "affinity cache sets must be a power of two");
    lines_.resize(config.entries, 0);
    payload_.resize(config.entries, 0);
    lastUse_.resize(config.entries, 0);
    inserted_.resize(config.entries, 0);
    age_.resize(config.entries, 0);
    valid_.resize(config.entries, 0);
}

size_t
SoaAffinityStore::allocateIndex(uint64_t line, uint64_t *evicted_line,
                                int64_t *evicted_oe, bool *evicted_valid)
{
    // pickVictim (tags.cpp): prefer the first invalid candidate in way
    // order; otherwise apply the policy over the candidate frames.
    unsigned victim = config_.ways;
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (!valid_[slotOf(line, w)]) {
            victim = w;
            break;
        }
    }
    if (victim == config_.ways) {
        switch (config_.repl) {
          case ReplPolicy::Lru: {
            unsigned best = 0;
            for (unsigned w = 1; w < config_.ways; ++w) {
                if (lastUse_[slotOf(line, w)] <
                    lastUse_[slotOf(line, best)])
                    best = w;
            }
            victim = best;
            break;
          }
          case ReplPolicy::Fifo: {
            unsigned best = 0;
            for (unsigned w = 1; w < config_.ways; ++w) {
                if (inserted_[slotOf(line, w)] <
                    inserted_[slotOf(line, best)])
                    best = w;
            }
            victim = best;
            break;
          }
          case ReplPolicy::Random:
            victim = static_cast<unsigned>(rng_.below(config_.ways));
            break;
          case ReplPolicy::Age: {
            // Evict the oldest age; break ties by LRU timestamp.
            unsigned best = 0;
            for (unsigned w = 1; w < config_.ways; ++w) {
                const size_t c = slotOf(line, w);
                const size_t b = slotOf(line, best);
                if (age_[c] > age_[b] ||
                    (age_[c] == age_[b] && lastUse_[c] < lastUse_[b]))
                    best = w;
            }
            victim = best;
            break;
          }
        }
    }
    XMIG_AUDIT(victim < config_.ways,
               "victim selection escaped the way range: %u of %u",
               victim, config_.ways);
    const size_t i = slotOf(line, victim);
    *evicted_valid = valid_[i] != 0;
    if (*evicted_valid) {
        *evicted_line = lines_[i];
        *evicted_oe = payload_[i];
    }
    ++clock_;
    lines_[i] = line;
    valid_[i] = 1;
    lastUse_[i] = clock_;
    inserted_[i] = clock_;
    age_[i] = 0;
    payload_[i] = 0;
    if (config_.repl == ReplPolicy::Age)
        ageTick();
    return i;
}

int64_t
SoaAffinityStore::lookupFast(uint64_t line, int64_t delta)
{
    ++stats_.lookups;
    auditConsistency();
    const size_t hit = findIndex(line);
    if (hit != kNoFrame) {
        // Hot path: one probe yields tag match AND O_e together.
        touchIndex(hit);
        return payload_[hit];
    }
    // Miss: allocate and force A_e = 0 by setting O_e = Delta.
    ++stats_.misses;
    uint64_t victim_line = 0;
    int64_t victim_oe = 0;
    bool victim_valid = false;
    const size_t i =
        allocateIndex(line, &victim_line, &victim_oe, &victim_valid);
    if (victim_valid) {
        ++stats_.evictions;
        XMIG_TRACE("affinity_cache", "evict",
                   {{"victim", victim_line},
                    {"for", line},
                    {"evictions", stats_.evictions}});
    } else {
        ++resident_;
    }
    const int64_t oe = saturateToBits(delta, config_.affinityBits);
    payload_[i] = oe;
    return oe;
}

void
SoaAffinityStore::storeFast(uint64_t line, int64_t oe)
{
    ++stats_.stores;
    auditConsistency();
    const int64_t sat = saturateToBits(oe, config_.affinityBits);
    const size_t hit = findIndex(line);
    if (hit != kNoFrame) {
        touchIndex(hit);
        payload_[hit] = sat;
        return;
    }
    // The entry was displaced while the line sat in the R-window;
    // re-allocate, as a hardware write-allocate affinity cache would.
    uint64_t victim_line = 0;
    int64_t victim_oe = 0;
    bool victim_valid = false;
    const size_t i =
        allocateIndex(line, &victim_line, &victim_oe, &victim_valid);
    if (victim_valid) {
        ++stats_.evictions;
        XMIG_TRACE("affinity_cache", "evict",
                   {{"victim", victim_line},
                    {"for", line},
                    {"evictions", stats_.evictions}});
    } else {
        ++resident_;
    }
    payload_[i] = sat;
}

void
SoaAffinityStore::auditConsistency()
{
    // Cheap bound every call (same as AffinityCacheStore).
    XMIG_AUDIT(resident_ <= config_.entries &&
                   stats_.evictions <= stats_.misses + stats_.stores,
               "affinity cache accounting desync: %llu resident / %llu "
               "entries, %llu evictions",
               (unsigned long long)resident_,
               (unsigned long long)config_.entries,
               (unsigned long long)stats_.evictions);
    if constexpr (kAuditParanoid) {
        if (++auditTick_ % 4096 != 0)
            return;
        uint64_t valid = 0;
        for (size_t i = 0; i < valid_.size(); ++i)
            valid += valid_[i] ? 1 : 0;
        XMIG_EXPECT(valid == resident_,
                    "occupancy desync: %llu valid tags, %llu resident",
                    (unsigned long long)valid,
                    (unsigned long long)resident_);
        const int64_t lo = SatInt::minForBits(config_.affinityBits);
        const int64_t hi = SatInt::maxForBits(config_.affinityBits);
        for (size_t i = 0; i < valid_.size(); ++i) {
            if (!valid_[i])
                continue;
            XMIG_EXPECT(payload_[i] >= lo && payload_[i] <= hi,
                        "O_e for line %llu escaped the %u-bit range: "
                        "%lld",
                        (unsigned long long)lines_[i],
                        config_.affinityBits, (long long)payload_[i]);
        }
    }
}

uint64_t
SoaAffinityStore::nthValidLine(uint64_t target) const
{
    // Frame-index order == SkewedTags/SetAssocTags forEachValid order.
    uint64_t i = 0;
    for (size_t f = 0; f < valid_.size(); ++f) {
        if (valid_[f] && i++ == target)
            return lines_[f];
    }
    XMIG_PANIC("nthValidLine(%llu) out of %llu resident",
               (unsigned long long)target,
               (unsigned long long)resident_);
}

bool
SoaAffinityStore::corruptRandomEntry(Rng &rng)
{
    if (resident_ == 0)
        return false;
    const uint64_t line = nthValidLine(rng.below(resident_));
    const size_t i = findIndex(line);
    XMIG_ASSERT(i != kNoFrame, "valid frame vanished under fault "
                               "injection");
    const uint64_t flipped =
        static_cast<uint64_t>(payload_[i]) ^
        (uint64_t{1} << rng.below(config_.affinityBits));
    payload_[i] = saturateToBits(static_cast<int64_t>(flipped),
                                 config_.affinityBits);
    return true;
}

bool
SoaAffinityStore::dropRandomEntry(Rng &rng)
{
    if (resident_ == 0)
        return false;
    const uint64_t line = nthValidLine(rng.below(resident_));
    const size_t i = findIndex(line);
    // A corrupted tag loses the entry as a whole: the O_e word rides
    // in the frame, so tag and value go together by construction.
    XMIG_AUDIT(i != kNoFrame, "line %llu had no tag to drop",
               (unsigned long long)line);
    valid_[i] = 0;
    --resident_;
    return true;
}

void
SoaAffinityStore::snapshotEntries(std::vector<OeEntrySnapshot> &out)
    const
{
    out.reserve(out.size() + resident_);
    for (size_t f = 0; f < valid_.size(); ++f) {
        if (valid_[f])
            out.push_back({lines_[f], payload_[f]});
    }
    std::sort(out.begin(), out.end(),
              [](const OeEntrySnapshot &a, const OeEntrySnapshot &b) {
                  return a.line < b.line;
              });
}

void
SoaAffinityStore::restoreEntries(
    const std::vector<OeEntrySnapshot> &entries, const OeStoreStats &stats)
{
    // Same rebuild-from-scratch semantics as AffinityCacheStore:
    // invalidate everything, then greedy sorted re-insertion (which
    // may displace an already-restored line; it re-initializes to
    // A_e = 0 on its next touch, like an ordinary capacity eviction).
    std::fill(valid_.begin(), valid_.end(), uint8_t{0});
    resident_ = 0;

    uint64_t victim_line = 0;
    int64_t victim_oe = 0;
    bool victim_valid = false;
    for (const OeEntrySnapshot &e : entries) {
        const size_t i = allocateIndex(e.line, &victim_line, &victim_oe,
                                       &victim_valid);
        if (!victim_valid)
            ++resident_;
        payload_[i] = saturateToBits(e.oe, config_.affinityBits);
    }
    stats_ = stats;
    XMIG_AUDIT(resident_ <= config_.entries &&
                   resident_ <= entries.size(),
               "restore overfilled the affinity cache: %llu resident "
               "from %zu snapshot entries (%llu frames)",
               (unsigned long long)resident_, entries.size(),
               (unsigned long long)config_.entries);
}

std::optional<int64_t>
SoaAffinityStore::peek(uint64_t line) const
{
    const size_t i = findIndex(line);
    if (i == kNoFrame)
        return std::nullopt;
    return payload_[i];
}

} // namespace xmig
