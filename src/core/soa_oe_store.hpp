/**
 * @file
 * Structure-of-arrays affinity cache (xmig-bolt hot-path layout).
 *
 * SoaAffinityStore is a bit-for-bit behavioral replica of
 * AffinityCacheStore (oe_store.hpp) with the frame record exploded
 * into parallel arrays: tags, O_e payloads, and replacement metadata
 * each live in their own contiguous vector. A probe then touches ~8
 * bytes per candidate way instead of a whole ~48-byte CacheEntry, the
 * 8k-entry tag array fits in L1, and the periodic age sweep of the
 * Age replacement policy runs over two plain byte arrays the compiler
 * can vectorize.
 *
 * "Bit-for-bit" is a hard contract, not an aspiration: the decision
 * stream (hits, victims, evictions, trace events, audit cadence,
 * snapshot order, fault picks) must be indistinguishable from the
 * AoS store so that AffinityCacheConfig::soa can flip layouts without
 * perturbing a single simulation result. test_oe_store and
 * test_batch_determinism drive both layouts through identical
 * stimulus and compare every observable.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/tags.hpp"
#include "core/oe_store.hpp"
#include "util/contracts.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"
#include "util/saturating.hpp"

namespace xmig {

/**
 * SoA replica of the finite affinity cache.
 *
 * Supports every AffinityCacheConfig (skewed or set-associative
 * indexing, any ReplPolicy), replicating SkewedTags / SetAssocTags
 * placement, replacement, and clock semantics exactly.
 */
class SoaAffinityStore : public OeStore
{
  public:
    explicit SoaAffinityStore(const AffinityCacheConfig &config);

    int64_t
    lookup(uint64_t line, int64_t delta) override
    {
        return lookupFast(line, delta);
    }

    void
    store(uint64_t line, int64_t oe) override
    {
        storeFast(line, oe);
    }

    std::optional<int64_t> peek(uint64_t line) const override;
    const OeStoreStats &stats() const override { return stats_; }

    bool corruptRandomEntry(Rng &rng) override;
    bool dropRandomEntry(Rng &rng) override;

    void snapshotEntries(std::vector<OeEntrySnapshot> &out) const override;
    void restoreEntries(const std::vector<OeEntrySnapshot> &entries,
                        const OeStoreStats &stats) override;

    /**
     * Non-virtual hot-path entry points: batch loops that hold a
     * concrete SoaAffinityStore* call these directly, skipping the
     * vtable. The virtual overrides above are thin forwards, so both
     * paths are literally the same code.
     */
    int64_t lookupFast(uint64_t line, int64_t delta);
    void storeFast(uint64_t line, int64_t oe);

    /** Valid entries; maintained incrementally, O(1). */
    uint64_t occupancy() const { return resident_; }
    const AffinityCacheConfig &config() const { return config_; }

    /** Same storage accounting as AffinityCacheStore::storageBits. */
    uint64_t
    storageBits(unsigned tag_bits = 20) const
    {
        return config_.entries *
               (uint64_t(tag_bits) + config_.affinityBits + 2);
    }

  private:
    static constexpr size_t kNoFrame = ~size_t{0};

    /** Candidate frame index of `line` in `way` (bank for skewed). */
    size_t
    slotOf(uint64_t line, unsigned way) const
    {
        if (config_.skewed) {
            // SkewedTags::slotOf: bank 0 is straight modulo, other
            // banks use the skewing hashes; frames are bank-major.
            const uint64_t set = way == 0
                ? (line & (setsPerWay_ - 1))
                : skewHash(line, way, setsPerWay_);
            return size_t(way) * setsPerWay_ + set;
        }
        // SetAssocTags: set-major layout, way-contiguous within a set.
        return size_t(line & (setsPerWay_ - 1)) * config_.ways + way;
    }

    /** Frame index holding `line`, or kNoFrame. */
    size_t
    findIndex(uint64_t line) const
    {
        if (config_.skewed) {
            for (unsigned w = 0; w < config_.ways; ++w) {
                const size_t i = slotOf(line, w);
                if (valid_[i] && lines_[i] == line)
                    return i;
            }
            return kNoFrame;
        }
        const size_t base = size_t(line & (setsPerWay_ - 1)) *
                            config_.ways;
        for (unsigned w = 0; w < config_.ways; ++w) {
            if (valid_[base + w] && lines_[base + w] == line)
                return base + w;
        }
        return kNoFrame;
    }

    /** SkewedTags/SetAssocTags::touch, over the exploded arrays. */
    void
    touchIndex(size_t i)
    {
        lastUse_[i] = ++clock_;
        age_[i] = 0;
        if (config_.repl == ReplPolicy::Age)
            ageTick();
    }

    /** The shared ageTick: vectorizable over the byte arrays. */
    void
    ageTick()
    {
        const uint64_t window = lines_.size() / 4 + 1;
        if (clock_ % window != 0)
            return;
        for (size_t i = 0; i < age_.size(); ++i) {
            if (valid_[i] && age_[i] < 3)
                ++age_[i];
        }
    }

    /** pickVictim + frame install, replicating TagStore::allocate. */
    size_t allocateIndex(uint64_t line, uint64_t *evicted_line,
                         int64_t *evicted_oe, bool *evicted_valid);

    /** Cheap per-call accounting audit + periodic paranoid sweep. */
    void auditConsistency();

    /** The `target`-th valid frame's line, in frame-index order. */
    uint64_t nthValidLine(uint64_t target) const;

    AffinityCacheConfig config_;
    uint64_t setsPerWay_ = 0; ///< sets per bank (skewed) or set count
    uint64_t clock_ = 0;      ///< replacement clock (TagStore::clock_)
    Rng rng_;                 ///< consumed only by ReplPolicy::Random

    // The frame record, exploded (one slot per frame, frame-indexed).
    std::vector<uint64_t> lines_;   ///< tag: full line address
    std::vector<int64_t> payload_;  ///< O_e value
    std::vector<uint64_t> lastUse_; ///< LRU timestamp
    std::vector<uint64_t> inserted_; ///< FIFO timestamp
    std::vector<uint8_t> age_;      ///< 2-bit age counters
    std::vector<uint8_t> valid_;    ///< validity (0/1)

    uint64_t resident_ = 0; ///< valid entries (mirrors tag occupancy)
    OeStoreStats stats_;
    uint64_t auditTick_ = 0; ///< paranoid reconciliation cadence
};

} // namespace xmig
