#include "core/migration_controller.hpp"

#include <bit>

#include "util/logging.hpp"

namespace xmig {

MigrationController::MigrationController(
    const MigrationControllerConfig &config)
    : config_(config)
{
    XMIG_ASSERT(config.numCores >= 2 && config.numCores <= 64 &&
                (config.numCores & (config.numCores - 1)) == 0,
                "splitting needs a power-of-two core count in [2, 64], "
                "not %u", config.numCores);

    if (config_.boundedStore) {
        AffinityCacheConfig ac = config_.affinityCache;
        ac.affinityBits = config_.affinityBits;
        store_ = std::make_unique<AffinityCacheStore>(ac);
    } else {
        store_ = std::make_unique<UnboundedOeStore>(config_.affinityBits);
    }

    if (config_.numCores == 2) {
        TwoWaySplitter::Config sc;
        sc.engine.affinityBits = config_.affinityBits;
        sc.engine.windowSize = config_.windowX;
        sc.engine.window = config_.window;
        sc.engine.ar = config_.ar;
        sc.filterBits = config_.filterBits;
        sc.samplingCutoff = config_.samplingCutoff;
        two_ = std::make_unique<TwoWaySplitter>(sc, *store_);
    } else if (config_.numCores == 4) {
        FourWaySplitter::Config sc;
        sc.affinityBits = config_.affinityBits;
        sc.windowX = config_.windowX;
        sc.windowY = config_.windowY;
        sc.window = config_.window;
        sc.ar = config_.ar;
        sc.filterBits = config_.filterBits;
        sc.samplingCutoff = config_.samplingCutoff;
        four_ = std::make_unique<FourWaySplitter>(sc, *store_);
    } else {
        KWaySplitter::Config sc;
        sc.depth = static_cast<unsigned>(
            std::countr_zero(config_.numCores));
        sc.affinityBits = config_.affinityBits;
        sc.rootWindow = config_.windowX;
        sc.window = config_.window;
        sc.ar = config_.ar;
        sc.filterBits = config_.filterBits;
        sc.samplingCutoff = config_.samplingCutoff;
        kway_ = std::make_unique<KWaySplitter>(sc, *store_);
    }
}

unsigned
MigrationController::subset() const
{
    if (two_)
        return two_->subset();
    if (four_)
        return four_->subset();
    return kway_->subset();
}

unsigned
MigrationController::onRequest(uint64_t line, bool l2_miss,
                               bool pointer_load)
{
    ++stats_.requests;
    const bool update_filter =
        (!config_.l2Filtering || l2_miss) &&
        (!config_.pointerLoadFilter || pointer_load);

    SplitDecision decision = two_
        ? two_->onReference(line, update_filter)
        : four_ ? four_->onReference(line, update_filter)
                : kway_->onReference(line, update_filter);

    if (decision.sampled && update_filter)
        ++stats_.filterUpdates;
    if (decision.transition)
        ++stats_.transitions;

    if (decision.subset != activeCore_) {
        ++stats_.migrations;
        activeCore_ = decision.subset;
    }
    return activeCore_;
}

std::optional<int64_t>
MigrationController::affinityOf(uint64_t line) const
{
    if (two_)
        return two_->engine().affinityOf(line);
    if (four_)
        return four_->engineX().affinityOf(line);
    // The k-way tree shares one store; peek it directly.
    return store_->peek(line);
}

uint64_t
MigrationController::splitterTransitions() const
{
    if (two_)
        return two_->transitions();
    if (four_)
        return four_->transitions();
    return kway_->transitions();
}

} // namespace xmig
