#include "core/migration_controller.hpp"

#include <bit>

#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace xmig {

MigrationController::MigrationController(
    const MigrationControllerConfig &config)
    : config_(config)
{
    XMIG_ASSERT(config.numCores >= 2 && config.numCores <= 64 &&
                (config.numCores & (config.numCores - 1)) == 0,
                "splitting needs a power-of-two core count in [2, 64], "
                "not %u", config.numCores);

    if (config_.boundedStore) {
        AffinityCacheConfig ac = config_.affinityCache;
        ac.affinityBits = config_.affinityBits;
        store_ = std::make_unique<AffinityCacheStore>(ac);
    } else {
        store_ = std::make_unique<UnboundedOeStore>(config_.affinityBits);
    }

    const ShadowMode shadow =
        config_.shadowAudit ? ShadowMode::Armed : ShadowMode::Off;
    if (config_.numCores == 2) {
        TwoWaySplitter::Config sc;
        sc.engine.affinityBits = config_.affinityBits;
        sc.engine.windowSize = config_.windowX;
        sc.engine.window = config_.window;
        sc.engine.ar = config_.ar;
        sc.engine.shadow = shadow;
        sc.engine.shadowDeepCheckEvery = config_.shadowDeepCheckEvery;
        sc.engine.shadowTag = "X";
        sc.filterBits = config_.filterBits;
        sc.samplingCutoff = config_.samplingCutoff;
        two_ = std::make_unique<TwoWaySplitter>(sc, *store_);
    } else if (config_.numCores == 4) {
        FourWaySplitter::Config sc;
        sc.affinityBits = config_.affinityBits;
        sc.windowX = config_.windowX;
        sc.windowY = config_.windowY;
        sc.window = config_.window;
        sc.ar = config_.ar;
        sc.filterBits = config_.filterBits;
        sc.samplingCutoff = config_.samplingCutoff;
        sc.shadow = shadow;
        sc.shadowDeepCheckEvery = config_.shadowDeepCheckEvery;
        four_ = std::make_unique<FourWaySplitter>(sc, *store_);
    } else {
        KWaySplitter::Config sc;
        sc.depth = static_cast<unsigned>(
            std::countr_zero(config_.numCores));
        sc.affinityBits = config_.affinityBits;
        sc.rootWindow = config_.windowX;
        sc.window = config_.window;
        sc.ar = config_.ar;
        sc.filterBits = config_.filterBits;
        sc.samplingCutoff = config_.samplingCutoff;
        sc.shadow = shadow;
        sc.shadowDeepCheckEvery = config_.shadowDeepCheckEvery;
        kway_ = std::make_unique<KWaySplitter>(sc, *store_);
    }
}

unsigned
MigrationController::subset() const
{
    if (two_)
        return two_->subset();
    if (four_)
        return four_->subset();
    return kway_->subset();
}

unsigned
MigrationController::onRequest(uint64_t line, bool l2_miss,
                               bool pointer_load)
{
    ++stats_.requests;
    const bool update_filter =
        (!config_.l2Filtering || l2_miss) &&
        (!config_.pointerLoadFilter || pointer_load);

    SplitDecision decision = two_
        ? two_->onReference(line, update_filter)
        : four_ ? four_->onReference(line, update_filter)
                : kway_->onReference(line, update_filter);

    if (decision.sampled && update_filter)
        ++stats_.filterUpdates;
    if (decision.transition)
        ++stats_.transitions;

    // Controller state-transition invariants: the splitter may only
    // name a real core, the subset can only move when the filters
    // were allowed to move, and a migration is exactly a subset
    // change relative to the current placement.
    XMIG_AUDIT(decision.subset < config_.numCores,
               "splitter chose subset %u of %u cores", decision.subset,
               config_.numCores);
    XMIG_AUDIT(update_filter || !decision.transition,
               "transition while the filter was frozen (L2/pointer "
               "filtering violated)");
    if (decision.subset != activeCore_) {
        ++stats_.migrations;
        XMIG_TRACE("migration", "migrate",
                   {{"from", activeCore_},
                    {"to", decision.subset},
                    {"line", line},
                    {"n", stats_.migrations}});
        activeCore_ = decision.subset;
    }
    XMIG_AUDIT(stats_.migrations <= stats_.transitions &&
                   stats_.transitions == splitterTransitions(),
               "controller statistics desync: %llu migrations, %llu "
               "transitions, splitter says %llu",
               (unsigned long long)stats_.migrations,
               (unsigned long long)stats_.transitions,
               (unsigned long long)splitterTransitions());
    return activeCore_;
}

std::optional<int64_t>
MigrationController::affinityOf(uint64_t line) const
{
    if (two_)
        return two_->engine().affinityOf(line);
    if (four_)
        return four_->engineX().affinityOf(line);
    // The k-way tree shares one store; peek it directly.
    return store_->peek(line);
}

const ShadowAudit *
MigrationController::shadowAudit() const
{
    if (two_)
        return two_->engine().shadow();
    if (four_)
        return four_->engineX().shadow();
    return kway_->rootEngine().shadow();
}

const AffinityEngine &
MigrationController::rootEngine() const
{
    if (two_)
        return two_->engine();
    if (four_)
        return four_->engineX();
    return kway_->rootEngine();
}

const TransitionFilter &
MigrationController::rootFilter() const
{
    if (two_)
        return two_->filter();
    if (four_)
        return four_->filterX();
    return kway_->rootFilter();
}

uint64_t
MigrationController::splitterTransitions() const
{
    if (two_)
        return two_->transitions();
    if (four_)
        return four_->transitions();
    return kway_->transitions();
}

} // namespace xmig
