#include "core/migration_controller.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "core/soa_oe_store.hpp"
#include "fault/fault_injector.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/logging.hpp"

namespace xmig {

MigrationController::MigrationController(
    const MigrationControllerConfig &config)
    : config_(config), watchdog_(config.watchdog)
{
    XMIG_ASSERT(config.numCores >= 2 && config.numCores <= 64 &&
                (config.numCores & (config.numCores - 1)) == 0,
                "splitting needs a power-of-two core count in [2, 64], "
                "not %u", config.numCores);

    liveMask_ = config_.numCores == 64
        ? ~uint64_t{0}
        : (uint64_t{1} << config_.numCores) - 1;
    splitWays_ = config_.numCores;
    backoff_ = config_.retry.backoffBase;

    store_ = makeStore();
    buildSplitter(splitWays_);
    recomputeMapping();
}

std::unique_ptr<OeStore>
MigrationController::makeStore() const
{
    if (config_.boundedStore) {
        AffinityCacheConfig ac = config_.affinityCache;
        ac.affinityBits = config_.affinityBits;
        if (ac.soa)
            return std::make_unique<SoaAffinityStore>(ac);
        return std::make_unique<AffinityCacheStore>(ac);
    }
    return std::make_unique<UnboundedOeStore>(config_.affinityBits);
}

void
MigrationController::buildSplitter(unsigned ways)
{
    XMIG_ASSERT(ways >= 2 && (ways & (ways - 1)) == 0,
                "cannot build a %u-way splitter", ways);
    const ShadowMode shadow =
        config_.shadowAudit ? ShadowMode::Armed : ShadowMode::Off;
    if (ways == 2) {
        TwoWaySplitter::Config sc;
        sc.engine.affinityBits = config_.affinityBits;
        sc.engine.windowSize = config_.windowX;
        sc.engine.window = config_.window;
        sc.engine.ar = config_.ar;
        sc.engine.shadow = shadow;
        sc.engine.shadowDeepCheckEvery = config_.shadowDeepCheckEvery;
        sc.engine.shadowTag = "X";
        sc.engine.faults = config_.faults;
        sc.filterBits = config_.filterBits;
        sc.samplingCutoff = config_.samplingCutoff;
        two_ = std::make_unique<TwoWaySplitter>(sc, *store_);
    } else if (ways == 4) {
        FourWaySplitter::Config sc;
        sc.affinityBits = config_.affinityBits;
        sc.windowX = config_.windowX;
        sc.windowY = config_.windowY;
        sc.window = config_.window;
        sc.ar = config_.ar;
        sc.filterBits = config_.filterBits;
        sc.samplingCutoff = config_.samplingCutoff;
        sc.shadow = shadow;
        sc.shadowDeepCheckEvery = config_.shadowDeepCheckEvery;
        sc.faults = config_.faults;
        four_ = std::make_unique<FourWaySplitter>(sc, *store_);
    } else {
        KWaySplitter::Config sc;
        sc.depth = static_cast<unsigned>(std::countr_zero(ways));
        sc.affinityBits = config_.affinityBits;
        sc.rootWindow = config_.windowX;
        sc.window = config_.window;
        sc.ar = config_.ar;
        sc.filterBits = config_.filterBits;
        sc.samplingCutoff = config_.samplingCutoff;
        sc.shadow = shadow;
        sc.shadowDeepCheckEvery = config_.shadowDeepCheckEvery;
        sc.faults = config_.faults;
        kway_ = std::make_unique<KWaySplitter>(sc, *store_);
    }
    // Keep the causal journal attached across resplits/restores.
    if (journal_ != nullptr) {
        if (two_)
            two_->attachJournal(journal_);
        else if (four_)
            four_->attachJournal(journal_);
        else if (kway_)
            kway_->attachJournal(journal_);
    }
}

void
MigrationController::attachJournal(obs::Journal *journal)
{
    // Exactly one splitter flavor is live (or none before the first
    // buildSplitter); re-attachment after a resplit relies on that.
    XMIG_ASSERT((two_ != nullptr) + (four_ != nullptr) +
                        (kway_ != nullptr) <= 1,
                "more than one splitter flavor is live");
    journal_ = journal;
    if (two_)
        two_->attachJournal(journal);
    else if (four_)
        four_->attachJournal(journal);
    else if (kway_)
        kway_->attachJournal(journal);
    watchdog_.attachJournal(journal);
    if (config_.faults != nullptr)
        config_.faults->attachJournal(journal);
}

int64_t
MigrationController::rootArForJournal() const
{
    return splitWays_ > 1 ? rootEngine().windowAffinity() : 0;
}

int64_t
MigrationController::rootFilterForJournal() const
{
    return splitWays_ > 1 ? rootFilter().value() : 0;
}

void
MigrationController::retireSplitter()
{
    if (two_)
        retiredTwo_.push_back(std::move(two_));
    if (four_)
        retiredFour_.push_back(std::move(four_));
    if (kway_)
        retiredKway_.push_back(std::move(kway_));
    XMIG_AUDIT(!two_ && !four_ && !kway_,
               "a splitter survived retirement");
}

void
MigrationController::recomputeMapping()
{
    subsetToCore_.assign(splitWays_, 0);
    unsigned s = 0;
    for (unsigned c = 0; c < config_.numCores && s < splitWays_; ++c) {
        if (liveMask_ >> c & 1)
            subsetToCore_[s++] = c;
    }
    XMIG_ASSERT(s == splitWays_,
                "only %u live cores for a %u-way split", s, splitWays_);
}

void
MigrationController::applyTopology()
{
    const unsigned live =
        static_cast<unsigned>(std::popcount(liveMask_));
    unsigned ways = 1;
    while (ways * 2 <= live)
        ways *= 2;
    ways = std::min(ways, config_.numCores);
    if (ways != splitWays_) {
        // The retired store's O_e values are relative to the retired
        // engines' Delta registers, so the rebuilt splitter gets a
        // fresh store and re-learns the working-set split. Retire, do
        // not destroy: registered metric gauges hold references.
        retireSplitter();
        retiredStores_.push_back(std::move(store_));
        store_ = makeStore();
        splitWays_ = ways;
        transitionsBase_ = stats_.transitions;
        if (ways > 1)
            buildSplitter(ways);
        ++recovery_.resplits;
        const uint64_t gap = stats_.requests - lastResplitAt_;
        resplitGap_.record(gap);
        lastResplitAt_ = stats_.requests;
        XMIG_TRACE("fault", "resplit",
                   {{"ways", ways}, {"live_cores", live}});
        XMIG_JOURNAL(journal_, obs::JournalKind::Resplit,
                     obs::JournalCause::FaultForced,
                     static_cast<int64_t>(ways),
                     static_cast<int64_t>(liveMask_),
                     static_cast<int64_t>(gap));
    }
    recomputeMapping();
    XMIG_AUDIT(std::has_single_bit(splitWays_) && splitWays_ <= live,
               "split arity %u is not a live-fitting power of two "
               "(%u live cores)", splitWays_, live);
}

unsigned
MigrationController::liveCores() const
{
    return static_cast<unsigned>(std::popcount(liveMask_));
}

unsigned
MigrationController::coreForSubset(unsigned subset) const
{
    XMIG_ASSERT(subset < subsetToCore_.size(),
                "subset %u of %zu", subset, subsetToCore_.size());
    return subsetToCore_[subset];
}

void
MigrationController::setCoreOffline(unsigned core)
{
    if (core >= config_.numCores || !(liveMask_ >> core & 1)) {
        XMIG_WARN("core_off for core %u ignored (unknown or already "
                  "offline)", core);
        return;
    }
    if (std::popcount(liveMask_) == 1) {
        XMIG_WARN("refusing to take the last live core %u offline", core);
        return;
    }
    liveMask_ &= ~(uint64_t{1} << core);
    ++recovery_.coresLost;
    if (pendingValid_ && pendingTarget_ == core)
        pendingValid_ = false; // in-flight target vanished
    if (activeCore_ == core) {
        // The execution's host died: restart on the lowest live core.
        const unsigned refuge =
            static_cast<unsigned>(std::countr_zero(liveMask_));
        XMIG_TRACE("fault", "forced_migration",
                   {{"from", core}, {"to", refuge}});
        XMIG_JOURNAL(journal_, obs::JournalKind::ForcedMigration,
                     obs::JournalCause::FaultForced,
                     static_cast<int64_t>(core),
                     static_cast<int64_t>(refuge));
        activeCore_ = refuge;
        ++stats_.migrations;
        ++recovery_.forcedMigrations;
    }
    applyTopology();
    XMIG_AUDIT(liveMask_ >> activeCore_ & 1,
               "active core %u left dead after core-off recovery",
               activeCore_);
}

void
MigrationController::setCoreOnline(unsigned core)
{
    if (core >= config_.numCores || (liveMask_ >> core & 1)) {
        XMIG_WARN("core_on for core %u ignored (unknown or already "
                  "online)", core);
        return;
    }
    liveMask_ |= uint64_t{1} << core;
    ++recovery_.coresJoined;
    applyTopology();
    XMIG_AUDIT((liveMask_ >> core & 1) &&
                   (liveMask_ >> activeCore_ & 1),
               "rejoin of core %u left the topology inconsistent",
               core);
}

unsigned
MigrationController::subset() const
{
    if (two_)
        return two_->subset();
    if (four_)
        return four_->subset();
    if (kway_)
        return kway_->subset();
    return 0;
}

void
MigrationController::injectStoreFaults()
{
    XMIG_ASSERT(config_.faults != nullptr,
                "injectStoreFaults called with no injector armed");
    FaultInjector &fi = *config_.faults;
    if (fi.armedFor(FaultSite::OeEntry) && fi.draw(FaultSite::OeEntry) &&
        store_->corruptRandomEntry(fi.rng())) {
        ++recovery_.storeCorruptions;
        disarmRootShadow("injected O_e corruption");
    }
    if (fi.armedFor(FaultSite::CacheTag) &&
        fi.draw(FaultSite::CacheTag) &&
        store_->dropRandomEntry(fi.rng())) {
        ++recovery_.storeDrops;
        disarmRootShadow("injected affinity-cache tag corruption");
    }
}

void
MigrationController::disarmRootShadow(const char *reason)
{
    XMIG_AUDIT((two_ != nullptr) + (four_ != nullptr) +
                       (kway_ != nullptr) <= 1,
               "more than one splitter is live");
    if (two_)
        two_->engine().disarmShadow(reason);
    else if (four_)
        four_->engineX().disarmShadow(reason);
    else if (kway_)
        kway_->rootEngine().disarmShadow(reason);
}

void
MigrationController::serviceMigrationFabric(uint64_t now)
{
    if (!pendingValid_)
        return;
    XMIG_AUDIT(now >= pendingIssued_,
               "fabric serviced backwards in time: now=%llu < "
               "issued=%llu", (unsigned long long)now,
               (unsigned long long)pendingIssued_);
    if (now >= pendingDue_) {
        // Delivery: the fabric acknowledged the (delayed) request.
        const unsigned target = pendingTarget_;
        pendingValid_ = false;
        if (liveMask_ >> target & 1)
            completeMigration(target, now,
                              obs::JournalCause::FabricDelivery);
        return;
    }
    if (now - pendingIssued_ >= config_.retry.timeoutRequests) {
        // Lost (dropped, or delayed past the timeout): back off and
        // let the next divergent decision re-issue.
        pendingValid_ = false;
        ++recovery_.migTimeouts;
        nextIssueAllowed_ = now + backoff_;
        backoff_ = std::min(backoff_ * 2, config_.retry.backoffCap);
        retryPending_ = true;
        XMIG_TRACE("fault", "migration_timeout",
                   {{"target", pendingTarget_},
                    {"backoff", backoff_}});
        XMIG_JOURNAL(journal_, obs::JournalKind::MigrationTimeout,
                     obs::JournalCause::FaultForced,
                     static_cast<int64_t>(pendingTarget_),
                     static_cast<int64_t>(backoff_));
    }
}

void
MigrationController::requestMigration(unsigned target, uint64_t now)
{
    XMIG_ASSERT(target < config_.numCores,
                "migration request to nonexistent core %u", target);
    if (watchdog_.enabled() && !watchdog_.migrationAllowed(now)) {
        XMIG_JOURNAL(journal_, obs::JournalKind::MigrationVeto,
                     obs::JournalCause::WatchdogVeto,
                     static_cast<int64_t>(target), rootArForJournal(),
                     rootFilterForJournal());
        return;
    }

    bool fabric_faulty = false;
    if constexpr (kFaultEnabled) {
        fabric_faulty = config_.faults &&
            (config_.faults->armedFor(FaultSite::MigDrop) ||
             config_.faults->armedFor(FaultSite::MigDelay));
    }
    if (!fabric_faulty) {
        // Ideal fabric: the classic instantaneous migration.
        completeMigration(target, now, obs::JournalCause::Threshold);
        return;
    }

    if (pendingValid_) {
        if (pendingTarget_ == target)
            return; // already in flight
        pendingValid_ = false; // superseded by a new target
    }
    if (now < nextIssueAllowed_)
        return; // backing off after a timeout
    if (retryPending_) {
        ++recovery_.migRetries;
        retryPending_ = false;
        XMIG_JOURNAL(journal_, obs::JournalKind::MigrationRetry,
                     obs::JournalCause::FaultForced,
                     static_cast<int64_t>(target),
                     static_cast<int64_t>(recovery_.migRetries));
    }

    FaultInjector &fi = *config_.faults;
    if (fi.armedFor(FaultSite::MigDrop) && fi.draw(FaultSite::MigDrop)) {
        // Silently lost: only the timeout will notice.
        pendingValid_ = true;
        pendingTarget_ = target;
        pendingIssued_ = now;
        pendingDue_ = UINT64_MAX;
        ++recovery_.migDropped;
        XMIG_JOURNAL(journal_, obs::JournalKind::MigrationDrop,
                     obs::JournalCause::FaultForced,
                     static_cast<int64_t>(target));
        return;
    }
    if (fi.armedFor(FaultSite::MigDelay) &&
        fi.draw(FaultSite::MigDelay)) {
        pendingValid_ = true;
        pendingTarget_ = target;
        pendingIssued_ = now;
        pendingDue_ = now + fi.migrationDelay();
        ++recovery_.migDelayed;
        XMIG_JOURNAL(journal_, obs::JournalKind::MigrationDelay,
                     obs::JournalCause::FaultForced,
                     static_cast<int64_t>(target),
                     static_cast<int64_t>(pendingDue_ - now));
        return;
    }
    completeMigration(target, now, obs::JournalCause::Threshold);
}

void
MigrationController::completeMigration(unsigned target, uint64_t now,
                                       obs::JournalCause cause)
{
    XMIG_ASSERT(liveMask_ >> target & 1,
                "migration to offline core %u", target);
    ++stats_.migrations;
    XMIG_TRACE("migration", "migrate",
               {{"from", activeCore_},
                {"to", target},
                {"n", stats_.migrations}});
    XMIG_JOURNAL(journal_, obs::JournalKind::Migration, cause,
                 static_cast<int64_t>(activeCore_),
                 static_cast<int64_t>(target),
                 static_cast<int64_t>(stats_.migrations),
                 rootArForJournal(), rootFilterForJournal());
    activeCore_ = target;
    pendingValid_ = false;
    backoff_ = config_.retry.backoffBase;
    nextIssueAllowed_ = 0;
    watchdog_.onMigration(now);
}

unsigned
MigrationController::onRequest(uint64_t line, bool l2_miss,
                               bool pointer_load)
{
    ++stats_.requests;
    const uint64_t now = stats_.requests;

    if constexpr (kFaultEnabled) {
        if (config_.faults)
            injectStoreFaults();
    }

    if (splitWays_ <= 1) {
        // Lone survivor: nothing left to split, execution is pinned.
        return activeCore_;
    }

    serviceMigrationFabric(now);

    const bool update_filter =
        (!config_.l2Filtering || l2_miss) &&
        (!config_.pointerLoadFilter || pointer_load);

    SplitDecision decision = two_
        ? two_->onReference(line, update_filter)
        : four_ ? four_->onReference(line, update_filter)
                : kway_->onReference(line, update_filter);

    if (decision.sampled && update_filter)
        ++stats_.filterUpdates;
    if (decision.transition) {
        ++stats_.transitions;
        XMIG_JOURNAL(journal_, obs::JournalKind::Transition,
                     obs::JournalCause::Threshold,
                     static_cast<int64_t>(decision.subset), decision.ae,
                     rootFilterForJournal(), rootArForJournal());
    }

    // Controller state-transition invariants: the splitter may only
    // name a real subset, and the subset can only move when the
    // filters were allowed to move.
    XMIG_AUDIT(decision.subset < splitWays_,
               "splitter chose subset %u of %u ways", decision.subset,
               splitWays_);
    XMIG_AUDIT(update_filter || !decision.transition,
               "transition while the filter was frozen (L2/pointer "
               "filtering violated)");

    if (watchdog_.enabled()) {
        watchdog_.onRequest(now, rootFilter().saturated());
        if (watchdog_.takeReinit()) {
            resetFilters();
            ++recovery_.filterReinits;
            XMIG_TRACE("fault", "filter_reinit", {{"at", now}});
            XMIG_JOURNAL(journal_, obs::JournalKind::FilterReinit,
                         obs::JournalCause::WatchdogReinit,
                         static_cast<int64_t>(now));
        }
    }

    const unsigned desired = subsetToCore_[decision.subset];
    XMIG_AUDIT(liveMask_ >> desired & 1,
               "subset %u maps to offline core %u", decision.subset,
               desired);
    if (desired != activeCore_) {
        requestMigration(desired, now);
    } else if (pendingValid_) {
        // The splitter reverted while the request was in flight;
        // completing it now would migrate away from the right core.
        pendingValid_ = false;
    }

    // A migration is (at most) a subset change relative to the
    // current placement; recovery actions may each move the core once
    // without a recorded splitter transition: forced migrations,
    // filter re-inits, and every *accepted* topology event — not just
    // arity-changing resplits, because applyTopology() recomputes the
    // subset-to-core mapping on every churn event (e.g. a rejoin that
    // keeps a 2-way split remaps [1,2] to [0,1], moving the desired
    // core under an unchanged subset; found by xmig-forge fuzzing).
    XMIG_AUDIT(stats_.transitions ==
                   transitionsBase_ + splitterTransitions(),
               "controller/splitter transition desync: %llu vs "
               "%llu + %llu",
               (unsigned long long)stats_.transitions,
               (unsigned long long)transitionsBase_,
               (unsigned long long)splitterTransitions());
    XMIG_AUDIT(stats_.migrations <=
                   stats_.transitions + recovery_.forcedMigrations +
                       recovery_.filterReinits + recovery_.coresLost +
                       recovery_.coresJoined,
               "controller statistics desync: %llu migrations, %llu "
               "transitions (+%llu forced, %llu reinits, %llu lost, "
               "%llu joined)",
               (unsigned long long)stats_.migrations,
               (unsigned long long)stats_.transitions,
               (unsigned long long)recovery_.forcedMigrations,
               (unsigned long long)recovery_.filterReinits,
               (unsigned long long)recovery_.coresLost,
               (unsigned long long)recovery_.coresJoined);
    return activeCore_;
}

unsigned
MigrationController::onRequestBatch(const Request *reqs, size_t n)
{
    // Every request runs the full decision body: the controller's
    // per-request state machine (migration fabric, watchdog, retry
    // backoff) is inherently sequential, so the batch form only
    // amortizes the call overhead — the win lives in the engine and
    // L1 layers below. Kept as the exact scalar loop on purpose.
    const uint64_t requests_before = stats_.requests;
    unsigned core = activeCore_;
    for (size_t i = 0; i < n; ++i) {
        core = onRequest(reqs[i].line, reqs[i].l2Miss,
                         reqs[i].pointerLoad);
    }
    XMIG_AUDIT(stats_.requests == requests_before + n,
               "batch of %zu requests accounted %llu", n,
               (unsigned long long)(stats_.requests - requests_before));
    return core;
}

std::optional<int64_t>
MigrationController::affinityOf(uint64_t line) const
{
    if (two_)
        return two_->engine().affinityOf(line);
    if (four_)
        return four_->engineX().affinityOf(line);
    // The k-way tree (and the splitterless degenerate state) share
    // one store; peek it directly.
    return store_->peek(line);
}

const ShadowAudit *
MigrationController::shadowAudit() const
{
    if (two_)
        return two_->engine().shadow();
    if (four_)
        return four_->engineX().shadow();
    if (kway_)
        return kway_->rootEngine().shadow();
    return nullptr;
}

const AffinityEngine &
MigrationController::rootEngine() const
{
    if (two_)
        return two_->engine();
    if (four_)
        return four_->engineX();
    XMIG_ASSERT(kway_ != nullptr, "no splitter (single live core)");
    return kway_->rootEngine();
}

const TransitionFilter &
MigrationController::rootFilter() const
{
    if (two_)
        return two_->filter();
    if (four_)
        return four_->filterX();
    XMIG_ASSERT(kway_ != nullptr, "no splitter (single live core)");
    return kway_->rootFilter();
}

uint64_t
MigrationController::splitterTransitions() const
{
    if (two_)
        return two_->transitions();
    if (four_)
        return four_->transitions();
    if (kway_)
        return kway_->transitions();
    return 0;
}

void
MigrationController::resetFilters()
{
    XMIG_AUDIT((two_ != nullptr) + (four_ != nullptr) +
                       (kway_ != nullptr) <= 1,
               "more than one splitter is live");
    if (two_)
        two_->resetFilters();
    else if (four_)
        four_->resetFilters();
    else if (kway_)
        kway_->resetFilters();
}

ControllerCheckpoint
MigrationController::checkpoint() const
{
    XMIG_JOURNAL(journal_, obs::JournalKind::Checkpoint,
                 obs::JournalCause::Explicit,
                 static_cast<int64_t>(stats_.requests));
    ControllerCheckpoint c;
    c.numCores = config_.numCores;
    c.splitWays = splitWays_;
    c.liveMask = liveMask_;
    c.activeCore = activeCore_;
    c.stats = stats_;
    c.recovery = recovery_;
    if (two_)
        two_->checkpoint(c.engines, c.filters);
    else if (four_)
        four_->checkpoint(c.engines, c.filters);
    else if (kway_)
        kway_->checkpoint(c.engines, c.filters);
    store_->snapshotEntries(c.storeEntries);
    c.storeStats = store_->stats();
    return c;
}

void
MigrationController::restore(const ControllerCheckpoint &ckpt)
{
    XMIG_ASSERT(ckpt.numCores == config_.numCores,
                "checkpoint for %u cores restored into a %u-core "
                "controller", ckpt.numCores, config_.numCores);
    liveMask_ = ckpt.liveMask;
    activeCore_ = ckpt.activeCore;
    stats_ = ckpt.stats;
    recovery_ = ckpt.recovery;
    XMIG_JOURNAL(journal_, obs::JournalKind::Restore,
                 obs::JournalCause::Explicit,
                 static_cast<int64_t>(stats_.requests));

    // Quiesce the fabric and the backoff machinery.
    pendingValid_ = false;
    nextIssueAllowed_ = 0;
    backoff_ = config_.retry.backoffBase;
    retryPending_ = false;

    // Rebuild the splitter at the checkpointed arity, then load the
    // engine/filter/store state into the fresh structure. The store
    // object is reused (its registered metrics stay valid); only its
    // contents are replaced.
    retireSplitter();
    splitWays_ = ckpt.splitWays;
    if (splitWays_ > 1)
        buildSplitter(splitWays_);
    recomputeMapping();
    store_->restoreEntries(ckpt.storeEntries, ckpt.storeStats);
    if (two_)
        two_->restore(ckpt.engines, ckpt.filters);
    else if (four_)
        four_->restore(ckpt.engines, ckpt.filters);
    else if (kway_)
        kway_->restore(ckpt.engines, ckpt.filters);
    transitionsBase_ = stats_.transitions;
}

} // namespace xmig
