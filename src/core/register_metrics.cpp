/**
 * @file
 * xmig-scope registration for the core layer: every component's
 * registerMetrics lives here, in a translation unit of its own, so
 * the cold registration code (string building, closure thunks) is
 * laid out away from the hot per-reference paths of engine.cpp,
 * splitter.cpp and migration_controller.cpp.
 */

#include "core/engine.hpp"
#include "core/kway_splitter.hpp"
#include "core/migration_controller.hpp"
#include "core/oe_store.hpp"
#include "core/soa_oe_store.hpp"
#include "core/splitter.hpp"
#include "obs/registry.hpp"

namespace xmig {

void
AffinityEngine::registerMetrics(obs::MetricsRegistry &registry,
                                const std::string &prefix) const
{
    registry.addCounter(prefix + ".references", &references_);
    registry.addGauge(prefix + ".delta", [this] {
        return static_cast<double>(delta());
    });
    registry.addGauge(prefix + ".window_affinity", [this] {
        return static_cast<double>(windowAffinity());
    });
    registry.addGauge(prefix + ".window_occupancy", [this] {
        return static_cast<double>(fifo_ ? fifo_->size()
                                         : lru_->size());
    });
}

void
registerFilterMetrics(obs::MetricsRegistry &registry,
                      const std::string &prefix,
                      const TransitionFilter &filter)
{
    registry.addGauge(prefix + ".value", [&filter] {
        return static_cast<double>(filter.value());
    });
    registry.addGauge(prefix + ".transitions", [&filter] {
        return static_cast<double>(filter.transitions());
    });
    registry.addGauge(prefix + ".updates", [&filter] {
        return static_cast<double>(filter.updates());
    });
    registry.addGauge(prefix + ".saturated", [&filter] {
        return filter.saturated() ? 1.0 : 0.0;
    });
}

void
TwoWaySplitter::registerMetrics(obs::MetricsRegistry &registry,
                                const std::string &prefix) const
{
    registry.addCounter(prefix + ".transitions", &transitions_);
    engine_.registerMetrics(registry, prefix + ".engine");
    registerFilterMetrics(registry, prefix + ".filter", filter_);
}

void
FourWaySplitter::registerMetrics(obs::MetricsRegistry &registry,
                                 const std::string &prefix) const
{
    registry.addCounter(prefix + ".transitions", &transitions_);
    engineX_.registerMetrics(registry, prefix + ".x.engine");
    registerFilterMetrics(registry, prefix + ".x.filter", filterX_);
    engineYPos_.registerMetrics(registry, prefix + ".y_pos.engine");
    registerFilterMetrics(registry, prefix + ".y_pos.filter",
                          filterYPos_);
    engineYNeg_.registerMetrics(registry, prefix + ".y_neg.engine");
    registerFilterMetrics(registry, prefix + ".y_neg.filter",
                          filterYNeg_);
}

void
KWaySplitter::registerMetrics(obs::MetricsRegistry &registry,
                              const std::string &prefix) const
{
    registry.addCounter(prefix + ".transitions", &transitions_);
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const std::string node_prefix =
            prefix + ".node" + std::to_string(i);
        nodes_[i].engine->registerMetrics(registry,
                                          node_prefix + ".engine");
        registerFilterMetrics(registry, node_prefix + ".filter",
                              *nodes_[i].filter);
    }
}

void
MigrationController::registerMetrics(obs::MetricsRegistry &registry,
                                     const std::string &prefix) const
{
    registry.addCounter(prefix + ".requests", &stats_.requests);
    registry.addCounter(prefix + ".filter_updates",
                        &stats_.filterUpdates);
    registry.addCounter(prefix + ".transitions", &stats_.transitions);
    registry.addCounter(prefix + ".migrations", &stats_.migrations);
    registry.addGauge(prefix + ".active_core", [this] {
        return static_cast<double>(activeCore_);
    });

    const OeStoreStats &ss = store_->stats();
    registry.addCounter(prefix + ".store.lookups", &ss.lookups);
    registry.addCounter(prefix + ".store.misses", &ss.misses);
    registry.addCounter(prefix + ".store.stores", &ss.stores);
    registry.addCounter(prefix + ".store.evictions", &ss.evictions);
    if (const auto *bounded =
            dynamic_cast<const AffinityCacheStore *>(store_.get())) {
        registry.addGauge(prefix + ".store.occupancy", [bounded] {
            return static_cast<double>(bounded->occupancy());
        });
    } else if (const auto *soa = dynamic_cast<const SoaAffinityStore *>(
                   store_.get())) {
        registry.addGauge(prefix + ".store.occupancy", [soa] {
            return static_cast<double>(soa->occupancy());
        });
    }

    const std::string sp = prefix + ".splitter";
    if (two_)
        two_->registerMetrics(registry, sp);
    else if (four_)
        four_->registerMetrics(registry, sp);
    else if (kway_)
        kway_->registerMetrics(registry, sp);

    // xmig-iron resilience counters.
    const std::string rp = prefix + ".recovery";
    registry.addCounter(rp + ".cores_lost", &recovery_.coresLost);
    registry.addCounter(rp + ".cores_joined", &recovery_.coresJoined);
    registry.addCounter(rp + ".resplits", &recovery_.resplits);
    registry.addCounter(rp + ".forced_migrations",
                        &recovery_.forcedMigrations);
    registry.addCounter(rp + ".store_corruptions",
                        &recovery_.storeCorruptions);
    registry.addCounter(rp + ".store_drops", &recovery_.storeDrops);
    registry.addCounter(rp + ".mig_dropped", &recovery_.migDropped);
    registry.addCounter(rp + ".mig_delayed", &recovery_.migDelayed);
    registry.addCounter(rp + ".mig_timeouts", &recovery_.migTimeouts);
    registry.addCounter(rp + ".mig_retries", &recovery_.migRetries);
    registry.addCounter(rp + ".filter_reinits",
                        &recovery_.filterReinits);
    registry.addHistogram(rp + ".resplit_gap_requests", &resplitGap_);
    registry.addGauge(rp + ".live_cores", [this] {
        return static_cast<double>(liveCores());
    });
    registry.addGauge(rp + ".split_ways", [this] {
        return static_cast<double>(splitWays_);
    });
    if (watchdog_.enabled())
        watchdog_.registerMetrics(registry, prefix + ".watchdog");
}

} // namespace xmig
