/**
 * @file
 * Shadow-model differential checking for the postponed-update engine.
 *
 * The postponed-update identities (A_e = O_e - Delta, I_e = O_e -
 * 2 Delta, A_R += O_e - O_f) are only useful if they stay *bit-exact*
 * with Definition 1; a silent corruption — an overflowed SatInt, a
 * stale O_e — skews every downstream Table-2/Figure-3 number without
 * failing a single test. ShadowAudit promotes the one-shot
 * test_engine_equivalence property into an always-available runtime
 * oracle: an opt-in mode on AffinityEngine that runs the O(|S|)
 * DirectAffinityEngine in lockstep on every reference the engine
 * sees and panics on the first divergence in A_e or A_R, plus a
 * periodic deep sweep comparing the affinity of *every* element the
 * shadow model knows.
 *
 * The reference model is unsaturated and single-engine, so the
 * oracle is sound only while the audited engine stays inside the
 * regime where the paper's identities are exact. ShadowAudit
 * therefore *disarms* (one warning, checking stops, simulation
 * continues) on the events that legitimately break lockstep:
 *
 *  - any SatInt clamp (Delta, A_R, I_e, O_f or a miss-installed O_e
 *    hit the width bound) — a hardware concession the spec engine
 *    does not model;
 *  - a duplicate entering a FIFO window — the postponed engine
 *    re-fetches a stale O_e for a line that never left R (the paper
 *    accepts this; section 3.2 calls distinct-LRU "not essential");
 *  - O_e entries lost or foreign: a finite affinity cache evicted a
 *    tracked line, or a sibling mechanism sharing the store wrote an
 *    entry this engine never saw.
 *
 * Anything else — any mismatch while armed — is a real bug and
 * panics. Subset assignment needs no separate check: transition
 * filters are a pure function of the verified A_e stream.
 */

#pragma once

#include <cstdint>
#include <string>

#include "core/direct_engine.hpp"

namespace xmig {

class AffinityEngine;
struct EngineConfig;

/**
 * Lockstep differential checker for one AffinityEngine.
 */
class ShadowAudit
{
  public:
    /**
     * @param config the audited engine's configuration (window kind
     *        and size are mirrored; ArKind::Figure2 disarms at birth
     *        since the literal register recurrence diverges from
     *        Definition 1 by design)
     * @param tag short name used in diagnostics ("X", "root", ...)
     */
    ShadowAudit(const EngineConfig &config, std::string tag);

    /**
     * Feed the reference the engine just processed and compare.
     * `ae` is the engine's returned A_e(t). No-op when disarmed.
     */
    void onReference(uint64_t line, const AffinityEngine &engine,
                     int64_t ae);

    /** Stop checking (legitimate model divergence); warns once. */
    void disarm(const char *reason);

    /** True while the oracle is still comparing. */
    bool armed() const { return armed_; }

    /** True if the shadow model has seen `line`. */
    bool
    knowsLine(uint64_t line) const
    {
        return direct_.affinityOf(line).has_value();
    }

    /** References compared so far (while armed). */
    uint64_t comparisons() const { return comparisons_; }

    /** Full-element sweeps performed. */
    uint64_t deepChecks() const { return deepChecks_; }

    const DirectAffinityEngine &direct() const { return direct_; }

  private:
    /** Compare the affinity of every element the shadow knows. */
    void deepCheck(const AffinityEngine &engine);

    DirectAffinityEngine direct_;
    std::string tag_;
    bool exactAr_;          ///< compare A_R (ArKind::Exact only)
    uint64_t deepEvery_;    ///< deep sweep cadence (0 = never)
    bool armed_ = true;
    uint64_t comparisons_ = 0;
    uint64_t deepChecks_ = 0;
    uint64_t sinceDeep_ = 0;
};

} // namespace xmig
