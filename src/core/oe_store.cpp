#include "core/oe_store.hpp"

#include <bit>

#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace xmig {

namespace {

std::unique_ptr<TagStore>
makeAffinityTags(const AffinityCacheConfig &config)
{
    XMIG_ASSERT(config.entries % config.ways == 0,
                "affinity cache entries not divisible by ways");
    const uint64_t sets = config.entries / config.ways;
    XMIG_ASSERT(std::has_single_bit(sets),
                "affinity cache sets must be a power of two");
    if (config.skewed) {
        return std::make_unique<SkewedTags>(sets, config.ways,
                                            config.repl, config.seed);
    }
    return std::make_unique<SetAssocTags>(sets, config.ways,
                                          config.repl, config.seed);
}

} // namespace

AffinityCacheStore::AffinityCacheStore(const AffinityCacheConfig &config)
    : config_(config),
      tags_(makeAffinityTags(config))
{
    payload_.reserve(config.entries * 2);
}

int64_t
AffinityCacheStore::lookup(uint64_t line, int64_t delta)
{
    ++stats_.lookups;
    auditConsistency();
    CacheEntry *entry = tags_->find(line);
    if (entry) {
        auto it = payload_.find(line);
        XMIG_AUDIT(it != payload_.end(),
                   "affinity cache hit on line %llu with no payload",
                   (unsigned long long)line);
        tags_->touch(*entry);
        return it->second;
    }
    // Miss: allocate and force A_e = 0 by setting O_e = Delta.
    ++stats_.misses;
    CacheEntry victim;
    bool victim_valid = false;
    tags_->allocate(line, &victim, &victim_valid);
    if (victim_valid) {
        ++stats_.evictions;
        XMIG_TRACE("affinity_cache", "evict",
                   {{"victim", victim.line},
                    {"for", line},
                    {"evictions", stats_.evictions}});
        const size_t erased = payload_.erase(victim.line);
        XMIG_AUDIT(erased == 1,
                   "evicted line %llu had no payload to drop",
                   (unsigned long long)victim.line);
    }
    const int64_t oe = saturateToBits(delta, config_.affinityBits);
    payload_[line] = oe;
    return oe;
}

void
AffinityCacheStore::store(uint64_t line, int64_t oe)
{
    ++stats_.stores;
    const int64_t sat = saturateToBits(oe, config_.affinityBits);
    CacheEntry *entry = tags_->find(line);
    if (entry) {
        tags_->touch(*entry);
        payload_[line] = sat;
        return;
    }
    // The entry was displaced while the line sat in the R-window;
    // re-allocate, as a hardware write-allocate affinity cache would.
    CacheEntry victim;
    bool victim_valid = false;
    tags_->allocate(line, &victim, &victim_valid);
    if (victim_valid) {
        ++stats_.evictions;
        XMIG_TRACE("affinity_cache", "evict",
                   {{"victim", victim.line},
                    {"for", line},
                    {"evictions", stats_.evictions}});
        const size_t erased = payload_.erase(victim.line);
        XMIG_AUDIT(erased == 1,
                   "evicted line %llu had no payload to drop",
                   (unsigned long long)victim.line);
    }
    payload_[line] = sat;
}

void
AffinityCacheStore::auditConsistency()
{
    // Cheap bound every call: the payload map mirrors the valid tags,
    // so it can never outgrow the configured entry count, and every
    // miss either filled a free slot or displaced a victim.
    XMIG_AUDIT(payload_.size() <= config_.entries &&
                   stats_.evictions <= stats_.misses + stats_.stores,
               "affinity cache accounting desync: %zu payloads / %llu "
               "entries, %llu evictions",
               payload_.size(), (unsigned long long)config_.entries,
               (unsigned long long)stats_.evictions);
    if constexpr (kAuditParanoid) {
        // Full tag/payload reconciliation is O(entries); amortize it
        // over the lookup stream rather than paying it per call.
        if (++auditTick_ % 4096 != 0)
            return;
        XMIG_EXPECT(tags_->occupancy() == payload_.size(),
                    "tag/payload desync: %llu valid tags, %zu payloads",
                    (unsigned long long)tags_->occupancy(),
                    payload_.size());
        tags_->forEachValid([&](const CacheEntry &e) {
            XMIG_EXPECT(payload_.count(e.line) == 1,
                        "valid tag for line %llu has no payload",
                        (unsigned long long)e.line);
        });
    }
}

std::optional<int64_t>
AffinityCacheStore::peek(uint64_t line) const
{
    const CacheEntry *entry = tags_->find(line);
    if (!entry)
        return std::nullopt;
    auto it = payload_.find(line);
    XMIG_ASSERT(it != payload_.end(), "tag/payload desync");
    return it->second;
}

uint64_t
AffinityCacheStore::storageBits(unsigned tag_bits) const
{
    return config_.entries *
           (uint64_t(tag_bits) + config_.affinityBits + 2);
}

} // namespace xmig
