#include "core/oe_store.hpp"

#include <bit>

#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace xmig {

namespace {

std::unique_ptr<TagStore>
makeAffinityTags(const AffinityCacheConfig &config)
{
    XMIG_ASSERT(config.entries % config.ways == 0,
                "affinity cache entries not divisible by ways");
    const uint64_t sets = config.entries / config.ways;
    XMIG_ASSERT(std::has_single_bit(sets),
                "affinity cache sets must be a power of two");
    if (config.skewed) {
        return std::make_unique<SkewedTags>(sets, config.ways,
                                            config.repl, config.seed);
    }
    return std::make_unique<SetAssocTags>(sets, config.ways,
                                          config.repl, config.seed);
}

} // namespace

AffinityCacheStore::AffinityCacheStore(const AffinityCacheConfig &config)
    : config_(config),
      tags_(makeAffinityTags(config))
{
    payload_.reserve(config.entries * 2);
}

int64_t
AffinityCacheStore::lookup(uint64_t line, int64_t delta)
{
    ++stats_.lookups;
    auditConsistency();
    CacheEntry *entry = tags_->find(line);
    if (entry) {
        auto it = payload_.find(line);
        XMIG_AUDIT(it != payload_.end(),
                   "affinity cache hit on line %llu with no payload",
                   (unsigned long long)line);
        tags_->touch(*entry);
        return it->second;
    }
    // Miss: allocate and force A_e = 0 by setting O_e = Delta.
    ++stats_.misses;
    CacheEntry victim;
    bool victim_valid = false;
    tags_->allocate(line, &victim, &victim_valid);
    if (victim_valid) {
        ++stats_.evictions;
        XMIG_TRACE("affinity_cache", "evict",
                   {{"victim", victim.line},
                    {"for", line},
                    {"evictions", stats_.evictions}});
        const size_t erased = payload_.erase(victim.line);
        XMIG_AUDIT(erased == 1,
                   "evicted line %llu had no payload to drop",
                   (unsigned long long)victim.line);
    }
    const int64_t oe = saturateToBits(delta, config_.affinityBits);
    payload_[line] = oe;
    return oe;
}

void
AffinityCacheStore::store(uint64_t line, int64_t oe)
{
    ++stats_.stores;
    const int64_t sat = saturateToBits(oe, config_.affinityBits);
    CacheEntry *entry = tags_->find(line);
    if (entry) {
        tags_->touch(*entry);
        payload_[line] = sat;
        return;
    }
    // The entry was displaced while the line sat in the R-window;
    // re-allocate, as a hardware write-allocate affinity cache would.
    CacheEntry victim;
    bool victim_valid = false;
    tags_->allocate(line, &victim, &victim_valid);
    if (victim_valid) {
        ++stats_.evictions;
        XMIG_TRACE("affinity_cache", "evict",
                   {{"victim", victim.line},
                    {"for", line},
                    {"evictions", stats_.evictions}});
        const size_t erased = payload_.erase(victim.line);
        XMIG_AUDIT(erased == 1,
                   "evicted line %llu had no payload to drop",
                   (unsigned long long)victim.line);
    }
    payload_[line] = sat;
}

void
AffinityCacheStore::auditConsistency()
{
    // Cheap bound every call: the payload map mirrors the valid tags,
    // so it can never outgrow the configured entry count, and every
    // miss either filled a free slot or displaced a victim.
    XMIG_AUDIT(payload_.size() <= config_.entries &&
                   stats_.evictions <= stats_.misses + stats_.stores,
               "affinity cache accounting desync: %zu payloads / %llu "
               "entries, %llu evictions",
               payload_.size(), (unsigned long long)config_.entries,
               (unsigned long long)stats_.evictions);
    if constexpr (kAuditParanoid) {
        // Full tag/payload reconciliation is O(entries); amortize it
        // over the lookup stream rather than paying it per call.
        if (++auditTick_ % 4096 != 0)
            return;
        XMIG_EXPECT(tags_->occupancy() == payload_.size(),
                    "tag/payload desync: %llu valid tags, %zu payloads",
                    (unsigned long long)tags_->occupancy(),
                    payload_.size());
        tags_->forEachValid([&](const CacheEntry &e) {
            XMIG_EXPECT(payload_.count(e.line) == 1,
                        "valid tag for line %llu has no payload",
                        (unsigned long long)e.line);
        });
    }
}

bool
AffinityCacheStore::corruptRandomEntry(Rng &rng)
{
    if (payload_.empty())
        return false;
    auto it = payload_.begin();
    std::advance(it, static_cast<long>(rng.below(payload_.size())));
    const uint64_t flipped =
        static_cast<uint64_t>(it->second) ^
        (uint64_t{1} << rng.below(config_.affinityBits));
    it->second = saturateToBits(static_cast<int64_t>(flipped),
                                config_.affinityBits);
    return true;
}

bool
AffinityCacheStore::dropRandomEntry(Rng &rng)
{
    if (payload_.empty())
        return false;
    auto it = payload_.begin();
    std::advance(it, static_cast<long>(rng.below(payload_.size())));
    const uint64_t line = it->first;
    // A corrupted tag loses the entry as a whole: the payload and the
    // tag must go together or the tag/payload reconciliation audit
    // would (rightly) flag a dangling half.
    payload_.erase(it);
    const bool had_tag = tags_->invalidate(line);
    XMIG_AUDIT(had_tag, "payload for line %llu had no tag to drop",
               (unsigned long long)line);
    return true;
}

void
AffinityCacheStore::snapshotEntries(std::vector<OeEntrySnapshot> &out)
    const
{
    out.reserve(out.size() + payload_.size());
    for (const auto &[line, oe] : payload_)
        out.push_back({line, oe});
    std::sort(out.begin(), out.end(),
              [](const OeEntrySnapshot &a, const OeEntrySnapshot &b) {
                  return a.line < b.line;
              });
}

void
AffinityCacheStore::restoreEntries(
    const std::vector<OeEntrySnapshot> &entries, const OeStoreStats &stats)
{
    // Rebuild from scratch: drop every tag, then re-insert. Insertion
    // order (sorted by line) fixes the replacement ages, so victim
    // choices after a restore may differ from the original run; the
    // *contents* are exact.
    std::vector<uint64_t> lines;
    lines.reserve(payload_.size());
    for (const auto &[line, oe] : payload_)
        lines.push_back(line);
    for (uint64_t line : lines)
        tags_->invalidate(line);
    payload_.clear();

    CacheEntry victim;
    bool victim_valid = false;
    for (const OeEntrySnapshot &e : entries) {
        tags_->allocate(e.line, &victim, &victim_valid);
        if (victim_valid) {
            // Greedy re-insertion is not a perfect matching over the
            // skewed candidate frames, so a full snapshot can displace
            // an already-restored line. The shed entry merely
            // re-initializes to A_e = 0 on its next touch — the same
            // thing an ordinary capacity eviction would have done.
            payload_.erase(victim.line);
        }
        payload_[e.line] = saturateToBits(e.oe, config_.affinityBits);
    }
    stats_ = stats;
}

std::optional<int64_t>
AffinityCacheStore::peek(uint64_t line) const
{
    const CacheEntry *entry = tags_->find(line);
    if (!entry)
        return std::nullopt;
    auto it = payload_.find(line);
    XMIG_ASSERT(it != payload_.end(), "tag/payload desync");
    return it->second;
}

uint64_t
AffinityCacheStore::storageBits(unsigned tag_bits) const
{
    return config_.entries *
           (uint64_t(tag_bits) + config_.affinityBits + 2);
}

} // namespace xmig
