#include "core/oe_store.hpp"

#include <bit>

#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace xmig {

namespace {

std::unique_ptr<TagStore>
makeAffinityTags(const AffinityCacheConfig &config)
{
    XMIG_ASSERT(config.entries % config.ways == 0,
                "affinity cache entries not divisible by ways");
    const uint64_t sets = config.entries / config.ways;
    XMIG_ASSERT(std::has_single_bit(sets),
                "affinity cache sets must be a power of two");
    if (config.skewed) {
        return std::make_unique<SkewedTags>(sets, config.ways,
                                            config.repl, config.seed);
    }
    return std::make_unique<SetAssocTags>(sets, config.ways,
                                          config.repl, config.seed);
}

} // namespace

AffinityCacheStore::AffinityCacheStore(const AffinityCacheConfig &config)
    : config_(config),
      tags_(makeAffinityTags(config))
{
}

int64_t
AffinityCacheStore::lookup(uint64_t line, int64_t delta)
{
    ++stats_.lookups;
    auditConsistency();
    CacheEntry *entry = tags_->find(line);
    if (entry) {
        // Hot path: one probe yields tag match AND O_e together.
        tags_->touch(*entry);
        return entry->payload;
    }
    // Miss: allocate and force A_e = 0 by setting O_e = Delta.
    ++stats_.misses;
    CacheEntry victim;
    bool victim_valid = false;
    CacheEntry &frame = tags_->allocate(line, &victim, &victim_valid);
    if (victim_valid) {
        ++stats_.evictions;
        XMIG_TRACE("affinity_cache", "evict",
                   {{"victim", victim.line},
                    {"for", line},
                    {"evictions", stats_.evictions}});
    } else {
        ++resident_;
    }
    const int64_t oe = saturateToBits(delta, config_.affinityBits);
    frame.payload = oe;
    return oe;
}

void
AffinityCacheStore::store(uint64_t line, int64_t oe)
{
    ++stats_.stores;
    auditConsistency();
    const int64_t sat = saturateToBits(oe, config_.affinityBits);
    CacheEntry *entry = tags_->find(line);
    if (entry) {
        tags_->touch(*entry);
        entry->payload = sat;
        return;
    }
    // The entry was displaced while the line sat in the R-window;
    // re-allocate, as a hardware write-allocate affinity cache would.
    CacheEntry victim;
    bool victim_valid = false;
    CacheEntry &frame = tags_->allocate(line, &victim, &victim_valid);
    if (victim_valid) {
        ++stats_.evictions;
        XMIG_TRACE("affinity_cache", "evict",
                   {{"victim", victim.line},
                    {"for", line},
                    {"evictions", stats_.evictions}});
    } else {
        ++resident_;
    }
    frame.payload = sat;
}

void
AffinityCacheStore::auditConsistency()
{
    // Cheap bound every call: resident entries can never outgrow the
    // configured entry count, and every miss either filled a free slot
    // or displaced a victim.
    XMIG_AUDIT(resident_ <= config_.entries &&
                   stats_.evictions <= stats_.misses + stats_.stores,
               "affinity cache accounting desync: %llu resident / %llu "
               "entries, %llu evictions",
               (unsigned long long)resident_,
               (unsigned long long)config_.entries,
               (unsigned long long)stats_.evictions);
    if constexpr (kAuditParanoid) {
        // Full reconciliation is O(entries); amortize it over the
        // lookup stream rather than paying it per call.
        if (++auditTick_ % 4096 != 0)
            return;
        XMIG_EXPECT(tags_->occupancy() == resident_,
                    "occupancy desync: %llu valid tags, %llu resident",
                    (unsigned long long)tags_->occupancy(),
                    (unsigned long long)resident_);
        const int64_t lo = SatInt::minForBits(config_.affinityBits);
        const int64_t hi = SatInt::maxForBits(config_.affinityBits);
        tags_->forEachValid([&](const CacheEntry &e) {
            XMIG_EXPECT(e.payload >= lo && e.payload <= hi,
                        "O_e for line %llu escaped the %u-bit range: "
                        "%lld",
                        (unsigned long long)e.line, config_.affinityBits,
                        (long long)e.payload);
        });
    }
}

uint64_t
AffinityCacheStore::nthValidLine(uint64_t target) const
{
    uint64_t line = 0;
    uint64_t i = 0;
    bool found = false;
    tags_->forEachValid([&](const CacheEntry &e) {
        if (i++ == target) {
            line = e.line;
            found = true;
        }
    });
    XMIG_ASSERT(found, "nthValidLine(%llu) out of %llu resident",
                (unsigned long long)target, (unsigned long long)resident_);
    return line;
}

bool
AffinityCacheStore::corruptRandomEntry(Rng &rng)
{
    if (resident_ == 0)
        return false;
    const uint64_t line = nthValidLine(rng.below(resident_));
    CacheEntry *entry = tags_->find(line);
    XMIG_ASSERT(entry, "valid frame vanished under fault injection");
    const uint64_t flipped =
        static_cast<uint64_t>(entry->payload) ^
        (uint64_t{1} << rng.below(config_.affinityBits));
    entry->payload = saturateToBits(static_cast<int64_t>(flipped),
                                    config_.affinityBits);
    return true;
}

bool
AffinityCacheStore::dropRandomEntry(Rng &rng)
{
    if (resident_ == 0)
        return false;
    const uint64_t line = nthValidLine(rng.below(resident_));
    // A corrupted tag loses the entry as a whole: the O_e word rides
    // in the frame, so tag and value go together by construction.
    const bool had_tag = tags_->invalidate(line);
    XMIG_AUDIT(had_tag, "line %llu had no tag to drop",
               (unsigned long long)line);
    --resident_;
    return true;
}

void
AffinityCacheStore::snapshotEntries(std::vector<OeEntrySnapshot> &out)
    const
{
    out.reserve(out.size() + resident_);
    tags_->forEachValid([&](const CacheEntry &e) {
        out.push_back({e.line, e.payload});
    });
    std::sort(out.begin(), out.end(),
              [](const OeEntrySnapshot &a, const OeEntrySnapshot &b) {
                  return a.line < b.line;
              });
}

void
AffinityCacheStore::restoreEntries(
    const std::vector<OeEntrySnapshot> &entries, const OeStoreStats &stats)
{
    // Rebuild from scratch: drop every tag, then re-insert. Insertion
    // order (sorted by line) fixes the replacement ages, so victim
    // choices after a restore may differ from the original run; the
    // *contents* are exact.
    std::vector<uint64_t> lines;
    lines.reserve(resident_);
    tags_->forEachValid(
        [&](const CacheEntry &e) { lines.push_back(e.line); });
    for (uint64_t line : lines)
        tags_->invalidate(line);
    resident_ = 0;

    CacheEntry victim;
    bool victim_valid = false;
    for (const OeEntrySnapshot &e : entries) {
        // Greedy re-insertion is not a perfect matching over the
        // skewed candidate frames, so a full snapshot can displace an
        // already-restored line. The shed entry merely re-initializes
        // to A_e = 0 on its next touch — the same thing an ordinary
        // capacity eviction would have done.
        CacheEntry &frame = tags_->allocate(e.line, &victim,
                                            &victim_valid);
        if (!victim_valid)
            ++resident_;
        frame.payload = saturateToBits(e.oe, config_.affinityBits);
    }
    stats_ = stats;
    XMIG_AUDIT(resident_ <= config_.entries &&
                   resident_ <= entries.size(),
               "restore overfilled the affinity cache: %llu resident "
               "from %zu snapshot entries (%llu frames)",
               (unsigned long long)resident_, entries.size(),
               (unsigned long long)config_.entries);
}

std::optional<int64_t>
AffinityCacheStore::peek(uint64_t line) const
{
    const CacheEntry *entry = tags_->find(line);
    if (!entry)
        return std::nullopt;
    return entry->payload;
}

uint64_t
AffinityCacheStore::storageBits(unsigned tag_bits) const
{
    return config_.entries *
           (uint64_t(tag_bits) + config_.affinityBits + 2);
}

} // namespace xmig
