#include "core/oe_store.hpp"

#include <bit>

#include "util/logging.hpp"

namespace xmig {

namespace {

std::unique_ptr<TagStore>
makeAffinityTags(const AffinityCacheConfig &config)
{
    XMIG_ASSERT(config.entries % config.ways == 0,
                "affinity cache entries not divisible by ways");
    const uint64_t sets = config.entries / config.ways;
    XMIG_ASSERT(std::has_single_bit(sets),
                "affinity cache sets must be a power of two");
    if (config.skewed) {
        return std::make_unique<SkewedTags>(sets, config.ways,
                                            config.repl, config.seed);
    }
    return std::make_unique<SetAssocTags>(sets, config.ways,
                                          config.repl, config.seed);
}

} // namespace

AffinityCacheStore::AffinityCacheStore(const AffinityCacheConfig &config)
    : config_(config),
      tags_(makeAffinityTags(config))
{
    payload_.reserve(config.entries * 2);
}

int64_t
AffinityCacheStore::lookup(uint64_t line, int64_t delta)
{
    ++stats_.lookups;
    CacheEntry *entry = tags_->find(line);
    if (entry) {
        tags_->touch(*entry);
        return payload_[line];
    }
    // Miss: allocate and force A_e = 0 by setting O_e = Delta.
    ++stats_.misses;
    CacheEntry victim;
    bool victim_valid = false;
    tags_->allocate(line, &victim, &victim_valid);
    if (victim_valid)
        payload_.erase(victim.line);
    const int64_t oe = saturateToBits(delta, config_.affinityBits);
    payload_[line] = oe;
    return oe;
}

void
AffinityCacheStore::store(uint64_t line, int64_t oe)
{
    ++stats_.stores;
    const int64_t sat = saturateToBits(oe, config_.affinityBits);
    CacheEntry *entry = tags_->find(line);
    if (entry) {
        tags_->touch(*entry);
        payload_[line] = sat;
        return;
    }
    // The entry was displaced while the line sat in the R-window;
    // re-allocate, as a hardware write-allocate affinity cache would.
    CacheEntry victim;
    bool victim_valid = false;
    tags_->allocate(line, &victim, &victim_valid);
    if (victim_valid)
        payload_.erase(victim.line);
    payload_[line] = sat;
}

std::optional<int64_t>
AffinityCacheStore::peek(uint64_t line) const
{
    const CacheEntry *entry = tags_->find(line);
    if (!entry)
        return std::nullopt;
    auto it = payload_.find(line);
    XMIG_ASSERT(it != payload_.end(), "tag/payload desync");
    return it->second;
}

uint64_t
AffinityCacheStore::storageBits(unsigned tag_bits) const
{
    return config_.entries *
           (uint64_t(tag_bits) + config_.affinityBits + 2);
}

} // namespace xmig
