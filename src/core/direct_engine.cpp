#include "core/direct_engine.hpp"

#include "util/contracts.hpp"
#include "util/saturating.hpp"

namespace xmig {

DirectAffinityEngine::DirectAffinityEngine(const DirectEngineConfig &config)
    : config_(config)
{
    if (config_.window == WindowKind::Fifo)
        fifo_ = std::make_unique<FifoWindow>(config_.windowSize);
    else
        lru_ = std::make_unique<DistinctLruWindow>(config_.windowSize);
}

bool
DirectAffinityEngine::inWindow(uint64_t line) const
{
    if (config_.window == WindowKind::Fifo) {
        auto it = windowCount_.find(line);
        return it != windowCount_.end() && it->second > 0;
    }
    return lru_->contains(line);
}

int64_t
DirectAffinityEngine::reference(uint64_t line)
{
    ++references_;

    // A_e(t_e) = 0 at first reference.
    auto [it, inserted] = affinity_.try_emplace(line, 0);
    const int64_t ae_before = it->second;

    // Window update: e becomes a member; in the FIFO variant the
    // oldest slot is displaced (possibly a duplicate of e itself).
    if (config_.window == WindowKind::Fifo) {
        WindowSlot evicted;
        // The direct engine never consumes I_e; store 0.
        if (fifo_->push(line, 0, &evicted)) {
            auto cnt = windowCount_.find(evicted.line);
            XMIG_ASSERT(cnt != windowCount_.end() && cnt->second > 0,
                        "window count desync");
            --cnt->second;
        }
        ++windowCount_[line];
    } else if (lru_->contains(line)) {
        lru_->touch(line);
    } else {
        WindowSlot evicted;
        lru_->insert(line, 0, &evicted);
    }

    // A_R over the new window. For the FIFO variant this sums per
    // slot, counting duplicates as many times as they appear, to
    // match what the hardware register accumulates.
    int64_t ar = 0;
    if (config_.window == WindowKind::Fifo) {
        fifo_->forEach([&](const WindowSlot &slot) {
            ar += affinity_.at(slot.line);
        });
    } else {
        lru_->forEach([&](const WindowSlot &slot) {
            ar += affinity_.at(slot.line);
        });
    }

    // Definition 1: members move toward sign(A_R), outsiders away.
    const int s = affinitySign(ar);
    for (auto &[e, a] : affinity_)
        a += inWindow(e) ? s : -s;

    // Recompute the post-update window affinity for observers.
    int64_t ar_after = 0;
    auto add = [&](const WindowSlot &slot) {
        ar_after += affinity_.at(slot.line);
    };
    if (config_.window == WindowKind::Fifo)
        fifo_->forEach(add);
    else
        lru_->forEach(add);
    windowAffinity_ = ar_after;

    return ae_before;
}

std::optional<int64_t>
DirectAffinityEngine::affinityOf(uint64_t line) const
{
    auto it = affinity_.find(line);
    if (it == affinity_.end())
        return std::nullopt;
    return it->second;
}

} // namespace xmig
