#include "core/shadow_audit.hpp"

#include "core/engine.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace xmig {

namespace {

DirectEngineConfig
shadowConfigOf(const EngineConfig &config)
{
    DirectEngineConfig dc;
    dc.windowSize = config.windowSize;
    dc.window = config.window;
    return dc;
}

} // namespace

ShadowAudit::ShadowAudit(const EngineConfig &config, std::string tag)
    : direct_(shadowConfigOf(config)),
      tag_(std::move(tag)),
      exactAr_(config.ar == ArKind::Exact),
      deepEvery_(config.shadowDeepCheckEvery)
{
    XMIG_ASSERT(config.shadow == ShadowMode::Armed,
                "shadow audit [%s] constructed with shadow mode off",
                tag_.c_str());
    if (!exactAr_) {
        // The Figure-2 register recurrence tracks entry/exit but not
        // the per-step drift of member affinities, so neither its A_R
        // nor the Delta (and hence A_e) evolution matches the spec.
        disarm("ArKind::Figure2 diverges from Definition 1 by design");
    }
}

void
ShadowAudit::disarm(const char *reason)
{
    if (!armed_)
        return;
    XMIG_ASSERT(reason != nullptr && *reason != '\0',
                "shadow audit [%s] disarmed without a reason",
                tag_.c_str());
    armed_ = false;
    XMIG_TRACE("shadow", "disarm", reason);
    XMIG_WARN("shadow audit [%s] disarmed after %llu comparisons: %s",
              tag_.c_str(), (unsigned long long)comparisons_, reason);
}

void
ShadowAudit::onReference(uint64_t line, const AffinityEngine &engine,
                         int64_t ae)
{
    if (!armed_)
        return;
    ++comparisons_;

    const int64_t ref_ae = direct_.reference(line);
    if (ae != ref_ae) {
        XMIG_PANIC("shadow audit [%s]: A_e of line %llu diverged at "
                   "reference %llu: engine %lld, shadow model %lld",
                   tag_.c_str(), (unsigned long long)line,
                   (unsigned long long)comparisons_, (long long)ae,
                   (long long)ref_ae);
    }
    if (exactAr_ &&
        engine.windowAffinity() != direct_.windowAffinity()) {
        XMIG_PANIC("shadow audit [%s]: A_R diverged at reference "
                   "%llu: engine %lld, shadow model %lld",
                   tag_.c_str(), (unsigned long long)comparisons_,
                   (long long)engine.windowAffinity(),
                   (long long)direct_.windowAffinity());
    }

    if (deepEvery_ != 0 && ++sinceDeep_ >= deepEvery_) {
        sinceDeep_ = 0;
        deepCheck(engine);
    }
}

void
ShadowAudit::deepCheck(const AffinityEngine &engine)
{
    ++deepChecks_;
    for (const auto &[element, affinity] : direct_.affinities()) {
        const auto got = engine.affinityOf(element);
        if (!got) {
            XMIG_PANIC("shadow audit [%s]: element %llu tracked by "
                       "the shadow model is unknown to the engine "
                       "(neither in R nor in the O_e store)",
                       tag_.c_str(), (unsigned long long)element);
        }
        if (*got != affinity) {
            XMIG_PANIC("shadow audit [%s]: affinity of element %llu "
                       "diverged: engine %lld, shadow model %lld "
                       "(deep sweep %llu)",
                       tag_.c_str(), (unsigned long long)element,
                       (long long)*got, (long long)affinity,
                       (unsigned long long)deepChecks_);
        }
    }
}

} // namespace xmig
