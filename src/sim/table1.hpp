/**
 * @file
 * Table 1 experiment: benchmark inventory.
 *
 * Runs each kernel through the section-4.1 L1 configuration (16-KB
 * fully-associative LRU IL1/DL1, 64-B lines, loads and stores not
 * distinguished) and reports dynamic instructions and IL1/DL1 miss
 * counts — the paper's Table 1 columns.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xmig {

/** One Table 1 row. */
struct Table1Row
{
    std::string name;
    std::string suite;
    uint64_t instructions = 0;
    uint64_t il1Misses = 0;
    uint64_t dl1Misses = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
};

/** Parameters for the inventory run. */
struct Table1Params
{
    uint64_t instructionsPerBenchmark = 20'000'000;
    uint64_t l1Bytes = 16 * 1024;
    uint64_t lineBytes = 64;
    uint64_t seed = 42;
};

/** Run the inventory for one benchmark. */
Table1Row runTable1(const std::string &benchmark,
                    const Table1Params &params);

/** Run the inventory for every benchmark in Table 1 order. */
std::vector<Table1Row> runTable1All(const Table1Params &params);

} // namespace xmig
