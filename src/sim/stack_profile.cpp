#include "sim/stack_profile.hpp"

#include <algorithm>

#include "cache/l1_filter.hpp"
#include "cache/lru_stack.hpp"
#include "core/oe_store.hpp"
#include "workloads/registry.hpp"

namespace xmig {

namespace {

/** Routes each post-L1 line to the single stack and the split stacks. */
class ProfileSink : public LineSink
{
  public:
    ProfileSink(FourWaySplitter &splitter)
        : splitter_(splitter)
    {
    }

    void
    onLine(const LineEvent &event) override
    {
        ++accesses_;
        single_.access(event.line);
        const SplitDecision d = splitter_.onReference(event.line);
        split_[d.subset].access(event.line);
    }

    uint64_t accesses() const { return accesses_; }
    const LruStack &single() const { return single_; }
    const LruStack &split(unsigned k) const { return split_[k]; }

  private:
    FourWaySplitter &splitter_;
    LruStack single_;
    LruStack split_[4];
    uint64_t accesses_ = 0;
};

} // namespace

double
StackProfileResult::maxGap() const
{
    double gap = 0.0;
    for (size_t i = 0; i < p1.size(); ++i)
        gap = std::max(gap, p1[i] - p4[i]);
    return gap;
}

StackProfileResult
runStackProfile(const std::string &benchmark,
                const StackProfileParams &params)
{
    auto workload = makeWorkload(benchmark);

    UnboundedOeStore store(params.splitter.affinityBits);
    FourWaySplitter splitter(params.splitter, store);
    ProfileSink sink(splitter);

    L1FilterConfig l1c;
    l1c.il1Bytes = params.l1Bytes;
    l1c.dl1Bytes = params.l1Bytes;
    l1c.lineBytes = params.lineBytes;
    l1c.fullyAssociative = true;
    l1c.unifiedReadWrite = true;
    L1Filter filter(l1c, sink);

    RefCounter counter;
    TeeSink tee(counter, filter);
    workload->run(tee, params.instructionsPerBenchmark, params.seed);

    StackProfileResult result;
    result.name = workload->info().name;
    result.suite = workload->info().suite;
    result.instructions = counter.instructions();
    result.stackAccesses = sink.accesses();
    result.transitions = splitter.transitions();
    result.transitionFrequency = sink.accesses() == 0
        ? 0.0
        : static_cast<double>(splitter.transitions()) /
          static_cast<double>(sink.accesses());
    result.footprintLines = sink.single().distinctLines();
    result.plotSizes = params.plotSizes;

    for (uint64_t size : params.plotSizes) {
        const uint64_t lines = size / params.lineBytes;
        result.p1.push_back(sink.single().missRatioAtSize(lines));
        uint64_t split_misses = 0;
        for (unsigned k = 0; k < 4; ++k)
            split_misses += sink.split(k).missesAtSize(lines);
        result.p4.push_back(
            sink.accesses() == 0
                ? 0.0
                : static_cast<double>(split_misses) /
                  static_cast<double>(sink.accesses()));
    }
    return result;
}

} // namespace xmig
