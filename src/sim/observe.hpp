/**
 * @file
 * xmig-scope run observatory: one-stop wiring of the observability
 * layer (obs/) onto a simulation run.
 *
 * A RunObservatory bundles the three pillars for a single run:
 *
 *  - a MetricsRegistry holding every machine/controller/store counter
 *    under hierarchical dotted names (exported as JSONL at the end);
 *  - a TimeSeriesSampler probing the affinity state (A_R, Delta,
 *    filter value), event rates and per-core L2 occupancies every
 *    `sampleEvery` references (exported as CSV);
 *  - the process-wide Tracer, started/stopped around the run so
 *    XMIG_TRACE sites (migrations, affinity-cache evictions, shadow
 *    disarms) land in a Chrome trace_event file;
 *  - an xmig-lens event Journal (obs/journal.hpp), attached to the
 *    sampled machine and exported as JSONL at the end. Unlike the
 *    Tracer, the journal is per-machine state, so --journal-out works
 *    at any --jobs value (docs/observability.md, "Journal").
 *
 * Lifetime rule (see obs/registry.hpp): registered pointers reach
 * into the live machines, so finish() must run while the machines
 * still exist. runQuadcore() calls finish() before returning when
 * handed an observatory.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/registry.hpp"
#include "obs/sampler.hpp"

namespace xmig::obs {
class Journal;
} // namespace xmig::obs

namespace xmig {

class MigrationMachine;
struct BenchOptions;

/** What to observe and where to write it ("" = that output is off). */
struct ObserveOptions
{
    std::string metricsOut; ///< JSONL metrics dump path
    std::string samplesOut; ///< time-series CSV path
    std::string traceOut;   ///< Chrome trace_event JSON path
    std::string journalOut; ///< xmig-lens event journal JSONL path

    /** References between time-series samples. */
    uint64_t sampleEvery = 10'000;

    /** Time-series ring capacity (rows). */
    size_t sampleCapacity = 4096;

    /** Event-journal ring capacity (events). */
    size_t journalCapacity = 65536;

    /** True if any output was requested. */
    bool
    any() const
    {
        return !metricsOut.empty() || !samplesOut.empty() ||
               !traceOut.empty() || !journalOut.empty();
    }
};

/** Build ObserveOptions from parsed common CLI flags. */
ObserveOptions observeOptionsOf(const BenchOptions &opt);

/**
 * All observability state for one simulation run.
 */
class RunObservatory
{
  public:
    explicit RunObservatory(const ObserveOptions &options);

    /** Stops a still-running trace session (safety net). */
    ~RunObservatory();

    RunObservatory(const RunObservatory &) = delete;
    RunObservatory &operator=(const RunObservatory &) = delete;

    /**
     * Register `machine`'s full counter tree under `prefix`. With
     * `sampled` true (at most one machine per observatory), also
     * install the standard time-series columns — A_R, Delta, filter
     * value, active core, per-interval event rates, and per-core L2
     * occupancies plus their spread — and attach the event journal
     * (when --journal-out asked for one) to the machine.
     */
    void attachMachine(MigrationMachine &machine,
                       const std::string &prefix, bool sampled);

    /** Advance sampling time; call once per memory reference. */
    void
    onReference()
    {
        if (sampling_)
            sampler_.tick();
    }

    /**
     * Export everything that was requested: JSONL metrics, CSV time
     * series, and the trace file. Must run while every attached
     * machine is still alive. Idempotent.
     */
    void finish();

    obs::MetricsRegistry &registry() { return registry_; }
    obs::TimeSeriesSampler &sampler() { return sampler_; }
    const ObserveOptions &options() const { return options_; }

    /** The event journal (null unless --journal-out requested one). */
    obs::Journal *journal() { return journal_.get(); }

    /**
     * Whether per-reference time-series sampling is on. The sampler's
     * cadence is defined in single references, so a batched feed
     * would shift every sample instant — runQuadcore falls back to
     * per-reference feeding while this is true (xmig-bolt).
     */
    bool samplingActive() const { return sampling_; }

    /**
     * Whether the process-wide tracer is recording. Trace *clocks*
     * are batch-exact (machines stamp events with stats_.refs), but
     * the file-order interleave of two machines' events is not, so
     * the batched feed stands down to keep trace files byte-stable.
     */
    bool tracingActive() const { return tracing_; }

  private:
    ObserveOptions options_;
    obs::MetricsRegistry registry_;
    obs::TimeSeriesSampler sampler_;
    std::unique_ptr<obs::Journal> journal_;
    bool sampling_ = false;
    bool tracing_ = false;
    bool finished_ = false;
};

} // namespace xmig
