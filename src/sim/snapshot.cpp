#include "sim/snapshot.hpp"

#include "core/oe_store.hpp"
#include "util/saturating.hpp"

namespace xmig {

SnapshotResult
runAffinitySnapshot(ElementStream &stream, const SnapshotParams &params)
{
    UnboundedOeStore store(params.engine.affinityBits);
    AffinityEngine engine(params.engine, store);

    SnapshotResult result;
    uint64_t transitions = 0;
    int prev_sign = 0;
    bool first = true;
    for (uint64_t t = 0; t < params.references; ++t) {
        const uint64_t e = stream.next();
        const RefOutcome out = engine.reference(e);
        const int sign = affinitySign(out.ae);
        if (!first && sign != prev_sign)
            ++transitions;
        prev_sign = sign;
        first = false;
    }
    result.transitionFrequency = params.references == 0
        ? 0.0
        : static_cast<double>(transitions) /
          static_cast<double>(params.references);

    result.affinity.resize(params.numElements, 0);
    int last_sign = 0;
    for (uint64_t e = 0; e < params.numElements; ++e) {
        const auto a = engine.affinityOf(e);
        const int64_t value = a.value_or(0);
        result.affinity[e] = value;
        const int sign = affinitySign(value);
        if (sign >= 0)
            ++result.positive;
        else
            ++result.negative;
        if (e == 0 || sign != last_sign)
            ++result.signSegments;
        last_sign = sign;
    }
    return result;
}

} // namespace xmig
