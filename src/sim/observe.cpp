#include "sim/observe.hpp"

#include <algorithm>

#include "multicore/machine.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "sim/options.hpp"
#include "util/contracts.hpp"
#include "util/logging.hpp"

namespace xmig {

namespace {

obs::SamplerConfig
samplerConfigOf(const ObserveOptions &options)
{
    obs::SamplerConfig sc;
    sc.sampleEvery = options.sampleEvery;
    sc.capacity = options.sampleCapacity;
    return sc;
}

} // namespace

ObserveOptions
observeOptionsOf(const BenchOptions &opt)
{
    ObserveOptions o;
    o.metricsOut = opt.metricsOut;
    o.samplesOut = opt.samplesOut;
    o.traceOut = opt.traceOut;
    o.journalOut = opt.journalOut;
    if (opt.sampleEvery > 0)
        o.sampleEvery = opt.sampleEvery;
    return o;
}

RunObservatory::RunObservatory(const ObserveOptions &options)
    : options_(options),
      sampler_(samplerConfigOf(options))
{
    if (!options_.traceOut.empty()) {
        if (obs::kTraceCompiled) {
            obs::tracer().start(options_.traceOut);
            tracing_ = true;
        } else {
            XMIG_WARN("trace output %s requested but XMIG_TRACE was "
                      "compiled out (-DXMIG_TRACE=OFF)",
                      options_.traceOut.c_str());
        }
    }
    if (!options_.journalOut.empty()) {
        if (obs::kJournalCompiled) {
            journal_ =
                std::make_unique<obs::Journal>(options_.journalCapacity);
            // Arm incident dumps at the same path: a panic or watchdog
            // fire flushes the causal history even if finish() never
            // runs.
            journal_->setDumpPath(options_.journalOut);
        } else {
            XMIG_WARN("journal output %s requested but XMIG_JOURNAL "
                      "was compiled out (-DXMIG_JOURNAL=OFF)",
                      options_.journalOut.c_str());
        }
    }
}

RunObservatory::~RunObservatory()
{
    // finish() normally ran already (while the machines were alive);
    // this only closes a trace session left open by an early exit.
    if (tracing_ && !finished_)
        obs::tracer().stop();
}

void
RunObservatory::attachMachine(MigrationMachine &machine,
                              const std::string &prefix, bool sampled)
{
    machine.registerMetrics(registry_, prefix);

    if (!sampled)
        return;
    // The journal rides on the sampled machine only: one causal
    // stream per run, single-thread confined with its machine, so a
    // parallel sweep's other cells never touch it.
    if (journal_)
        machine.attachJournal(journal_.get());
    if (options_.samplesOut.empty())
        return;
    XMIG_ASSERT(!sampling_,
                "only one machine per observatory can be sampled");
    sampling_ = true;

    const MigrationController *controller = machine.controller();
    if (controller) {
        sampler_.addColumn("ar", [controller] {
            return static_cast<double>(
                controller->rootEngine().windowAffinity());
        });
        sampler_.addColumn("delta", [controller] {
            return static_cast<double>(
                controller->rootEngine().delta());
        });
        sampler_.addColumn("filter", [controller] {
            return static_cast<double>(
                controller->rootFilter().value());
        });
        sampler_.addColumn("active_core", [&machine] {
            return static_cast<double>(machine.activeCore());
        });
        const MigrationStats &ms = controller->stats();
        sampler_.addDeltaColumn("requests", &ms.requests);
        sampler_.addDeltaColumn("filter_updates", &ms.filterUpdates);
        sampler_.addDeltaColumn("transitions", &ms.transitions);
        sampler_.addDeltaColumn("migrations", &ms.migrations);
        sampler_.addDeltaColumn("store_evictions",
                                &controller->store().stats().evictions);
    }

    const MachineStats &st = machine.stats();
    sampler_.addDeltaColumn("l1_misses", &st.l1Misses);
    sampler_.addDeltaColumn("l2_misses", &st.l2Misses);

    const unsigned cores = machine.config().numCores;
    for (unsigned c = 0; c < cores; ++c) {
        sampler_.addColumn("core" + std::to_string(c) +
                               "_l2_occupancy",
                           [&machine, c] {
                               return static_cast<double>(
                                   machine.l2(c).tags().occupancy());
                           });
    }
    if (cores > 1) {
        // Live imbalance of the working-set split: how unevenly the
        // resident lines spread over the per-core L2s right now.
        sampler_.addColumn("l2_occupancy_spread", [&machine, cores] {
            uint64_t lo = machine.l2(0).tags().occupancy();
            uint64_t hi = lo;
            for (unsigned c = 1; c < cores; ++c) {
                const uint64_t occ = machine.l2(c).tags().occupancy();
                lo = std::min(lo, occ);
                hi = std::max(hi, occ);
            }
            return static_cast<double>(hi - lo);
        });
    }
}

void
RunObservatory::finish()
{
    if (finished_)
        return;
    finished_ = true;

    // writeJsonl/writeCsv warn on failure themselves.
    if (!options_.metricsOut.empty())
        registry_.writeJsonl(options_.metricsOut);
    if (sampling_ && !options_.samplesOut.empty())
        sampler_.writeCsv(options_.samplesOut);
    if (journal_)
        journal_->writeJsonl(options_.journalOut);
    if (tracing_)
        obs::tracer().stop();
}

} // namespace xmig
