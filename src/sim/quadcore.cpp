#include "sim/quadcore.hpp"

#include "obs/prof.hpp"
#include "sim/observe.hpp"
#include "workloads/registry.hpp"

namespace xmig {

namespace {

/**
 * Feeds both machines and zeroes their counters once the warm-up
 * instruction budget has retired.
 */
class WarmupTee : public RefSink
{
  public:
    WarmupTee(MigrationMachine &baseline, MigrationMachine &migration,
              uint64_t warmup_instructions)
        : baseline_(baseline),
          migration_(migration),
          warmup_(warmup_instructions),
          done_(warmup_instructions == 0)
    {
    }

    void
    access(const MemRef &ref) override
    {
        baseline_.access(ref);
        migration_.access(ref);
        if (!done_ && ref.isIfetch() && ++instructions_ >= warmup_) {
            baseline_.resetStats();
            migration_.resetStats();
            done_ = true;
        }
    }

  protected:
    MigrationMachine &baseline_;
    MigrationMachine &migration_;
    uint64_t warmup_;
    uint64_t instructions_ = 0;
    bool done_;
};

/**
 * WarmupTee that also advances the observatory's sampling clock.
 * Kept as a separate sink so the unobserved feed path stays
 * instruction-identical to a build without the observability layer
 * (measured: the extra per-reference hook costs ~5% even when the
 * branch never takes).
 */
class ObservedWarmupTee final : public WarmupTee
{
  public:
    ObservedWarmupTee(MigrationMachine &baseline,
                      MigrationMachine &migration,
                      uint64_t warmup_instructions,
                      RunObservatory &observatory)
        : WarmupTee(baseline, migration, warmup_instructions),
          observatory_(observatory)
    {
    }

    void
    access(const MemRef &ref) override
    {
        WarmupTee::access(ref);
        observatory_.onReference();
    }

  private:
    RunObservatory &observatory_;
};

} // namespace

QuadcoreRow
runQuadcore(const std::string &benchmark, const QuadcoreParams &params,
            RunObservatory *observatory)
{
    XMIG_PROF_SCOPE("runQuadcore");
    auto workload = makeWorkload(benchmark);

    MachineConfig base_cfg = params.machine;
    base_cfg.numCores = 1;
    // The fault plan targets the migration machine only: the baseline
    // must stay a clean reference (and a single-core machine would
    // just warn the plan away).
    base_cfg.faultPlan.clear();
    MigrationMachine baseline(base_cfg);

    MachineConfig mig_cfg = params.machine;
    MigrationMachine migration(mig_cfg);

    if (observatory) {
        observatory->attachMachine(baseline, "baseline",
                                   /*sampled=*/false);
        observatory->attachMachine(migration, "machine",
                                   /*sampled=*/true);
    }

    {
        XMIG_PROF_SCOPE("feed");
        const uint64_t total = params.warmupInstructions +
                               params.instructionsPerBenchmark;
        if (observatory) {
            ObservedWarmupTee tee(baseline, migration,
                                  params.warmupInstructions,
                                  *observatory);
            workload->run(tee, total, params.seed);
        } else {
            WarmupTee tee(baseline, migration,
                          params.warmupInstructions);
            workload->run(tee, total, params.seed);
        }
    }

    // Registered pointers reach into the two machines above, so every
    // export has to happen before this frame unwinds.
    if (observatory)
        observatory->finish();

    QuadcoreRow row;
    row.name = workload->info().name;
    row.suite = workload->info().suite;
    row.instructions = migration.stats().instructions;
    row.l1Misses = migration.stats().l1Misses;
    row.l2MissesBaseline = baseline.stats().l2Misses;
    row.l2Misses4x = migration.stats().l2Misses;
    row.migrations = migration.stats().migrations;
    row.l2ToL2Forwards = migration.stats().l2ToL2Forwards;
    return row;
}

std::vector<QuadcoreRow>
runQuadcoreAll(const QuadcoreParams &params)
{
    std::vector<QuadcoreRow> rows;
    for (const auto &name : allWorkloadNames())
        rows.push_back(runQuadcore(name, params));
    return rows;
}

} // namespace xmig
