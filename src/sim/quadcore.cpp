#include "sim/quadcore.hpp"

#include "obs/prof.hpp"
#include "sim/observe.hpp"
#include "sim/runner/batch_queue.hpp"
#include "sim/runner/job_pool.hpp"
#include "workloads/registry.hpp"

namespace xmig {

namespace {

/**
 * Feeds both machines and zeroes their counters once the warm-up
 * instruction budget has retired.
 */
class WarmupTee : public RefSink
{
  public:
    WarmupTee(MigrationMachine &baseline, MigrationMachine &migration,
              uint64_t warmup_instructions)
        : baseline_(baseline),
          migration_(migration),
          warmup_(warmup_instructions),
          done_(warmup_instructions == 0)
    {
    }

    void
    access(const MemRef &ref) override
    {
        baseline_.access(ref);
        migration_.access(ref);
        if (!done_ && ref.isIfetch() && ++instructions_ >= warmup_) {
            baseline_.resetStats();
            migration_.resetStats();
            done_ = true;
        }
    }

  protected:
    MigrationMachine &baseline_;
    MigrationMachine &migration_;
    uint64_t warmup_;
    uint64_t instructions_ = 0;
    bool done_;
};

/**
 * WarmupTee that also advances the observatory's sampling clock.
 * Kept as a separate sink so the unobserved feed path stays
 * instruction-identical to a build without the observability layer
 * (measured: the extra per-reference hook costs ~5% even when the
 * branch never takes).
 */
class ObservedWarmupTee final : public WarmupTee
{
  public:
    ObservedWarmupTee(MigrationMachine &baseline,
                      MigrationMachine &migration,
                      uint64_t warmup_instructions,
                      RunObservatory &observatory)
        : WarmupTee(baseline, migration, warmup_instructions),
          observatory_(observatory)
    {
    }

    void
    access(const MemRef &ref) override
    {
        WarmupTee::access(ref);
        observatory_.onReference();
    }

  private:
    RunObservatory &observatory_;
};

/**
 * xmig-bolt batched feed: buffers K references and drives both
 * machines through accessBatch(). Warm-up runs per-reference so the
 * counter reset lands at the exact reference WarmupTee resets at;
 * the caller must flush() after the workload ends.
 */
class BatchFeedTee final : public RefSink
{
  public:
    BatchFeedTee(MigrationMachine &baseline, MigrationMachine &migration,
                 uint64_t warmup_instructions)
        : baseline_(baseline),
          migration_(migration),
          warmup_(warmup_instructions),
          done_(warmup_instructions == 0)
    {
    }

    void
    access(const MemRef &ref) override
    {
        if (!done_) {
            baseline_.access(ref);
            migration_.access(ref);
            if (ref.isIfetch() && ++instructions_ >= warmup_) {
                baseline_.resetStats();
                migration_.resetStats();
                done_ = true;
            }
            return;
        }
        buf_[count_++] = ref;
        if (count_ == MigrationMachine::kBatchRefs)
            flush();
    }

    void
    flush()
    {
        if (count_ == 0)
            return;
        baseline_.accessBatch(buf_, count_);
        migration_.accessBatch(buf_, count_);
        count_ = 0;
    }

  private:
    MigrationMachine &baseline_;
    MigrationMachine &migration_;
    uint64_t warmup_;
    uint64_t instructions_ = 0;
    bool done_;
    MemRef buf_[MigrationMachine::kBatchRefs];
    size_t count_ = 0;
};

/**
 * xmig-bolt pipelined feed, producer half: feeds the baseline inline
 * on this worker and hands each chunk (with any warm-up boundary
 * marked) to the queue for the consumer worker's migration machine.
 */
class PipelineProducerTee final : public RefSink
{
  public:
    PipelineProducerTee(MigrationMachine &baseline, BatchQueue &queue,
                        uint64_t warmup_instructions)
        : baseline_(baseline),
          queue_(queue),
          warmup_(warmup_instructions),
          done_(warmup_instructions == 0)
    {
    }

    void
    access(const MemRef &ref) override
    {
        chunk_.refs[chunk_.count++] = ref;
        if (!done_ && ref.isIfetch() && ++instructions_ >= warmup_) {
            chunk_.resetAfter = static_cast<int32_t>(chunk_.count) - 1;
            done_ = true;
        }
        if (chunk_.count == BatchQueue::kChunkRefs)
            flush();
    }

    void
    flush()
    {
        if (chunk_.count == 0)
            return;
        if (chunk_.resetAfter >= 0) {
            const size_t b = static_cast<size_t>(chunk_.resetAfter) + 1;
            baseline_.accessBatch(chunk_.refs.data(), b);
            baseline_.resetStats();
            baseline_.accessBatch(chunk_.refs.data() + b,
                                  chunk_.count - b);
        } else {
            baseline_.accessBatch(chunk_.refs.data(), chunk_.count);
        }
        queue_.push(chunk_);
        chunk_.count = 0;
        chunk_.resetAfter = -1;
    }

  private:
    MigrationMachine &baseline_;
    BatchQueue &queue_;
    uint64_t warmup_;
    uint64_t instructions_ = 0;
    bool done_;
    BatchQueue::Chunk chunk_;
};

/** Consumer half: drain the queue into the migration machine. */
void
drainIntoMachine(BatchQueue &queue, MigrationMachine &migration)
{
    BatchQueue::Chunk c;
    while (queue.pop(c)) {
        if (c.resetAfter >= 0) {
            const size_t b = static_cast<size_t>(c.resetAfter) + 1;
            migration.accessBatch(c.refs.data(), b);
            migration.resetStats();
            migration.accessBatch(c.refs.data() + b, c.count - b);
        } else {
            migration.accessBatch(c.refs.data(), c.count);
        }
    }
}

} // namespace

QuadcoreRow
runQuadcore(const std::string &benchmark, const QuadcoreParams &params,
            RunObservatory *observatory)
{
    XMIG_PROF_SCOPE("runQuadcore");
    auto workload = makeWorkload(benchmark);

    MachineConfig base_cfg = params.machine;
    base_cfg.numCores = 1;
    // The fault plan targets the migration machine only: the baseline
    // must stay a clean reference (and a single-core machine would
    // just warn the plan away).
    base_cfg.faultPlan.clear();
    MigrationMachine baseline(base_cfg);

    MachineConfig mig_cfg = params.machine;
    MigrationMachine migration(mig_cfg);

    if (observatory) {
        observatory->attachMachine(baseline, "baseline",
                                   /*sampled=*/false);
        observatory->attachMachine(migration, "machine",
                                   /*sampled=*/true);
    }

    {
        XMIG_PROF_SCOPE("feed");
        const uint64_t total = params.warmupInstructions +
                               params.instructionsPerBenchmark;
        // Sampling cadence and trace interleave are defined over
        // single references; both batched modes stand down to the
        // scalar path while either is recording (observe.hpp).
        FeedMode feed = params.feed;
        if (observatory && (observatory->samplingActive() ||
                            observatory->tracingActive()))
            feed = FeedMode::PerRef;

        if (feed == FeedMode::Pipelined) {
            // Two roles on two pool workers: the producer runs the
            // workload and the baseline, the consumer the migration
            // machine. JobPool(2) always has two live workers, so the
            // bounded queue cannot deadlock (a 1-worker pool would
            // run both roles serially and block on the first full
            // slot — hence the explicit pool, not a caller-provided
            // one).
            BatchQueue queue;
            JobPool pool(2);
            pool.run(2, [&](size_t job) {
                if (job == 0) {
                    try {
                        PipelineProducerTee tee(
                            baseline, queue, params.warmupInstructions);
                        workload->run(tee, total, params.seed);
                        tee.flush();
                    } catch (...) {
                        queue.close(); // unblock the consumer
                        throw;
                    }
                    queue.close();
                } else {
                    drainIntoMachine(queue, migration);
                }
            });
        } else if (feed == FeedMode::Batched) {
            BatchFeedTee tee(baseline, migration,
                             params.warmupInstructions);
            workload->run(tee, total, params.seed);
            tee.flush();
        } else if (observatory) {
            ObservedWarmupTee tee(baseline, migration,
                                  params.warmupInstructions,
                                  *observatory);
            workload->run(tee, total, params.seed);
        } else {
            WarmupTee tee(baseline, migration,
                          params.warmupInstructions);
            workload->run(tee, total, params.seed);
        }
    }

    // Registered pointers reach into the two machines above, so every
    // export has to happen before this frame unwinds.
    if (observatory)
        observatory->finish();

    QuadcoreRow row;
    row.name = workload->info().name;
    row.suite = workload->info().suite;
    row.instructions = migration.stats().instructions;
    row.l1Misses = migration.stats().l1Misses;
    row.l2MissesBaseline = baseline.stats().l2Misses;
    row.l2Misses4x = migration.stats().l2Misses;
    row.migrations = migration.stats().migrations;
    row.l2ToL2Forwards = migration.stats().l2ToL2Forwards;
    return row;
}

std::vector<QuadcoreRow>
runQuadcoreAll(const QuadcoreParams &params)
{
    std::vector<QuadcoreRow> rows;
    for (const auto &name : allWorkloadNames())
        rows.push_back(runQuadcore(name, params));
    return rows;
}

} // namespace xmig
