/**
 * @file
 * Table 2 experiment: 4-core machine with 512-KB L2 caches.
 *
 * Per section 4.2: 16-KB 4-way L1s (write-through non-write-allocate
 * DL1), 512-KB 4-way skewed-associative write-back L2 per core, 8k-
 * entry 4-way skewed affinity cache with 25 % working-set sampling,
 * 18-bit transition filters, |R_X| = 128, |R_Y| = 64, L2 filtering.
 *
 * Each benchmark is run simultaneously through a baseline single-core
 * machine (for the "L2 miss" column) and the 4-core migration machine
 * (for "4xL2 miss" and "migration"); Table 2 reports instructions per
 * event plus the L2-miss ratio.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "multicore/machine.hpp"

namespace xmig {

class RunObservatory;

/** One Table 2 row (raw event counts). */
struct QuadcoreRow
{
    std::string name;
    std::string suite;
    uint64_t instructions = 0;
    uint64_t l1Misses = 0;
    uint64_t l2MissesBaseline = 0; ///< single 512-KB L2
    uint64_t l2Misses4x = 0;       ///< four L2s with migration
    uint64_t migrations = 0;
    uint64_t l2ToL2Forwards = 0;

    /** Table 2's "ratio" column: baseline misses / migration misses
     *  expressed via the instructions-per-miss quotient. < 1 means
     *  migration removed L2 misses. */
    double
    missRatio() const
    {
        if (l2MissesBaseline == 0)
            return l2Misses4x == 0 ? 1.0 : 99.0;
        return static_cast<double>(l2Misses4x) /
               static_cast<double>(l2MissesBaseline);
    }

    /** L2 misses removed per migration (break-even P_mig). */
    double
    removedMissesPerMigration() const
    {
        if (migrations == 0)
            return 0.0;
        return (static_cast<double>(l2MissesBaseline) -
                static_cast<double>(l2Misses4x)) /
               static_cast<double>(migrations);
    }
};

/**
 * How the reference stream reaches the two machines of a cell
 * (xmig-bolt). All three modes produce byte-identical results — the
 * batched paths are exact by construction and the pipelined queue
 * preserves reference order — so the choice is purely a speed knob
 * (docs/parallelism.md, "batching").
 */
enum class FeedMode : uint8_t
{
    PerRef,    ///< one access() per reference (the original path)
    Batched,   ///< K-ref accessBatch() chunks, serial (default)
    Pipelined, ///< baseline and migration machines on 2 pool workers
};

/** Parameters of a Table 2 run. */
struct QuadcoreParams
{
    uint64_t instructionsPerBenchmark = 20'000'000;

    /**
     * Feed mode; forced back to PerRef while the observatory samples
     * time series or traces (their artifacts are per-reference).
     */
    FeedMode feed = FeedMode::Batched;

    /**
     * Instructions to run before counters start. The paper's
     * 1-billion-instruction runs make warm-up negligible; at this
     * library's budgets, excluding it brings the measured ratios
     * closer to steady state.
     */
    uint64_t warmupInstructions = 0;

    uint64_t seed = 42;
    MachineConfig machine; ///< defaults are the section 4.2 setup
};

/**
 * Run Table 2 for one benchmark.
 *
 * An optional observatory (sim/observe.hpp) is attached to both
 * machines — the baseline under `baseline.*`, the migration machine
 * under `machine.*` (also time-series sampled) — and finish()ed
 * before the machines are destroyed.
 */
QuadcoreRow runQuadcore(const std::string &benchmark,
                        const QuadcoreParams &params,
                        RunObservatory *observatory = nullptr);

/** Run Table 2 for every benchmark. */
std::vector<QuadcoreRow> runQuadcoreAll(const QuadcoreParams &params);

} // namespace xmig
