/**
 * @file
 * Figures 4 and 5 experiment: LRU stack profiles with 4-way splitting.
 *
 * Per section 4.1: the benchmark's reference stream is filtered by
 * 16-KB fully-associative LRU IL1/DL1 caches (loads and stores not
 * distinguished); each post-L1 line address is (a) pushed through a
 * single LRU stack to obtain p1(x), and (b) routed by the 4-way
 * affinity splitter to one of four LRU stacks to obtain the global
 * profile p4(x). Splitter parameters: 20-bit transition filters,
 * |R_X| = 128, |R_Y| = 64, unlimited affinity cache, no sampling, no
 * L2 filtering. p(x) is the fraction of references with stack depth
 * greater than x (first touches count as infinite depth).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/splitter.hpp"

namespace xmig {

/** Parameters of a profile run. */
struct StackProfileParams
{
    uint64_t instructionsPerBenchmark = 20'000'000;
    uint64_t l1Bytes = 16 * 1024;
    uint64_t lineBytes = 64;
    uint64_t seed = 42;

    FourWaySplitter::Config splitter = defaultSplitter();

    /** x values (cache sizes in bytes) at which p1/p4 are reported. */
    std::vector<uint64_t> plotSizes = defaultPlotSizes();

    static FourWaySplitter::Config
    defaultSplitter()
    {
        FourWaySplitter::Config c;
        c.windowX = 128;
        c.windowY = 64;
        c.filterBits = 20;
        c.samplingCutoff = 31; // unlimited affinity cache, no sampling
        return c;
    }

    static std::vector<uint64_t>
    defaultPlotSizes()
    {
        std::vector<uint64_t> sizes;
        for (uint64_t s = 16 * 1024; s <= 16 * 1024 * 1024; s *= 2)
            sizes.push_back(s);
        return sizes;
    }
};

/** Result of one profile run. */
struct StackProfileResult
{
    std::string name;
    std::string suite;
    uint64_t instructions = 0;
    uint64_t stackAccesses = 0;  ///< post-L1 references profiled
    uint64_t transitions = 0;
    double transitionFrequency = 0.0; ///< the "trans:" label
    uint64_t footprintLines = 0; ///< distinct lines in the stream

    std::vector<uint64_t> plotSizes;
    std::vector<double> p1; ///< single-stack profile
    std::vector<double> p4; ///< 4-way-split global profile

    /**
     * Splittability gap: max over x of p1(x) - p4(x). Large values
     * mean the split stacks hit where the single stack misses.
     */
    double maxGap() const;
};

/** Run the Figures 4/5 experiment for one benchmark. */
StackProfileResult runStackProfile(const std::string &benchmark,
                                   const StackProfileParams &params);

} // namespace xmig
