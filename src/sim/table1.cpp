#include "sim/table1.hpp"

#include "cache/l1_filter.hpp"
#include "workloads/registry.hpp"

namespace xmig {

Table1Row
runTable1(const std::string &benchmark, const Table1Params &params)
{
    auto workload = makeWorkload(benchmark);

    L1FilterConfig l1c;
    l1c.il1Bytes = params.l1Bytes;
    l1c.dl1Bytes = params.l1Bytes;
    l1c.lineBytes = params.lineBytes;
    l1c.fullyAssociative = true;
    l1c.unifiedReadWrite = true;

    NullLineSink null_sink;
    L1Filter filter(l1c, null_sink);
    RefCounter counter;
    TeeSink tee(counter, filter);

    workload->run(tee, params.instructionsPerBenchmark, params.seed);

    Table1Row row;
    row.name = workload->info().name;
    row.suite = workload->info().suite;
    row.instructions = counter.instructions();
    row.loads = counter.loads();
    row.stores = counter.stores();
    row.il1Misses = filter.il1Stats().misses;
    row.dl1Misses = filter.dl1Stats().misses;
    return row;
}

std::vector<Table1Row>
runTable1All(const Table1Params &params)
{
    std::vector<Table1Row> rows;
    for (const auto &name : allWorkloadNames())
        rows.push_back(runTable1(name, params));
    return rows;
}

} // namespace xmig
