/**
 * @file
 * Figure 3 experiment: affinity snapshots on synthetic streams.
 *
 * Runs one 2-way affinity engine over an element stream and captures
 * the per-element affinity A_e after a given number of references,
 * plus split-quality metrics (balance, contiguity, transition
 * frequency) that summarize what the paper's scatter plots show.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {

/** Result of one snapshot run. */
struct SnapshotResult
{
    /** A_e for each element id in [0, N). */
    std::vector<int64_t> affinity;

    /** Elements with A_e >= 0 / < 0. */
    uint64_t positive = 0;
    uint64_t negative = 0;

    /**
     * Number of maximal same-sign segments over element-id space;
     * 2 means a perfectly contiguous bisection of Circular.
     */
    uint64_t signSegments = 0;

    /**
     * Fraction of consecutive reference pairs whose affinities have
     * opposite signs — the "trans:" number printed on each Figure 3
     * graph.
     */
    double transitionFrequency = 0.0;
};

/** Parameters of a snapshot run. */
struct SnapshotParams
{
    uint64_t numElements = 4000;  ///< N
    uint64_t references = 100'000;
    EngineConfig engine = defaultEngine();

    static EngineConfig
    defaultEngine()
    {
        EngineConfig e;
        e.windowSize = 100; ///< |R| = 100 in Figure 3
        return e;
    }
};

/** Run the Figure 3 experiment over `stream`. */
SnapshotResult runAffinitySnapshot(ElementStream &stream,
                                   const SnapshotParams &params);

} // namespace xmig
