/**
 * @file
 * Minimal command-line handling shared by the bench binaries.
 *
 * Every harness accepts:
 *   --instr N      instruction budget per benchmark (default 2e7)
 *   --scale X      multiply the default budget by X
 *   --bench NAME   restrict to one benchmark (repeatable)
 *   --seed S       workload seed
 *   --warmup N     unmeasured warm-up instructions (where supported)
 */

#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace xmig {

/** Parsed common options. */
struct BenchOptions
{
    uint64_t instructions = 20'000'000;
    uint64_t warmup = 0;
    uint64_t seed = 42;
    std::vector<std::string> benchmarks; ///< empty = all

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions opt;
        double scale = 1.0;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char * {
                return i + 1 < argc ? argv[++i] : "";
            };
            if (arg == "--instr")
                opt.instructions = std::strtoull(next(), nullptr, 10);
            else if (arg == "--warmup")
                opt.warmup = std::strtoull(next(), nullptr, 10);
            else if (arg == "--scale")
                scale = std::strtod(next(), nullptr);
            else if (arg == "--seed")
                opt.seed = std::strtoull(next(), nullptr, 10);
            else if (arg == "--bench")
                opt.benchmarks.emplace_back(next());
        }
        opt.instructions = static_cast<uint64_t>(
            static_cast<double>(opt.instructions) * scale);
        return opt;
    }
};

} // namespace xmig
