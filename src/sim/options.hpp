/**
 * @file
 * Minimal command-line handling shared by the bench binaries.
 *
 * Every harness accepts:
 *   --instr N      instruction budget per benchmark (default 2e7)
 *   --scale X      multiply the default budget by X
 *   --bench NAME   restrict to one benchmark (repeatable)
 *   --seed S       workload seed
 *   --warmup N     unmeasured warm-up instructions (where supported)
 *
 * xmig-scope outputs (harnesses that run a machine; applied to the
 * first selected benchmark — see sim/observe.hpp):
 *   --metrics-out F   dump the metrics registry as JSONL to F
 *   --samples-out F   dump the time-series sampler as CSV to F
 *   --trace-out F     write a Chrome trace_event JSON file to F
 *   --sample-every N  references between time-series samples
 */

#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace xmig {

/** Parsed common options. */
struct BenchOptions
{
    uint64_t instructions = 20'000'000;
    uint64_t warmup = 0;
    uint64_t seed = 42;
    std::vector<std::string> benchmarks; ///< empty = all

    std::string metricsOut;    ///< "" = no metrics dump
    std::string samplesOut;    ///< "" = no time-series dump
    std::string traceOut;      ///< "" = no trace
    uint64_t sampleEvery = 0;  ///< 0 = sampler default cadence

    /** True if any xmig-scope output was requested. */
    bool
    observing() const
    {
        return !metricsOut.empty() || !samplesOut.empty() ||
               !traceOut.empty();
    }

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions opt;
        double scale = 1.0;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char * {
                return i + 1 < argc ? argv[++i] : "";
            };
            if (arg == "--instr")
                opt.instructions = std::strtoull(next(), nullptr, 10);
            else if (arg == "--warmup")
                opt.warmup = std::strtoull(next(), nullptr, 10);
            else if (arg == "--scale")
                scale = std::strtod(next(), nullptr);
            else if (arg == "--seed")
                opt.seed = std::strtoull(next(), nullptr, 10);
            else if (arg == "--bench")
                opt.benchmarks.emplace_back(next());
            else if (arg == "--metrics-out")
                opt.metricsOut = next();
            else if (arg == "--samples-out")
                opt.samplesOut = next();
            else if (arg == "--trace-out")
                opt.traceOut = next();
            else if (arg == "--sample-every")
                opt.sampleEvery = std::strtoull(next(), nullptr, 10);
        }
        opt.instructions = static_cast<uint64_t>(
            static_cast<double>(opt.instructions) * scale);
        return opt;
    }
};

} // namespace xmig
