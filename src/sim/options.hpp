/**
 * @file
 * Minimal command-line handling shared by the bench binaries.
 *
 * Every harness accepts:
 *   --instr N      instruction budget per benchmark (default 2e7)
 *   --scale X      multiply the default budget by X
 *   --bench NAME   restrict to one benchmark (repeatable)
 *   --seed S       workload seed
 *   --warmup N     unmeasured warm-up instructions (where supported)
 *   --fault-plan P xmig-iron fault plan (fault_plan.hpp grammar),
 *                  forwarded to MachineConfig::faultPlan by harnesses
 *                  that run a MigrationMachine
 *   --jobs N       xmig-swift sweep workers (default: the XMIG_JOBS
 *                  environment variable, else one per host core).
 *                  Output is bit-identical at any value
 *                  (docs/parallelism.md); N must be positive
 *   --smoke        CI-sized run: harnesses shrink budgets and sweep
 *                  ranges to finish in seconds
 *   --csv F        write the machine-readable result table to F
 *                  (harnesses that emit one, e.g. bench_figure1)
 *
 *
 * xmig-scope outputs (harnesses that run a machine; applied to the
 * first selected benchmark — see sim/observe.hpp):
 *   --metrics-out F   dump the metrics registry as JSONL to F
 *   --samples-out F   dump the time-series sampler as CSV to F
 *   --trace-out F     write a Chrome trace_event JSON file to F
 *   --journal-out F   dump the xmig-lens event journal as JSONL to F
 *                     (per-machine state: works at any --jobs)
 *   --sample-every N  references between time-series samples
 *
 * Numeric values are validated strictly (xmig-iron): empty, signed,
 * non-numeric, trailing-garbage, or overflowing counts are fatal
 * errors instead of silently parsing as 0 or saturating.
 */

#pragma once

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/logging.hpp"

namespace xmig {

/** Parsed common options. */
struct BenchOptions
{
    uint64_t instructions = 20'000'000;
    uint64_t warmup = 0;
    uint64_t seed = 42;
    std::vector<std::string> benchmarks; ///< empty = all

    std::string csvOut;        ///< "" = no CSV dump (bench_figure1)
    std::string metricsOut;    ///< "" = no metrics dump
    std::string samplesOut;    ///< "" = no time-series dump
    std::string traceOut;      ///< "" = no trace
    std::string journalOut;    ///< "" = no event journal
    uint64_t sampleEvery = 0;  ///< 0 = sampler default cadence

    std::string faultPlan;     ///< "" = no fault injection

    /**
     * Sweep workers (xmig-swift). 0 = auto: one per host core
     * (JobPool::defaultJobs()), forced to 1 when --trace-out is set
     * because the Tracer session is per-process. An *explicit*
     * --jobs > 1 combined with --trace-out is a fatal error rather
     * than a silent serialization.
     */
    unsigned jobs = 0;

    /** CI-sized run: harnesses shrink budgets and sweep ranges. */
    bool smoke = false;

    /** True if any xmig-scope output was requested. */
    bool
    observing() const
    {
        return !metricsOut.empty() || !samplesOut.empty() ||
               !traceOut.empty() || !journalOut.empty();
    }

    /**
     * Strict decimal count: the whole string must be digits (no
     * sign, no blanks, no suffix) and fit in uint64_t.
     */
    static uint64_t
    parseCount(const char *flag, const char *text)
    {
        if (text == nullptr || *text == '\0')
            XMIG_FATAL("%s requires a value", flag);
        for (const char *p = text; *p != '\0'; ++p) {
            if (*p < '0' || *p > '9')
                XMIG_FATAL("%s: '%s' is not a non-negative integer",
                           flag, text);
        }
        errno = 0;
        char *end = nullptr;
        const unsigned long long v = std::strtoull(text, &end, 10);
        if (errno == ERANGE || end == nullptr || *end != '\0')
            XMIG_FATAL("%s: '%s' overflows a 64-bit count", flag,
                       text);
        return static_cast<uint64_t>(v);
    }

    /**
     * Strict worker count for --jobs / XMIG_JOBS: a *positive*
     * integer (0 workers is meaningless; "auto" is expressed by
     * omitting the flag entirely).
     */
    static unsigned
    parseJobs(const char *flag, const char *text)
    {
        const uint64_t v = parseCount(flag, text);
        if (v == 0 || v > 4096)
            XMIG_FATAL("%s: '%s' is not a positive worker count "
                       "(1..4096)", flag, text);
        return static_cast<unsigned>(v);
    }

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions opt;
        double scale = 1.0;
        bool jobs_explicit = false;
        if (const char *env = std::getenv("XMIG_JOBS")) {
            opt.jobs = parseJobs("XMIG_JOBS", env);
            jobs_explicit = true;
        }
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char * {
                return i + 1 < argc ? argv[++i] : "";
            };
            if (arg == "--instr")
                opt.instructions = parseCount("--instr", next());
            else if (arg == "--warmup")
                opt.warmup = parseCount("--warmup", next());
            else if (arg == "--scale") {
                const char *text = next();
                errno = 0;
                char *end = nullptr;
                scale = std::strtod(text, &end);
                if (*text == '\0' || end == nullptr || *end != '\0' ||
                    !std::isfinite(scale) || scale <= 0.0) {
                    XMIG_FATAL("--scale: '%s' is not a positive "
                               "finite number",
                               text);
                }
            } else if (arg == "--seed")
                opt.seed = parseCount("--seed", next());
            else if (arg == "--bench")
                opt.benchmarks.emplace_back(next());
            else if (arg == "--csv")
                opt.csvOut = next();
            else if (arg == "--metrics-out")
                opt.metricsOut = next();
            else if (arg == "--samples-out")
                opt.samplesOut = next();
            else if (arg == "--trace-out")
                opt.traceOut = next();
            else if (arg == "--journal-out")
                opt.journalOut = next();
            else if (arg == "--sample-every")
                opt.sampleEvery = parseCount("--sample-every", next());
            else if (arg == "--fault-plan") {
                opt.faultPlan = next();
                // Validate eagerly so a typo dies at the command
                // line, not after minutes of warm-up.
                FaultPlan::parseOrFatal(opt.faultPlan);
            } else if (arg == "--jobs") {
                opt.jobs = parseJobs("--jobs", next());
                jobs_explicit = true;
            } else if (arg == "--smoke")
                opt.smoke = true;
        }
        opt.instructions = static_cast<uint64_t>(
            static_cast<double>(opt.instructions) * scale);
        if (!opt.traceOut.empty() && opt.jobs != 1) {
            // The Tracer is a per-process singleton: two concurrent
            // cells would interleave one trace session. An explicit
            // request for both is a contradiction; the auto default
            // just degrades to the serial path.
            if (jobs_explicit)
                XMIG_FATAL("--trace-out requires --jobs 1 (the trace "
                           "session is per-process)");
            opt.jobs = 1;
        }
        return opt;
    }
};

} // namespace xmig
