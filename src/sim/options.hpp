/**
 * @file
 * Minimal command-line handling shared by the bench binaries.
 *
 * Every harness accepts:
 *   --instr N      instruction budget per benchmark (default 2e7)
 *   --scale X      multiply the default budget by X
 *   --bench NAME   restrict to one benchmark (repeatable)
 *   --seed S       workload seed
 *   --warmup N     unmeasured warm-up instructions (where supported)
 *   --fault-plan P xmig-iron fault plan (fault_plan.hpp grammar),
 *                  forwarded to MachineConfig::faultPlan by harnesses
 *                  that run a MigrationMachine
 *
 * xmig-scope outputs (harnesses that run a machine; applied to the
 * first selected benchmark — see sim/observe.hpp):
 *   --metrics-out F   dump the metrics registry as JSONL to F
 *   --samples-out F   dump the time-series sampler as CSV to F
 *   --trace-out F     write a Chrome trace_event JSON file to F
 *   --sample-every N  references between time-series samples
 *
 * Numeric values are validated strictly (xmig-iron): empty, signed,
 * non-numeric, trailing-garbage, or overflowing counts are fatal
 * errors instead of silently parsing as 0 or saturating.
 */

#pragma once

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/logging.hpp"

namespace xmig {

/** Parsed common options. */
struct BenchOptions
{
    uint64_t instructions = 20'000'000;
    uint64_t warmup = 0;
    uint64_t seed = 42;
    std::vector<std::string> benchmarks; ///< empty = all

    std::string metricsOut;    ///< "" = no metrics dump
    std::string samplesOut;    ///< "" = no time-series dump
    std::string traceOut;      ///< "" = no trace
    uint64_t sampleEvery = 0;  ///< 0 = sampler default cadence

    std::string faultPlan;     ///< "" = no fault injection

    /** True if any xmig-scope output was requested. */
    bool
    observing() const
    {
        return !metricsOut.empty() || !samplesOut.empty() ||
               !traceOut.empty();
    }

    /**
     * Strict decimal count: the whole string must be digits (no
     * sign, no blanks, no suffix) and fit in uint64_t.
     */
    static uint64_t
    parseCount(const char *flag, const char *text)
    {
        if (text == nullptr || *text == '\0')
            XMIG_FATAL("%s requires a value", flag);
        for (const char *p = text; *p != '\0'; ++p) {
            if (*p < '0' || *p > '9')
                XMIG_FATAL("%s: '%s' is not a non-negative integer",
                           flag, text);
        }
        errno = 0;
        char *end = nullptr;
        const unsigned long long v = std::strtoull(text, &end, 10);
        if (errno == ERANGE || end == nullptr || *end != '\0')
            XMIG_FATAL("%s: '%s' overflows a 64-bit count", flag,
                       text);
        return static_cast<uint64_t>(v);
    }

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions opt;
        double scale = 1.0;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> const char * {
                return i + 1 < argc ? argv[++i] : "";
            };
            if (arg == "--instr")
                opt.instructions = parseCount("--instr", next());
            else if (arg == "--warmup")
                opt.warmup = parseCount("--warmup", next());
            else if (arg == "--scale") {
                const char *text = next();
                errno = 0;
                char *end = nullptr;
                scale = std::strtod(text, &end);
                if (*text == '\0' || end == nullptr || *end != '\0' ||
                    !std::isfinite(scale) || scale <= 0.0) {
                    XMIG_FATAL("--scale: '%s' is not a positive "
                               "finite number",
                               text);
                }
            } else if (arg == "--seed")
                opt.seed = parseCount("--seed", next());
            else if (arg == "--bench")
                opt.benchmarks.emplace_back(next());
            else if (arg == "--metrics-out")
                opt.metricsOut = next();
            else if (arg == "--samples-out")
                opt.samplesOut = next();
            else if (arg == "--trace-out")
                opt.traceOut = next();
            else if (arg == "--sample-every")
                opt.sampleEvery = parseCount("--sample-every", next());
            else if (arg == "--fault-plan") {
                opt.faultPlan = next();
                // Validate eagerly so a typo dies at the command
                // line, not after minutes of warm-up.
                FaultPlan::parseOrFatal(opt.faultPlan);
            }
        }
        opt.instructions = static_cast<uint64_t>(
            static_cast<double>(opt.instructions) * scale);
        return opt;
    }
};

} // namespace xmig
