/**
 * @file
 * Work-stealing job pool for sweep parallelism (xmig-swift).
 *
 * Every experiment in the paper is a sweep of *independent*
 * single-program simulations: each (benchmark x config) cell builds
 * its own Machine, workload generator, RNG and metrics, runs to
 * completion, and reports a result. The pool executes those cells
 * across host threads while keeping the results in deterministic
 * job-index order, so a parallel sweep renders byte-identical output
 * to the serial one (docs/parallelism.md states the full contract).
 *
 * Scheduling: each worker owns a deque of job indices, seeded
 * round-robin at submit time. A worker pops from the *front* of its
 * own deque and, when empty, steals from the *back* of a victim's —
 * the classic Chase-Lev shape, here with a per-deque mutex because
 * jobs are whole simulations (milliseconds to minutes), not
 * microtasks; queue operations are measurement noise.
 *
 * With jobs() == 1 or a single submitted job, run() executes inline
 * on the calling thread: no threads are spawned, and the execution is
 * *exactly* the serial path, not merely equivalent to it.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace xmig {

/**
 * Fixed-width pool executing indexed jobs with work stealing.
 */
class JobPool
{
  public:
    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit JobPool(unsigned jobs);

    /** Resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Execute fn(0) .. fn(n-1) across the workers and return when all
     * are done. Exceptions thrown by jobs are captured per job; after
     * the join, the exception of the *lowest-indexed* failing job is
     * rethrown — the same one a serial loop would have surfaced first.
     * Jobs after a failing one still run (they are independent), which
     * keeps the executed-work set deterministic under any schedule.
     */
    void run(size_t n, const std::function<void(size_t)> &fn) const;

    /**
     * Host-parallelism default for --jobs: hardware_concurrency, or 1
     * when the runtime cannot tell.
     */
    static unsigned defaultJobs();

  private:
    unsigned jobs_;
};

/**
 * Typed fan-out: results land in a vector indexed by job number, so
 * collection order never depends on completion order.
 */
template <typename R, typename Fn>
std::vector<R>
runIndexed(const JobPool &pool, size_t n, Fn &&fn)
{
    std::vector<R> out(n);
    pool.run(n, [&](size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace xmig
