/**
 * @file
 * Shared sweep harness API (xmig-swift).
 *
 * The bench binaries all have the same shape: a list of
 * (benchmark x config) cells, a per-cell simulation producing a text
 * block and/or table rows, and a final render. SweepSpec captures
 * that shape once so every harness parallelizes the same way instead
 * of growing its own copy-pasted loop.
 *
 * Determinism contract (docs/parallelism.md): the cell function must
 * build ALL of its mutable state — Machine, workload generator, RNG,
 * MetricsRegistry — inside the call, and results are collated
 * strictly in cell-index order after the join. Output is therefore
 * bit-identical at any --jobs value.
 */

#pragma once

#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/runner/job_pool.hpp"
#include "util/stats.hpp"

namespace xmig {

/** One table row produced by a sweep cell. */
struct SweepRow
{
    /**
     * Section this row belongs to ("" = none). Collation emits an
     * AsciiTable section header whenever the label changes between
     * consecutive rows, so per-suite grouping survives the fan-out.
     */
    std::string section;
    std::vector<std::string> cells;
};

/** Everything one sweep cell contributes to the harness output. */
struct RunResult
{
    std::string text;           ///< free-form block (figures, series)
    std::vector<SweepRow> rows; ///< rows for the shared summary table
};

/** A parallelizable sweep: cell count plus the per-cell body. */
struct SweepSpec
{
    size_t cells = 0;
    std::function<RunResult(size_t)> run;
};

/**
 * Execute the sweep on `jobs` workers (0 = host default) and return
 * the results in cell-index order regardless of completion order.
 */
std::vector<RunResult> runSweep(const SweepSpec &spec, unsigned jobs);

/** Concatenate the per-cell text blocks in cell-index order. */
std::string collateText(const std::vector<RunResult> &results);

/**
 * Append every result row to `table` in cell-index order, emitting a
 * section header at each section-label change.
 */
void collateRows(const std::vector<RunResult> &results, AsciiTable &table);

/**
 * Write `out` to `stream` as one uninterruptible unit (single
 * unbuffered fwrite + flush): worker threads or a surrounding process
 * multiplexer can never tear a table row in half.
 */
void flushAtomically(const std::string &out, std::FILE *stream);

} // namespace xmig
