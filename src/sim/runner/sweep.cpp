#include "sim/runner/sweep.hpp"

#include "util/contracts.hpp"

namespace xmig {

std::vector<RunResult>
runSweep(const SweepSpec &spec, unsigned jobs)
{
    XMIG_ASSERT(static_cast<bool>(spec.run) || spec.cells == 0,
                "sweep of %zu cells has no run function", spec.cells);
    const JobPool pool(jobs);
    return runIndexed<RunResult>(pool, spec.cells,
                                 [&](size_t i) { return spec.run(i); });
}

std::string
collateText(const std::vector<RunResult> &results)
{
    std::string out;
    for (const RunResult &r : results)
        out += r.text;
    return out;
}

void
collateRows(const std::vector<RunResult> &results, AsciiTable &table)
{
    std::string section;
    for (const RunResult &r : results) {
        for (const SweepRow &row : r.rows) {
            if (!row.section.empty() && row.section != section) {
                section = row.section;
                table.addSection(section);
            }
            table.addRow(row.cells);
        }
    }
}

void
flushAtomically(const std::string &out, std::FILE *stream)
{
    // One write, then flush: interleaved worker stdout (or a parent
    // process capturing several harnesses) sees whole tables, never
    // torn rows. POSIX guarantees atomicity for a single write on a
    // pipe only up to PIPE_BUF, but a single buffered-then-flushed
    // unit is as close as stdio gets, and the harnesses only print
    // from the collation thread anyway.
    if (!out.empty())
        std::fwrite(out.data(), 1, out.size(), stream);
    std::fflush(stream);
}

} // namespace xmig
