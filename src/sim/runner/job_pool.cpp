#include "sim/runner/job_pool.hpp"

#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/contracts.hpp"
#include "util/thread_annotations.hpp"

namespace xmig {

namespace {

/** One worker's job queue; mutex-guarded (jobs are coarse). */
struct WorkerQueue
{
    std::mutex mutex;
    std::deque<size_t> jobs XMIG_GUARDED_BY(mutex);

    bool
    popFront(size_t *out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (jobs.empty())
            return false;
        *out = jobs.front();
        jobs.pop_front();
        return true;
    }

    bool
    stealBack(size_t *out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (jobs.empty())
            return false;
        *out = jobs.back();
        jobs.pop_back();
        return true;
    }

    /** Submit-time seeding; runs before the workers exist, but takes
     *  the lock anyway so the annotated invariant holds everywhere
     *  (one uncontended lock per job is submit-path noise). */
    void
    seed(size_t job)
    {
        std::lock_guard<std::mutex> lock(mutex);
        jobs.push_back(job);
    }
};

} // namespace

unsigned
JobPool::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

JobPool::JobPool(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
}

void
JobPool::run(size_t n, const std::function<void(size_t)> &fn) const
{
    if (n == 0)
        return;

    // Serial fast path: with one worker (or one job) nothing is
    // gained by spawning a thread, and running inline makes the
    // jobs==1 execution *the* serial path rather than a simulation
    // of it. Exceptions propagate naturally.
    if (jobs_ == 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    const size_t workers = std::min<size_t>(jobs_, n);
    std::vector<std::unique_ptr<WorkerQueue>> queues;
    queues.reserve(workers);
    for (size_t w = 0; w < workers; ++w)
        queues.push_back(std::make_unique<WorkerQueue>());
    // Round-robin seeding: worker w starts with jobs w, w+workers, ...
    // Deterministic, and spreads the (often monotone-cost) cell list
    // so no worker begins with all the expensive ones.
    for (size_t i = 0; i < n; ++i)
        queues[i % workers]->seed(i);

    // One slot per *job*: failures are reported by job index, so the
    // rethrown exception is schedule-independent.
    std::vector<std::exception_ptr> errors(n);

    auto worker_body = [&](size_t self) {
        size_t job;
        for (;;) {
            bool have = queues[self]->popFront(&job);
            for (size_t v = 1; !have && v < workers; ++v)
                have = queues[(self + v) % workers]->stealBack(&job);
            if (!have)
                return; // every queue drained
            try {
                fn(job);
            } catch (...) {
                errors[job] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w)
        threads.emplace_back(worker_body, w);
    worker_body(0); // the caller is worker 0
    for (std::thread &t : threads)
        t.join();

    for (size_t i = 0; i < n; ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
}

} // namespace xmig
