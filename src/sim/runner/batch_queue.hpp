/**
 * @file
 * Bounded chunk queue for intra-cell machine pipelining (xmig-bolt)
 * and per-tenant reference streams (xmig-arena).
 *
 * runQuadcore's pipelined feed mode runs the baseline and migration
 * machines of one Table-2 cell on two JobPool workers: the producer
 * feeds the baseline inline and hands reference chunks to this queue;
 * the consumer drains them into the migration machine. The queue is
 * strictly single-producer single-consumer, bounded (back-pressure
 * keeps the two machines within capacity() chunks of each other, so
 * memory stays O(1)), and FIFO — the consumer sees exactly the
 * producer's reference order, which is what makes the pipelined run
 * byte-identical to the serial one (docs/parallelism.md, "batching").
 *
 * xmig-arena reuses the queue as a pull-inversion adapter: each
 * tenant Session runs its push-model Workload on a producer thread
 * feeding a BatchQueue, and the arena's single consumer thread pops
 * chunks in whatever interleave the tenant scheduler dictates. The
 * consumer-side cancel() lets the arena tear a session down while
 * its producer is blocked in push() mid-stream.
 *
 * A mutex + two condition variables, not a lock-free ring: one
 * handoff per K=64 references means the lock is touched ~16k times
 * per million references — measurement noise next to the simulation
 * work in each chunk, and trivially TSan-clean.
 */

#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "mem/ref.hpp"
#include "multicore/machine.hpp"
#include "util/contracts.hpp"
#include "util/thread_annotations.hpp"

namespace xmig {

/** SPSC bounded queue of reference chunks. */
class BatchQueue
{
  public:
    static constexpr size_t kChunkRefs = MigrationMachine::kBatchRefs;
    static constexpr size_t kDefaultSlots = 8;

    /** One producer-to-consumer handoff. */
    struct Chunk
    {
        std::array<MemRef, kChunkRefs> refs;
        uint32_t count = 0;

        /**
         * Warm-up boundary: when >= 0, the consumer must reset the
         * machine's counters after feeding refs[0..resetAfter]
         * (inclusive) — the exact reference where the scalar
         * WarmupTee would have reset them.
         */
        int32_t resetAfter = -1;
    };

    explicit BatchQueue(size_t slots = kDefaultSlots)
        : slots_(slots > 0 ? slots : 1), ring_(slots_)
    {
        XMIG_EXPECT(slots > 0, "BatchQueue slots clamped up from 0");
    }

    /** Ring capacity in chunks (fixed at construction). */
    size_t capacity() const { return slots_; }

    /**
     * Block until a slot frees, then enqueue a copy of `chunk`.
     * Returns false — with the chunk dropped — once the consumer has
     * cancelled the stream; producers must unwind, not keep pushing.
     */
    bool
    push(const Chunk &chunk)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (used_ >= slots_ && !cancelled_)
            notFull_.wait(lock);
        if (cancelled_)
            return false;
        ring_[tail_] = chunk;
        tail_ = (tail_ + 1) % slots_;
        ++used_;
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Block until a chunk arrives or the queue is closed and drained.
     * Returns false only in the latter case.
     */
    bool
    pop(Chunk &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (used_ == 0 && !closed_)
            notEmpty_.wait(lock);
        if (used_ == 0)
            return false;
        out = ring_[head_];
        head_ = (head_ + 1) % slots_;
        --used_;
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /** Producer is done; wakes a consumer blocked in pop(). */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
    }

    /**
     * Consumer abandons the stream: discards buffered chunks and
     * makes every pending and future push() return false so the
     * producer thread can unwind. Also closes the queue, so a
     * subsequent pop() returns false rather than blocking.
     */
    void
    cancel()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            cancelled_ = true;
            closed_ = true;
            used_ = 0;
            head_ = 0;
            tail_ = 0;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    /** True once cancel() has been called. */
    bool
    cancelled() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return cancelled_;
    }

  private:
    const size_t slots_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::vector<Chunk> ring_ XMIG_GUARDED_BY(mutex_);
    size_t head_ XMIG_GUARDED_BY(mutex_) = 0;
    size_t tail_ XMIG_GUARDED_BY(mutex_) = 0;
    size_t used_ XMIG_GUARDED_BY(mutex_) = 0;
    bool closed_ XMIG_GUARDED_BY(mutex_) = false;
    bool cancelled_ XMIG_GUARDED_BY(mutex_) = false;
};

} // namespace xmig
