#include "cache/cache.hpp"

#include <vector>

#include "util/contracts.hpp"

namespace xmig {

namespace {

std::unique_ptr<TagStore>
makeTags(const CacheConfig &config)
{
    const uint64_t lines = config.numLines();
    XMIG_ASSERT(lines >= config.ways && lines % config.ways == 0,
                "capacity %llu lines not divisible by %u ways",
                (unsigned long long)lines, config.ways);
    const uint64_t sets = lines / config.ways;
    if (config.skewed) {
        return std::make_unique<SkewedTags>(sets, config.ways,
                                            config.repl, config.seed);
    }
    return std::make_unique<SetAssocTags>(sets, config.ways,
                                          config.repl, config.seed);
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config),
      tags_(makeTags(config))
{
    sa_ = dynamic_cast<SetAssocTags *>(tags_.get());
    sk_ = dynamic_cast<SkewedTags *>(tags_.get());
}

AccessOutcome
Cache::access(uint64_t line, bool is_store)
{
    return accessFast(line, is_store);
}

AccessOutcome
Cache::accessProbed(uint64_t line, bool is_store, CacheEntry *entry)
{
    AccessOutcome out;
    ++stats_.accesses;

    if (entry) {
        out.hit = true;
        ++stats_.hits;
        tags_->touch(*entry);
        if (is_store) {
            if (config_.write == WritePolicy::WriteBackAllocate)
                entry->modified = true;
            else
                out.writeThrough = true;
        }
        out.entry = entry;
        return out;
    }

    missPath(line, is_store, out);
    return out;
}

void
Cache::missPath(uint64_t line, bool is_store, AccessOutcome &out)
{
    ++stats_.misses;
    const bool allocate =
        !is_store || config_.write == WritePolicy::WriteBackAllocate;
    if (is_store && config_.write == WritePolicy::WriteThroughNoAllocate)
        out.writeThrough = true;

    if (allocate) {
        CacheEntry victim;
        bool victim_valid = false;
        CacheEntry &frame = tags_->allocate(line, &victim, &victim_valid);
        out.filled = true;
        out.entry = &frame;
        if (victim_valid) {
            out.evictedValid = true;
            out.evictedLine = victim.line;
            if (victim.modified) {
                out.writeback = true;
                ++stats_.writebacks;
            }
        }
        if (is_store && config_.write == WritePolicy::WriteBackAllocate)
            frame.modified = true;
    }
}

AccessOutcome
Cache::fill(uint64_t line, bool modified)
{
    AccessOutcome out;
    CacheEntry *entry = tags_->find(line);
    if (entry) {
        entry->modified = entry->modified || modified;
        out.hit = true;
        out.entry = entry;
        return out;
    }
    CacheEntry victim;
    bool victim_valid = false;
    CacheEntry &frame = tags_->allocate(line, &victim, &victim_valid);
    frame.modified = modified;
    out.filled = true;
    out.entry = &frame;
    if (victim_valid) {
        out.evictedValid = true;
        out.evictedLine = victim.line;
        if (victim.modified) {
            out.writeback = true;
            ++stats_.writebacks;
        }
    }
    return out;
}

bool
Cache::contains(uint64_t line) const
{
    return tags_->find(line) != nullptr;
}

const CacheEntry *
Cache::findEntry(uint64_t line) const
{
    return tags_->find(line);
}

bool
Cache::invalidate(uint64_t line)
{
    return tags_->invalidate(line);
}

uint64_t
Cache::invalidateAll()
{
    // Collect first: invalidating while iterating the tag store is
    // undefined for both backings.
    std::vector<uint64_t> lines;
    uint64_t dirty = 0;
    tags_->forEachValid([&](const CacheEntry &e) {
        lines.push_back(e.line);
        if (e.modified)
            ++dirty;
    });
    for (uint64_t line : lines)
        tags_->invalidate(line);
    return dirty;
}

} // namespace xmig
