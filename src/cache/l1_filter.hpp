/**
 * @file
 * Level-1 filtering of a reference stream.
 *
 * Both evaluation setups in the paper observe the stream *after* the
 * L1 caches: section 4.1 filters through 16-KB fully-associative LRU
 * IL1/DL1 (loads and stores not distinguished), and section 4.2 uses
 * 16-KB 4-way set-associative L1s with a write-through,
 * non-write-allocate DL1, so the L2 sees L1 misses plus every store.
 *
 * Because the paper mirrors L1 contents across all cores (section
 * 2.3), the L1-filtered stream is identical whether or not execution
 * migrates; one shared filter instance therefore models the L1 level
 * of the whole machine exactly.
 */

#pragma once

#include <cstdint>
#include <memory>

#include "cache/cache.hpp"
#include "cache/fully_assoc.hpp"
#include "mem/line.hpp"
#include "mem/ref.hpp"
#include "mem/trace.hpp"

namespace xmig {

/** One post-L1 event: a line-granularity request leaving the L1s. */
struct LineEvent
{
    uint64_t line = 0;   ///< line address
    RefType type = RefType::Load;
    bool l1Miss = false; ///< true for misses; false for WT store hits
    bool pointer = false; ///< request came from a pointer load
};

/** Consumer of the post-L1 stream. */
class LineSink
{
  public:
    virtual ~LineSink() = default;
    virtual void onLine(const LineEvent &event) = 0;
};

/** LineSink that drops everything. */
class NullLineSink : public LineSink
{
  public:
    void onLine(const LineEvent &) override {}
};

/** Configuration for the L1 level. */
struct L1FilterConfig
{
    uint64_t il1Bytes = 16 * 1024;
    uint64_t dl1Bytes = 16 * 1024;
    uint64_t lineBytes = 64;

    /** true: fully-associative LRU (section 4.1); false: set-assoc. */
    bool fullyAssociative = true;

    /** Associativity when !fullyAssociative (section 4.2 uses 4). */
    unsigned ways = 4;

    /**
     * true: loads and stores are not distinguished (section 4.1);
     * stores allocate like loads and nothing is written through.
     * false: DL1 is write-through non-write-allocate (section 2.1);
     * every store is forwarded downstream, store misses do not
     * allocate.
     */
    bool unifiedReadWrite = true;
};

/**
 * The L1 level of the machine: filters MemRefs, emits LineEvents.
 */
class L1Filter : public RefSink
{
  public:
    /** @param sink downstream consumer of post-L1 line events. */
    L1Filter(const L1FilterConfig &config, LineSink &sink);

    void access(const MemRef &ref) override;

    /**
     * Filter a run of `n` references without invoking the sink: the
     * resulting post-L1 events land in `events[0..m)` with the index
     * of the originating reference in `ref_idx[0..m)` and the number
     * of instruction fetches among refs[0..ref_idx[m]] (inclusive) in
     * `ev_instr[0..m)`; returns m (<= n, at most one event per
     * reference). `*ifetch_total` receives the run's instruction-
     * fetch count. The L1 probes run through the devirtualized cache
     * fast path with register-tallied statistics (xmig-bolt).
     *
     * Identical event stream to n access() calls: L1 state depends
     * only on the reference stream itself — downstream processing
     * never writes back into the L1 level — so probing the whole run
     * before the caller consumes any event cannot change what any
     * probe sees (docs/parallelism.md, "batching").
     */
    size_t filterBatch(const MemRef *refs, size_t n, LineEvent *events,
                       uint32_t *ref_idx, uint32_t *ev_instr,
                       uint32_t *ifetch_total);

    const CacheStats &il1Stats() const;
    const CacheStats &dl1Stats() const;
    const LineGeometry &geometry() const { return geom_; }

    /** Replace the downstream sink (for staged experiments). */
    void setSink(LineSink &sink) { sink_ = &sink; }

  private:
    L1FilterConfig config_;
    LineGeometry geom_;
    LineSink *sink_;

    // Fully-associative backing (section 4.1)...
    std::unique_ptr<FullyAssocLru> faIl1_;
    std::unique_ptr<FullyAssocLru> faDl1_;
    // ...or set-associative backing (section 4.2).
    std::unique_ptr<Cache> saIl1_;
    std::unique_ptr<Cache> saDl1_;
};

} // namespace xmig
