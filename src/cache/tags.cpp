#include "cache/tags.hpp"

#include <bit>

#include "util/hashing.hpp"
#include "util/contracts.hpp"

namespace xmig {

namespace {

/**
 * Pick a victim among `ways` candidate entries according to `policy`.
 * Prefers an invalid frame; `get(i)` returns the i-th candidate.
 */
template <typename Get>
unsigned
pickVictim(ReplPolicy policy, unsigned ways, Rng &rng, Get get)
{
    for (unsigned w = 0; w < ways; ++w) {
        if (!get(w).valid)
            return w;
    }
    switch (policy) {
      case ReplPolicy::Lru: {
        unsigned best = 0;
        for (unsigned w = 1; w < ways; ++w) {
            if (get(w).lastUse < get(best).lastUse)
                best = w;
        }
        return best;
      }
      case ReplPolicy::Fifo: {
        unsigned best = 0;
        for (unsigned w = 1; w < ways; ++w) {
            if (get(w).inserted < get(best).inserted)
                best = w;
        }
        return best;
      }
      case ReplPolicy::Random:
        return static_cast<unsigned>(rng.below(ways));
      case ReplPolicy::Age: {
        // Evict the oldest age; break ties by LRU timestamp.
        unsigned best = 0;
        for (unsigned w = 1; w < ways; ++w) {
            const CacheEntry &c = get(w);
            const CacheEntry &b = get(best);
            if (c.age > b.age || (c.age == b.age && c.lastUse < b.lastUse))
                best = w;
        }
        return best;
      }
    }
    XMIG_PANIC("unknown replacement policy");
}

/** Periodically age all entries for ReplPolicy::Age (2-bit counters). */
inline void
ageTick(std::vector<CacheEntry> &entries, uint64_t clock)
{
    // Age every entry each time the clock crosses a window boundary
    // sized to a fraction of the capacity. This approximates the
    // paper's "few bits for age-based replacement".
    const uint64_t window = entries.size() / 4 + 1;
    if (clock % window != 0)
        return;
    for (auto &e : entries) {
        if (e.valid && e.age < 3)
            ++e.age;
    }
}

} // namespace

SetAssocTags::SetAssocTags(uint64_t num_sets, unsigned ways,
                           ReplPolicy policy, uint64_t seed)
    : numSets_(num_sets),
      ways_(ways),
      policy_(policy),
      rng_(seed),
      entries_(num_sets * ways)
{
    XMIG_ASSERT(num_sets >= 1 && std::has_single_bit(num_sets),
                "set count must be a power of two");
    XMIG_ASSERT(ways >= 1, "need at least one way");
}

CacheEntry *
SetAssocTags::find(uint64_t line)
{
    return findFast(line);
}

const CacheEntry *
SetAssocTags::find(uint64_t line) const
{
    return const_cast<SetAssocTags *>(this)->findFast(line);
}

void
SetAssocTags::touch(CacheEntry &entry)
{
    touchFast(entry);
}

void
SetAssocTags::agePass()
{
    ageTick(entries_, clock_);
}

CacheEntry &
SetAssocTags::allocate(uint64_t line, CacheEntry *evicted,
                       bool *evicted_valid)
{
    const uint64_t set = setOf(line);
    CacheEntry *base = &entries_[set * ways_];
    const unsigned w =
        pickVictim(policy_, ways_, rng_,
                   [&](unsigned i) -> CacheEntry & { return base[i]; });
    CacheEntry &frame = base[w];
    *evicted_valid = frame.valid;
    if (frame.valid && evicted)
        *evicted = frame;
    ++clock_;
    frame.line = line;
    frame.valid = true;
    frame.modified = false;
    frame.prefetched = false;
    frame.lastUse = clock_;
    frame.inserted = clock_;
    frame.age = 0;
    frame.payload = 0;
    if (policy_ == ReplPolicy::Age)
        ageTick(entries_, clock_);
    return frame;
}

bool
SetAssocTags::invalidate(uint64_t line)
{
    CacheEntry *e = find(line);
    if (!e)
        return false;
    e->valid = false;
    e->modified = false;
    return true;
}

uint64_t
SetAssocTags::occupancy() const
{
    uint64_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

void
SetAssocTags::forEachValid(
    const std::function<void(const CacheEntry &)> &fn) const
{
    for (const auto &e : entries_) {
        if (e.valid)
            fn(e);
    }
}

SkewedTags::SkewedTags(uint64_t sets_per_bank, unsigned ways,
                       ReplPolicy policy, uint64_t seed)
    : setsPerBank_(sets_per_bank),
      ways_(ways),
      policy_(policy),
      rng_(seed),
      entries_(sets_per_bank * ways)
{
    XMIG_ASSERT(sets_per_bank >= 1 && std::has_single_bit(sets_per_bank),
                "sets per bank must be a power of two");
    XMIG_ASSERT(ways >= 1, "need at least one bank");
}

CacheEntry *
SkewedTags::find(uint64_t line)
{
    return findFast(line);
}

const CacheEntry *
SkewedTags::find(uint64_t line) const
{
    return const_cast<SkewedTags *>(this)->findFast(line);
}

void
SkewedTags::touch(CacheEntry &entry)
{
    touchFast(entry);
}

void
SkewedTags::agePass()
{
    ageTick(entries_, clock_);
}

CacheEntry &
SkewedTags::allocate(uint64_t line, CacheEntry *evicted,
                     bool *evicted_valid)
{
    const unsigned w = pickVictim(
        policy_, ways_, rng_,
        [&](unsigned i) -> CacheEntry & { return entries_[slotOf(line, i)]; });
    CacheEntry &frame = entries_[slotOf(line, w)];
    *evicted_valid = frame.valid;
    if (frame.valid && evicted)
        *evicted = frame;
    ++clock_;
    frame.line = line;
    frame.valid = true;
    frame.modified = false;
    frame.prefetched = false;
    frame.lastUse = clock_;
    frame.inserted = clock_;
    frame.age = 0;
    frame.payload = 0;
    if (policy_ == ReplPolicy::Age)
        ageTick(entries_, clock_);
    return frame;
}

bool
SkewedTags::invalidate(uint64_t line)
{
    CacheEntry *e = find(line);
    if (!e)
        return false;
    e->valid = false;
    e->modified = false;
    return true;
}

uint64_t
SkewedTags::occupancy() const
{
    uint64_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

void
SkewedTags::forEachValid(
    const std::function<void(const CacheEntry &)> &fn) const
{
    for (const auto &e : entries_) {
        if (e.valid)
            fn(e);
    }
}

} // namespace xmig
