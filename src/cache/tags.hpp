/**
 * @file
 * Tag stores: the indexing + replacement half of a cache model.
 *
 * Two concrete organizations are provided behind one interface:
 * conventional set-associative indexing, and the skewed-associative
 * organization of Bodin & Seznec that the paper uses for the 512-KB
 * L2 caches and the affinity cache (sections 3.5 and 4.2).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/hashing.hpp"
#include "util/rng.hpp"

namespace xmig {

/** Replacement policy for a tag store. */
enum class ReplPolicy : uint8_t
{
    Lru,    ///< least-recently used (global timestamps)
    Fifo,   ///< oldest inserted
    Random, ///< uniform random victim
    Age,    ///< 2-bit age counters, as suggested for the affinity cache
};

/** One cache frame: a tag plus the state bits the models need. */
struct CacheEntry
{
    uint64_t line = 0;      ///< line address (full tag; no aliasing)
    bool valid = false;
    bool modified = false;  ///< dirty / the paper's "modified" bit
    bool prefetched = false; ///< filled by a prefetch, not yet used
    uint64_t lastUse = 0;   ///< LRU timestamp
    uint64_t inserted = 0;  ///< FIFO timestamp
    uint8_t age = 0;        ///< 2-bit age for ReplPolicy::Age

    /**
     * Owner-defined data word riding in the frame (xmig-swift). The
     * affinity cache keeps O_e here so a hit is ONE probe — tag match
     * and payload in the same entry, exactly as the hardware array of
     * section 3.5 stores tag + affinity side by side — instead of a
     * tag probe plus a separate line->O_e hash-map find. Reset to 0
     * by allocate(); plain caches ignore it.
     */
    int64_t payload = 0;
};

/**
 * Abstract tag store.
 *
 * A tag store owns the frames and decides placement and replacement,
 * but knows nothing about write policies or hierarchies; the Cache
 * class layers those semantics on top.
 */
class TagStore
{
  public:
    virtual ~TagStore() = default;

    /** Find the frame holding `line`, or nullptr. Does not touch LRU. */
    virtual CacheEntry *find(uint64_t line) = 0;
    virtual const CacheEntry *find(uint64_t line) const = 0;

    /**
     * Record a use of an already-resident entry (updates replacement
     * state: LRU timestamp, age reset).
     */
    virtual void touch(CacheEntry &entry) = 0;

    /**
     * Allocate a frame for `line`, evicting if necessary.
     *
     * If a valid entry is displaced, it is copied to `evicted` and
     * *evicted_valid is set. The returned frame has `line` installed,
     * valid set, modified cleared, and fresh replacement state.
     */
    virtual CacheEntry &allocate(uint64_t line, CacheEntry *evicted,
                                 bool *evicted_valid) = 0;

    /** Drop `line` if resident. Returns true if it was. */
    virtual bool invalidate(uint64_t line) = 0;

    /** Total number of frames. */
    virtual uint64_t frames() const = 0;

    /** Number of valid entries (O(frames); for tests and reports). */
    virtual uint64_t occupancy() const = 0;

    /** Visit every valid entry (for tests and coherence audits). */
    virtual void
    forEachValid(const std::function<void(const CacheEntry &)> &fn) const = 0;
};

/**
 * Conventional set-associative tag store.
 *
 * Index bits are taken from the low-order line-address bits. A single
 * set with `ways == frames` degenerates to a fully-associative store
 * (used only for small structures; see FullyAssocLru for the fast
 * large-capacity variant).
 */
class SetAssocTags : public TagStore
{
  public:
    /**
     * @param num_sets power-of-two set count
     * @param ways associativity
     * @param policy replacement policy
     * @param seed RNG seed for ReplPolicy::Random
     */
    SetAssocTags(uint64_t num_sets, unsigned ways, ReplPolicy policy,
                 uint64_t seed = 1);

    CacheEntry *find(uint64_t line) override;
    const CacheEntry *find(uint64_t line) const override;
    void touch(CacheEntry &entry) override;
    CacheEntry &allocate(uint64_t line, CacheEntry *evicted,
                         bool *evicted_valid) override;
    bool invalidate(uint64_t line) override;
    uint64_t frames() const override { return entries_.size(); }
    uint64_t occupancy() const override;
    void forEachValid(
        const std::function<void(const CacheEntry &)> &fn) const override;

    uint64_t numSets() const { return numSets_; }
    unsigned ways() const { return ways_; }

    /**
     * Non-virtual, header-inline probe/touch for batch loops that hold
     * a concrete SetAssocTags* (xmig-bolt). Same semantics as the
     * virtual find()/touch() — those forward here, so there is exactly
     * one code path.
     */
    CacheEntry *
    findFast(uint64_t line)
    {
        CacheEntry *base = &entries_[setOf(line) * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            if (base[w].valid && base[w].line == line)
                return &base[w];
        }
        return nullptr;
    }

    void
    touchFast(CacheEntry &entry)
    {
        entry.lastUse = ++clock_;
        entry.age = 0;
        // L1/L2 run Lru, so the batch hot loop never takes this branch;
        // the Age sweep stays out of line.
        if (policy_ == ReplPolicy::Age)
            agePass();
    }

  private:
    uint64_t setOf(uint64_t line) const { return line & (numSets_ - 1); }
    unsigned victimWay(uint64_t set);
    void agePass();

    uint64_t numSets_;
    unsigned ways_;
    ReplPolicy policy_;
    uint64_t clock_ = 0;
    Rng rng_;
    std::vector<CacheEntry> entries_; // numSets_ * ways_, set-major
};

/**
 * Skewed-associative tag store (Bodin & Seznec).
 *
 * Each way is a distinct bank indexed by its own hash of the line
 * address, which spreads set conflicts across banks. Replacement
 * chooses among the `ways` candidate frames (one per bank) using the
 * configured policy.
 */
class SkewedTags : public TagStore
{
  public:
    SkewedTags(uint64_t sets_per_bank, unsigned ways, ReplPolicy policy,
               uint64_t seed = 1);

    CacheEntry *find(uint64_t line) override;
    const CacheEntry *find(uint64_t line) const override;
    void touch(CacheEntry &entry) override;
    CacheEntry &allocate(uint64_t line, CacheEntry *evicted,
                         bool *evicted_valid) override;
    bool invalidate(uint64_t line) override;
    uint64_t frames() const override { return entries_.size(); }
    uint64_t occupancy() const override;
    void forEachValid(
        const std::function<void(const CacheEntry &)> &fn) const override;

    uint64_t setsPerBank() const { return setsPerBank_; }
    unsigned ways() const { return ways_; }

    /** Non-virtual, header-inline probe/touch (see SetAssocTags). */
    CacheEntry *
    findFast(uint64_t line)
    {
        for (unsigned b = 0; b < ways_; ++b) {
            CacheEntry &e = entries_[slotOf(line, b)];
            if (e.valid && e.line == line)
                return &e;
        }
        return nullptr;
    }

    void
    touchFast(CacheEntry &entry)
    {
        entry.lastUse = ++clock_;
        entry.age = 0;
        if (policy_ == ReplPolicy::Age)
            agePass();
    }

  private:
    /** Frame index of `line`'s candidate slot in `bank`. */
    uint64_t
    slotOf(uint64_t line, unsigned bank) const
    {
        // Bank 0 uses straight modulo indexing; other banks use
        // skewing hashes, so bank 0 behaves like a direct-mapped slice
        // and the skew spreads conflicts across the others.
        const uint64_t set = bank == 0
            ? (line & (setsPerBank_ - 1))
            : skewHash(line, bank, setsPerBank_);
        return uint64_t(bank) * setsPerBank_ + set;
    }

    void agePass();

    uint64_t setsPerBank_;
    unsigned ways_;
    ReplPolicy policy_;
    uint64_t clock_ = 0;
    Rng rng_;
    std::vector<CacheEntry> entries_; // bank-major: bank*setsPerBank + set
};

} // namespace xmig
