/**
 * @file
 * O(1) fully-associative LRU cache.
 *
 * Section 4.1 filters every benchmark's reference stream through
 * 16-KB fully-associative LRU IL1/DL1 caches before profiling. At a
 * few hundred frames, a linear tag scan would dominate simulation
 * time over tens of millions of references, so this model uses a hash
 * map plus an intrusive recency list for constant-time accesses.
 */

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "cache/cache.hpp" // CacheStats
#include "util/contracts.hpp"

namespace xmig {

/**
 * Fully-associative LRU cache over line addresses.
 *
 * Read-allocate semantics only: the section-4.1 experiments do not
 * distinguish loads from stores. Use Cache for write-policy modeling.
 */
class FullyAssocLru
{
  public:
    /** @param capacity_lines number of line frames (e.g. 256 = 16 KB). */
    explicit FullyAssocLru(uint64_t capacity_lines)
        : capacity_(capacity_lines)
    {
        XMIG_ASSERT(capacity_lines >= 1, "capacity must be positive");
        map_.reserve(capacity_lines * 2);
    }

    /**
     * Access `line`. Returns true on hit. On miss the line is
     * allocated, evicting the LRU line when full; *evicted_line
     * receives it and *evicted_valid is set (both optional).
     */
    bool
    access(uint64_t line, uint64_t *evicted_line = nullptr,
           bool *evicted_valid = nullptr)
    {
        ++stats_.accesses;
        if (evicted_valid)
            *evicted_valid = false;
        auto it = map_.find(line);
        if (it != map_.end()) {
            ++stats_.hits;
            recency_.splice(recency_.begin(), recency_, it->second);
            return true;
        }
        ++stats_.misses;
        if (map_.size() == capacity_) {
            const uint64_t victim = recency_.back();
            recency_.pop_back();
            map_.erase(victim);
            if (evicted_line)
                *evicted_line = victim;
            if (evicted_valid)
                *evicted_valid = true;
        }
        recency_.push_front(line);
        map_.emplace(line, recency_.begin());
        return false;
    }

    /** True if `line` is resident (no LRU update). */
    bool contains(uint64_t line) const { return map_.count(line) != 0; }

    uint64_t size() const { return map_.size(); }
    uint64_t capacity() const { return capacity_; }

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    uint64_t capacity_;
    std::list<uint64_t> recency_; // front = MRU
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
    CacheStats stats_;
};

} // namespace xmig
