#include "cache/prefetcher.hpp"

#include <bit>

#include "util/hashing.hpp"
#include "util/contracts.hpp"

namespace xmig {

Prefetcher::Prefetcher(const PrefetcherConfig &config)
    : config_(config)
{
    if (config_.kind == PrefetchKind::Stride) {
        XMIG_ASSERT(std::has_single_bit(
                        uint64_t(config_.tableEntries)),
                    "stride table size must be a power of two");
        table_.resize(config_.tableEntries);
    }
}

void
Prefetcher::onDemand(uint64_t line, bool miss, std::vector<uint64_t> &out)
{
    switch (config_.kind) {
      case PrefetchKind::None:
        return;
      case PrefetchKind::NextLine:
        if (miss) {
            ++stats_.triggers;
            nextLine(line, out);
        }
        return;
      case PrefetchKind::Stride:
        // Stride training observes every demand access; issue only
        // counts as a trigger when candidates are produced.
        stride(line, out);
        return;
    }
}

void
Prefetcher::nextLine(uint64_t line, std::vector<uint64_t> &out)
{
    for (unsigned d = 1; d <= config_.degree; ++d)
        out.push_back(line + d);
    stats_.issued += config_.degree;
}

void
Prefetcher::stride(uint64_t line, std::vector<uint64_t> &out)
{
    const uint64_t region = line >> config_.regionShift;
    const uint64_t idx =
        mix64(region) & (config_.tableEntries - 1);
    StrideEntry &e = table_[idx];

    if (!e.valid || e.region != region) {
        e.region = region;
        e.lastLine = line;
        e.stride = 0;
        e.confidence = 0;
        e.valid = true;
        return;
    }

    const int64_t observed = static_cast<int64_t>(line) -
                             static_cast<int64_t>(e.lastLine);
    if (observed == 0)
        return; // same line again: nothing to learn
    if (observed == e.stride) {
        if (e.confidence < 255)
            ++e.confidence;
    } else {
        e.stride = observed;
        e.confidence = 0;
    }
    e.lastLine = line;

    if (e.confidence >= config_.confidenceThreshold) {
        ++stats_.triggers;
        int64_t target = static_cast<int64_t>(line);
        for (unsigned d = 0; d < config_.degree; ++d) {
            target += e.stride;
            if (target >= 0)
                out.push_back(static_cast<uint64_t>(target));
        }
        stats_.issued += config_.degree;
    }
}

} // namespace xmig
