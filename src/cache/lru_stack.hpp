/**
 * @file
 * Single-pass Mattson LRU-stack profiler.
 *
 * Section 4.1 of the paper characterizes "splittability" by comparing
 * LRU stack profiles (Mattson et al., 1970): p(x) is the fraction of
 * references whose stack depth exceeds x, i.e. the miss ratio of a
 * fully-associative LRU cache of x lines, for every x at once.
 *
 * This implementation computes exact stack distances in O(log n) per
 * reference using a Fenwick tree over access timestamps, with periodic
 * compaction so memory stays proportional to the number of distinct
 * lines rather than to trace length.
 */

#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace xmig {

/**
 * Exact LRU stack with a full depth histogram.
 *
 * Depths are 1-based: a reference immediately repeated has depth 1
 * (hits in a 1-line cache). First touches report kInfiniteDepth.
 */
class LruStack
{
  public:
    static constexpr uint64_t kInfiniteDepth =
        std::numeric_limits<uint64_t>::max();

    LruStack();

    /** Process one reference; returns its stack depth. */
    uint64_t access(uint64_t line);

    /** Number of references processed. */
    uint64_t references() const { return references_; }

    /** Number of distinct lines seen (= footprint in lines). */
    uint64_t distinctLines() const { return last_.size(); }

    /** Number of first-touch (infinite-depth) references. */
    uint64_t coldReferences() const { return coldRefs_; }

    /**
     * Histogram: histogram()[d-1] = number of references with depth
     * exactly d (cold references excluded; see coldReferences()).
     */
    const std::vector<uint64_t> &histogram() const { return histogram_; }

    /**
     * Number of references with depth > `depth` (cold references
     * included, matching the paper's p(x) definition where first
     * touches have infinite depth).
     */
    uint64_t missesAtSize(uint64_t depth) const;

    /** missesAtSize as a fraction of all references. */
    double missRatioAtSize(uint64_t depth) const;

  private:
    void compact();

    /** Fenwick prefix sum over [0, pos]. */
    uint64_t prefix(int64_t pos) const;
    void update(int64_t pos, int64_t delta);

    std::unordered_map<uint64_t, uint64_t> last_; // line -> timestamp
    std::vector<int64_t> bit_;                    // Fenwick over time
    uint64_t time_ = 0;
    uint64_t marked_ = 0; // number of set slots == distinct lines
    uint64_t references_ = 0;
    uint64_t coldRefs_ = 0;
    std::vector<uint64_t> histogram_;
};

} // namespace xmig
