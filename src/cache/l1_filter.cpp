#include "cache/l1_filter.hpp"

#include "util/logging.hpp"

namespace xmig {

L1Filter::L1Filter(const L1FilterConfig &config, LineSink &sink)
    : config_(config),
      geom_(config.lineBytes),
      sink_(&sink)
{
    if (config_.fullyAssociative) {
        faIl1_ = std::make_unique<FullyAssocLru>(
            config_.il1Bytes / config_.lineBytes);
        faDl1_ = std::make_unique<FullyAssocLru>(
            config_.dl1Bytes / config_.lineBytes);
    } else {
        CacheConfig il1;
        il1.capacityBytes = config_.il1Bytes;
        il1.ways = config_.ways;
        il1.lineBytes = config_.lineBytes;
        il1.write = WritePolicy::WriteBackAllocate; // ifetch never writes
        saIl1_ = std::make_unique<Cache>(il1);

        CacheConfig dl1 = il1;
        dl1.capacityBytes = config_.dl1Bytes;
        dl1.write = config_.unifiedReadWrite
            ? WritePolicy::WriteBackAllocate
            : WritePolicy::WriteThroughNoAllocate;
        saDl1_ = std::make_unique<Cache>(dl1);
    }
}

void
L1Filter::access(const MemRef &ref)
{
    const uint64_t line = geom_.lineOf(ref.addr);
    const bool is_store = !config_.unifiedReadWrite && ref.isStore();

    bool hit;
    if (ref.isIfetch()) {
        hit = config_.fullyAssociative
            ? faIl1_->access(line)
            : saIl1_->access(line, false).hit;
    } else if (config_.fullyAssociative) {
        hit = faDl1_->access(line);
    } else {
        hit = saDl1_->access(line, is_store).hit;
    }

    // Downstream sees: every miss, plus (in write-through mode) every
    // store, hit or miss, since WT stores always propagate.
    if (!hit || is_store) {
        LineEvent event;
        event.line = line;
        event.type = ref.type;
        event.l1Miss = !hit;
        event.pointer = ref.pointer;
        sink_->onLine(event);
    }
}

size_t
L1Filter::filterBatch(const MemRef *refs, size_t n, LineEvent *events,
                      uint32_t *ref_idx, uint32_t *ev_instr,
                      uint32_t *ifetch_total)
{
    size_t m = 0;
    uint32_t instr = 0;
    if (!config_.fullyAssociative) {
        Cache &il1 = *saIl1_;
        Cache &dl1 = *saDl1_;
        const bool unified = config_.unifiedReadWrite;
        // Access/hit tallies stay in registers across the run; the
        // settle below folds them into the CacheStats, so the final
        // counters match n access() calls exactly.
        uint64_t il1_acc = 0, il1_hit = 0;
        uint64_t dl1_acc = 0, dl1_hit = 0;
        for (size_t i = 0; i < n; ++i) {
            const MemRef &ref = refs[i];
            const uint64_t line = geom_.lineOf(ref.addr);
            bool is_store = false;
            bool hit;
            if (ref.isIfetch()) {
                ++instr;
                ++il1_acc;
                hit = il1.accessTallied(line, false, il1_hit).hit;
            } else {
                is_store = !unified && ref.isStore();
                ++dl1_acc;
                hit = dl1.accessTallied(line, is_store, dl1_hit).hit;
            }
            if (!hit || is_store) {
                events[m].line = line;
                events[m].type = ref.type;
                events[m].l1Miss = !hit;
                events[m].pointer = ref.pointer;
                ref_idx[m] = static_cast<uint32_t>(i);
                ev_instr[m] = instr;
                ++m;
            }
        }
        il1.settleBatchStats(il1_acc, il1_hit);
        dl1.settleBatchStats(dl1_acc, dl1_hit);
        *ifetch_total = instr;
        return m;
    }
    for (size_t i = 0; i < n; ++i) {
        const MemRef &ref = refs[i];
        const uint64_t line = geom_.lineOf(ref.addr);
        const bool is_store = !config_.unifiedReadWrite && ref.isStore();
        bool hit;
        if (ref.isIfetch()) {
            ++instr;
            hit = faIl1_->access(line);
        } else {
            hit = faDl1_->access(line);
        }
        if (!hit || is_store) {
            events[m].line = line;
            events[m].type = ref.type;
            events[m].l1Miss = !hit;
            events[m].pointer = ref.pointer;
            ref_idx[m] = static_cast<uint32_t>(i);
            ev_instr[m] = instr;
            ++m;
        }
    }
    *ifetch_total = instr;
    return m;
}

const CacheStats &
L1Filter::il1Stats() const
{
    return config_.fullyAssociative ? faIl1_->stats() : saIl1_->stats();
}

const CacheStats &
L1Filter::dl1Stats() const
{
    return config_.fullyAssociative ? faDl1_->stats() : saDl1_->stats();
}

} // namespace xmig
