#include "cache/l1_filter.hpp"

#include "util/logging.hpp"

namespace xmig {

L1Filter::L1Filter(const L1FilterConfig &config, LineSink &sink)
    : config_(config),
      geom_(config.lineBytes),
      sink_(&sink)
{
    if (config_.fullyAssociative) {
        faIl1_ = std::make_unique<FullyAssocLru>(
            config_.il1Bytes / config_.lineBytes);
        faDl1_ = std::make_unique<FullyAssocLru>(
            config_.dl1Bytes / config_.lineBytes);
    } else {
        CacheConfig il1;
        il1.capacityBytes = config_.il1Bytes;
        il1.ways = config_.ways;
        il1.lineBytes = config_.lineBytes;
        il1.write = WritePolicy::WriteBackAllocate; // ifetch never writes
        saIl1_ = std::make_unique<Cache>(il1);

        CacheConfig dl1 = il1;
        dl1.capacityBytes = config_.dl1Bytes;
        dl1.write = config_.unifiedReadWrite
            ? WritePolicy::WriteBackAllocate
            : WritePolicy::WriteThroughNoAllocate;
        saDl1_ = std::make_unique<Cache>(dl1);
    }
}

void
L1Filter::access(const MemRef &ref)
{
    const uint64_t line = geom_.lineOf(ref.addr);
    const bool is_store = !config_.unifiedReadWrite && ref.isStore();

    bool hit;
    if (ref.isIfetch()) {
        hit = config_.fullyAssociative
            ? faIl1_->access(line)
            : saIl1_->access(line, false).hit;
    } else if (config_.fullyAssociative) {
        hit = faDl1_->access(line);
    } else {
        hit = saDl1_->access(line, is_store).hit;
    }

    // Downstream sees: every miss, plus (in write-through mode) every
    // store, hit or miss, since WT stores always propagate.
    if (!hit || is_store) {
        LineEvent event;
        event.line = line;
        event.type = ref.type;
        event.l1Miss = !hit;
        event.pointer = ref.pointer;
        sink_->onLine(event);
    }
}

const CacheStats &
L1Filter::il1Stats() const
{
    return config_.fullyAssociative ? faIl1_->stats() : saIl1_->stats();
}

const CacheStats &
L1Filter::dl1Stats() const
{
    return config_.fullyAssociative ? faDl1_->stats() : saDl1_->stats();
}

} // namespace xmig
