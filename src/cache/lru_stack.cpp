#include "cache/lru_stack.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace xmig {

namespace {
constexpr uint64_t kInitialSlots = 1 << 16;
} // namespace

LruStack::LruStack()
    : bit_(kInitialSlots, 0)
{
}

uint64_t
LruStack::prefix(int64_t pos) const
{
    uint64_t sum = 0;
    for (int64_t i = pos + 1; i > 0; i -= i & -i)
        sum += static_cast<uint64_t>(bit_[i - 1]);
    return sum;
}

void
LruStack::update(int64_t pos, int64_t delta)
{
    const int64_t n = static_cast<int64_t>(bit_.size());
    for (int64_t i = pos + 1; i <= n; i += i & -i)
        bit_[i - 1] += delta;
}

void
LruStack::compact()
{
    // Re-number timestamps 0..n-1 in recency order, keeping only the
    // live (marked) slots; the tree then has room for another round
    // of references before the next compaction.
    std::vector<std::pair<uint64_t, uint64_t>> pairs; // (time, line)
    pairs.reserve(last_.size());
    for (const auto &[line, t] : last_)
        pairs.emplace_back(t, line);
    std::sort(pairs.begin(), pairs.end());

    const uint64_t need = std::max<uint64_t>(kInitialSlots,
                                             2 * pairs.size() + 16);
    bit_.assign(need, 0);
    uint64_t t = 0;
    for (auto &[old_t, line] : pairs) {
        last_[line] = t;
        update(static_cast<int64_t>(t), +1);
        ++t;
    }
    time_ = t;
}

uint64_t
LruStack::access(uint64_t line)
{
    ++references_;
    if (time_ >= bit_.size())
        compact();

    uint64_t depth = kInfiniteDepth;
    auto it = last_.find(line);
    if (it != last_.end()) {
        const uint64_t prev = it->second;
        // Lines whose most recent access is later than `prev` sit
        // above this line in the stack.
        const uint64_t newer = marked_ - prefix(static_cast<int64_t>(prev));
        depth = newer + 1;
        update(static_cast<int64_t>(prev), -1);
        --marked_;
        if (depth - 1 >= histogram_.size())
            histogram_.resize(depth, 0);
        ++histogram_[depth - 1];
    } else {
        ++coldRefs_;
    }

    last_[line] = time_;
    update(static_cast<int64_t>(time_), +1);
    ++marked_;
    ++time_;
    return depth;
}

uint64_t
LruStack::missesAtSize(uint64_t depth) const
{
    // misses = cold refs + refs with finite depth > `depth`
    uint64_t finite_hits = 0;
    const uint64_t upto = std::min<uint64_t>(depth, histogram_.size());
    for (uint64_t d = 0; d < upto; ++d)
        finite_hits += histogram_[d];
    uint64_t finite_total = references_ - coldRefs_;
    return coldRefs_ + (finite_total - finite_hits);
}

double
LruStack::missRatioAtSize(uint64_t depth) const
{
    if (references_ == 0)
        return 0.0;
    return static_cast<double>(missesAtSize(depth)) /
           static_cast<double>(references_);
}

} // namespace xmig
