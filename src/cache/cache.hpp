/**
 * @file
 * A single cache with write-policy semantics, built on a TagStore.
 *
 * The machine model of the paper needs two flavors:
 *  - L1 data: write-through, non-write-allocate (section 2.1);
 *  - L2: write-back, write-allocate, 4-way skewed-associative.
 * Cache operates on *line addresses*; callers apply LineGeometry.
 */

#pragma once

#include <cstdint>
#include <memory>

#include "cache/tags.hpp"

namespace xmig {

/** Write-handling policy. */
enum class WritePolicy : uint8_t
{
    WriteThroughNoAllocate, ///< stores propagate down; miss: no fill
    WriteBackAllocate,      ///< stores set modified; miss: fill first
};

/** Static configuration of one cache. */
struct CacheConfig
{
    uint64_t capacityBytes = 512 * 1024;
    unsigned ways = 4;
    uint64_t lineBytes = 64;
    WritePolicy write = WritePolicy::WriteBackAllocate;
    ReplPolicy repl = ReplPolicy::Lru;
    bool skewed = false; ///< skewed-associative instead of set-assoc
    uint64_t seed = 1;

    uint64_t numLines() const { return capacityBytes / lineBytes; }
};

/** What one access did, for stats and for driving the level below. */
struct AccessOutcome
{
    bool hit = false;
    bool filled = false;        ///< a frame was allocated for the line
    bool writeThrough = false;  ///< store must be sent downstream (WT)
    bool evictedValid = false;  ///< an existing line was displaced
    bool writeback = false;     ///< ...and it was modified (dirty)
    uint64_t evictedLine = 0;

    /**
     * Frame holding `line` after the operation: the hit entry, or the
     * frame just filled; nullptr when the line was left non-resident
     * (WT-no-allocate store miss). Valid only until the next mutation
     * of the cache. Saves callers a re-probe (xmig-swift).
     */
    CacheEntry *entry = nullptr;
};

/** Hit/miss statistics for one cache. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;

    double
    missRatio() const
    {
        return accesses == 0
            ? 0.0
            : static_cast<double>(misses) / static_cast<double>(accesses);
    }
};

/**
 * One cache level.
 *
 * Besides the usual access() path, exposes fill() / findEntry() /
 * invalidate() so the multi-core model can implement the paper's
 * migration-mode coherence (mirrored fills, modified-bit transfer,
 * update-bus stores into inactive copies).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Perform a load or store for `line`, applying the write policy.
     * Misses allocate according to the policy.
     */
    AccessOutcome access(uint64_t line, bool is_store);

    /**
     * access() with the tag probe hoisted out: `probe` MUST be the
     * result of findEntry(line) with no intervening mutation of this
     * cache. Lets the migration decision and the L2 access share one
     * probe instead of three (xmig-swift hot path).
     */
    AccessOutcome accessProbed(uint64_t line, bool is_store,
                               CacheEntry *probe);

    /**
     * Install `line` without counting an access (broadcast fills,
     * forwarded lines). No-op if already resident, except that
     * `modified` is ORed into the entry.
     */
    AccessOutcome fill(uint64_t line, bool modified);

    /** True if `line` is resident. */
    bool contains(uint64_t line) const;

    /** Direct access to the frame of `line` (nullptr if absent). */
    CacheEntry *findEntry(uint64_t line) { return findEntryFast(line); }
    const CacheEntry *findEntry(uint64_t line) const;

    /** Remove `line` if resident. */
    bool invalidate(uint64_t line);

    /**
     * Drop every resident line (hot-unplug: the contents are lost,
     * nothing is written back). Returns the number of *modified*
     * lines discarded — data that existed nowhere else.
     */
    uint64_t invalidateAll();

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    const CacheConfig &config() const { return config_; }
    TagStore &tags() { return *tags_; }
    const TagStore &tags() const { return *tags_; }

    /**
     * findEntry() with the virtual dispatch peeled off: the concrete
     * tag-store type is fixed at construction, so batch loops probe
     * through a cached concrete pointer and the whole tag scan
     * inlines (xmig-bolt hot path). Identical results to findEntry().
     */
    CacheEntry *
    findEntryFast(uint64_t line)
    {
        if (sa_)
            return sa_->findFast(line);
        if (sk_)
            return sk_->findFast(line);
        return tags_->find(line);
    }

    /**
     * access() with the accesses/hits tallies kept in the caller's
     * registers: the batch loop calls this per reference and settles
     * the two counters once per chunk with settleBatchStats(), so the
     * hot loop does no statistics memory traffic. Misses still drop
     * to the shared out-of-line missPath() (which counts the miss),
     * so the cache *state* transition is exactly access()'s.
     */
    AccessOutcome
    accessTallied(uint64_t line, bool is_store, uint64_t &hits)
    {
        AccessOutcome out;
        CacheEntry *entry = findEntryFast(line);
        if (entry) {
            out.hit = true;
            ++hits;
            if (sa_)
                sa_->touchFast(*entry);
            else if (sk_)
                sk_->touchFast(*entry);
            else
                tags_->touch(*entry);
            if (is_store) {
                if (config_.write == WritePolicy::WriteBackAllocate)
                    entry->modified = true;
                else
                    out.writeThrough = true;
            }
            out.entry = entry;
            return out;
        }
        missPath(line, is_store, out);
        return out;
    }

    /** Fold a batch loop's register tallies into the stats. */
    void
    settleBatchStats(uint64_t accesses, uint64_t hits)
    {
        stats_.accesses += accesses;
        stats_.hits += hits;
    }

    /**
     * access() on the devirtualized probe/touch path. The hit arm is
     * fully header-inline; misses drop to the shared out-of-line
     * missPath(), which accessProbed() uses too — one miss code path,
     * two entry points.
     */
    AccessOutcome
    accessFast(uint64_t line, bool is_store)
    {
        ++stats_.accesses;
        uint64_t hits = 0;
        AccessOutcome out = accessTallied(line, is_store, hits);
        stats_.hits += hits;
        return out;
    }

  private:
    /** The miss arm of accessProbed()/accessFast() (counts the miss). */
    void missPath(uint64_t line, bool is_store, AccessOutcome &out);

    CacheConfig config_;
    std::unique_ptr<TagStore> tags_;
    SetAssocTags *sa_ = nullptr; ///< tags_, when set-associative
    SkewedTags *sk_ = nullptr;   ///< tags_, when skewed
    CacheStats stats_;
};

} // namespace xmig
