/**
 * @file
 * L2 prefetchers (section 6 extension).
 *
 * The paper's conclusion asks how execution migration interacts with
 * prefetching: much observed splittability comes from circular
 * working-set behavior "on which prefetching is likely to succeed",
 * while linked data structures resist prefetching but can still
 * split. To study that question this module provides two classic
 * prefetchers operating on the post-L1 line stream:
 *
 *  - NextLine: on a demand miss, fetch the next `degree` lines;
 *  - Stride: a region-indexed table detects constant strides (of any
 *    sign/magnitude) and issues `degree` prefetches along the stride
 *    once confidence builds.
 *
 * The machine model fills prefetched lines into the active core's
 * L2 and tracks usefulness (a prefetched line consumed by a demand
 * access before eviction).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace xmig {

/** Prefetching policy. */
enum class PrefetchKind : uint8_t
{
    None,
    NextLine,
    Stride,
};

/** Prefetcher configuration. */
struct PrefetcherConfig
{
    PrefetchKind kind = PrefetchKind::None;
    unsigned degree = 2;          ///< prefetches per trigger
    unsigned tableEntries = 256;  ///< stride-table size (power of two)
    unsigned regionShift = 6;     ///< lines per tracked region (2^n)
    unsigned confidenceThreshold = 2; ///< stride repeats before issuing
};

/** Prefetch activity counters. */
struct PrefetchStats
{
    uint64_t triggers = 0; ///< demand misses observed
    uint64_t issued = 0;   ///< prefetch candidates produced
};

/**
 * Stateful prefetch-candidate generator over a line-address stream.
 */
class Prefetcher
{
  public:
    explicit Prefetcher(const PrefetcherConfig &config);

    /**
     * Observe a demand access. On a miss (and for Stride, once the
     * detected stride is confident), appends prefetch candidate line
     * addresses to `out`. The caller decides what to do with them.
     */
    void onDemand(uint64_t line, bool miss,
                  std::vector<uint64_t> &out);

    const PrefetchStats &stats() const { return stats_; }
    const PrefetcherConfig &config() const { return config_; }

  private:
    struct StrideEntry
    {
        uint64_t region = 0;
        uint64_t lastLine = 0;
        int64_t stride = 0;
        uint8_t confidence = 0;
        bool valid = false;
    };

    void nextLine(uint64_t line, std::vector<uint64_t> &out);
    void stride(uint64_t line, std::vector<uint64_t> &out);

    PrefetcherConfig config_;
    std::vector<StrideEntry> table_;
    PrefetchStats stats_;
};

} // namespace xmig
