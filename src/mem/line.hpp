/**
 * @file
 * Cache-line address arithmetic.
 */

#pragma once

#include <bit>
#include <cstdint>

#include "util/contracts.hpp"

namespace xmig {

/**
 * Maps byte addresses to line addresses for a given line size.
 *
 * The paper uses 64-byte lines throughout, except for the line-size
 * ablation in section 4.1, so the size is a runtime parameter.
 */
class LineGeometry
{
  public:
    explicit LineGeometry(uint64_t line_bytes = 64)
        : bytes_(line_bytes),
          shift_(static_cast<unsigned>(std::countr_zero(line_bytes)))
    {
        XMIG_ASSERT(line_bytes >= 4 && std::has_single_bit(line_bytes),
                    "line size %llu must be a power of two >= 4",
                    (unsigned long long)line_bytes);
    }

    uint64_t lineBytes() const { return bytes_; }
    unsigned lineShift() const { return shift_; }

    /** Line address (byte address divided by line size). */
    uint64_t lineOf(uint64_t byte_addr) const { return byte_addr >> shift_; }

    /** First byte address of a line. */
    uint64_t byteOf(uint64_t line_addr) const { return line_addr << shift_; }

    /** Number of lines covering `bytes` bytes of capacity. */
    uint64_t linesIn(uint64_t bytes) const { return bytes >> shift_; }

  private:
    uint64_t bytes_;
    unsigned shift_;
};

} // namespace xmig
