#include "mem/trace_io.hpp"

#include <cstring>

#include "util/contracts.hpp"

namespace xmig {

namespace {

constexpr char kMagic[8] = {'X', 'M', 'I', 'G', 'T', 'R', 'C', '1'};

uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^
           -static_cast<int64_t>(v & 1);
}

void
writeVarint(std::FILE *file, uint64_t v)
{
    unsigned char buf[10];
    size_t n = 0;
    while (v >= 0x80) {
        buf[n++] = static_cast<unsigned char>(v | 0x80);
        v >>= 7;
    }
    buf[n++] = static_cast<unsigned char>(v);
    if (std::fwrite(buf, 1, n, file) != n)
        XMIG_FATAL("trace write failed");
}

uint64_t
tellOffset(std::FILE *file)
{
    const long pos = std::ftell(file);
    return pos < 0 ? 0 : static_cast<uint64_t>(pos);
}

} // namespace

const char *
traceIoErrorName(TraceIoError error)
{
    switch (error) {
    case TraceIoError::None:            return "none";
    case TraceIoError::OpenFailed:      return "open_failed";
    case TraceIoError::ShortMagic:      return "short_magic";
    case TraceIoError::BadMagic:        return "bad_magic";
    case TraceIoError::TruncatedRecord: return "truncated_record";
    case TraceIoError::CorruptVarint:   return "corrupt_varint";
    case TraceIoError::BadRecordType:   return "bad_record_type";
    }
    return "unknown";
}

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        XMIG_FATAL("cannot open trace file '%s' for writing",
                   path.c_str());
    if (std::fwrite(kMagic, 1, sizeof(kMagic), file_) != sizeof(kMagic))
        XMIG_FATAL("trace write failed");
}

TraceWriter::~TraceWriter()
{
    if (file_)
        close();
}

void
TraceWriter::access(const MemRef &ref)
{
    XMIG_ASSERT(file_ != nullptr, "trace writer already closed");
    const unsigned type = static_cast<unsigned>(ref.type);
    const unsigned char control = static_cast<unsigned char>(
        type | (ref.pointer ? 0x4 : 0x0));
    if (std::fputc(control, file_) == EOF)
        XMIG_FATAL("trace write failed");
    const int64_t delta = static_cast<int64_t>(ref.addr) -
                          static_cast<int64_t>(lastAddr_[type]);
    writeVarint(file_, zigzag(delta));
    lastAddr_[type] = ref.addr;
    ++records_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    if (std::fclose(file_) != 0)
        XMIG_FATAL("trace close failed");
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_) {
        fail(TraceIoError::OpenFailed,
             "cannot open trace file '" + path + "'");
        return;
    }
    char magic[8];
    const size_t got = std::fread(magic, 1, sizeof(magic), file_);
    if (got != sizeof(magic)) {
        fail(TraceIoError::ShortMagic,
             "'" + path + "' ends inside the trace magic");
        return;
    }
    if (std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
        fail(TraceIoError::BadMagic,
             "'" + path + "' is not an xmig trace file");
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::fail(TraceIoError error, const std::string &message)
{
    // Keep the first failure; later calls must not overwrite it.
    if (status_.ok()) {
        status_.error = error;
        status_.offset = file_ ? tellOffset(file_) : 0;
        status_.message = message + " (" +
                          traceIoErrorName(error) + " at byte " +
                          std::to_string(status_.offset) + ")";
    }
    return false;
}

bool
TraceReader::next(MemRef *ref)
{
    if (!status_.ok() || !file_)
        return false;
    const int c = std::fgetc(file_);
    if (c == EOF)
        return false; // clean end of trace
    const unsigned type = static_cast<unsigned>(c) & 0x3;
    if (type > 2)
        return fail(TraceIoError::BadRecordType,
                    "corrupt record type in trace file");
    uint64_t encoded = 0;
    unsigned shift = 0;
    for (;;) {
        const int b = std::fgetc(file_);
        if (b == EOF)
            return fail(TraceIoError::TruncatedRecord,
                        "trace file ends inside a record");
        encoded |= (static_cast<uint64_t>(b) & 0x7f) << shift;
        if ((b & 0x80) == 0)
            break;
        shift += 7;
        if (shift >= 64)
            return fail(TraceIoError::CorruptVarint,
                        "corrupt varint in trace file");
    }
    const int64_t delta = unzigzag(encoded);
    lastAddr_[type] = static_cast<uint64_t>(
        static_cast<int64_t>(lastAddr_[type]) + delta);
    ref->addr = lastAddr_[type];
    ref->type = static_cast<RefType>(type);
    ref->pointer = (c & 0x4) != 0;
    return true;
}

uint64_t
TraceReader::replay(RefSink &sink)
{
    uint64_t n = 0;
    MemRef ref;
    while (next(&ref)) {
        sink.access(ref);
        ++n;
    }
    return n;
}

} // namespace xmig
