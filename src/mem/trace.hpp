/**
 * @file
 * Reference-stream plumbing: sinks, recorders, and composition.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "mem/ref.hpp"

namespace xmig {

/**
 * Consumer of a dynamic reference stream.
 *
 * Cache models, LRU-stack profilers, the migration controller, and
 * whole machines all implement RefSink so that any workload can drive
 * any of them.
 */
class RefSink
{
  public:
    virtual ~RefSink() = default;

    /** Process one dynamic reference. */
    virtual void access(const MemRef &ref) = 0;
};

/** Sink that discards everything (useful for warm-up or plumbing). */
class NullSink : public RefSink
{
  public:
    void access(const MemRef &) override {}
};

/** Sink that stores the stream for replay in tests. */
class RefRecorder : public RefSink
{
  public:
    void access(const MemRef &ref) override { refs_.push_back(ref); }

    const std::vector<MemRef> &refs() const { return refs_; }
    void clear() { refs_.clear(); }

    /** Replay the recorded stream into another sink. */
    void
    replay(RefSink &sink) const
    {
        for (const auto &r : refs_)
            sink.access(r);
    }

  private:
    std::vector<MemRef> refs_;
};

/** Sink that forwards each reference to two downstream sinks. */
class TeeSink : public RefSink
{
  public:
    TeeSink(RefSink &first, RefSink &second)
        : first_(first), second_(second)
    {
    }

    void
    access(const MemRef &ref) override
    {
        first_.access(ref);
        second_.access(ref);
    }

  private:
    RefSink &first_;
    RefSink &second_;
};

/** Sink that counts references by type. */
class RefCounter : public RefSink
{
  public:
    void
    access(const MemRef &ref) override
    {
        switch (ref.type) {
          case RefType::Ifetch:
            ++ifetches_;
            break;
          case RefType::Load:
            ++loads_;
            break;
          case RefType::Store:
            ++stores_;
            break;
        }
    }

    uint64_t ifetches() const { return ifetches_; }
    uint64_t loads() const { return loads_; }
    uint64_t stores() const { return stores_; }
    uint64_t total() const { return ifetches_ + loads_ + stores_; }

    /** One dynamic instruction per instruction fetch. */
    uint64_t instructions() const { return ifetches_; }

  private:
    uint64_t ifetches_ = 0;
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
};

} // namespace xmig
