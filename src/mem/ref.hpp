/**
 * @file
 * Dynamic memory-reference types.
 *
 * All experiments in this repository are trace-driven: a workload
 * executes and emits a stream of MemRef events (one instruction fetch
 * per dynamic instruction, plus its loads and stores), which the cache
 * models and the migration controller consume. This mirrors the
 * SimpleScalar functional-simulation methodology of the paper.
 */

#pragma once

#include <cstdint>

namespace xmig {

/** Kind of a dynamic memory reference. */
enum class RefType : uint8_t
{
    Ifetch, ///< instruction fetch; one per dynamic instruction
    Load,   ///< data read
    Store,  ///< data write
};

/** One dynamic reference: a byte address plus its kind. */
struct MemRef
{
    uint64_t addr = 0;
    RefType type = RefType::Load;

    /**
     * Load whose result is used as an address (a pointer load).
     * Section 6 of the paper suggests restricting transition-filter
     * updates to such requests, since pointer loads in linked data
     * structures carry the highest miss penalties.
     */
    bool pointer = false;

    bool isIfetch() const { return type == RefType::Ifetch; }
    bool isData() const { return type != RefType::Ifetch; }
    bool isStore() const { return type == RefType::Store; }

    static MemRef ifetch(uint64_t a) { return {a, RefType::Ifetch}; }
    static MemRef load(uint64_t a) { return {a, RefType::Load}; }
    static MemRef store(uint64_t a) { return {a, RefType::Store}; }

    /** A pointer-chasing load (see `pointer`). */
    static MemRef
    pointerLoad(uint64_t a)
    {
        return {a, RefType::Load, true};
    }

    bool
    operator==(const MemRef &other) const
    {
        return addr == other.addr && type == other.type &&
               pointer == other.pointer;
    }
};

} // namespace xmig
