/**
 * @file
 * Binary reference-trace files: record once, replay many times.
 *
 * The paper's methodology is trace-driven (SimpleScalar functional
 * simulation). This module provides the trace-file analogue for this
 * library: a TraceWriter sink that streams MemRefs into a compact
 * delta-compressed binary file, and a TraceReader that replays them
 * into any RefSink. Typical use: capture an expensive kernel run
 * once, then sweep controller configurations over the recorded trace.
 *
 * Format (all little-endian):
 *   8-byte magic "XMIGTRC1"
 *   records: 1 control byte
 *              bits 0-1: RefType
 *              bit  2:   pointer-load flag
 *            + LEB128 varint of the zigzag-encoded delta between
 *              this address and the previous address *of the same
 *              type* (instruction and data streams delta-compress
 *              independently and much better that way).
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "mem/ref.hpp"
#include "mem/trace.hpp"

namespace xmig {

/**
 * What went wrong while reading a trace file (xmig-iron: corrupt
 * inputs are reported, not fatal — the caller decides whether a
 * truncated trace is an error or a usable prefix).
 */
enum class TraceIoError : uint8_t
{
    None = 0,
    OpenFailed,      ///< file could not be opened
    ShortMagic,      ///< file ends inside the 8-byte magic
    BadMagic,        ///< magic bytes do not match "XMIGTRC1"
    TruncatedRecord, ///< EOF inside a record (after its control byte)
    CorruptVarint,   ///< varint continuation past 64 bits
    BadRecordType,   ///< control byte names an unknown RefType
};

/** Stable identifier string for a TraceIoError. */
const char *traceIoErrorName(TraceIoError error);

/** Outcome of a reader operation, with the failure's byte offset. */
struct TraceIoStatus
{
    TraceIoError error = TraceIoError::None;
    /** Byte offset just past the bytes consumed when the error hit. */
    uint64_t offset = 0;
    std::string message;

    bool ok() const { return error == TraceIoError::None; }
};

/**
 * RefSink that appends every reference to a trace file.
 */
class TraceWriter : public RefSink
{
  public:
    /** Opens (truncates) `path`; fatal on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void access(const MemRef &ref) override;

    /** Flush and close; further access() calls are an error. */
    void close();

    uint64_t recordsWritten() const { return records_; }

  private:
    std::FILE *file_ = nullptr;
    uint64_t lastAddr_[3] = {0, 0, 0}; // per RefType
    uint64_t records_ = 0;
};

/**
 * Reads a trace file written by TraceWriter.
 *
 * Never fatal: open/magic problems surface through ok()/status()
 * after construction, and next() returns false on both clean EOF and
 * error — status() tells them apart, with the byte offset of the
 * failure for corrupt files.
 */
class TraceReader
{
  public:
    /** Opens `path`; check ok() before reading. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** False if the reader is in an error state (see status()). */
    bool ok() const { return status_.ok(); }

    /** Details of the first failure; stable once set. */
    const TraceIoStatus &status() const { return status_; }

    /**
     * Read the next reference. Returns false at clean end of file
     * *and* on error; ok() distinguishes. After a false return every
     * further call returns false.
     */
    bool next(MemRef *ref);

    /**
     * Replay the remaining records into `sink`; returns the count.
     * Stops at EOF or on the first corrupt record (check ok()).
     */
    uint64_t replay(RefSink &sink);

  private:
    bool fail(TraceIoError error, const std::string &message);

    std::FILE *file_ = nullptr;
    uint64_t lastAddr_[3] = {0, 0, 0};
    TraceIoStatus status_;
};

} // namespace xmig
