/**
 * @file
 * Binary reference-trace files: record once, replay many times.
 *
 * The paper's methodology is trace-driven (SimpleScalar functional
 * simulation). This module provides the trace-file analogue for this
 * library: a TraceWriter sink that streams MemRefs into a compact
 * delta-compressed binary file, and a TraceReader that replays them
 * into any RefSink. Typical use: capture an expensive kernel run
 * once, then sweep controller configurations over the recorded trace.
 *
 * Format (all little-endian):
 *   8-byte magic "XMIGTRC1"
 *   records: 1 control byte
 *              bits 0-1: RefType
 *              bit  2:   pointer-load flag
 *            + LEB128 varint of the zigzag-encoded delta between
 *              this address and the previous address *of the same
 *              type* (instruction and data streams delta-compress
 *              independently and much better that way).
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "mem/ref.hpp"
#include "mem/trace.hpp"

namespace xmig {

/**
 * RefSink that appends every reference to a trace file.
 */
class TraceWriter : public RefSink
{
  public:
    /** Opens (truncates) `path`; fatal on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void access(const MemRef &ref) override;

    /** Flush and close; further access() calls are an error. */
    void close();

    uint64_t recordsWritten() const { return records_; }

  private:
    std::FILE *file_ = nullptr;
    uint64_t lastAddr_[3] = {0, 0, 0}; // per RefType
    uint64_t records_ = 0;
};

/**
 * Reads a trace file written by TraceWriter.
 */
class TraceReader
{
  public:
    /** Opens `path`; fatal on failure or bad magic. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Read the next reference. Returns false at end of file. */
    bool next(MemRef *ref);

    /** Replay the remaining records into `sink`; returns the count. */
    uint64_t replay(RefSink &sink);

  private:
    std::FILE *file_ = nullptr;
    uint64_t lastAddr_[3] = {0, 0, 0};
};

} // namespace xmig
