/**
 * @file
 * xmig-iron fault injector: the runtime that executes a FaultPlan.
 *
 * One injector is owned by the component that drives simulated time
 * (the MigrationMachine in full-system runs, the test harness in
 * standalone-controller runs) and shared, as a non-owning pointer,
 * with every component that exposes a fault hook: affinity engines
 * (soft errors in A_e / Delta / A_R), the migration controller (O_e
 * store corruption, migration drop/delay) and the machine itself
 * (core churn, update-bus loss).
 *
 * Determinism: all randomness comes from the injector's own RNG,
 * seeded from the plan. Hook sites draw in simulation order, so a
 * given (workload seed, plan spec) pair replays bit-identically. A
 * null injector pointer (no plan armed) costs one predictable branch
 * per hook; building with -DXMIG_FAULT=OFF compiles the hooks away
 * entirely (kFaultEnabled == false), for bit-identical binaries.
 *
 * Scheduled rules latch into per-site "due" flags at tick(); the next
 * draw() for that site consumes the flag. Core events are drained by
 * the owner via drainCoreEvents().
 *
 * Thread contract: single-thread confined, like the machine that
 * owns it — one injector per sweep cell, never shared across pool
 * workers. Determinism *depends* on that confinement (hook sites
 * draw from one RNG in simulation order), so the class carries no
 * locks or capability annotations by design; any future mutex
 * member here must be annotated or the `naked-mutex` lint rule
 * fails the build (docs/analysis.md, "Static analysis:
 * xmig-sentinel").
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/rng.hpp"

#ifndef XMIG_FAULT_ENABLED
#define XMIG_FAULT_ENABLED 1
#endif

namespace xmig::obs {
class Journal;
class MetricsRegistry;
} // namespace xmig::obs

namespace xmig {

/** True when the fault-injection hooks are compiled in. */
inline constexpr bool kFaultEnabled = XMIG_FAULT_ENABLED != 0;

/** Per-site injection counts. */
struct FaultStats
{
    uint64_t injected[static_cast<size_t>(FaultSite::kCount)] = {};
    uint64_t ticks = 0;

    uint64_t
    of(FaultSite site) const
    {
        return injected[static_cast<size_t>(site)];
    }

    uint64_t total() const;
};

/** One core hot-(un)plug event drained by the machine. */
struct CoreFaultEvent
{
    unsigned core = 0;
    bool online = false; ///< false = offline (unplug)
};

/**
 * Executes a FaultPlan against the live simulation.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /**
     * Advance simulated time by one reference. Scheduled rules whose
     * tick has arrived are latched as due; probabilistic core-churn
     * rules are drawn once per tick.
     */
    void tick();

    /** Ticks elapsed. */
    uint64_t now() const { return stats_.ticks; }

    /** True if any rule targets `site` (precomputed; hot-path guard). */
    bool
    armedFor(FaultSite site) const
    {
        return armed_[static_cast<size_t>(site)];
    }

    /** True if the plan contains core_off / core_on rules. */
    bool armedForCoreEvents() const { return coreRules_; }

    /** True if any core events latched since the last drain. */
    bool coreEventsPending() const { return !coreEvents_.empty(); }

    /** Move the pending core events (in firing order) into `out`. */
    void drainCoreEvents(std::vector<CoreFaultEvent> &out);

    /**
     * Decide whether a fault fires at this opportunity for `site`:
     * consumes a latched scheduled event if one is due, otherwise
     * draws every rate rule targeting the site. Counts on success.
     * For MigDelay, the delay is retrieved with migrationDelay().
     */
    bool draw(FaultSite site);

    /** Request delay of the MigDelay rule that last fired. */
    uint64_t migrationDelay() const { return lastDelay_; }

    /**
     * Flip one uniformly chosen bit of `value` interpreted as a
     * `bits`-wide two's-complement integer; the result is
     * sign-extended back to int64_t.
     */
    int64_t flipBit(int64_t value, unsigned bits);

    /** The plan's RNG (store-corruption victim selection). */
    Rng &rng() { return rng_; }

    const FaultStats &stats() const { return stats_; }
    const FaultPlan &plan() const { return plan_; }

    /**
     * Register injection counters under `prefix` (xmig-scope):
     * `<prefix>.ticks` and `<prefix>.injected.<site>` per site.
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Attach the xmig-lens journal (non-owning; may be null). Every
     * successful injection records a FaultInject event carrying the
     * site and the tick at which it fired.
     */
    void attachJournal(obs::Journal *journal) { journal_ = journal; }

  private:
    void count(FaultSite site);

    FaultPlan plan_;
    Rng rng_;
    FaultStats stats_;
    obs::Journal *journal_ = nullptr; ///< xmig-lens hook (may be null)
    bool armed_[static_cast<size_t>(FaultSite::kCount)] = {};
    bool due_[static_cast<size_t>(FaultSite::kCount)] = {};
    bool coreRules_ = false;
    size_t nextScheduled_ = 0; ///< cursor into plan_.scheduled
    uint64_t lastDelay_ = 0;
    std::vector<CoreFaultEvent> coreEvents_;
};

} // namespace xmig
