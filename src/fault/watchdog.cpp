#include "fault/watchdog.hpp"

#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "util/contracts.hpp"

namespace xmig {

Watchdog::Watchdog(const WatchdogConfig &config) : config_(config)
{
    XMIG_ASSERT(config_.pingPongWindow > 0 && config_.cooldownBase > 0,
                "watchdog windows must be positive");
    XMIG_ASSERT(config_.cooldownCap >= config_.cooldownBase,
                "watchdog cooldown cap below base");
    cooldown_ = config_.cooldownBase;
    stats_.cooldownNow = cooldown_;
}

void
Watchdog::onRequest(uint64_t now, bool rootSaturated)
{
    if (!config_.enabled)
        return;

    if (rootSaturated) {
        if (++saturatedRun_ >= config_.stuckWindow) {
            // Degenerate all-one-sign split: every sampled transition
            // lands on one side. Request a re-init and restart the run
            // so a persistent pathology fires again after a while.
            reinitPending_ = true;
            ++stats_.reinits;
            saturatedRun_ = 0;
        }
    } else {
        saturatedRun_ = 0;
    }

    // Hysteresis decay: a long clean stretch shrinks the cooldown
    // back to base so an isolated ancient trip stops hurting.
    if (cooldown_ > config_.cooldownBase && now >= cooldownUntil_ &&
        now - lastTrip_ >= config_.decayAfter) {
        cooldown_ = config_.cooldownBase;
        stats_.cooldownNow = cooldown_;
    }
}

bool
Watchdog::migrationAllowed(uint64_t now)
{
    if (!config_.enabled)
        return true;
    if (now < cooldownUntil_) {
        ++stats_.suppressed;
        return false;
    }
    return true;
}

void
Watchdog::onMigration(uint64_t now)
{
    if (!config_.enabled)
        return;
    if (now - windowStart_ >= config_.pingPongWindow) {
        windowStart_ = now;
        windowMigrations_ = 0;
    }
    if (++windowMigrations_ > config_.pingPongLimit) {
        // Livelock: back off, doubling the cooldown on repeat trips.
        ++stats_.livelocks;
        XMIG_JOURNAL(journal_, obs::JournalKind::WatchdogTrip,
                     obs::JournalCause::Livelock,
                     static_cast<int64_t>(windowMigrations_),
                     static_cast<int64_t>(cooldown_));
        // Watchdog fire = incident: preserve the causal history that
        // led into the livelock even if the run never finishes.
        XMIG_JOURNAL_INCIDENT(journal_, "watchdog livelock trip");
        lastTrip_ = now;
        cooldownUntil_ = now + cooldown_;
        cooldown_ = cooldown_ < config_.cooldownCap / 2
                        ? cooldown_ * 2
                        : config_.cooldownCap;
        stats_.cooldownNow = cooldown_;
        windowStart_ = now;
        windowMigrations_ = 0;
    }
}

bool
Watchdog::takeReinit()
{
    const bool pending = reinitPending_;
    reinitPending_ = false;
    return pending;
}

void
Watchdog::registerMetrics(obs::MetricsRegistry &registry,
                          const std::string &prefix) const
{
    registry.addCounter(prefix + ".livelocks", &stats_.livelocks);
    registry.addCounter(prefix + ".suppressed", &stats_.suppressed);
    registry.addCounter(prefix + ".reinits", &stats_.reinits);
    registry.addCounter(prefix + ".cooldown", &stats_.cooldownNow);
}

} // namespace xmig
