/**
 * @file
 * xmig-iron watchdog: detects migration pathologies and applies
 * hysteresis backoff.
 *
 * Two failure modes of the affinity splitter are watched:
 *
 *  - **ping-pong livelock**: the execution bounces between cores much
 *    faster than the working set can follow (e.g. after a corrupted
 *    Delta register or a near-balanced bimodal phase). Detection is a
 *    windowed migration count: more than `pingPongLimit` migrations
 *    inside any `pingPongWindow`-request window trips the watchdog,
 *    which then *suppresses* further migrations for a cooldown period.
 *    Repeated trips double the cooldown up to `cooldownCap`
 *    (hysteresis); a long clean stretch decays it back to
 *    `cooldownBase`.
 *
 *  - **degenerate all-one-sign split**: the root transition filter
 *    saturates and stays saturated, i.e. every sampled transition
 *    falls on one side so the "split" no longer partitions the
 *    working set. After `stuckWindow` consecutive saturated requests
 *    the watchdog requests a filter re-initialization (consumed by
 *    the controller via takeReinit()).
 *
 * The watchdog is pure bookkeeping over (request index, event) pairs:
 * it holds no references into core/ types, so it lives in the fault
 * library and is unit-testable in isolation. Disabled by default —
 * an enabled watchdog is observable behavior (it suppresses
 * migrations), so determinism parity with plain builds requires
 * opt-in.
 */

#pragma once

#include <cstdint>
#include <string>

namespace xmig::obs {
class Journal;
class MetricsRegistry;
} // namespace xmig::obs

namespace xmig {

struct WatchdogConfig
{
    bool enabled = false;
    /// Window (in migration requests) for the ping-pong count.
    uint64_t pingPongWindow = 2048;
    /// Migrations within one window that count as livelock.
    uint64_t pingPongLimit = 12;
    /// Initial migration-suppression cooldown, in requests.
    uint64_t cooldownBase = 4096;
    /// Hysteresis ceiling for the doubled cooldown.
    uint64_t cooldownCap = uint64_t{1} << 20;
    /// Clean requests after which the cooldown decays back to base.
    uint64_t decayAfter = uint64_t{1} << 16;
    /// Consecutive saturated requests before a re-init is requested.
    uint64_t stuckWindow = 65536;
};

struct WatchdogStats
{
    uint64_t livelocks = 0;    ///< ping-pong detections
    uint64_t suppressed = 0;   ///< migrations vetoed during cooldown
    uint64_t reinits = 0;      ///< filter re-initializations requested
    uint64_t cooldownNow = 0;  ///< current cooldown length (gauge)
};

class Watchdog
{
  public:
    explicit Watchdog(const WatchdogConfig &config);

    bool enabled() const { return config_.enabled; }

    /**
     * Account one migration request. `rootSaturated` is whether the
     * root transition filter reported a clamped (saturated) counter
     * on this request; a long unbroken run of saturated requests is
     * the degenerate-split signal.
     */
    void onRequest(uint64_t now, bool rootSaturated);

    /**
     * Ask whether a migration may be issued at request `now`. Returns
     * false (and counts a suppression) during a livelock cooldown.
     */
    bool migrationAllowed(uint64_t now);

    /** Account one completed migration at request `now`. */
    void onMigration(uint64_t now);

    /**
     * True once if a degenerate split was detected since the last
     * call; the caller is expected to reset the splitter's filters.
     */
    bool takeReinit();

    const WatchdogStats &stats() const { return stats_; }
    const WatchdogConfig &config() const { return config_; }

    /** Register watchdog counters under `prefix` (xmig-scope). */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Attach the xmig-lens journal (non-owning; may be null). A
     * livelock trip records a WatchdogTrip event and flushes the
     * journal to its dump path for post-mortem analysis.
     */
    void attachJournal(obs::Journal *journal) { journal_ = journal; }

  private:
    WatchdogConfig config_;
    WatchdogStats stats_;
    obs::Journal *journal_ = nullptr; ///< xmig-lens hook (may be null)

    // Ping-pong detection state.
    uint64_t windowStart_ = 0;     ///< request index opening the window
    uint64_t windowMigrations_ = 0;
    uint64_t cooldownUntil_ = 0;   ///< suppression active while now < this
    uint64_t cooldown_ = 0;        ///< current (hysteresis) cooldown
    uint64_t lastTrip_ = 0;        ///< request index of the last livelock

    // Degenerate-split detection state.
    uint64_t saturatedRun_ = 0;
    bool reinitPending_ = false;
};

} // namespace xmig
