#include "fault/fault_injector.hpp"

#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "util/contracts.hpp"

namespace xmig {

uint64_t
FaultStats::total() const
{
    uint64_t sum = 0;
    for (uint64_t n : injected)
        sum += n;
    return sum;
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed)
{
    for (size_t i = 0; i < static_cast<size_t>(FaultSite::kCount); ++i)
        armed_[i] = plan_.targets(static_cast<FaultSite>(i));
    coreRules_ = armedFor(FaultSite::CoreOff) ||
                 armedFor(FaultSite::CoreOn);
    // Scheduled MigDelay rules carry the delay on the rule; remember it
    // so a scheduled delay reports the right stretch when consumed.
    for (const FaultRule &r : plan_.rates) {
        if (r.site == FaultSite::MigDelay)
            lastDelay_ = r.delay;
    }
}

void
FaultInjector::tick()
{
    const uint64_t now = stats_.ticks++;

    // Latch scheduled rules whose time has come. The vector is sorted
    // by `at`, so a cursor suffices.
    while (nextScheduled_ < plan_.scheduled.size() &&
           plan_.scheduled[nextScheduled_].at <= now) {
        const FaultRule &rule = plan_.scheduled[nextScheduled_++];
        if (rule.site == FaultSite::CoreOff ||
            rule.site == FaultSite::CoreOn) {
            coreEvents_.push_back(
                {rule.core, rule.site == FaultSite::CoreOn});
            count(rule.site);
        } else {
            if (rule.site == FaultSite::MigDelay)
                lastDelay_ = rule.delay;
            due_[static_cast<size_t>(rule.site)] = true;
        }
    }

    // Core churn has no natural hook site in the simulated hardware,
    // so probabilistic core rules get their opportunity once per tick.
    if (coreRules_) {
        for (const FaultRule &r : plan_.rates) {
            if ((r.site == FaultSite::CoreOff ||
                 r.site == FaultSite::CoreOn) &&
                rng_.chance(r.rate)) {
                coreEvents_.push_back(
                    {r.core, r.site == FaultSite::CoreOn});
                count(r.site);
            }
        }
    }
}

void
FaultInjector::drainCoreEvents(std::vector<CoreFaultEvent> &out)
{
    out.insert(out.end(), coreEvents_.begin(), coreEvents_.end());
    coreEvents_.clear();
}

bool
FaultInjector::draw(FaultSite site)
{
    XMIG_ASSERT(site != FaultSite::CoreOff && site != FaultSite::CoreOn,
                "core events are drained, not drawn");
    const size_t idx = static_cast<size_t>(site);
    if (due_[idx]) {
        due_[idx] = false;
        count(site);
        return true;
    }
    for (const FaultRule &r : plan_.rates) {
        if (r.site == site && rng_.chance(r.rate)) {
            if (site == FaultSite::MigDelay)
                lastDelay_ = r.delay;
            count(site);
            return true;
        }
    }
    return false;
}

int64_t
FaultInjector::flipBit(int64_t value, unsigned bits)
{
    XMIG_ASSERT(bits >= 1 && bits <= 63,
                "flipBit width out of range: %u", bits);
    const uint64_t mask = (uint64_t{1} << bits) - 1;
    uint64_t raw = static_cast<uint64_t>(value) & mask;
    raw ^= uint64_t{1} << rng_.below(bits);
    // Sign-extend the `bits`-wide two's-complement result.
    const uint64_t sign = uint64_t{1} << (bits - 1);
    return static_cast<int64_t>((raw ^ sign)) - static_cast<int64_t>(sign);
}

void
FaultInjector::count(FaultSite site)
{
    ++stats_.injected[static_cast<size_t>(site)];
    // count() is the single funnel every successful injection passes
    // through (scheduled latches, rate draws and core churn alike),
    // so it is the one causal emission point for the lens.
    XMIG_JOURNAL(journal_, obs::JournalKind::FaultInject,
                 obs::JournalCause::PlanEvent,
                 static_cast<int64_t>(site),
                 static_cast<int64_t>(stats_.ticks));
}

void
FaultInjector::registerMetrics(obs::MetricsRegistry &registry,
                               const std::string &prefix) const
{
    registry.addCounter(prefix + ".ticks", &stats_.ticks);
    for (size_t i = 0; i < static_cast<size_t>(FaultSite::kCount); ++i) {
        registry.addCounter(prefix + ".injected." +
                                faultSiteName(static_cast<FaultSite>(i)),
                            &stats_.injected[i]);
    }
}

} // namespace xmig
