/**
 * @file
 * xmig-iron fault plans: deterministic, replayable fault schedules.
 *
 * A FaultPlan is parsed from a compact spec string (the `--fault-plan`
 * CLI flag) and names *what* goes wrong and *when*. Two trigger
 * flavors exist:
 *
 *  - scheduled (`at=N:<event>`): the event fires exactly once, at
 *    injector tick N (ticks advance once per machine memory
 *    reference, or per explicit FaultInjector::tick() call in
 *    standalone-controller runs);
 *  - probabilistic (`rate=P:<event>`): at every *opportunity* for the
 *    event (a reference for soft errors, a migration issue for
 *    migration faults, a store broadcast for bus faults, a tick for
 *    core churn) the event fires with probability P, drawn from the
 *    plan's own seeded RNG so a plan string + seed replays exactly.
 *
 * Grammar (whitespace-free; statements separated by ';'):
 *
 *   plan  := stmt (';' stmt)*
 *   stmt  := 'seed=' UINT | 'at=' UINT ':' event | 'rate=' REAL ':' event
 *   event := 'core_off=' CORE | 'core_on=' CORE
 *          | 'flip=' site              site := ae|delta|ar|oe|tag
 *          | 'mig_drop' | 'mig_delay=' UINT
 *          | 'bus_drop'
 *
 * Example:
 *   seed=7;at=500000:core_off=2;at=900000:core_on=2;
 *   rate=1e-5:flip=oe;rate=1e-6:mig_drop;rate=1e-6:bus_drop
 *
 * See docs/robustness.md for the full event semantics.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xmig {

/** Which value or mechanism a fault event targets. */
enum class FaultSite : uint8_t
{
    Ae,       ///< soft error in the A_e fed to a transition filter
    Delta,    ///< soft error in an engine's Delta register
    Ar,       ///< soft error in an engine's A_R register
    OeEntry,  ///< soft error in a stored O_e value
    CacheTag, ///< affinity-cache tag corrupted (entry becomes lost)
    MigDrop,  ///< a migration request vanishes in the fabric
    MigDelay, ///< a migration request is delayed by `delay` requests
    BusDrop,  ///< one update-bus store broadcast is lost
    CoreOff,  ///< a core (its L2 contents included) drops out
    CoreOn,   ///< a previously offline core rejoins, cold
    kCount,
};

/** Short lowercase name of a fault site (for metrics and traces). */
const char *faultSiteName(FaultSite site);

/** One parsed fault rule. */
struct FaultRule
{
    FaultSite site = FaultSite::Ae;
    uint64_t at = 0;     ///< scheduled tick (scheduled rules only)
    double rate = 0.0;   ///< per-opportunity probability (rate rules)
    bool scheduled = false; ///< at-rule (true) vs rate-rule (false)
    unsigned core = 0;   ///< CoreOff / CoreOn target
    uint64_t delay = 0;  ///< MigDelay request count

    bool operator==(const FaultRule &) const = default;
};

/**
 * Statement form of one rule, re-parseable by FaultPlan::parse:
 * "at=500000:core_off=2", "rate=1e-05:flip=oe", ... Rates print with
 * the fewest significant digits that strtod round-trips exactly.
 */
std::string faultRuleToString(const FaultRule &rule);

/**
 * A parsed, validated fault schedule. Inert when empty().
 */
struct FaultPlan
{
    uint64_t seed = 1;
    std::vector<FaultRule> scheduled; ///< sorted by `at`
    std::vector<FaultRule> rates;

    bool empty() const { return scheduled.empty() && rates.empty(); }

    bool operator==(const FaultPlan &) const = default;

    /** True if any rule (either flavor) targets `site`. */
    bool targets(FaultSite site) const;

    /**
     * Normalized spec string: "seed=S" first, then the scheduled
     * rules in tick order, then the rate rules in parse order. The
     * result re-parses to an identical plan (round-trip property,
     * tests/test_fault_plan.cpp); xmig-forge relies on it to print
     * minimized repros.
     */
    std::string toString() const;

    /**
     * Parse `spec` into `plan`. Returns false (and a human-readable
     * message in `error` if non-null) on malformed specs; `plan` is
     * untouched on failure. The empty string parses to an inert plan;
     * empty *statements* (stray or trailing ';') are errors.
     */
    static bool parse(const std::string &spec, FaultPlan *plan,
                      std::string *error = nullptr);

    /** Parse or die with a clean user-facing error (CLI path). */
    static FaultPlan parseOrFatal(const std::string &spec);
};

} // namespace xmig
