#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/contracts.hpp"
#include "util/logging.hpp"

namespace xmig {

namespace {

struct SiteSpec
{
    const char *name;
    FaultSite site;
};

constexpr SiteSpec kFlipSites[] = {
    {"ae", FaultSite::Ae},     {"delta", FaultSite::Delta},
    {"ar", FaultSite::Ar},     {"oe", FaultSite::OeEntry},
    {"tag", FaultSite::CacheTag},
};

bool
parseUint(const std::string &text, uint64_t *out)
{
    // strtoull skips leading whitespace and accepts a sign; the
    // grammar is whitespace-free, so insist on a leading digit.
    if (text.empty() || text[0] < '0' || text[0] > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end == text.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseRate(const std::string &text, double *out)
{
    // As with parseUint: no leading whitespace, and no sign — a
    // probability is written bare ("-0" in particular would sneak a
    // negative zero past the v < 0 check below).
    if (text.empty() || text[0] == '-' || text[0] == '+' ||
        (text[0] != '.' && (text[0] < '0' || text[0] > '9')))
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || end == text.c_str() || *end != '\0')
        return false;
    if (!std::isfinite(v) || v < 0.0 || v > 1.0)
        return false;
    *out = v;
    return true;
}

/** Parse the `event` production into `rule`; false + message on error. */
bool
parseEvent(const std::string &text, FaultRule *rule, std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    const size_t eq = text.find('=');
    const std::string head = text.substr(0, eq);
    const std::string arg =
        eq == std::string::npos ? "" : text.substr(eq + 1);

    if (head == "core_off" || head == "core_on") {
        uint64_t core;
        if (!parseUint(arg, &core) || core >= 64)
            return fail("'" + head + "' needs a core id in [0, 64): '" +
                        arg + "'");
        rule->site = head == "core_off" ? FaultSite::CoreOff
                                        : FaultSite::CoreOn;
        rule->core = static_cast<unsigned>(core);
        return true;
    }
    if (head == "flip") {
        for (const SiteSpec &s : kFlipSites) {
            if (arg == s.name) {
                rule->site = s.site;
                return true;
            }
        }
        return fail("unknown flip site '" + arg +
                    "' (want ae, delta, ar, oe or tag)");
    }
    if (head == "mig_drop") {
        if (!arg.empty())
            return fail("'mig_drop' takes no argument");
        rule->site = FaultSite::MigDrop;
        return true;
    }
    if (head == "mig_delay") {
        uint64_t d;
        if (!parseUint(arg, &d) || d == 0)
            return fail("'mig_delay' needs a positive request count, "
                        "not '" + arg + "'");
        rule->site = FaultSite::MigDelay;
        rule->delay = d;
        return true;
    }
    if (head == "bus_drop") {
        if (!arg.empty())
            return fail("'bus_drop' takes no argument");
        rule->site = FaultSite::BusDrop;
        return true;
    }
    return fail("unknown fault event '" + head + "'");
}

/**
 * Shortest decimal form of `v` that strtod parses back to exactly
 * `v`: rates round-trip through toString() without drifting and
 * without dragging 17 digits into every repro.
 */
std::string
formatRate(double v)
{
    char buf[64];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::Ae: return "ae";
      case FaultSite::Delta: return "delta";
      case FaultSite::Ar: return "ar";
      case FaultSite::OeEntry: return "oe";
      case FaultSite::CacheTag: return "tag";
      case FaultSite::MigDrop: return "mig_drop";
      case FaultSite::MigDelay: return "mig_delay";
      case FaultSite::BusDrop: return "bus_drop";
      case FaultSite::CoreOff: return "core_off";
      case FaultSite::CoreOn: return "core_on";
      case FaultSite::kCount: break;
    }
    return "?";
}

std::string
faultRuleToString(const FaultRule &rule)
{
    std::string out = rule.scheduled
                          ? "at=" + std::to_string(rule.at)
                          : "rate=" + formatRate(rule.rate);
    out += ':';
    switch (rule.site) {
      case FaultSite::Ae:
      case FaultSite::Delta:
      case FaultSite::Ar:
      case FaultSite::OeEntry:
      case FaultSite::CacheTag:
        out += "flip=";
        out += faultSiteName(rule.site);
        break;
      case FaultSite::MigDrop:
      case FaultSite::BusDrop:
        out += faultSiteName(rule.site);
        break;
      case FaultSite::MigDelay:
        out += "mig_delay=" + std::to_string(rule.delay);
        break;
      case FaultSite::CoreOff:
      case FaultSite::CoreOn:
        out += faultSiteName(rule.site);
        out += '=' + std::to_string(rule.core);
        break;
      case FaultSite::kCount:
        XMIG_PANIC("faultRuleToString on kCount");
    }
    return out;
}

std::string
FaultPlan::toString() const
{
    std::string out = "seed=" + std::to_string(seed);
    for (const FaultRule &r : scheduled)
        out += ';' + faultRuleToString(r);
    for (const FaultRule &r : rates)
        out += ';' + faultRuleToString(r);
    return out;
}

bool
FaultPlan::targets(FaultSite site) const
{
    const auto match = [site](const FaultRule &r) {
        return r.site == site;
    };
    return std::any_of(scheduled.begin(), scheduled.end(), match) ||
           std::any_of(rates.begin(), rates.end(), match);
}

bool
FaultPlan::parse(const std::string &spec, FaultPlan *plan,
                 std::string *error)
{
    XMIG_ASSERT(plan != nullptr, "FaultPlan::parse needs a target");
    FaultPlan out;
    const auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    size_t pos = 0;
    while (pos <= spec.size() && !spec.empty()) {
        size_t end = spec.find(';', pos);
        const bool last = end == std::string::npos;
        if (last)
            end = spec.size();
        const std::string stmt = spec.substr(pos, end - pos);
        pos = end + 1;
        if (stmt.empty()) {
            // Only the empty *spec* is inert; an empty statement is a
            // malformed plan (a stray or trailing ';' usually means a
            // statement got lost in shell quoting).
            return fail(last ? "trailing ';' (empty statement)"
                             : "empty statement (stray ';')");
        }

        if (stmt.rfind("seed=", 0) == 0) {
            if (!parseUint(stmt.substr(5), &out.seed))
                return fail("bad seed in '" + stmt + "'");
            continue;
        }

        const size_t colon = stmt.find(':');
        if (colon == std::string::npos)
            return fail("statement '" + stmt +
                        "' is not seed=, at=N:<event> or "
                        "rate=P:<event>");
        const std::string trigger = stmt.substr(0, colon);
        const std::string event = stmt.substr(colon + 1);

        FaultRule rule;
        std::string event_error;
        if (!parseEvent(event, &rule, &event_error))
            return fail("in '" + stmt + "': " + event_error);

        if (trigger.rfind("at=", 0) == 0) {
            if (!parseUint(trigger.substr(3), &rule.at))
                return fail("bad tick in '" + stmt + "'");
            rule.scheduled = true;
            out.scheduled.push_back(rule);
        } else if (trigger.rfind("rate=", 0) == 0) {
            if (!parseRate(trigger.substr(5), &rule.rate))
                return fail("bad rate in '" + stmt +
                            "' (want a probability in [0, 1])");
            rule.scheduled = false;
            out.rates.push_back(rule);
        } else {
            return fail("trigger '" + trigger +
                        "' is not at=N or rate=P");
        }
    }

    std::stable_sort(out.scheduled.begin(), out.scheduled.end(),
                     [](const FaultRule &a, const FaultRule &b) {
                         return a.at < b.at;
                     });
    *plan = std::move(out);
    return true;
}

FaultPlan
FaultPlan::parseOrFatal(const std::string &spec)
{
    FaultPlan plan;
    std::string error;
    if (!parse(spec, &plan, &error))
        XMIG_FATAL("bad --fault-plan: %s", error.c_str());
    return plan;
}

} // namespace xmig
