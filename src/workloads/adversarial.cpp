/**
 * @file
 * xmig-storm adversarial kernels: reference streams built to hurt the
 * affinity algorithm, not to model a benchmark.
 *
 * The 18 Table-1 kernels reproduce behaviors the paper measured;
 * these three are the opposite — synthetic worst cases aimed at the
 * exact mechanisms of sections 3.2-3.5, so the fuzzer can pair fault
 * plans with workloads that keep the controller's decision machinery
 * (and therefore its recovery paths) under maximum pressure:
 *
 *  - storm.unsplit: a uniform-random working set sized to *straddle*
 *    the 2-way split — bigger than one core's L2, small enough that
 *    the splitter keeps seeing plausible-looking affinity swings. No
 *    stable partition exists, so every transition the filter lets
 *    through is wasted work (the paper's vpr/gzip pathology, scaled
 *    past the single-L2 capacity so migration activity stays high).
 *
 *  - storm.phase: two disjoint working sets visited in alternating
 *    phases, with the phase length chosen against the transition
 *    filter's hysteresis: long enough for the filter to commit to the
 *    new subset, short enough that it never enjoys the stable plateau
 *    a real program phase provides. The machine migrates near its
 *    maximum sustainable rate — a migration storm.
 *
 *  - storm.thrash: fine-grained bursts alternating between two
 *    halves, so the per-window affinity A_R hovers around zero and
 *    the filter dithers at its threshold instead of saturating —
 *    maximum filter updates and marginal transition decisions.
 *
 * They register under the "xmig-storm" suite, deliberately outside
 * allWorkloadNames(): Table-1 sweeps and paper-facing tools keep
 * their 18-benchmark universe, while the fuzzer opts in via
 * adversarialWorkloadNames().
 */

#include "workloads/kernels.hpp"

namespace xmig {

namespace {

/**
 * storm.unsplit: ~768 KB referenced uniformly at random. One core's
 * L2 holds 512 KB, a 2-way split holds 1 MB: the set fits the split
 * but not a single cache, and has no structure the splitter could
 * exploit.
 */
class UnsplitKernel : public Workload
{
  public:
    UnsplitKernel()
    {
        Arena arena;
        set_ = ArenaArray::make(arena, kBytes / 8, 8);
        info_ = {"storm.unsplit", "xmig-storm",
                 "uniform-random refs in ~768 KB straddling the "
                 "2-way split"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 8 * 1024;
        c.loopProb = 0.8;
        c.seed = 901;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            const uint64_t i = ctx.rng().below(set_.count);
            if (ctx.rng().below(8) == 0)
                ctx.store(set_.at(i));
            else
                ctx.load(set_.at(i));
            ctx.op(2);
        }
    }

  private:
    static constexpr uint64_t kBytes = 768 * 1024;
    ArenaArray set_;
    WorkloadInfo info_;
};

/**
 * storm.phase: alternate between two disjoint ~256 KB sets every
 * 4096 instructions. Each set alone is cacheable and internally
 * local (sequential walk with small random excursions), so the
 * affinity engine builds a crisp partition — which the next phase
 * change immediately invalidates. The phase length sits on the
 * resonance of the default transition-filter hysteresis (measured:
 * ~18x the migration rate of a 8192-instruction phase and ~20x a
 * 2048-instruction one on the default machine), i.e. the filter
 * commits to each phase just in time for the next flip.
 */
class PhaseStormKernel : public Workload
{
  public:
    PhaseStormKernel()
    {
        Arena arena;
        setA_ = ArenaArray::make(arena, kBytes / 8, 8);
        setB_ = ArenaArray::make(arena, kBytes / 8, 8);
        info_ = {"storm.phase", "xmig-storm",
                 "phase-change storm: two disjoint ~256 KB sets, "
                 "phases timed against the filter hysteresis"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 8 * 1024;
        c.loopProb = 0.8;
        c.seed = 902;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        bool phase_a = true;
        uint64_t cursor = 0;
        while (!ctx.done()) {
            const ArenaArray &set = phase_a ? setA_ : setB_;
            const uint64_t start = ctx.instructions();
            while (!ctx.done() &&
                   ctx.instructions() - start < kPhaseInstructions) {
                // Mostly a sequential sweep (prefetch-friendly, so
                // the post-L1 stream is dominated by the phase's set
                // identity), with a random excursion mixed in.
                ctx.load(set.at(cursor % set.count));
                cursor += 8; // one line per step (64 B / 8 B elems)
                if (ctx.rng().below(4) == 0)
                    ctx.load(set.at(ctx.rng().below(set.count)));
                if (ctx.rng().below(16) == 0)
                    ctx.store(set.at(cursor % set.count));
                ctx.op(2);
            }
            phase_a = !phase_a;
        }
    }

  private:
    static constexpr uint64_t kBytes = 256 * 1024;
    static constexpr uint64_t kPhaseInstructions = 4096;
    ArenaArray setA_;
    ArenaArray setB_;
    WorkloadInfo info_;
};

/**
 * storm.thrash: bursts of ~48 references ping-ponging between two
 * ~128 KB halves. The burst is far shorter than any filter
 * commitment, so the window affinity A_R keeps crossing zero and the
 * transition filter hovers at its threshold instead of saturating.
 */
class ArThrashKernel : public Workload
{
  public:
    ArThrashKernel()
    {
        Arena arena;
        halfA_ = ArenaArray::make(arena, kBytes / 8, 8);
        halfB_ = ArenaArray::make(arena, kBytes / 8, 8);
        info_ = {"storm.thrash", "xmig-storm",
                 "A_R thrash: short bursts alternating two ~128 KB "
                 "halves, hovering the filter at its threshold"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 8 * 1024;
        c.loopProb = 0.8;
        c.seed = 903;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        bool in_a = true;
        while (!ctx.done()) {
            const ArenaArray &half = in_a ? halfA_ : halfB_;
            for (unsigned i = 0; i < kBurstRefs && !ctx.done(); ++i) {
                const uint64_t j = ctx.rng().below(half.count);
                if (ctx.rng().below(10) == 0)
                    ctx.store(half.at(j));
                else
                    ctx.load(half.at(j));
                ctx.op(1);
            }
            in_a = !in_a;
        }
    }

  private:
    static constexpr uint64_t kBytes = 128 * 1024;
    static constexpr unsigned kBurstRefs = 48;
    ArenaArray halfA_;
    ArenaArray halfB_;
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeStormUnsplit()
{
    return std::make_unique<UnsplitKernel>();
}

std::unique_ptr<Workload>
makeStormPhase()
{
    return std::make_unique<PhaseStormKernel>();
}

std::unique_ptr<Workload>
makeStormThrash()
{
    return std::make_unique<ArThrashKernel>();
}

} // namespace xmig
