/**
 * @file
 * SPEC CPU2000 integer-like kernels, part 1: 164.gzip, 175.vpr,
 * 176.gcc, 181.mcf, 186.crafty.
 *
 * gzip and vpr reference their working-sets in near-random order —
 * the paper's examples of programs with *no* splittability, where the
 * transition filter must keep migrations rare. gcc and crafty stress
 * the instruction side (Table 1 charges them 41.6M and 83.5M IL1
 * misses). mcf chases pointers through a multi-MB network with a hot
 * circular component, the paper's flagship win (~60 L2 misses removed
 * per migration).
 */

#include "workloads/kernels.hpp"

#include <algorithm>
#include <vector>

namespace xmig {

namespace {

/**
 * 164.gzip-like: LZ77 over a sliding window. Hash-chain probes land
 * at effectively random offsets within the ~0.5 MB window+tables, so
 * the post-L1 stream is random-dominated: not splittable.
 */
class GzipKernel : public Workload
{
  public:
    GzipKernel()
    {
        Arena arena;
        window_ = ArenaArray::make(arena, kWindowBytes, 1);
        hashHead_ = ArenaArray::make(arena, kHashEntries, 4);
        hashChain_ = ArenaArray::make(arena, kWindowBytes, 4);
        info_ = {"164.gzip", "SPEC2000",
                 "LZ77 with random hash-chain probes in ~0.75 MB"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 16 * 1024;
        c.loopProb = 0.7;
        c.seed = 164;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        uint64_t pos = 0;
        while (!ctx.done()) {
            // Hash the next 3 input bytes and probe the chain.
            ctx.load(window_.at(pos % kWindowBytes));
            ctx.op(2);
            const uint64_t h = ctx.rng().below(kHashEntries);
            ctx.load(hashHead_.at(h));
            // Follow up to 4 chain links at random window offsets
            // (prior occurrences of this hash).
            unsigned links = 1 + static_cast<unsigned>(ctx.rng().below(4));
            for (unsigned l = 0; l < links; ++l) {
                const uint64_t cand = ctx.rng().below(kWindowBytes);
                ctx.load(hashChain_.at(cand));
                // Compare candidate match bytes.
                for (unsigned b = 0; b < 4; ++b)
                    ctx.load(window_.at((cand + b) % kWindowBytes));
                ctx.op(2);
            }
            // Insert the new position into the chain.
            ctx.store(hashChain_.at(pos % kWindowBytes));
            ctx.store(hashHead_.at(h));
            ctx.op(4); // literal/length coding
            pos += 1 + ctx.rng().below(4);
        }
    }

  private:
    static constexpr uint64_t kWindowBytes = 256 * 1024;
    static constexpr uint64_t kHashEntries = 64 * 1024;
    ArenaArray window_;
    ArenaArray hashHead_;
    ArenaArray hashChain_;
    WorkloadInfo info_;
};

/**
 * 175.vpr-like: simulated-annealing placement. Random cell pairs are
 * evaluated and swapped; cost evaluation touches random nets. The
 * ~0.4 MB footprint is referenced uniformly at random — the paper
 * names vpr as random-like, with the worst transition frequency.
 */
class VprKernel : public Workload
{
  public:
    VprKernel()
    {
        Arena arena;
        cells_ = ArenaArray::make(arena, kCells, 24);
        nets_ = ArenaArray::make(arena, kNets, 16);
        info_ = {"175.vpr", "SPEC2000",
                 "annealing placement, uniform-random refs in ~0.4 MB"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 24 * 1024;
        c.loopProb = 0.6;
        c.seed = 175;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            const uint64_t a = ctx.rng().below(kCells);
            const uint64_t b = ctx.rng().below(kCells);
            ctx.load(cells_.at(a));
            ctx.load(cells_.at(b));
            // Evaluate the bounding boxes of a few random nets.
            for (unsigned n = 0; n < 4; ++n) {
                ctx.load(nets_.at(ctx.rng().below(kNets)));
                ctx.op(3);
            }
            if (ctx.rng().chance(0.45)) { // accept the swap
                ctx.store(cells_.at(a, 8));
                ctx.store(cells_.at(b, 8));
            }
            ctx.op(6); // annealing bookkeeping
        }
    }

  private:
    static constexpr uint64_t kCells = 8 * 1024;  // 192 KB
    static constexpr uint64_t kNets = 14 * 1024;  // 224 KB
    ArenaArray cells_;
    ArenaArray nets_;
    WorkloadInfo info_;
};

/**
 * 176.gcc-like: compiler passes over an in-memory IR. The static
 * code image is large (~1.5 MB, Table 1's 41.6M IL1 misses); data
 * passes mix linear walks over IR node lists with pointer hops.
 */
class GccKernel : public Workload
{
  public:
    GccKernel()
    {
        Arena arena;
        nodes_ = ArenaArray::make(arena, kNodes, 48);
        info_ = {"176.gcc", "SPEC2000",
                 "compiler passes: 1.5 MB code image, ~1.5 MB IR pool"};
        Rng rng(176);
        succ_.resize(kNodes);
        for (uint64_t i = 0; i < kNodes; ++i) {
            // Mostly the next node (list order), sometimes a jump.
            succ_[i] = rng.chance(0.85)
                ? static_cast<uint32_t>((i + 1) % kNodes)
                : static_cast<uint32_t>(rng.below(kNodes));
        }
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 2048 * 1024; // the defining feature of gcc
        c.loopProb = 0.15;
        c.localCallProb = 0.35;
        c.recentDepth = 10;
        c.seed = 176;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        uint64_t node = 0;
        while (!ctx.done()) {
            // One "pass": visit a run of nodes following successor
            // links, reading operands and rewriting some nodes.
            for (unsigned steps = 0; steps < 4096 && !ctx.done();
                 ++steps) {
                ctx.loadPtr(nodes_.at(node));
                ctx.load(nodes_.at(node, 16));
                ctx.op(5); // pattern matching
                if (ctx.rng().chance(0.3))
                    ctx.store(nodes_.at(node, 32));
                node = succ_[node];
            }
            // Between passes, start at a random function's IR.
            node = ctx.rng().below(kNodes);
        }
    }

  private:
    static constexpr uint64_t kNodes = 32 * 1024; // 1.5 MB pool
    ArenaArray nodes_;
    std::vector<uint32_t> succ_;
    WorkloadInfo info_;
};

/**
 * 181.mcf-like: network-simplex min-cost flow. Price-update passes
 * scan the arc array circularly (~3 MB) while basis maintenance
 * chases pointers in the node tree (~1 MB). The circular component
 * exceeds one L2 but fits in four: partial splittability, the
 * paper's 0.67 ratio with frequent productive migrations.
 */
class McfKernel : public Workload
{
  public:
    McfKernel()
    {
        Arena arena;
        arcs_ = ArenaArray::make(arena, kArcs, 32);
        nodes_ = ArenaArray::make(arena, kNodes, 40);
        info_ = {"181.mcf", "SPEC2000",
                 "network simplex: ~3 MB circular arc scans + tree walks"};
        Rng rng(181);
        parent_.resize(kNodes);
        for (uint64_t i = 0; i < kNodes; ++i)
            parent_[i] = static_cast<uint32_t>(i == 0 ? 0 : rng.below(i));
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 12 * 1024;
        c.loopProb = 0.7;
        c.seed = 181;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        uint64_t arc = 0;
        while (!ctx.done()) {
            // Pricing pass: scan a block of arcs in order, checking
            // reduced costs against the endpoints' potentials.
            for (unsigned i = 0; i < kBlock && !ctx.done(); ++i) {
                ctx.load(arcs_.at(arc));
                ctx.op(2);
                arc = (arc + 1) % kArcs;
            }
            if (ctx.done())
                break;
            // Pivot: walk the basis tree from a random entering arc's
            // head up toward the root, updating potentials.
            uint64_t n = ctx.rng().below(kNodes);
            for (unsigned d = 0; d < 24 && n != 0; ++d) {
                ctx.loadPtr(nodes_.at(n));
                ctx.op(1);
                ctx.store(nodes_.at(n, 24)); // potential
                n = parent_[n];
            }
        }
    }

  private:
    static constexpr uint64_t kArcs = 96 * 1024;  // 3 MB circular
    static constexpr uint64_t kNodes = 24 * 1024; // ~1 MB tree
    static constexpr unsigned kBlock = 2048;
    ArenaArray arcs_;
    ArenaArray nodes_;
    std::vector<uint32_t> parent_;
    WorkloadInfo info_;
};

/**
 * 186.crafty-like: chess search. Almost all pressure is on the
 * instruction side (Table 1: 83.5M IL1 misses); data is a small
 * board state plus random transposition-table probes that mostly fit
 * one L2.
 */
class CraftyKernel : public Workload
{
  public:
    CraftyKernel()
    {
        Arena arena;
        board_ = ArenaArray::make(arena, 1024, 8);        // 8 KB
        ttable_ = ArenaArray::make(arena, 24 * 1024, 16); // 384 KB
        info_ = {"186.crafty", "SPEC2000",
                 "chess search: 1.2 MB hot code, small data"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 1600 * 1024;
        c.loopProb = 0.15;
        c.localCallProb = 0.3;
        c.recentDepth = 8;
        c.seed = 186;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            // Search node: generate moves (board reads), probe the
            // transposition table, evaluate (mostly compute).
            for (unsigned m = 0; m < 8; ++m) {
                ctx.load(board_.at(ctx.rng().below(board_.count)));
                ctx.op(6);
            }
            ctx.load(ttable_.at(ctx.rng().below(ttable_.count)));
            ctx.op(20); // evaluation: bit tricks, no memory
            if (ctx.rng().chance(0.4))
                ctx.store(ttable_.at(ctx.rng().below(ttable_.count)));
            ctx.store(board_.at(ctx.rng().below(board_.count)));
        }
    }

  private:
    ArenaArray board_;
    ArenaArray ttable_;
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeGzip()
{
    return std::make_unique<GzipKernel>();
}

std::unique_ptr<Workload>
makeVpr()
{
    return std::make_unique<VprKernel>();
}

std::unique_ptr<Workload>
makeGcc()
{
    return std::make_unique<GccKernel>();
}

std::unique_ptr<Workload>
makeMcf()
{
    return std::make_unique<McfKernel>();
}

std::unique_ptr<Workload>
makeCrafty()
{
    return std::make_unique<CraftyKernel>();
}

} // namespace xmig
