/**
 * @file
 * Synthetic element streams from section 3.3 of the paper.
 *
 * These generate abstract working-set elements (cache-line ids) for
 * driving the affinity algorithm directly: Circular and HalfRandom(m)
 * are the two behaviors of Figure 3; UniformRandom is the
 * unsplittable stream used in the transition-filter analysis of
 * section 3.4; Stride models the constant-stride streams that
 * motivate the prime-modulus sampling hash of section 3.5.
 */

#pragma once

#include <cstdint>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace xmig {

/** Generator of an infinite stream of working-set elements. */
class ElementStream
{
  public:
    virtual ~ElementStream() = default;

    /** Next referenced element id. */
    virtual uint64_t next() = 0;
};

/** 0, 1, ..., N-1, 0, 1, ... — the key splittable behavior. */
class CircularStream : public ElementStream
{
  public:
    explicit CircularStream(uint64_t n)
        : n_(n)
    {
        XMIG_ASSERT(n >= 1, "empty working set");
    }

    uint64_t
    next() override
    {
        const uint64_t e = pos_;
        pos_ = (pos_ + 1) % n_;
        return e;
    }

  private:
    uint64_t n_;
    uint64_t pos_ = 0;
};

/**
 * HalfRandom(m): m random elements from [0, N/2), then m random
 * elements from [N/2, N), alternating forever.
 */
class HalfRandomStream : public ElementStream
{
  public:
    HalfRandomStream(uint64_t n, uint64_t m, uint64_t seed = 99)
        : n_(n), m_(m), rng_(seed)
    {
        XMIG_ASSERT(n >= 2 && m >= 1, "bad HalfRandom parameters");
    }

    uint64_t
    next() override
    {
        if (left_ == 0) {
            left_ = m_;
            lowHalf_ = !lowHalf_;
        }
        --left_;
        const uint64_t half = n_ / 2;
        return lowHalf_ ? rng_.below(half) : half + rng_.below(n_ - half);
    }

  private:
    uint64_t n_;
    uint64_t m_;
    Rng rng_;
    uint64_t left_ = 0;
    bool lowHalf_ = false;
};

/** Uniformly random elements: the canonical unsplittable stream. */
class UniformRandomStream : public ElementStream
{
  public:
    explicit UniformRandomStream(uint64_t n, uint64_t seed = 7)
        : n_(n), rng_(seed)
    {
        XMIG_ASSERT(n >= 1, "empty working set");
    }

    uint64_t next() override { return rng_.below(n_); }

  private:
    uint64_t n_;
    Rng rng_;
};

/** Constant-stride stream over [0, N): 0, s, 2s, ... (mod N). */
class StrideStream : public ElementStream
{
  public:
    StrideStream(uint64_t n, uint64_t stride)
        : n_(n), stride_(stride)
    {
        XMIG_ASSERT(n >= 1 && stride >= 1, "bad stride parameters");
    }

    uint64_t
    next() override
    {
        const uint64_t e = pos_;
        pos_ = (pos_ + stride_) % n_;
        return e;
    }

  private:
    uint64_t n_;
    uint64_t stride_;
    uint64_t pos_ = 0;
};

} // namespace xmig
