/**
 * @file
 * Workload framework: instrumented kernels emitting reference streams.
 *
 * Substitution note (see DESIGN.md): the paper drives its experiments
 * with SPEC CPU2000 and Olden binaries under SimpleScalar/PISA. Those
 * binaries and inputs are not available here, so each benchmark is
 * re-implemented as a genuine C++ kernel with the documented access
 * pattern of the original, executing over a deterministic simulated
 * address space (an Arena) and emitting every instruction fetch, load
 * and store it performs. The downstream machinery — L1 filters, LRU
 * stacks, the affinity algorithm, the migration machine — consumes
 * exactly the same kind of stream it would from a functional
 * simulator.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "mem/trace.hpp"
#include "workloads/code_walker.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace xmig {

/** Identity and provenance of a workload. */
struct WorkloadInfo
{
    std::string name;        ///< e.g. "181.mcf"
    std::string suite;       ///< "SPEC2000" or "Olden"
    std::string description; ///< one line on the modeled behavior
};

/**
 * Deterministic simulated address space.
 *
 * Kernels allocate their data structures here so that emitted
 * addresses are identical on every run (no dependence on the host
 * heap layout).
 */
class Arena
{
  public:
    explicit Arena(uint64_t base = 0x1'0000'0000ULL)
        : next_(base)
    {
    }

    /** Reserve `bytes` bytes; returns the base address. */
    uint64_t
    alloc(uint64_t bytes, uint64_t align = 64)
    {
        next_ = (next_ + align - 1) / align * align;
        const uint64_t base = next_;
        next_ += bytes;
        return base;
    }

    uint64_t used(uint64_t base = 0x1'0000'0000ULL) const
    {
        return next_ - base;
    }

  private:
    uint64_t next_;
};

/** A fixed-stride array in the Arena. */
struct ArenaArray
{
    uint64_t base = 0;
    uint64_t elemBytes = 8;
    uint64_t count = 0;

    uint64_t
    at(uint64_t i, uint64_t field_offset = 0) const
    {
        XMIG_ASSERT(i < count, "arena index %llu out of %llu",
                    (unsigned long long)i, (unsigned long long)count);
        return base + i * elemBytes + field_offset;
    }

    static ArenaArray
    make(Arena &arena, uint64_t count, uint64_t elem_bytes)
    {
        ArenaArray a;
        a.base = arena.alloc(count * elem_bytes);
        a.elemBytes = elem_bytes;
        a.count = count;
        return a;
    }
};

/**
 * Emission context handed to a running kernel.
 *
 * One dynamic instruction == one instruction fetch (via the code
 * walker). Data-touching helpers emit the instruction and then its
 * data reference, so the instruction/reference mix of the stream is
 * under kernel control.
 */
class EmitCtx
{
  public:
    EmitCtx(RefSink &sink, const CodeWalkerConfig &code, uint64_t budget,
            uint64_t seed)
        : sink_(sink),
          walker_(code),
          budget_(budget),
          rng_(seed)
    {
    }

    /** Emit `n` compute instructions (fetch only). */
    void
    op(unsigned n = 1)
    {
        for (unsigned i = 0; i < n; ++i)
            walker_.step(sink_);
        instructions_ += n;
    }

    /** Emit one load instruction touching `addr`. */
    void
    load(uint64_t addr)
    {
        op();
        sink_.access(MemRef::load(addr));
    }

    /**
     * Emit one pointer load: a load whose result is chased as an
     * address (kernels mark these on their linked-data-structure
     * walks; see MemRef::pointer).
     */
    void
    loadPtr(uint64_t addr)
    {
        op();
        sink_.access(MemRef::pointerLoad(addr));
    }

    /** Emit one store instruction touching `addr`. */
    void
    store(uint64_t addr)
    {
        op();
        sink_.access(MemRef::store(addr));
    }

    uint64_t instructions() const { return instructions_; }
    bool done() const { return instructions_ >= budget_; }
    uint64_t budget() const { return budget_; }

    /** Kernel-private RNG (deterministic per run). */
    Rng &rng() { return rng_; }

  private:
    RefSink &sink_;
    CodeWalker walker_;
    uint64_t budget_;
    uint64_t instructions_ = 0;
    Rng rng_;
};

/**
 * Base class of every benchmark kernel.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const WorkloadInfo &info() const = 0;

    /** Shape of this workload's synthetic code image. */
    virtual CodeWalkerConfig codeConfig() const
    {
        return CodeWalkerConfig{};
    }

    /**
     * Execute the kernel, emitting references into `sink`, until
     * about `max_instructions` dynamic instructions have been
     * emitted (kernels may overshoot by one inner phase).
     */
    void
    run(RefSink &sink, uint64_t max_instructions, uint64_t seed = 42)
    {
        EmitCtx ctx(sink, codeConfig(), max_instructions, seed);
        execute(ctx);
    }

  protected:
    virtual void execute(EmitCtx &ctx) = 0;
};

} // namespace xmig
