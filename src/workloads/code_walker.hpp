/**
 * @file
 * Synthetic instruction-fetch generator.
 *
 * The SPEC-like and Olden-like kernels in this library are real
 * algorithms, but their *code* is this library's code, so we cannot
 * observe genuine instruction-fetch addresses. The CodeWalker stands
 * in: it fetches through a synthetic static code image laid out as
 * functions of straight-line instructions, with tunable code
 * footprint, call locality, and looping. Small footprints reproduce
 * the near-zero IL1 miss rates of most benchmarks in Table 1;
 * multi-hundred-KB footprints with weak locality reproduce the heavy
 * instruction-miss behavior of 176.gcc, 186.crafty and 255.vortex.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "mem/ref.hpp"
#include "mem/trace.hpp"
#include "util/rng.hpp"

namespace xmig {

/** Static shape of the synthetic code image and its dynamic behavior. */
struct CodeWalkerConfig
{
    uint64_t codeBytes = 8 * 1024; ///< static code footprint
    uint64_t instrBytes = 4;
    uint64_t baseAddr = 0x0040'0000;

    unsigned minFuncInstrs = 32;
    unsigned maxFuncInstrs = 256;

    /** Probability of re-running the current function (a loop). */
    double loopProb = 0.4;
    /** Max consecutive loop iterations of one function. */
    unsigned maxLoopTrips = 16;

    /** Probability the next function comes from the recent set. */
    double localCallProb = 0.9;
    /** Size of the recent-function set (the "hot region"). */
    unsigned recentDepth = 8;

    uint64_t seed = 12345;
};

/**
 * Walks the synthetic code image one instruction at a time.
 */
class CodeWalker
{
  public:
    explicit CodeWalker(const CodeWalkerConfig &config);

    /** Emit one instruction fetch into `sink` and advance. */
    void
    step(RefSink &sink)
    {
        sink.access(MemRef::ifetch(pc()));
        advance();
    }

    /** Current fetch address. */
    uint64_t
    pc() const
    {
        return config_.baseAddr +
               (funcStart_[current_] + pos_) * config_.instrBytes;
    }

    uint64_t numFunctions() const { return funcStart_.size(); }

  private:
    void advance();
    void pickNextFunction();

    CodeWalkerConfig config_;
    Rng rng_;
    std::vector<uint64_t> funcStart_; ///< in instructions
    std::vector<uint32_t> funcLen_;   ///< in instructions
    std::vector<uint32_t> recent_;    ///< LRU list of recent functions
    uint32_t current_ = 0;
    uint32_t pos_ = 0;
    uint32_t loopsLeft_ = 0;
};

} // namespace xmig
