#include "workloads/code_walker.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace xmig {

CodeWalker::CodeWalker(const CodeWalkerConfig &config)
    : config_(config),
      rng_(config.seed)
{
    XMIG_ASSERT(config.minFuncInstrs >= 1 &&
                config.maxFuncInstrs >= config.minFuncInstrs,
                "bad function length range");
    // Carve the code image into functions of random length.
    const uint64_t total_instrs =
        std::max<uint64_t>(config.codeBytes / config.instrBytes,
                           config.maxFuncInstrs);
    uint64_t at = 0;
    while (at < total_instrs) {
        const uint32_t len = static_cast<uint32_t>(
            rng_.inRange(config.minFuncInstrs, config.maxFuncInstrs));
        funcStart_.push_back(at);
        funcLen_.push_back(len);
        at += len;
    }
    recent_.assign(std::min<size_t>(config.recentDepth, funcStart_.size()),
                   0);
    pickNextFunction();
}

void
CodeWalker::advance()
{
    if (++pos_ < funcLen_[current_])
        return;
    pos_ = 0;
    if (loopsLeft_ > 0) {
        --loopsLeft_;
        return; // loop back to the function start
    }
    pickNextFunction();
}

void
CodeWalker::pickNextFunction()
{
    // Decide where control goes after this function returns: loop it,
    // call something recently used (hot region), or call afar.
    if (rng_.chance(config_.loopProb)) {
        loopsLeft_ = static_cast<uint32_t>(
            rng_.inRange(1, std::max(1u, config_.maxLoopTrips)));
        return;
    }
    uint32_t next;
    if (!recent_.empty() && rng_.chance(config_.localCallProb)) {
        next = recent_[rng_.below(recent_.size())];
    } else {
        next = static_cast<uint32_t>(rng_.below(funcStart_.size()));
    }
    // Maintain the recent set as a FIFO of distinct-ish entries.
    if (!recent_.empty()) {
        recent_[rng_.below(recent_.size())] = next;
    }
    current_ = next;
    pos_ = 0;
    loopsLeft_ = 0;
}

} // namespace xmig
