#include "workloads/registry.hpp"

#include <functional>
#include <unordered_map>

#include "util/logging.hpp"
#include "workloads/kernels.hpp"

namespace xmig {

namespace {

struct RegistryEntry
{
    const char *name;
    const char *suite;
    std::unique_ptr<Workload> (*factory)();
};

const RegistryEntry kRegistry[] = {
    {"164.gzip", "SPEC2000", makeGzip},
    {"171.swim", "SPEC2000", makeSwim},
    {"172.mgrid", "SPEC2000", makeMgrid},
    {"175.vpr", "SPEC2000", makeVpr},
    {"176.gcc", "SPEC2000", makeGcc},
    {"179.art", "SPEC2000", makeArt},
    {"181.mcf", "SPEC2000", makeMcf},
    {"186.crafty", "SPEC2000", makeCrafty},
    {"188.ammp", "SPEC2000", makeAmmp},
    {"197.parser", "SPEC2000", makeParser},
    {"255.vortex", "SPEC2000", makeVortex},
    {"256.bzip2", "SPEC2000", makeBzip2},
    {"300.twolf", "SPEC2000", makeTwolf},
    {"bh", "Olden", makeBh},
    {"bisort", "Olden", makeBisort},
    {"em3d", "Olden", makeEm3d},
    {"health", "Olden", makeHealth},
    {"mst", "Olden", makeMst},
};

/**
 * xmig-storm adversarial kernels, outside the Table-1 array so that
 * allWorkloadNames() keeps the paper's 18-benchmark universe.
 */
const RegistryEntry kAdversarial[] = {
    {"storm.unsplit", "xmig-storm", makeStormUnsplit},
    {"storm.phase", "xmig-storm", makeStormPhase},
    {"storm.thrash", "xmig-storm", makeStormThrash},
};

/** Strip the "NNN." SPEC number prefix if present. */
std::string
shortName(const std::string &name)
{
    const size_t dot = name.find('.');
    if (dot != std::string::npos && dot > 0 &&
        name.find_first_not_of("0123456789") >= dot) {
        return name.substr(dot + 1);
    }
    return name;
}

} // namespace

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &e : kRegistry)
            v.emplace_back(e.name);
        return v;
    }();
    return names;
}

const std::vector<std::string> &
specWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &e : kRegistry) {
            if (std::string(e.suite) == "SPEC2000")
                v.emplace_back(e.name);
        }
        return v;
    }();
    return names;
}

const std::vector<std::string> &
oldenWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &e : kRegistry) {
            if (std::string(e.suite) == "Olden")
                v.emplace_back(e.name);
        }
        return v;
    }();
    return names;
}

const std::vector<std::string> &
adversarialWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &e : kAdversarial)
            v.emplace_back(e.name);
        return v;
    }();
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    for (const auto &e : kRegistry) {
        if (name == e.name || shortName(name) == shortName(e.name))
            return e.factory();
    }
    for (const auto &e : kAdversarial) {
        if (name == e.name)
            return e.factory();
    }
    XMIG_FATAL("unknown workload '%s'", name.c_str());
}

} // namespace xmig
