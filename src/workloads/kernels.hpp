/**
 * @file
 * Factory functions for the 18 benchmark kernels (13 SPEC-like,
 * 5 Olden-like). See DESIGN.md for the substitution rationale and
 * the qualitative behavior each kernel is tuned to reproduce.
 */

#pragma once

#include <memory>

#include "workloads/workload.hpp"

namespace xmig {

// SPEC CPU2000-like kernels.
std::unique_ptr<Workload> makeGzip();
std::unique_ptr<Workload> makeSwim();
std::unique_ptr<Workload> makeMgrid();
std::unique_ptr<Workload> makeVpr();
std::unique_ptr<Workload> makeGcc();
std::unique_ptr<Workload> makeArt();
std::unique_ptr<Workload> makeMcf();
std::unique_ptr<Workload> makeCrafty();
std::unique_ptr<Workload> makeAmmp();
std::unique_ptr<Workload> makeParser();
std::unique_ptr<Workload> makeVortex();
std::unique_ptr<Workload> makeBzip2();
std::unique_ptr<Workload> makeTwolf();

// Olden-like kernels.
std::unique_ptr<Workload> makeBh();
std::unique_ptr<Workload> makeBisort();
std::unique_ptr<Workload> makeEm3d();
std::unique_ptr<Workload> makeHealth();
std::unique_ptr<Workload> makeMst();

// xmig-storm adversarial kernels (adversarial.cpp) — outside the
// Table-1 set; see adversarialWorkloadNames() in registry.hpp.
std::unique_ptr<Workload> makeStormUnsplit();
std::unique_ptr<Workload> makeStormPhase();
std::unique_ptr<Workload> makeStormThrash();

} // namespace xmig
