/**
 * @file
 * Benchmark registry: name -> kernel factory, in Table 1 order.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace xmig {

/** Names of all 18 benchmarks, in the paper's Table 1 order. */
const std::vector<std::string> &allWorkloadNames();

/** Names of the SPEC2000-like benchmarks only. */
const std::vector<std::string> &specWorkloadNames();

/** Names of the Olden-like benchmarks only. */
const std::vector<std::string> &oldenWorkloadNames();

/**
 * Names of the xmig-storm adversarial kernels (suite "xmig-storm").
 * Deliberately *not* part of allWorkloadNames(): Table-1 sweeps keep
 * the paper's 18-benchmark universe; the fuzzer and targeted tests
 * opt in explicitly.
 */
const std::vector<std::string> &adversarialWorkloadNames();

/**
 * Instantiate a kernel by name (e.g. "181.mcf" or "mcf"; suite
 * prefixes are optional). Fatal error on unknown names.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace xmig
