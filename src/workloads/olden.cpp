/**
 * @file
 * Olden-like kernels: bh, bisort, em3d, health, mst (sequential
 * versions, following Carlisle & Rogers' benchmark suite as used by
 * the paper via Amir Roth's sequential port).
 *
 * These are linked-data-structure programs — the class the paper's
 * conclusion singles out as the most promising for execution
 * migration. bh/em3d/health revisit sub-MB..~1.3 MB structures every
 * phase (splittable; Table 2 ratios 0.14-0.17 for em3d/health).
 * bisort chases an unpredictable ~1 MB tree (no benefit), and mst
 * streams over a ~9 MB hash-table forest (footprint beyond 4xL2;
 * migrations must stay suppressed via the finite affinity cache).
 */

#include "workloads/kernels.hpp"

#include <algorithm>
#include <vector>

#include "util/hashing.hpp"

namespace xmig {

namespace {

/**
 * bh-like: Barnes-Hut N-body. Each timestep rebuilds an octree over
 * the bodies, then computes forces by walking the tree per body with
 * heavy reuse of the upper levels. Footprint ~0.25 MB.
 */
class BhKernel : public Workload
{
  public:
    BhKernel()
    {
        Arena arena;
        bodies_ = ArenaArray::make(arena, kBodies, 96);
        tree_ = ArenaArray::make(arena, kTreeNodes, 64);
        info_ = {"bh", "Olden",
                 "Barnes-Hut octree builds + force walks in ~0.25 MB"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 16 * 1024;
        c.loopProb = 0.65;
        c.seed = 1001;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            // Tree build: insert each body, descending from the root
            // along the path its (slowly changing) position selects —
            // effectively the same path every timestep.
            uint64_t next_node = kBodies / 4; // upper levels pre-exist
            for (uint64_t b = 0; b < kBodies && !ctx.done(); ++b) {
                ctx.load(bodies_.at(b)); // position
                uint64_t node = 0;
                for (unsigned depth = 0; depth < 8; ++depth) {
                    ctx.loadPtr(tree_.at(node));
                    ctx.op(2); // octant selection
                    node = (node * 4 + 1 + ((b >> depth) & 3)) %
                           kTreeNodes;
                }
                ctx.store(tree_.at(next_node % kTreeNodes));
                next_node++;
            }
            // Force computation: per body, a deterministic multipole
            // walk — mostly the (shared) upper levels plus the cells
            // the body's position admits. Bodies move slowly, so the
            // traversal repeats almost exactly each timestep: the
            // reference stream is circular over the ~0.25 MB
            // structure, which is why bh shows a split gap in
            // Figure 4 of the paper.
            for (uint64_t b = 0; b < kBodies && !ctx.done(); ++b) {
                ctx.load(bodies_.at(b));
                for (unsigned v = 0; v < 40; ++v) {
                    const uint64_t h = mix64(b * 64 + v);
                    // Deep cells cluster around the body's own region
                    // of space (bodies are visited in spatial order),
                    // so nearby bodies share cells and distant ones
                    // do not — the structure splitting exploits.
                    const uint64_t region =
                        b * kTreeNodes / kBodies;
                    const uint64_t node = (v * 5 + b) % 10 < 7
                        ? h % 64                          // top levels
                        : (region + h % 160) % kTreeNodes; // local cells
                    ctx.load(tree_.at(node));
                    ctx.op(4); // multipole acceptance + force terms
                }
                ctx.store(bodies_.at(b, 48)); // acceleration
            }
        }
    }

  private:
    static constexpr uint64_t kBodies = 1200;    // 96 B each
    static constexpr uint64_t kTreeNodes = 2400; // 64 B each
    ArenaArray bodies_;
    ArenaArray tree_;
    WorkloadInfo info_;
};

/**
 * bisort-like: bitonic sort over a ~1 MB binary tree in heap layout.
 * The merge phases compare and swap values across subtrees in an
 * order that defeats both caching and splitting (the paper lists
 * bisort among the non-splittable programs).
 */
class BisortKernel : public Workload
{
  public:
    BisortKernel()
    {
        Arena arena;
        tree_ = ArenaArray::make(arena, kNodes, 16);
        info_ = {"bisort", "Olden",
                 "bitonic sort over a ~1 MB pointer tree"};
        // Explicit child pointers: SwapTree physically exchanges
        // subtrees, so traversal order drifts away from layout order
        // over time — the reason bisort resists splitting.
        left_.resize(kNodes, 0);
        right_.resize(kNodes, 0);
        for (uint64_t i = 0; i < kNodes / 2 - 1; ++i) {
            left_[i] = static_cast<uint32_t>(2 * i + 1);
            right_[i] = static_cast<uint32_t>(2 * i + 2);
        }
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 8 * 1024;
        c.loopProb = 0.7;
        c.seed = 1002;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done())
            bimerge(ctx, 0, 0, phase_++ % 2 == 0);
    }

  private:
    /** Recursive bitonic merge following the (drifting) pointers. */
    void
    bimerge(EmitCtx &ctx, uint32_t root, unsigned depth, bool up)
    {
        if (ctx.done() || depth >= kDepth - 1)
            return;
        const uint32_t l = left_[root];
        const uint32_t r = right_[root];
        if (l == 0 || r == 0)
            return;
        ctx.loadPtr(tree_.at(l));
        ctx.loadPtr(tree_.at(r));
        ctx.op(2);
        if (ctx.rng().chance(0.5)) {
            // Out of order: SwapTree — exchange the subtrees.
            std::swap(left_[root], right_[root]);
            ctx.store(tree_.at(root, 8));
        }
        // Value-dependent pruning: a subtree that is already in
        // bitonic order is not descended into, so successive passes
        // visit different, data-dependent subsets of the tree — the
        // weak, irregular reuse that makes bisort resist splitting.
        if (!ctx.rng().chance(0.35))
            bimerge(ctx, left_[root], depth + 1, up);
        if (!ctx.rng().chance(0.35))
            bimerge(ctx, right_[root], depth + 1, !up);
        ctx.load(tree_.at(root));
        ctx.store(tree_.at(root, 8));
    }

    static constexpr unsigned kDepth = 16;
    static constexpr uint64_t kNodes = (1u << kDepth) + 2; // ~1 MB
    ArenaArray tree_;
    std::vector<uint32_t> left_;
    std::vector<uint32_t> right_;
    uint64_t phase_ = 0;
    WorkloadInfo info_;
};

/**
 * em3d-like: electromagnetic wave propagation on a bipartite graph.
 * Each iteration sweeps the E nodes in order, reading each node's
 * (fixed, spatially clustered) H neighbors, then sweeps H reading E.
 * The ~1.3 MB graph is re-traversed every iteration in the same
 * order — splittable (Table 2 ratio 0.14).
 */
class Em3dKernel : public Workload
{
  public:
    Em3dKernel()
    {
        Arena arena;
        eNodes_ = ArenaArray::make(arena, kNodes, 32);
        hNodes_ = ArenaArray::make(arena, kNodes, 32);
        eCoeffs_ = ArenaArray::make(arena, kNodes * kDegree, 8);
        hCoeffs_ = ArenaArray::make(arena, kNodes * kDegree, 8);
        info_ = {"em3d", "Olden",
                 "bipartite E/H sweeps over a ~1.3 MB graph"};
        Rng rng(1003);
        eNbr_.resize(kNodes * kDegree);
        hNbr_.resize(kNodes * kDegree);
        for (uint64_t i = 0; i < kNodes; ++i) {
            for (unsigned d = 0; d < kDegree; ++d) {
                // Neighbors are clustered around the same index.
                eNbr_[i * kDegree + d] = clusterPick(rng, i);
                hNbr_[i * kDegree + d] = clusterPick(rng, i);
            }
        }
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 6 * 1024;
        c.loopProb = 0.8;
        c.seed = 1003;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            sweep(ctx, eNodes_, hNodes_, eCoeffs_, eNbr_);
            sweep(ctx, hNodes_, eNodes_, hCoeffs_, hNbr_);
        }
    }

  private:
    static uint32_t
    clusterPick(Rng &rng, uint64_t i)
    {
        const int64_t off = static_cast<int64_t>(rng.below(512)) - 256;
        int64_t j = static_cast<int64_t>(i) + off;
        j = std::clamp<int64_t>(j, 0, kNodes - 1);
        return static_cast<uint32_t>(j);
    }

    void
    sweep(EmitCtx &ctx, const ArenaArray &dst, const ArenaArray &src,
          const ArenaArray &coeffs, const std::vector<uint32_t> &nbr)
    {
        for (uint64_t i = 0; i < kNodes && !ctx.done(); ++i) {
            for (unsigned d = 0; d < kDegree; ++d) {
                ctx.load(coeffs.at(i * kDegree + d));
                ctx.loadPtr(src.at(nbr[i * kDegree + d]));
                ctx.op(1); // multiply-accumulate
            }
            ctx.store(dst.at(i));
        }
    }

    static constexpr uint64_t kNodes = 9'000;
    static constexpr unsigned kDegree = 6;
    ArenaArray eNodes_;
    ArenaArray hNodes_;
    ArenaArray eCoeffs_;
    ArenaArray hCoeffs_;
    std::vector<uint32_t> eNbr_;
    std::vector<uint32_t> hNbr_;
    WorkloadInfo info_;
};

/**
 * health-like: hierarchical health-care simulation. A fixed village
 * hierarchy is walked depth-first each step; every village processes
 * its linked patient list, transferring some patients upward. The
 * patient pool (~1 MB once warm) is revisited every step.
 */
class HealthKernel : public Workload
{
  public:
    HealthKernel()
    {
        Arena arena;
        villages_ = ArenaArray::make(arena, kVillages, 64);
        patients_ = ArenaArray::make(arena, kPatients, 40);
        info_ = {"health", "Olden",
                 "hierarchical patient lists, ~1 MB revisited per step"};
        lists_.assign(kVillages, {});
        Rng rng(1004);
        // Seed each leaf village with some patients.
        uint32_t p = 0;
        for (uint64_t v = kVillages / 4; v < kVillages; ++v) {
            const unsigned n = 20 + static_cast<unsigned>(rng.below(40));
            for (unsigned i = 0; i < n && p < kPatients; ++i)
                lists_[v].push_back(p++);
        }
        nextFree_ = p;
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 10 * 1024;
        c.loopProb = 0.7;
        c.seed = 1004;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            // One simulation step: visit villages depth-first.
            for (uint64_t v = 0; v < kVillages && !ctx.done(); ++v) {
                ctx.load(villages_.at(v));
                ctx.op(2);
                auto &list = lists_[v];
                // Walk this village's patient list.
                for (size_t i = 0; i < list.size(); ++i) {
                    ctx.loadPtr(patients_.at(list[i]));
                    ctx.op(3); // treat
                    ctx.store(patients_.at(list[i], 16));
                }
                // Refer ~5% of patients to the parent village.
                if (v > 0 && !list.empty() && ctx.rng().chance(0.6)) {
                    const uint64_t parent = (v - 1) / kBranch;
                    lists_[parent].push_back(list.back());
                    list.pop_back();
                    ctx.store(villages_.at(parent, 32));
                }
                // Leaf villages admit new patients (pool reuse).
                if (v >= kVillages / 4 && ctx.rng().chance(0.5)) {
                    list.push_back(
                        static_cast<unsigned>(nextFree_ % kPatients));
                    nextFree_++;
                    ctx.store(patients_.at(list.back()));
                }
                // Bound list growth like the original's discharges.
                if (list.size() > 120)
                    list.resize(60);
            }
        }
    }

  private:
    static constexpr unsigned kBranch = 4;
    static constexpr uint64_t kVillages = 341; // 1+4+16+64+256
    static constexpr uint64_t kPatients = 26'000; // 40 B each ~1 MB
    ArenaArray villages_;
    ArenaArray patients_;
    std::vector<std::vector<uint32_t>> lists_;
    uint32_t nextFree_ = 0;
    WorkloadInfo info_;
};

/**
 * mst-like: minimum spanning tree over a graph whose adjacency is
 * stored in per-node hash tables (the defining Olden-mst structure).
 * Each Prim iteration scans every remaining node's hash table — a
 * ~9 MB streaming footprint far beyond the 2 MB total L2.
 */
class MstKernel : public Workload
{
  public:
    MstKernel()
    {
        Arena arena;
        nodes_ = ArenaArray::make(arena, kGraphNodes, 32);
        tables_ = ArenaArray::make(arena,
                                   kGraphNodes * kTableEntries, 8);
        info_ = {"mst", "Olden",
                 "Prim over per-node hash tables: ~9 MB streamed"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 6 * 1024;
        c.loopProb = 0.75;
        c.seed = 1005;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            // One Prim pass: for each node, probe its hash table for
            // the distance to the newest tree vertex and relax.
            const uint64_t new_vertex = ctx.rng().below(kGraphNodes);
            for (uint64_t n = 0; n < kGraphNodes && !ctx.done(); ++n) {
                ctx.load(nodes_.at(n));
                // Open-addressing probe: 1-2 slots in n's table.
                uint64_t slot =
                    (new_vertex * 2654435761u) % kTableEntries;
                ctx.load(tables_.at(n * kTableEntries + slot));
                if (ctx.rng().chance(0.3)) {
                    slot = (slot + 1) % kTableEntries;
                    ctx.load(tables_.at(n * kTableEntries + slot));
                }
                ctx.op(3); // compare / relax
                if (ctx.rng().chance(0.1))
                    ctx.store(nodes_.at(n, 16));
            }
        }
    }

  private:
    static constexpr uint64_t kGraphNodes = 1536;
    static constexpr uint64_t kTableEntries = 768; // 8 B: 6 KB/node
    ArenaArray nodes_;
    ArenaArray tables_;
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeBh()
{
    return std::make_unique<BhKernel>();
}

std::unique_ptr<Workload>
makeBisort()
{
    return std::make_unique<BisortKernel>();
}

std::unique_ptr<Workload>
makeEm3d()
{
    return std::make_unique<Em3dKernel>();
}

std::unique_ptr<Workload>
makeHealth()
{
    return std::make_unique<HealthKernel>();
}

std::unique_ptr<Workload>
makeMst()
{
    return std::make_unique<MstKernel>();
}

} // namespace xmig
