/**
 * @file
 * SPEC CPU2000 integer-like kernels, part 2: 197.parser, 255.vortex,
 * 256.bzip2, 300.twolf.
 *
 * parser walks dictionary structures in effectively random order over
 * ~4 MB (no split benefit; footprint also exceeds 4xL2 at the hot
 * end). vortex is instruction-heavy with a ~1 MB clustered object
 * pool. bzip2 makes repeated passes over a ~1 MB block — circular
 * and splittable (Table 2 ratio 0.35). twolf's annealing state fits
 * a single 512-KB L2, so L2 filtering must suppress migrations.
 */

#include "workloads/kernels.hpp"

#include <algorithm>
#include <vector>

namespace xmig {

namespace {

/**
 * 197.parser-like: link-grammar parsing. Per word: hash probe into a
 * large dictionary, then a short chain of connector nodes at random
 * pool offsets.
 */
class ParserKernel : public Workload
{
  public:
    ParserKernel()
    {
        Arena arena;
        dict_ = ArenaArray::make(arena, kDictEntries, 32); // 2 MB
        pool_ = ArenaArray::make(arena, kPoolNodes, 24);   // 1.5 MB
        info_ = {"197.parser", "SPEC2000",
                 "dictionary hashing + random pointer chains in ~3.5 MB"};
        Rng rng(197);
        next_.resize(kPoolNodes);
        for (auto &n : next_)
            n = static_cast<uint32_t>(rng.below(kPoolNodes));
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 96 * 1024;
        c.loopProb = 0.5;
        c.seed = 197;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            // Look the next word up.
            ctx.load(dict_.at(ctx.rng().below(kDictEntries)));
            ctx.op(4);
            // Chase its connector list.
            uint64_t n = ctx.rng().below(kPoolNodes);
            for (unsigned d = 0; d < 3; ++d) {
                ctx.loadPtr(pool_.at(n));
                ctx.op(3); // match connectors
                n = next_[n];
            }
            if (ctx.rng().chance(0.2))
                ctx.store(pool_.at(n, 16)); // memoize a linkage
            ctx.op(8); // grammar checking
        }
    }

  private:
    static constexpr uint64_t kDictEntries = 64 * 1024;
    static constexpr uint64_t kPoolNodes = 64 * 1024;
    ArenaArray dict_;
    ArenaArray pool_;
    std::vector<uint32_t> next_;
    WorkloadInfo info_;
};

/**
 * 255.vortex-like: object-oriented database transactions. A large
 * code image (Table 1: 41.8M IL1 misses) plus clustered object
 * accesses: a transaction picks an object cluster and walks its
 * members sequentially.
 */
class VortexKernel : public Workload
{
  public:
    VortexKernel()
    {
        Arena arena;
        objects_ = ArenaArray::make(arena, kObjects, 64); // 1 MB
        index_ = ArenaArray::make(arena, kObjects / 8, 16);
        info_ = {"255.vortex", "SPEC2000",
                 "OO database: 1.3 MB code, clustered 1 MB object pool"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 1600 * 1024;
        c.loopProb = 0.2;
        c.localCallProb = 0.45;
        c.seed = 255;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            // Transaction: B-tree-ish index probe, then walk one
            // cluster of objects.
            ctx.load(index_.at(ctx.rng().below(index_.count)));
            ctx.op(5);
            const uint64_t cluster =
                ctx.rng().below(kObjects / kClusterSize) * kClusterSize;
            for (uint64_t o = 0; o < kClusterSize && !ctx.done(); ++o) {
                ctx.load(objects_.at(cluster + o));
                ctx.op(6); // method dispatch, field validation
                if (ctx.rng().chance(0.25))
                    ctx.store(objects_.at(cluster + o, 32));
            }
        }
    }

  private:
    static constexpr uint64_t kObjects = 16 * 1024;
    static constexpr uint64_t kClusterSize = 16;
    ArenaArray objects_;
    ArenaArray index_;
    WorkloadInfo info_;
};

/**
 * 256.bzip2-like: block-sorting compression. Each block (~1 MB) is
 * swept repeatedly: radix/bucket passes read it sequentially and
 * scatter into count/pointer arrays, then the sorted order is read
 * back. The block is re-referenced pass after pass — circular.
 */
class Bzip2Kernel : public Workload
{
  public:
    Bzip2Kernel()
    {
        Arena arena;
        block_ = ArenaArray::make(arena, kBlockBytes, 1);   // 832 KB
        pointers_ = ArenaArray::make(arena, kBlockBytes, 4); // quarter
        counts_ = ArenaArray::make(arena, 2 * 1024, 4); // 8 KB: hot
        info_ = {"256.bzip2", "SPEC2000",
                 "block sorting: repeated passes over a ~1 MB block"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 20 * 1024;
        c.loopProb = 0.75;
        c.seed = 256;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            // Counting pass: sequential read of the block; the radix
            // histogram is small and stays L1-resident.
            for (uint64_t i = 0; i < kBlockBytes && !ctx.done(); i += 4) {
                ctx.load(block_.at(i));
                ctx.op(1);
                const uint64_t bucket =
                    (i * 2654435761u) % counts_.count;
                ctx.load(counts_.at(bucket));
                ctx.store(counts_.at(bucket)); // counts[b]++
            }
            // Pointer-scatter pass: sequential read, strided writes
            // within the first quarter of the pointer array.
            for (uint64_t i = 0; i < kBlockBytes / 4 && !ctx.done();
                 i += 4) {
                ctx.load(block_.at(i * 4));
                ctx.op(2);
                ctx.store(pointers_.at(i));
            }
        }
    }

  private:
    static constexpr uint64_t kBlockBytes = 832 * 1024;
    ArenaArray block_;
    ArenaArray pointers_;
    ArenaArray counts_;
    WorkloadInfo info_;
};

/**
 * 300.twolf-like: standard-cell placement annealing over a small
 * netlist. The ~0.35 MB footprint fits one 512-KB L2: after warm-up
 * there are almost no L2 misses, and with L2 filtering the
 * controller must leave the execution alone.
 */
class TwolfKernel : public Workload
{
  public:
    TwolfKernel()
    {
        Arena arena;
        cells_ = ArenaArray::make(arena, kCells, 24);  // 168 KB
        nets_ = ArenaArray::make(arena, kNets, 16);    // 176 KB
        info_ = {"300.twolf", "SPEC2000",
                 "annealing over ~0.35 MB: fits a single L2"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 48 * 1024;
        c.loopProb = 0.55;
        c.seed = 300;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        uint64_t a = 0;
        while (!ctx.done()) {
            // Annealing visits cells in sweep order; the partner cell
            // and the affected nets are spatially close, so the
            // stream is locally structured (unlike vpr's).
            ctx.load(cells_.at(a));
            const uint64_t b =
                (a + ctx.rng().below(kCells / 16)) % kCells;
            ctx.load(cells_.at(b));
            for (unsigned n = 0; n < 3; ++n) {
                const uint64_t net =
                    (a * 3 / 2 + ctx.rng().below(kNets / 16)) % kNets;
                ctx.load(nets_.at(net));
                ctx.op(4);
            }
            if (ctx.rng().chance(0.35))
                ctx.store(cells_.at(a, 8));
            ctx.op(10); // cost deltas, random-number generation
            a = (a + 1) % kCells;
        }
    }

  private:
    static constexpr uint64_t kCells = 7 * 1024;
    static constexpr uint64_t kNets = 11 * 1024;
    ArenaArray cells_;
    ArenaArray nets_;
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeParser()
{
    return std::make_unique<ParserKernel>();
}

std::unique_ptr<Workload>
makeVortex()
{
    return std::make_unique<VortexKernel>();
}

std::unique_ptr<Workload>
makeBzip2()
{
    return std::make_unique<Bzip2Kernel>();
}

std::unique_ptr<Workload>
makeTwolf()
{
    return std::make_unique<TwolfKernel>();
}

} // namespace xmig
