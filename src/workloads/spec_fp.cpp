/**
 * @file
 * SPEC CPU2000 floating-point-like kernels: 171.swim, 172.mgrid,
 * 179.art, 188.ammp.
 *
 * swim/mgrid stream over grids far larger than the total on-chip L2
 * capacity (no splitting benefit; migrations must stay suppressed).
 * art and ammp sweep working-sets between one L2 (512 KB) and the
 * 4-core total (2 MB) — the sweet spot where the affinity algorithm
 * trades migrations for L2 misses (Table 2 ratios 0.03 and 0.17).
 */

#include "workloads/kernels.hpp"

#include <algorithm>
#include <vector>

namespace xmig {

namespace {

/**
 * 171.swim-like: shallow-water finite differences. Several large 2-D
 * grids are swept sequentially each timestep; the combined footprint
 * (~18 MB) exceeds any on-chip capacity, so every sweep streams.
 */
class SwimKernel : public Workload
{
  public:
    SwimKernel()
    {
        Arena arena;
        for (auto &grid : grids_)
            grid = ArenaArray::make(arena, kRows * kCols, 8);
        info_ = {"171.swim", "SPEC2000",
                 "shallow-water stencils streaming over ~18 MB of grids"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 12 * 1024; // tight numeric loops
        c.loopProb = 0.8;
        c.seed = 171;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        // Timestep: three stencil passes, each reading two grids and
        // writing a third, visiting rows sequentially.
        while (!ctx.done()) {
            for (int pass = 0; pass < 3 && !ctx.done(); ++pass) {
                const ArenaArray &a = grids_[pass];
                const ArenaArray &b = grids_[pass + 1];
                const ArenaArray &out = grids_[pass + 3];
                for (uint64_t r = 1; r + 1 < kRows && !ctx.done(); ++r) {
                    for (uint64_t c = 1; c + 1 < kCols; ++c) {
                        const uint64_t i = r * kCols + c;
                        ctx.load(a.at(i));
                        ctx.load(a.at(i - kCols));
                        ctx.load(b.at(i + 1));
                        ctx.op(3); // FP arithmetic
                        ctx.store(out.at(i));
                    }
                }
            }
        }
    }

  private:
    static constexpr uint64_t kRows = 640;
    static constexpr uint64_t kCols = 600;
    ArenaArray grids_[6];
    WorkloadInfo info_;
};

/**
 * 172.mgrid-like: multigrid V-cycles. Most time is spent relaxing the
 * finest grid (~8 MB), with geometrically smaller coarse levels.
 */
class MgridKernel : public Workload
{
  public:
    MgridKernel()
    {
        Arena arena;
        uint64_t n = kFineElems;
        for (auto &level : levels_) {
            level = ArenaArray::make(arena, n, 8);
            n = std::max<uint64_t>(n / 8, 512);
        }
        info_ = {"172.mgrid", "SPEC2000",
                 "multigrid V-cycles over an ~9 MB grid hierarchy"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 16 * 1024;
        c.loopProb = 0.8;
        c.seed = 172;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            // Down-sweep: relax each level, restrict to the coarser.
            for (int l = 0; l < kLevels && !ctx.done(); ++l)
                relax(ctx, levels_[l]);
            // Up-sweep: prolong and relax again.
            for (int l = kLevels - 1; l >= 0 && !ctx.done(); --l)
                relax(ctx, levels_[l]);
        }
    }

  private:
    void
    relax(EmitCtx &ctx, const ArenaArray &grid)
    {
        for (uint64_t i = 1; i + 1 < grid.count && !ctx.done(); ++i) {
            ctx.load(grid.at(i - 1));
            ctx.load(grid.at(i + 1));
            ctx.op(2);
            ctx.store(grid.at(i));
        }
    }

    static constexpr int kLevels = 4;
    static constexpr uint64_t kFineElems = 1'000'000; // 8 MB fine grid
    ArenaArray levels_[kLevels];
    WorkloadInfo info_;
};

/**
 * 179.art-like: adaptive-resonance neural network. Training scans the
 * full F1->F2 weight matrix sequentially over and over — a textbook
 * Circular working-set of ~1.4 MB: hopeless in one 512-KB L2,
 * perfectly splittable across four.
 */
class ArtKernel : public Workload
{
  public:
    ArtKernel()
    {
        Arena arena;
        weightsUp_ = ArenaArray::make(arena, kF1 * kF2, 4);
        weightsDown_ = ArenaArray::make(arena, kF1 * kF2, 4);
        f1_ = ArenaArray::make(arena, kF1, 4);
        info_ = {"179.art", "SPEC2000",
                 "neural-net training scanning ~1.4 MB of weights"};
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 8 * 1024;
        c.loopProb = 0.85;
        c.seed = 179;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            // Recognition: compute every F2 activation from the full
            // bottom-up weight row (sequential scan of the matrix).
            for (uint64_t j = 0; j < kF2 && !ctx.done(); ++j) {
                for (uint64_t i = 0; i < kF1; i += 2) {
                    ctx.load(weightsUp_.at(j * kF1 + i));
                    ctx.op(1);
                }
            }
            // Resonance: adapt the winner's top-down weights.
            const uint64_t winner = ctx.rng().below(kF2);
            for (uint64_t i = 0; i < kF1 && !ctx.done(); ++i) {
                ctx.load(f1_.at(i));
                ctx.load(weightsDown_.at(winner * kF1 + i));
                ctx.op(1);
                ctx.store(weightsDown_.at(winner * kF1 + i));
            }
        }
    }

  private:
    static constexpr uint64_t kF1 = 1800;
    static constexpr uint64_t kF2 = 100; // 2 * 1800 * 100 * 4 B = 1.44 MB
    ArenaArray weightsUp_;
    ArenaArray weightsDown_;
    ArenaArray f1_;
    WorkloadInfo info_;
};

/**
 * 188.ammp-like: molecular dynamics. Each step sweeps the atom array
 * in order; each atom reads its spatial neighbors (nearby indices,
 * fixed per run) and accumulates forces. The ~1.3 MB footprint is
 * revisited every step with mild jitter — circular and splittable.
 */
class AmmpKernel : public Workload
{
  public:
    AmmpKernel()
    {
        Arena arena;
        atoms_ = ArenaArray::make(arena, kAtoms, 80); // pos/vel/force
        neighbors_ = ArenaArray::make(arena, kAtoms * kNeighbors, 4);
        info_ = {"188.ammp", "SPEC2000",
                 "molecular dynamics sweeping ~1.3 MB of atoms + lists"};
        // Fixed neighbor structure: spatially close indices.
        Rng rng(188);
        neighborIdx_.resize(kAtoms * kNeighbors);
        for (uint64_t a = 0; a < kAtoms; ++a) {
            for (unsigned n = 0; n < kNeighbors; ++n) {
                const int64_t off =
                    static_cast<int64_t>(rng.below(64)) - 32;
                int64_t idx = static_cast<int64_t>(a) + off;
                idx = std::clamp<int64_t>(idx, 0, kAtoms - 1);
                neighborIdx_[a * kNeighbors + n] =
                    static_cast<uint32_t>(idx);
            }
        }
    }

    const WorkloadInfo &info() const override { return info_; }

    CodeWalkerConfig
    codeConfig() const override
    {
        CodeWalkerConfig c;
        c.codeBytes = 24 * 1024;
        c.loopProb = 0.75;
        c.seed = 188;
        return c;
    }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            for (uint64_t a = 0; a < kAtoms && !ctx.done(); ++a) {
                ctx.load(atoms_.at(a, 0));  // position
                for (unsigned n = 0; n < kNeighbors; ++n) {
                    const uint32_t b = neighborIdx_[a * kNeighbors + n];
                    ctx.load(neighbors_.at(a * kNeighbors + n));
                    ctx.load(atoms_.at(b, 0));
                    ctx.op(2); // pair force
                }
                ctx.store(atoms_.at(a, 48)); // force accumulator
            }
            // Integrate: second, lighter sweep.
            for (uint64_t a = 0; a < kAtoms && !ctx.done(); ++a) {
                ctx.load(atoms_.at(a, 48));
                ctx.op(1);
                ctx.store(atoms_.at(a, 24)); // velocity
            }
        }
    }

  private:
    static constexpr uint64_t kAtoms = 12'000;  // 80 B each: 0.96 MB
    static constexpr unsigned kNeighbors = 8;   // + 0.37 MB of lists
    ArenaArray atoms_;
    ArenaArray neighbors_;
    std::vector<uint32_t> neighborIdx_;
    WorkloadInfo info_;
};

} // namespace

std::unique_ptr<Workload>
makeSwim()
{
    return std::make_unique<SwimKernel>();
}

std::unique_ptr<Workload>
makeMgrid()
{
    return std::make_unique<MgridKernel>();
}

std::unique_ptr<Workload>
makeArt()
{
    return std::make_unique<ArtKernel>();
}

std::unique_ptr<Workload>
makeAmmp()
{
    return std::make_unique<AmmpKernel>();
}

} // namespace xmig
