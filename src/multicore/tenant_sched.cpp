#include "multicore/tenant_sched.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace xmig {

const char *
cacheAppetiteName(CacheAppetite appetite)
{
    switch (appetite) {
      case CacheAppetite::Light:
        return "light";
      case CacheAppetite::Sensitive:
        return "sensitive";
      case CacheAppetite::Thrashing:
        return "thrashing";
    }
    return "unknown";
}

CacheAppetite
classifyAppetite(const TenantProbe &probe, double light_mpki,
                 double thrash_mpki)
{
    XMIG_ASSERT(light_mpki <= thrash_mpki,
                "appetite thresholds inverted: light %f > thrash %f",
                light_mpki, thrash_mpki);
    const double mpki = probe.missesPerKiloInstr();
    if (mpki <= light_mpki)
        return CacheAppetite::Light;
    if (mpki >= thrash_mpki)
        return CacheAppetite::Thrashing;
    return CacheAppetite::Sensitive;
}

const char *
l3PolicyName(L3Policy policy)
{
    switch (policy) {
      case L3Policy::Unpartitioned:
        return "unpartitioned";
      case L3Policy::WayClustered:
        return "way_clustered";
    }
    return "unknown";
}

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::RoundRobin:
        return "round_robin";
      case SchedPolicy::DeficitRoundRobin:
        return "deficit_round_robin";
    }
    return "unknown";
}

std::vector<ClusterSpec>
clusterTenants(const std::vector<TenantProbe> &probes,
               unsigned total_ways, double light_mpki,
               double thrash_mpki)
{
    XMIG_ASSERT(total_ways >= 1, "cannot cluster zero L3 ways");
    std::vector<unsigned> light;
    std::vector<unsigned> sensitive;
    std::vector<unsigned> thrashing;
    for (unsigned i = 0; i < probes.size(); ++i) {
        switch (classifyAppetite(probes[i], light_mpki, thrash_mpki)) {
          case CacheAppetite::Light:
            light.push_back(i);
            break;
          case CacheAppetite::Sensitive:
            sensitive.push_back(i);
            break;
          case CacheAppetite::Thrashing:
            thrashing.push_back(i);
            break;
        }
    }

    // A single-class population cannot be separated usefully: one
    // cluster of every way is exactly the unpartitioned cache, and
    // keeping it that way avoids shrinking anyone for no benefit.
    const bool oneClass =
        (light.empty() && sensitive.empty()) ||
        (light.empty() && thrashing.empty()) ||
        (sensitive.empty() && thrashing.empty());
    if (probes.empty() || oneClass || total_ways < 2) {
        ClusterSpec all;
        all.ways = total_ways;
        for (unsigned i = 0; i < probes.size(); ++i)
            all.tenants.push_back(i);
        return {all};
    }

    // LFOC's core move: thrashing tenants stream through whatever
    // they are given, so jailing them in a minimal cluster costs them
    // almost nothing and protects everyone else. Light tenants fit in
    // a small cluster. Sensitive tenants split the remainder in
    // proportion to appetite (heavier probe → more ways).
    std::vector<ClusterSpec> clusters;
    unsigned waysLeft = total_ways;
    const unsigned jailWays =
        thrashing.empty() ? 0
                          : std::max(1u, total_ways / 8);
    const unsigned lightWays =
        light.empty() ? 0 : std::max(1u, total_ways / 8);

    if (!thrashing.empty()) {
        ClusterSpec jail;
        jail.ways = jailWays;
        jail.tenants = thrashing;
        clusters.push_back(jail);
        waysLeft -= jailWays;
    }
    if (!light.empty()) {
        ClusterSpec small;
        small.ways = std::min(lightWays, waysLeft);
        small.tenants = light;
        clusters.push_back(small);
        waysLeft -= small.ways;
    }
    if (!sensitive.empty()) {
        // Proportional split with index-order remainder distribution
        // (deterministic; no floating-point order dependence).
        double totalMpki = 0.0;
        for (unsigned i : sensitive)
            totalMpki += probes[i].missesPerKiloInstr();
        unsigned granted = 0;
        std::vector<unsigned> shares(sensitive.size(), 0);
        for (size_t k = 0; k < sensitive.size(); ++k) {
            const double mpki =
                probes[sensitive[k]].missesPerKiloInstr();
            const double frac = totalMpki > 0.0
                                    ? mpki / totalMpki
                                    : 1.0 / static_cast<double>(
                                                sensitive.size());
            shares[k] = std::max(
                1u, static_cast<unsigned>(
                        std::floor(frac * waysLeft)));
            granted += shares[k];
        }
        // Clamp overshoot, then hand leftover ways out in index
        // order so the total is exactly waysLeft.
        while (granted > waysLeft) {
            for (size_t k = sensitive.size(); k-- > 0 &&
                                              granted > waysLeft;) {
                if (shares[k] > 1) {
                    --shares[k];
                    --granted;
                }
            }
            if (granted > waysLeft)
                break; // every share is already 1
        }
        for (size_t k = 0; granted < waysLeft;
             k = (k + 1) % sensitive.size()) {
            ++shares[k];
            ++granted;
        }
        for (size_t k = 0; k < sensitive.size(); ++k) {
            ClusterSpec own;
            own.ways = shares[k];
            own.tenants = {sensitive[k]};
            clusters.push_back(own);
        }
    } else if (waysLeft > 0 && !clusters.empty()) {
        // No sensitive class: return the remainder to the last
        // cluster rather than wasting capacity.
        clusters.back().ways += waysLeft;
    }

    unsigned total = 0;
    size_t covered = 0;
    for (const ClusterSpec &c : clusters) {
        total += c.ways;
        covered += c.tenants.size();
    }
    XMIG_AUDIT(total <= total_ways && covered == probes.size(),
               "way clustering leaked: %u/%u ways, %zu/%zu tenants",
               total, total_ways, covered, probes.size());
    return clusters;
}

TenantScheduler::TenantScheduler(TenantSchedConfig config,
                                 const std::vector<TenantProbe> &probes)
    : config_(std::move(config)),
      deficits_(probes.size(), 0),
      finished_(probes.size(), false)
{
    XMIG_ASSERT(config_.maxResident >= 1,
                "scheduler needs at least one resident slot");
    XMIG_ASSERT(config_.quantumRefs >= 1,
                "scheduler quantum must be positive");
    // Co-location order: sort by appetite descending (ties by index),
    // then interleave heaviest / lightest so each admitted group
    // mixes appetites instead of stacking the hungry tenants.
    std::vector<unsigned> byAppetite(probes.size());
    for (unsigned i = 0; i < probes.size(); ++i)
        byAppetite[i] = i;
    std::stable_sort(byAppetite.begin(), byAppetite.end(),
                     [&probes](unsigned a, unsigned b) {
                         return probes[a].missesPerKiloInstr() >
                                probes[b].missesPerKiloInstr();
                     });
    scores_.resize(probes.size());
    for (unsigned i = 0; i < probes.size(); ++i)
        scores_[i] = probes[i].missesPerKiloInstr();
    size_t lo = 0;
    size_t hi = byAppetite.size();
    bool takeHeavy = true;
    while (lo < hi) {
        if (takeHeavy)
            waiting_.push_back(byAppetite[lo++]);
        else
            waiting_.push_back(byAppetite[--hi]);
        takeHeavy = !takeHeavy;
    }
}

bool
TenantScheduler::allFinished() const
{
    return residents_.empty() && waiting_.empty();
}

unsigned
TenantScheduler::admitNext()
{
    if (waiting_.empty() || residents_.size() >= config_.maxResident)
        return kNone;
    const unsigned tenant = waiting_.front();
    waiting_.erase(waiting_.begin());
    residents_.push_back(tenant);
    XMIG_AUDIT(!finished_[tenant],
               "tenant %u admitted after finishing", tenant);
    return tenant;
}

double
TenantScheduler::colocationScore(unsigned tenant) const
{
    XMIG_ASSERT(tenant < scores_.size(),
                "co-location score for unknown tenant %u", tenant);
    return scores_[tenant];
}

unsigned
TenantScheduler::nextTurn()
{
    if (residents_.empty())
        return kNone;
    rrCursor_ %= residents_.size();
    const unsigned tenant = residents_[rrCursor_];
    rrCursor_ = (rrCursor_ + 1) % residents_.size();
    ++turnsGranted_;
    XMIG_AUDIT(tenant < finished_.size() && !finished_[tenant],
               "turn granted to finished or unknown tenant %u", tenant);
    if (config_.policy == SchedPolicy::DeficitRoundRobin)
        deficits_[tenant] +=
            config_.quantumRefs * weightOf(tenant);
    return tenant;
}

uint64_t
TenantScheduler::turnBudget(unsigned tenant) const
{
    XMIG_ASSERT(tenant < finished_.size(),
                "turn budget for unknown tenant %u", tenant);
    if (config_.policy == SchedPolicy::DeficitRoundRobin)
        return deficits_[tenant];
    return config_.quantumRefs;
}

void
TenantScheduler::onTurnEnd(unsigned tenant, uint64_t refs_used)
{
    XMIG_ASSERT(tenant < finished_.size(),
                "turn end for unknown tenant %u", tenant);
    if (config_.policy != SchedPolicy::DeficitRoundRobin)
        return;
    // The deficit carries over only what the turn left unused; a
    // tenant that drained its stream early donates nothing forward.
    deficits_[tenant] -= std::min(deficits_[tenant], refs_used);
}

void
TenantScheduler::onFinish(unsigned tenant)
{
    XMIG_ASSERT(tenant < finished_.size(),
                "finish for unknown tenant %u", tenant);
    XMIG_ASSERT(!finished_[tenant], "tenant %u finished twice",
                tenant);
    finished_[tenant] = true;
    auto it = std::find(residents_.begin(), residents_.end(), tenant);
    XMIG_ASSERT(it != residents_.end(),
                "tenant %u finished while not resident", tenant);
    const size_t pos =
        static_cast<size_t>(it - residents_.begin());
    residents_.erase(it);
    // Keep the rotation pointed at the same successor.
    if (pos < rrCursor_)
        --rrCursor_;
    if (!residents_.empty())
        rrCursor_ %= residents_.size();
    else
        rrCursor_ = 0;
    deficits_[tenant] = 0;
}

uint32_t
TenantScheduler::weightOf(unsigned tenant) const
{
    if (tenant < config_.weights.size() &&
        config_.weights[tenant] > 0)
        return config_.weights[tenant];
    return 1;
}

double
unfairness(const std::vector<double> &slowdowns)
{
    double lo = 0.0;
    double hi = 0.0;
    for (double s : slowdowns) {
        if (s <= 0.0)
            continue;
        if (lo == 0.0 || s < lo)
            lo = s;
        if (s > hi)
            hi = s;
    }
    if (lo <= 0.0)
        return 1.0;
    return hi / lo;
}

double
jainFairnessIndex(const std::vector<double> &slowdowns)
{
    double sum = 0.0;
    double sumSq = 0.0;
    size_t n = 0;
    for (double s : slowdowns) {
        if (s <= 0.0)
            continue;
        const double x = 1.0 / s;
        sum += x;
        sumSq += x * x;
        ++n;
    }
    if (n == 0 || sumSq <= 0.0)
        return 1.0;
    return (sum * sum) / (static_cast<double>(n) * sumSq);
}

} // namespace xmig
