/**
 * @file
 * The migration-mode multi-core machine of section 2.
 *
 * Structure (Figure 1): each core has 16-KB IL1/DL1 and a private
 * 512-KB L2; an L3 is shared by all cores. In migration mode a single
 * sequential program runs on one *active* core at a time and may
 * migrate; L1 contents are mirrored across cores via broadcast fills
 * (so the machine models the L1 level as one shared filter — exactly
 * equivalent), and L2 coherence follows the modified-bit rules of
 * section 2.1:
 *
 *  - a store on the active core sets its copy's modified bit and
 *    *resets* (not invalidates) the modified bit of inactive copies,
 *    whose values the update bus keeps coherent;
 *  - at most one copy of a line is modified at any time;
 *  - a modified remote copy can be forwarded on an L2 miss (counted
 *    like an L3 hit, per the paper's penalty assumption), and is
 *    simultaneously written back to L3 with its modified bit reset;
 *  - a non-modified remote copy cannot be forwarded; the line is
 *    re-fetched from L3;
 *  - an evicted line is written back to L3 only if modified.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/l1_filter.hpp"
#include "cache/prefetcher.hpp"
#include "core/migration_controller.hpp"
#include "fault/fault_injector.hpp"
#include "mem/trace.hpp"

namespace xmig {

/** Machine configuration (defaults = the section 4.2 setup). */
struct MachineConfig
{
    /**
     * 1 disables migration (baseline single core); any power of two
     * up to 64 enables it (2 and 4 use the paper's exact splitter
     * structures, larger counts the generalized recursive one).
     */
    unsigned numCores = 4;

    uint64_t lineBytes = 64;

    uint64_t il1Bytes = 16 * 1024;
    uint64_t dl1Bytes = 16 * 1024;
    unsigned l1Ways = 4;

    uint64_t l2Bytes = 512 * 1024;
    unsigned l2Ways = 4;
    bool l2Skewed = true;

    /**
     * Shared L3 capacity; 0 models a perfect (always-hitting) L3,
     * which is all the paper's experiments need — Table 2 counts L2
     * misses and never sizes the L3. A finite value adds the L3
     * hit/miss and memory-traffic accounting.
     */
    uint64_t l3Bytes = 0;
    unsigned l3Ways = 16;

    /**
     * Non-owning shared L3 (xmig-arena): when set, the machine routes
     * its L3 traffic through this caller-owned cache instead of
     * building a private one (l3Bytes is then ignored), so N tenant
     * machines contend for one finite capacity. The caller keeps the
     * cache alive for the machine's lifetime and drives every sharing
     * machine from a single thread — the arena's consumer — which is
     * the thread-safety story (confinement, docs/analysis.md).
     * Checkpoints cover only machine-owned state; arena code
     * snapshots the shared cache itself if it needs to.
     */
    Cache *sharedL3 = nullptr;

    MigrationControllerConfig controller = defaultController();

    /**
     * Optional L2 prefetcher (section 6 extension): observes the
     * post-L1 stream and fills candidates into the active core's L2.
     */
    PrefetcherConfig prefetch;

    /**
     * xmig-iron fault plan (fault_plan.hpp grammar); empty = no
     * faults. Parsed at construction; a multi-core machine then owns
     * a FaultInjector shared with its controller and engines. A
     * non-empty plan on a -DXMIG_FAULT=OFF build is a fatal error;
     * on a single-core machine it is ignored with a warning.
     */
    std::string faultPlan;

    /** Section 4.2 controller settings. */
    static MigrationControllerConfig
    defaultController()
    {
        MigrationControllerConfig c;
        c.numCores = 4;
        c.affinityBits = 16;
        c.windowX = 128;
        c.windowY = 64;
        c.filterBits = 18;
        c.samplingCutoff = 8; // 25 % working-set sampling
        c.l2Filtering = true;
        c.boundedStore = true;
        c.affinityCache.entries = 8 * 1024;
        c.affinityCache.ways = 4;
        c.affinityCache.skewed = true;
        return c;
    }
};

/** Event counts for one machine run. */
struct MachineStats
{
    uint64_t instructions = 0;
    uint64_t refs = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Accesses = 0;
    uint64_t l2Misses = 0;
    uint64_t l2ToL2Forwards = 0; ///< subset of l2Misses served remotely
    uint64_t l3Writebacks = 0;
    uint64_t migrations = 0;
    uint64_t updateBusStores = 0; ///< stores broadcast to inactive L2s
    uint64_t prefetchFills = 0;   ///< prefetched lines installed in L2
    uint64_t prefetchUseful = 0;  ///< ...later consumed by a demand hit
    uint64_t l3Accesses = 0;      ///< finite-L3 mode only
    uint64_t l3Misses = 0;        ///< L3 misses (off-chip fetches)
    uint64_t memoryWritebacks = 0; ///< dirty L3 evictions

    // xmig-iron fault / recovery events.
    uint64_t coreOffEvents = 0;    ///< cores hot-unplugged
    uint64_t coreOnEvents = 0;     ///< cores hot-plugged back
    uint64_t dirtyLinesLost = 0;   ///< modified L2 lines lost to unplug
    uint64_t busDrops = 0;         ///< update-bus broadcasts lost
    uint64_t coherenceRepairs = 0; ///< stale modified bits scrubbed
};

/**
 * Checkpointed machine state (crash-recovery support). Captures the
 * architectural contents of the L2s and L3 ({line, modified} sets)
 * and the controller's control plane. The L1 filter and all cache
 * replacement ages are *not* captured: a restore models a reboot
 * with cold L1s, so the continuation is control-plane-exact but not
 * cycle-identical for finite caches (see docs/robustness.md).
 */
struct MachineCheckpoint
{
    struct LineState
    {
        uint64_t line = 0;
        bool modified = false;
    };

    MachineStats stats;
    unsigned activeCore = 0;
    std::vector<std::vector<LineState>> l2Contents; ///< per core
    std::vector<LineState> l3Contents;
    bool hasController = false;
    ControllerCheckpoint controller;
};

/**
 * Trace-driven migration-mode machine.
 *
 * Feed it MemRefs; it filters them through the (mirrored) L1 level,
 * consults the migration controller on every L1 miss, migrates the
 * active core when told to, and maintains the per-core L2s under the
 * migration-mode coherence rules. L3 is modeled as a backing store
 * that always hits (the paper counts L2 misses and never sizes L3).
 */
class MigrationMachine : public RefSink, private LineSink
{
  public:
    explicit MigrationMachine(const MachineConfig &config);

    void access(const MemRef &ref) override;

    /**
     * Batch granularity of accessBatch(): long enough to amortize the
     * per-chunk bookkeeping, short enough that the chunk's MemRefs,
     * events, and prefix counts all live in L1 (K * ~40 bytes ≈ 2.5
     * KB). Measured flat from 32 to 128 on the Table-1 workloads;
     * see docs/parallelism.md.
     */
    static constexpr size_t kBatchRefs = 64;

    /**
     * Process a run of `n` references — the xmig-bolt batch entry
     * point. Byte-identical to n access() calls: each K-ref chunk
     * filters through the L1 level in one tight devirtualized loop,
     * then the (sparse) post-L1 events are processed in order with
     * stats_.refs / stats_.instructions set to their exact scalar
     * values before every event, so trace and journal clocks cannot
     * tell the difference (docs/parallelism.md, "batching"). An armed
     * fault plan falls back to per-reference processing — injector
     * ticks are defined per reference.
     */
    void accessBatch(const MemRef *refs, size_t n);

    const MachineStats &stats() const { return stats_; }
    unsigned activeCore() const { return activeCore_; }

    /**
     * Zero the event counters (machine state — cache contents,
     * controller training — is preserved). Use to exclude warm-up
     * from measurements, approximating the paper's 1-billion-
     * instruction runs where warm-up is negligible.
     */
    void resetStats();
    const MachineConfig &config() const { return config_; }

    const Cache &l2(unsigned core) const { return *l2s_[core]; }
    const L1Filter &l1() const { return *l1_; }

    /**
     * The L3 this machine's traffic lands in: the caller's shared
     * cache when config.sharedL3 is set, the private one when
     * l3Bytes > 0, nullptr in perfect-L3 mode.
     */
    const Cache *l3() const { return l3view_; }

    /** True when the L3 is caller-owned (config.sharedL3). */
    bool sharesL3() const { return config_.sharedL3 != nullptr; }

    /** Controller access (null when numCores == 1). */
    const MigrationController *controller() const
    {
        return controller_.get();
    }

    /** Fault injector (null unless a fault plan is armed). */
    const FaultInjector *injector() const { return injector_.get(); }

    /** Capture the architectural machine state (crash recovery). */
    MachineCheckpoint checkpoint() const;

    /**
     * Restore a checkpoint taken from a machine with the same
     * geometry. Cache contents are rebuilt (replacement ages reset),
     * the controller control plane is reloaded exactly, and the L1
     * filter stays as-is — restore into a freshly built machine for
     * the cold-L1 crash-recovery semantics the tests rely on.
     */
    void restore(const MachineCheckpoint &ckpt);

    /**
     * Audit the coherence invariant: returns the number of lines with
     * more than one modified copy across L2s (must be 0).
     */
    uint64_t countMultiModifiedLines() const;

    /**
     * Register every machine counter under `prefix` (xmig-scope):
     * the MachineStats fields, per-level cache stats
     * (`<prefix>.il1.*`, `.dl1.*`, `.core<i>.l2.*`, `.l3.*`), and
     * the controller tree under `<prefix>.controller.*`.
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Attach the xmig-lens journal (non-owning; may be null) to this
     * machine and everything below it (controller, splitter engines,
     * watchdog, fault injector). The machine drives the journal clock
     * in post-L1 references — the same timeline XMIG_TRACE uses — and
     * records the machine-level events (migrations with distance,
     * core churn, coherence scrubs).
     */
    void attachJournal(obs::Journal *journal);

    /** Distances (in refs) between consecutive migrations. */
    const obs::Histogram &interMigrationGapHistogram() const
    {
        return interMigrationGap_;
    }

  private:
    void onLine(const LineEvent &event) override;

    /** The post-L1 event body behind onLine() (non-virtual). */
    void processLine(const LineEvent &event);

    /** Drain and apply core hot-(un)plug events from the injector. */
    void applyCoreEvents();

    /**
     * Repair stale modified bits left behind by dropped update-bus
     * broadcasts: for every line with multiple modified copies, keep
     * the active core's copy (else the lowest core's) and write the
     * stale ones back to L3.
     */
    void scrubCoherence();

    /**
     * Handle the L2-level request on the (post-decision) active core.
     * `probe`/`probed` carry a findEntry(line) result taken on that
     * same core before the migration decision, so the decision and the
     * access share one tag probe (xmig-swift).
     */
    void accessL2(uint64_t line, bool is_store, CacheEntry *probe,
                  bool probed);

    /** Store visibility on inactive copies (update bus, section 2.1). */
    void broadcastStore(uint64_t line);

    /** Run the prefetcher and fill candidates into the active L2. */
    void issuePrefetches(uint64_t line, bool miss);

    /** Fetch a line from the (finite) L3; counts memory traffic. */
    void fetchFromL3(uint64_t line);

    /** Write a dirty line back into the (finite) L3. */
    void writebackToL3(uint64_t line);

    MachineConfig config_;
    std::unique_ptr<L1Filter> l1_;
    std::vector<std::unique_ptr<Cache>> l2s_;
    std::unique_ptr<Cache> l3_;
    Cache *l3view_ = nullptr; ///< shared or owned L3 (null = perfect)
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<MigrationController> controller_;
    std::unique_ptr<Prefetcher> prefetcher_;
    std::vector<uint64_t> prefetchCandidates_; ///< scratch buffer
    std::vector<CoreFaultEvent> coreEventScratch_;
    unsigned activeCore_ = 0;
    uint64_t auditTick_ = 0; ///< paranoid coherence-sweep cadence
    uint64_t scrubTick_ = 0; ///< bus-drop coherence-scrub cadence
    bool busFaulty_ = false; ///< plan targets the update bus
    obs::Journal *journal_ = nullptr; ///< xmig-lens hook (may be null)
    obs::Histogram interMigrationGap_; ///< refs between migrations
    uint64_t lastMigrationRef_ = 0;
    MachineStats stats_;
};

/**
 * Register one cache's counters (`<prefix>.accesses`, `.hits`,
 * `.misses`, `.writebacks`, `.occupancy`). Machines use it for their
 * private levels; the arena uses it to register a shared L3 once.
 */
void registerCacheMetrics(obs::MetricsRegistry &registry,
                          const std::string &prefix,
                          const Cache &cache);

} // namespace xmig
