#include "multicore/machine.hpp"

#include <unordered_map>

#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace xmig {

MigrationMachine::MigrationMachine(const MachineConfig &config)
    : config_(config)
{
    XMIG_ASSERT(config.numCores == 1 ||
                (config.numCores <= 64 &&
                 (config.numCores & (config.numCores - 1)) == 0),
                "numCores must be 1 or a power of two up to 64");

    L1FilterConfig l1c;
    l1c.il1Bytes = config.il1Bytes;
    l1c.dl1Bytes = config.dl1Bytes;
    l1c.lineBytes = config.lineBytes;
    l1c.fullyAssociative = false;
    l1c.ways = config.l1Ways;
    l1c.unifiedReadWrite = false; // write-through, non-write-allocate DL1
    // Plain new: the LineSink base is private, so the derived-to-base
    // conversion must happen here, in class scope, not in make_unique.
    l1_.reset(new L1Filter(l1c, *this));

    CacheConfig l2c;
    l2c.capacityBytes = config.l2Bytes;
    l2c.ways = config.l2Ways;
    l2c.lineBytes = config.lineBytes;
    l2c.write = WritePolicy::WriteBackAllocate;
    l2c.skewed = config.l2Skewed;
    for (unsigned c = 0; c < config.numCores; ++c) {
        l2c.seed = 11 + c;
        l2s_.push_back(std::make_unique<Cache>(l2c));
    }

    if (config.numCores > 1) {
        MigrationControllerConfig cc = config.controller;
        cc.numCores = config.numCores;
        controller_ = std::make_unique<MigrationController>(cc);
    }

    if (config.prefetch.kind != PrefetchKind::None)
        prefetcher_ = std::make_unique<Prefetcher>(config.prefetch);

    if (config.l3Bytes > 0) {
        CacheConfig l3c;
        l3c.capacityBytes = config.l3Bytes;
        l3c.ways = config.l3Ways;
        l3c.lineBytes = config.lineBytes;
        l3c.write = WritePolicy::WriteBackAllocate;
        l3c.skewed = false;
        l3c.seed = 99;
        l3_ = std::make_unique<Cache>(l3c);
    }
}

void
MigrationMachine::access(const MemRef &ref)
{
    ++stats_.refs;
    if (ref.isIfetch())
        ++stats_.instructions;
    l1_->access(ref); // forwards post-L1 events to onLine()
}

void
MigrationMachine::onLine(const LineEvent &event)
{
    const bool is_store = event.type == RefType::Store;
    if (event.l1Miss)
        ++stats_.l1Misses;

    // The trace timeline advances in post-L1 references: every event
    // recorded below lands at this logical instant.
    XMIG_TRACE_CLOCK(stats_.refs);

    if (controller_ && event.l1Miss) {
        // The controller monitors L1-miss requests. With L2 filtering
        // its transition filters move only when the request would
        // miss the *current* active core's L2, so probe before
        // deciding.
        const bool l2_miss = !l2s_[activeCore_]->contains(event.line);
        const unsigned target =
            controller_->onRequest(event.line, l2_miss, event.pointer);
        if (target != activeCore_) {
            ++stats_.migrations;
            XMIG_TRACE_COUNTER("machine", "active_core", target);
            activeCore_ = target;
        }
    }

    XMIG_AUDIT(activeCore_ < config_.numCores,
               "active core %u of %u", activeCore_, config_.numCores);

    // The request is serviced by the L2 of the core that is active
    // after any migration: that is the point of distributing the
    // working-set.
    accessL2(event.line, is_store);

    if (is_store)
        broadcastStore(event.line);

    if constexpr (kAuditParanoid) {
        // Whole-machine coherence sweep (section 2.1's single-
        // modified-copy rule) is O(total L2 entries); amortize it
        // over the post-L1 event stream.
        if (++auditTick_ % 8192 == 0) {
            XMIG_EXPECT(countMultiModifiedLines() == 0,
                        "migration-mode coherence violated: a line "
                        "has multiple modified L2 copies");
        }
    }
}

void
MigrationMachine::accessL2(uint64_t line, bool is_store)
{
    ++stats_.l2Accesses;
    Cache &l2 = *l2s_[activeCore_];
    AccessOutcome out = l2.access(line, is_store);
    if (out.writeback) {
        ++stats_.l3Writebacks;
        writebackToL3(out.evictedLine);
    }
    if (out.hit) {
        CacheEntry *entry = l2.findEntry(line);
        if (entry && entry->prefetched) {
            entry->prefetched = false;
            ++stats_.prefetchUseful;
        }
        if (prefetcher_) // stride training sees hits too
            issuePrefetches(line, /*miss=*/false);
        return;
    }

    ++stats_.l2Misses;
    if (prefetcher_)
        issuePrefetches(line, /*miss=*/true);
    if (!out.filled)
        return; // WT store miss at L2 would not occur (L2 is WB/WA)

    // The miss was filled; find out where the data came from. A
    // modified remote copy is forwarded (L2-to-L2 miss) and written
    // back to L3 with its modified bit reset; otherwise the line
    // comes from L3. Either way the penalty class is the same
    // (section 2.1), but we count forwards separately.
    for (unsigned c = 0; c < config_.numCores; ++c) {
        if (c == activeCore_)
            continue;
        CacheEntry *remote = l2s_[c]->findEntry(line);
        if (remote && remote->modified) {
            remote->modified = false;
            ++stats_.l2ToL2Forwards;
            ++stats_.l3Writebacks; // simultaneous write-back to L3
            writebackToL3(line);
            return;                // at most one modified copy exists
        }
    }
    // No forwardable copy: the line comes from the L3.
    fetchFromL3(line);
}

void
MigrationMachine::issuePrefetches(uint64_t line, bool miss)
{
    prefetchCandidates_.clear();
    prefetcher_->onDemand(line, miss, prefetchCandidates_);
    Cache &l2 = *l2s_[activeCore_];
    for (uint64_t candidate : prefetchCandidates_) {
        if (l2.contains(candidate))
            continue;
        AccessOutcome out = l2.fill(candidate, false);
        if (out.writeback) {
            ++stats_.l3Writebacks;
            writebackToL3(out.evictedLine);
        }
        fetchFromL3(candidate);
        if (CacheEntry *entry = l2.findEntry(candidate)) {
            entry->prefetched = true;
            ++stats_.prefetchFills;
        }
    }
}

void
MigrationMachine::fetchFromL3(uint64_t line)
{
    if (!l3_)
        return; // perfect L3: always hits, nothing to track
    ++stats_.l3Accesses;
    AccessOutcome out = l3_->access(line, false);
    if (out.writeback)
        ++stats_.memoryWritebacks;
    if (!out.hit)
        ++stats_.l3Misses; // fetched from memory (and filled)
}

void
MigrationMachine::writebackToL3(uint64_t line)
{
    if (!l3_)
        return;
    // A write-back allocates in the L3 and marks the line dirty; a
    // dirty L3 eviction goes to memory.
    AccessOutcome out = l3_->access(line, true);
    if (out.writeback)
        ++stats_.memoryWritebacks;
}

void
MigrationMachine::broadcastStore(uint64_t line)
{
    // Update bus: the store value reaches every inactive copy, whose
    // modified bit is reset so that at most the active core's copy is
    // modified (section 2.1). Values are not modeled, only state.
    for (unsigned c = 0; c < config_.numCores; ++c) {
        if (c == activeCore_)
            continue;
        CacheEntry *copy = l2s_[c]->findEntry(line);
        if (copy) {
            copy->modified = false;
            ++stats_.updateBusStores;
        }
    }
}

void
MigrationMachine::resetStats()
{
    stats_ = {};
    for (auto &l2 : l2s_)
        l2->resetStats();
    if (l3_)
        l3_->resetStats();
}

uint64_t
MigrationMachine::countMultiModifiedLines() const
{
    // Collect modified lines per core and count collisions.
    std::unordered_map<uint64_t, unsigned> modified_copies;
    for (const auto &l2 : l2s_) {
        l2->tags().forEachValid([&](const CacheEntry &e) {
            if (e.modified)
                ++modified_copies[e.line];
        });
    }
    uint64_t bad = 0;
    for (const auto &[line, n] : modified_copies) {
        if (n > 1)
            ++bad;
    }
    return bad;
}

} // namespace xmig
