#include "multicore/machine.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/logging.hpp"

namespace xmig {

MigrationMachine::MigrationMachine(const MachineConfig &config)
    : config_(config)
{
    XMIG_ASSERT(config.numCores == 1 ||
                (config.numCores <= 64 &&
                 (config.numCores & (config.numCores - 1)) == 0),
                "numCores must be 1 or a power of two up to 64");

    L1FilterConfig l1c;
    l1c.il1Bytes = config.il1Bytes;
    l1c.dl1Bytes = config.dl1Bytes;
    l1c.lineBytes = config.lineBytes;
    l1c.fullyAssociative = false;
    l1c.ways = config.l1Ways;
    l1c.unifiedReadWrite = false; // write-through, non-write-allocate DL1
    // Plain new: the LineSink base is private, so the derived-to-base
    // conversion must happen here, in class scope, not in make_unique.
    l1_.reset(new L1Filter(l1c, *this));

    CacheConfig l2c;
    l2c.capacityBytes = config.l2Bytes;
    l2c.ways = config.l2Ways;
    l2c.lineBytes = config.lineBytes;
    l2c.write = WritePolicy::WriteBackAllocate;
    l2c.skewed = config.l2Skewed;
    for (unsigned c = 0; c < config.numCores; ++c) {
        l2c.seed = 11 + c;
        l2s_.push_back(std::make_unique<Cache>(l2c));
    }

    if (!config.faultPlan.empty()) {
        if constexpr (!kFaultEnabled) {
            XMIG_FATAL("a fault plan is armed but this build compiled "
                       "the fault hooks out; rebuild with "
                       "-DXMIG_FAULT=ON");
        }
        if (config.numCores > 1) {
            injector_ = std::make_unique<FaultInjector>(
                FaultPlan::parseOrFatal(config.faultPlan));
            busFaulty_ = injector_->armedFor(FaultSite::BusDrop);
        } else {
            XMIG_WARN("fault plan ignored on a single-core machine");
        }
    }

    if (config.numCores > 1) {
        MigrationControllerConfig cc = config.controller;
        cc.numCores = config.numCores;
        cc.faults = injector_.get();
        controller_ = std::make_unique<MigrationController>(cc);
    }

    if (config.prefetch.kind != PrefetchKind::None)
        prefetcher_ = std::make_unique<Prefetcher>(config.prefetch);

    if (config.sharedL3 != nullptr) {
        // xmig-arena: contend for a caller-owned cache; the private
        // l3Bytes geometry is irrelevant and must not also be built.
        l3view_ = config.sharedL3;
    } else if (config.l3Bytes > 0) {
        CacheConfig l3c;
        l3c.capacityBytes = config.l3Bytes;
        l3c.ways = config.l3Ways;
        l3c.lineBytes = config.lineBytes;
        l3c.write = WritePolicy::WriteBackAllocate;
        l3c.skewed = false;
        l3c.seed = 99;
        l3_ = std::make_unique<Cache>(l3c);
        l3view_ = l3_.get();
    }
}

void
MigrationMachine::access(const MemRef &ref)
{
    if constexpr (kFaultEnabled) {
        if (injector_) {
            injector_->tick();
            if (injector_->coreEventsPending())
                applyCoreEvents();
        }
    }
    ++stats_.refs;
    if (ref.isIfetch())
        ++stats_.instructions;
    XMIG_AUDIT(stats_.instructions <= stats_.refs,
               "instruction fetches (%llu) outran references (%llu)",
               (unsigned long long)stats_.instructions,
               (unsigned long long)stats_.refs);
    l1_->access(ref); // forwards post-L1 events to onLine()
}

void
MigrationMachine::accessBatch(const MemRef *refs, size_t n)
{
    if constexpr (kFaultEnabled) {
        if (injector_) {
            // Injector ticks, fault draws, and core hot-(un)plug
            // events are all defined per reference; replaying them at
            // chunk granularity would change every draw after the
            // first. Exact fallback.
            for (size_t i = 0; i < n; ++i) {
                // xmig-lint: allow(alloc-in-hot-loop) -- injector is
                // per-reference; exact fallback, cold path.
                access(refs[i]);
            }
            return;
        }
    }
    while (n > 0) {
        const size_t k = n < kBatchRefs ? n : kBatchRefs;
        const uint64_t base_refs = stats_.refs;
        const uint64_t base_instr = stats_.instructions;

        // Phase 1: the whole chunk through the L1 level in one loop,
        // which also tallies the instruction-fetch count at each
        // event. At most one event per reference, so the fixed
        // buffers fit.
        LineEvent events[kBatchRefs];
        uint32_t ev_ref[kBatchRefs];
        uint32_t ev_instr[kBatchRefs];
        uint32_t ifetches = 0;
        const size_t m =
            l1_->filterBatch(refs, k, events, ev_ref, ev_instr,
                             &ifetches);

        // Phase 2: the sparse post-L1 events, in reference order,
        // with the counters set to their exact scalar values first —
        // processLine() stamps trace/journal events with stats_.refs.
        for (size_t e = 0; e < m; ++e) {
            stats_.refs = base_refs + ev_ref[e] + 1;
            stats_.instructions = base_instr + ev_instr[e];
            processLine(events[e]);
        }
        stats_.refs = base_refs + k;
        stats_.instructions = base_instr + ifetches;
        XMIG_AUDIT(stats_.instructions <= stats_.refs,
                   "instruction fetches (%llu) outran references (%llu)",
                   (unsigned long long)stats_.instructions,
                   (unsigned long long)stats_.refs);
        refs += k;
        n -= k;
    }
}

void
MigrationMachine::attachJournal(obs::Journal *journal)
{
    journal_ = journal;
    if (controller_)
        controller_->attachJournal(journal);
}

void
MigrationMachine::applyCoreEvents()
{
    XMIG_ASSERT(injector_ && controller_,
                "core fault events with no injector or controller");
    coreEventScratch_.clear();
    injector_->drainCoreEvents(coreEventScratch_);
    for (const CoreFaultEvent &ev : coreEventScratch_) {
        if (ev.core >= config_.numCores) {
            XMIG_WARN("fault plan names core %u of a %u-core machine; "
                      "ignored", ev.core, config_.numCores);
            continue;
        }
        const uint64_t live_before = controller_->liveMask();
        if (!ev.online) {
            controller_->setCoreOffline(ev.core);
            if (controller_->liveMask() == live_before)
                continue; // refused (last live core) or already off
            ++stats_.coreOffEvents;
            // Abrupt unplug: the L2 (and any affinity-cache state the
            // controller retired with the resplit) is simply gone.
            // Modified lines whose only copy lived there are lost.
            const uint64_t lost = l2s_[ev.core]->invalidateAll();
            stats_.dirtyLinesLost += lost;
            XMIG_JOURNAL(journal_, obs::JournalKind::CoreOff,
                         obs::JournalCause::FaultForced,
                         static_cast<int64_t>(ev.core),
                         static_cast<int64_t>(lost));
            XMIG_TRACE("fault", "core_off",
                       {{"core", ev.core},
                        {"live", controller_->liveCores()}});
        } else {
            controller_->setCoreOnline(ev.core);
            if (controller_->liveMask() == live_before)
                continue;
            ++stats_.coreOnEvents;
            // The rejoining core's L2 was invalidated on unplug; it
            // refills on demand once execution migrates there.
            XMIG_JOURNAL(journal_, obs::JournalKind::CoreOn,
                         obs::JournalCause::FaultForced,
                         static_cast<int64_t>(ev.core));
            XMIG_TRACE("fault", "core_on",
                       {{"core", ev.core},
                        {"live", controller_->liveCores()}});
        }
        if (activeCore_ != controller_->activeCore()) {
            // Forced migration: the active core was unplugged.
            ++stats_.migrations;
            interMigrationGap_.record(stats_.refs - lastMigrationRef_);
            lastMigrationRef_ = stats_.refs;
            activeCore_ = controller_->activeCore();
            XMIG_TRACE_COUNTER("machine", "active_core", activeCore_);
        }
    }
}

void
MigrationMachine::onLine(const LineEvent &event)
{
    processLine(event);
}

void
MigrationMachine::processLine(const LineEvent &event)
{
    const bool is_store = event.type == RefType::Store;
    if (event.l1Miss)
        ++stats_.l1Misses;

    // The trace timeline advances in post-L1 references: every event
    // recorded below lands at this logical instant. The journal runs
    // on the same clock so report timelines and traces line up.
    XMIG_TRACE_CLOCK(stats_.refs);
    XMIG_JOURNAL_CLOCK(journal_, stats_.refs);

    CacheEntry *probe = nullptr;
    bool probed = false;
    if (controller_ && event.l1Miss) {
        // The controller monitors L1-miss requests. With L2 filtering
        // its transition filters move only when the request would
        // miss the *current* active core's L2, so probe before
        // deciding. The probe stays valid for the access below when
        // execution does not migrate (onRequest never touches L2s).
        probe = l2s_[activeCore_]->findEntry(event.line);
        probed = true;
        const unsigned target = controller_->onRequest(
            event.line, /*l2_miss=*/probe == nullptr, event.pointer);
        if (target != activeCore_) {
            ++stats_.migrations;
            interMigrationGap_.record(stats_.refs - lastMigrationRef_);
            lastMigrationRef_ = stats_.refs;
            XMIG_TRACE_COUNTER("machine", "active_core", target);
            activeCore_ = target;
            probe = nullptr; // probe was on the previous active core
            probed = false;
        }
    }

    XMIG_AUDIT(activeCore_ < config_.numCores,
               "active core %u of %u", activeCore_, config_.numCores);

    // The request is serviced by the L2 of the core that is active
    // after any migration: that is the point of distributing the
    // working-set.
    accessL2(event.line, is_store, probe, probed);

    if (is_store)
        broadcastStore(event.line);

    if constexpr (kFaultEnabled) {
        // Dropped update-bus broadcasts leave stale modified bits
        // behind; a periodic scrubber repairs them (self-healing).
        if (busFaulty_ && ++scrubTick_ % 4096 == 0)
            scrubCoherence();
    }

    if constexpr (kAuditParanoid) {
        // Whole-machine coherence sweep (section 2.1's single-
        // modified-copy rule) is O(total L2 entries); amortize it
        // over the post-L1 event stream. With update-bus loss armed
        // the invariant is *expected* to break between scrubs, so
        // the sweep stands down (extended disarm rule, xmig-iron).
        if (!busFaulty_ && ++auditTick_ % 8192 == 0) {
            XMIG_EXPECT(countMultiModifiedLines() == 0,
                        "migration-mode coherence violated: a line "
                        "has multiple modified L2 copies");
        }
    }
}

void
MigrationMachine::scrubCoherence()
{
    // Find lines with more than one modified copy and demote every
    // copy but one — prefer the active core's (freshest value under
    // the lost-broadcast model), else the lowest core's. Demoted
    // copies are written back to L3, as hardware scrubbers do.
    const uint64_t repairs_before = stats_.coherenceRepairs;
    std::unordered_map<uint64_t, std::vector<unsigned>> modified_at;
    for (unsigned c = 0; c < config_.numCores; ++c) {
        l2s_[c]->tags().forEachValid([&](const CacheEntry &e) {
            if (e.modified)
                modified_at[e.line].push_back(c);
        });
    }
    // Demote in ascending line order, not hash-table order: each
    // demotion writes back to L3 and touches its LRU, so the scrub
    // order is architecturally visible. Sorting keeps the repair
    // sequence a pure function of cache contents across standard
    // libraries (xmig-sentinel unordered-output).
    std::vector<uint64_t> scrub_lines;
    scrub_lines.reserve(modified_at.size());
    // xmig-lint: allow(unordered-output) -- order-free: collects keys
    // into scrub_lines, which is sorted before anything observable.
    for (const auto &[line, cores] : modified_at) {
        if (cores.size() >= 2)
            scrub_lines.push_back(line);
    }
    std::sort(scrub_lines.begin(), scrub_lines.end());
    for (const uint64_t line : scrub_lines) {
        const std::vector<unsigned> &cores = modified_at[line];
        const bool active_has =
            std::find(cores.begin(), cores.end(), activeCore_) !=
            cores.end();
        const unsigned keeper = active_has ? activeCore_ : cores[0];
        for (unsigned c : cores) {
            if (c == keeper)
                continue;
            CacheEntry *entry = l2s_[c]->findEntry(line);
            XMIG_ASSERT(entry != nullptr && entry->modified,
                        "scrub lost track of line %llx on core %u",
                        (unsigned long long)line, c);
            entry->modified = false;
            ++stats_.l3Writebacks;
            writebackToL3(line);
            ++stats_.coherenceRepairs;
        }
    }
    if (stats_.coherenceRepairs > repairs_before) {
        XMIG_JOURNAL(journal_, obs::JournalKind::CoherenceScrub,
                     obs::JournalCause::FaultForced,
                     static_cast<int64_t>(stats_.coherenceRepairs -
                                          repairs_before),
                     static_cast<int64_t>(scrubTick_));
    }
    if (stats_.coherenceRepairs > 0)
        XMIG_TRACE_COUNTER("fault", "coherence_repairs",
                           stats_.coherenceRepairs);
}

void
MigrationMachine::accessL2(uint64_t line, bool is_store,
                           CacheEntry *probe, bool probed)
{
    ++stats_.l2Accesses;
    XMIG_AUDIT(stats_.l2Misses < stats_.l2Accesses,
               "L2 misses (%llu) outran accesses (%llu)",
               (unsigned long long)stats_.l2Misses,
               (unsigned long long)stats_.l2Accesses);
    Cache &l2 = *l2s_[activeCore_];
    AccessOutcome out = probed ? l2.accessProbed(line, is_store, probe)
                               : l2.access(line, is_store);
    if (out.writeback) {
        ++stats_.l3Writebacks;
        writebackToL3(out.evictedLine);
    }
    if (out.hit) {
        CacheEntry *entry = out.entry;
        if (entry && entry->prefetched) {
            entry->prefetched = false;
            ++stats_.prefetchUseful;
        }
        if (prefetcher_) // stride training sees hits too
            issuePrefetches(line, /*miss=*/false);
        return;
    }

    ++stats_.l2Misses;
    if (prefetcher_)
        issuePrefetches(line, /*miss=*/true);
    if (!out.filled)
        return; // WT store miss at L2 would not occur (L2 is WB/WA)

    // The miss was filled; find out where the data came from. A
    // modified remote copy is forwarded (L2-to-L2 miss) and written
    // back to L3 with its modified bit reset; otherwise the line
    // comes from L3. Either way the penalty class is the same
    // (section 2.1), but we count forwards separately.
    for (unsigned c = 0; c < config_.numCores; ++c) {
        if (c == activeCore_)
            continue;
        CacheEntry *remote = l2s_[c]->findEntry(line);
        if (remote && remote->modified) {
            remote->modified = false;
            ++stats_.l2ToL2Forwards;
            ++stats_.l3Writebacks; // simultaneous write-back to L3
            writebackToL3(line);
            return;                // at most one modified copy exists
        }
    }
    // No forwardable copy: the line comes from the L3.
    fetchFromL3(line);
}

void
MigrationMachine::issuePrefetches(uint64_t line, bool miss)
{
    XMIG_ASSERT(prefetcher_ != nullptr,
                "prefetch issue with no prefetcher configured");
    prefetchCandidates_.clear();
    prefetcher_->onDemand(line, miss, prefetchCandidates_);
    Cache &l2 = *l2s_[activeCore_];
    for (uint64_t candidate : prefetchCandidates_) {
        if (l2.contains(candidate))
            continue;
        AccessOutcome out = l2.fill(candidate, false);
        if (out.writeback) {
            ++stats_.l3Writebacks;
            writebackToL3(out.evictedLine);
        }
        fetchFromL3(candidate);
        if (out.entry) {
            out.entry->prefetched = true;
            ++stats_.prefetchFills;
        }
    }
}

void
MigrationMachine::fetchFromL3(uint64_t line)
{
    if (!l3view_)
        return; // perfect L3: always hits, nothing to track
    ++stats_.l3Accesses;
    AccessOutcome out = l3view_->access(line, false);
    if (out.writeback)
        ++stats_.memoryWritebacks;
    if (!out.hit)
        ++stats_.l3Misses; // fetched from memory (and filled)
    XMIG_AUDIT(stats_.l3Misses <= stats_.l3Accesses,
               "L3 misses (%llu) outran accesses (%llu)",
               (unsigned long long)stats_.l3Misses,
               (unsigned long long)stats_.l3Accesses);
}

void
MigrationMachine::writebackToL3(uint64_t line)
{
    // Callers count the write-back before routing it here, so a zero
    // counter means an unaccounted architectural event.
    XMIG_AUDIT(stats_.l3Writebacks > 0,
               "write-back of line %llx reached L3 uncounted",
               (unsigned long long)line);
    if (!l3view_)
        return;
    // A write-back allocates in the L3 and marks the line dirty; a
    // dirty L3 eviction goes to memory.
    AccessOutcome out = l3view_->access(line, true);
    if (out.writeback)
        ++stats_.memoryWritebacks;
}

void
MigrationMachine::broadcastStore(uint64_t line)
{
    // Only the active core drives the update bus, and it must be live.
    XMIG_AUDIT(!controller_ ||
                   (controller_->liveMask() >> activeCore_ & 1) != 0,
               "store broadcast from dead core %u (live mask %llx)",
               activeCore_,
               (unsigned long long)(controller_ ? controller_->liveMask()
                                                : 0));
    if constexpr (kFaultEnabled) {
        // A dropped broadcast loses the whole update: inactive copies
        // keep both their stale value and their stale modified bit.
        if (busFaulty_ && injector_->draw(FaultSite::BusDrop)) {
            ++stats_.busDrops;
            return;
        }
    }
    // Update bus: the store value reaches every inactive copy, whose
    // modified bit is reset so that at most the active core's copy is
    // modified (section 2.1). Values are not modeled, only state.
    for (unsigned c = 0; c < config_.numCores; ++c) {
        if (c == activeCore_)
            continue;
        CacheEntry *copy = l2s_[c]->findEntry(line);
        if (copy) {
            copy->modified = false;
            ++stats_.updateBusStores;
        }
    }
}

void
MigrationMachine::resetStats()
{
    stats_ = {};
    for (auto &l2 : l2s_)
        l2->resetStats();
    if (l3_)
        l3_->resetStats();
}

namespace {

std::vector<MachineCheckpoint::LineState>
captureCache(const Cache &cache)
{
    std::vector<MachineCheckpoint::LineState> out;
    cache.tags().forEachValid([&](const CacheEntry &e) {
        out.push_back({e.line, e.modified});
    });
    // forEachValid order depends on the tag backing; sort for a
    // deterministic record (and deterministic refill order below).
    std::sort(out.begin(), out.end(),
              [](const MachineCheckpoint::LineState &a,
                 const MachineCheckpoint::LineState &b) {
                  return a.line < b.line;
              });
    return out;
}

void
refillCache(Cache &cache, const std::vector<MachineCheckpoint::LineState> &lines)
{
    cache.invalidateAll();
    for (const MachineCheckpoint::LineState &ls : lines)
        cache.fill(ls.line, ls.modified);
}

} // namespace

MachineCheckpoint
MigrationMachine::checkpoint() const
{
    MachineCheckpoint c;
    c.stats = stats_;
    c.activeCore = activeCore_;
    c.l2Contents.reserve(l2s_.size());
    for (const auto &l2 : l2s_)
        c.l2Contents.push_back(captureCache(*l2));
    if (l3_)
        c.l3Contents = captureCache(*l3_);
    if (controller_) {
        c.hasController = true;
        c.controller = controller_->checkpoint();
    }
    return c;
}

void
MigrationMachine::restore(const MachineCheckpoint &ckpt)
{
    XMIG_ASSERT(ckpt.l2Contents.size() == l2s_.size(),
                "checkpoint has %zu L2s, machine has %zu",
                ckpt.l2Contents.size(), l2s_.size());
    XMIG_ASSERT(ckpt.hasController == (controller_ != nullptr),
                "checkpoint/machine controller presence mismatch");
    stats_ = ckpt.stats;
    activeCore_ = ckpt.activeCore;
    for (size_t c = 0; c < l2s_.size(); ++c)
        refillCache(*l2s_[c], ckpt.l2Contents[c]);
    if (l3_)
        refillCache(*l3_, ckpt.l3Contents);
    if (controller_) {
        controller_->restore(ckpt.controller);
        XMIG_ASSERT(controller_->activeCore() == activeCore_,
                    "restored machine/controller active-core desync: "
                    "%u vs %u", activeCore_, controller_->activeCore());
    }
}

uint64_t
MigrationMachine::countMultiModifiedLines() const
{
    // Collect modified lines per core and count collisions.
    std::unordered_map<uint64_t, unsigned> modified_copies;
    for (const auto &l2 : l2s_) {
        l2->tags().forEachValid([&](const CacheEntry &e) {
            if (e.modified)
                ++modified_copies[e.line];
        });
    }
    uint64_t bad = 0;
    // xmig-lint: allow(unordered-output) -- order-free: pure count,
    // the same whatever order the table is walked in.
    for (const auto &[line, n] : modified_copies) {
        if (n > 1)
            ++bad;
    }
    return bad;
}

} // namespace xmig
