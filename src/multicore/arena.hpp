/**
 * @file
 * xmig-arena: a multi-session machine running N independent programs
 * on one simulated chip — the missing half of the paper's Figure 1.
 *
 * Every earlier experiment in this repository runs *one* program,
 * either pinned (baseline) or roaming over the aggregate L2
 * (migration mode). Figure 1's comparison needs the other half:
 * *throughput mode*, N programs resident on N cores, each with a
 * private L2, contending for the shared L3. The Arena models both
 * sides with the same machinery:
 *
 *  - A `Session` per tenant: the tenant's push-model Workload runs
 *    on a dedicated producer thread feeding a bounded BatchQueue
 *    (the same pull-inversion xmig-bolt uses for pipelined feeding),
 *    and the arena's single consumer thread pops reference chunks in
 *    whatever interleave the TenantScheduler dictates. Arbitration
 *    is therefore a pure function of the schedule — byte-identical
 *    at any `--jobs`, regardless of producer-thread timing.
 *  - Migration mode: each tenant owns a numCores-way MigrationMachine
 *    (its own affinity controller) and tenants time-share the chip;
 *    the makespan is the *sum* of per-turn stall-model cycles.
 *  - Throughput mode: each tenant owns a pinned single-core machine;
 *    residents advance concurrently in simulated time and the
 *    makespan is the *max* of per-slot completion times. Tenants
 *    beyond the resident limit are admitted when a slot frees.
 *  - Both modes share a finite L3 (MachineConfig::sharedL3), either
 *    one unpartitioned cache or LFOC-style way clusters sized from a
 *    deterministic solo probe of each tenant (tenant_sched.hpp).
 *
 * Per-tenant address spaces are disjoint (a high-bit tenant offset on
 * every reference), so sharing is contention for capacity, exactly
 * as in the paper's throughput scenario — not data sharing.
 *
 * Observability: per-tenant turn-latency histograms and counters
 * register into xmig-scope (p50/p95/p99 come out of the standard
 * exporters), and scheduling decisions journal into xmig-lens under
 * the `tenant` cause tag.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "multicore/cost_model.hpp"
#include "multicore/machine.hpp"
#include "multicore/tenant_sched.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace xmig {

/** Which half of Figure 1 the arena models. */
enum class ArenaMode : uint8_t
{
    Migration,  ///< tenants time-share the chip, each roams all cores
    Throughput, ///< tenants space-share the chip, one pinned core each
};

const char *arenaModeName(ArenaMode mode);

/** One tenant program. */
struct TenantSpec
{
    std::string benchmark;        ///< workloads/registry.hpp name
    uint64_t instructions = 200'000;
    uint64_t seed = 42;
};

/** Stall-model timing for the arena (extends cost_model.hpp). */
struct ArenaTiming
{
    TimingParams stall;       ///< baseCpi / l3HitPenalty / pmig
    double memPenalty = 200.0; ///< extra cycles per L3 miss
};

struct ArenaConfig
{
    ArenaMode mode = ArenaMode::Throughput;
    std::vector<TenantSpec> tenants;

    /**
     * Per-tenant machine template. numCores is forced by the mode
     * (Migration keeps it, Throughput pins to 1); l3Bytes/sharedL3
     * are overridden by the arena's shared L3.
     */
    MachineConfig machine;

    uint64_t sharedL3Bytes = 1 * 1024 * 1024;
    unsigned sharedL3Ways = 16;
    L3Policy l3Policy = L3Policy::Unpartitioned;

    TenantSchedConfig sched;
    ArenaTiming timing;

    /** Solo-probe budget per tenant (appetite + solo baseline). */
    uint64_t probeInstructions = 30'000;

    /** Producer/consumer queue depth per session, in chunks. */
    size_t queueSlots = 8;
};

/** Per-tenant outcome. */
struct TenantResult
{
    std::string benchmark;
    uint64_t instructions = 0;
    uint64_t refs = 0;
    uint64_t l2Misses = 0;
    uint64_t l3Accesses = 0;
    uint64_t l3Misses = 0;
    uint64_t migrations = 0;
    uint64_t turns = 0;
    double cycles = 0;     ///< stall-model cycles under contention
    double soloCycles = 0; ///< probe-extrapolated solo cycles
    double slowdown = 1;   ///< cycles / soloCycles
    double p50TurnCycles = 0;
    double p95TurnCycles = 0;
    double p99TurnCycles = 0;
    unsigned cluster = 0;     ///< shared-L3 cluster index
    unsigned clusterWays = 0; ///< ways in that cluster
};

/** Whole-arena outcome. */
struct ArenaResult
{
    std::vector<TenantResult> tenants;
    double makespanCycles = 0;
    double aggregateIpc = 0;    ///< total instructions / makespan
    double weightedSpeedup = 0; ///< sum of soloCycles / cycles
    double unfairness = 1;      ///< max slowdown / min slowdown
    double jainFairness = 1;    ///< Jain index over 1/slowdown
    uint64_t sharedL3Accesses = 0;
    uint64_t sharedL3Misses = 0;
};

/**
 * N-tenant machine. Construction probes the tenants, carves the
 * shared L3, builds the per-tenant machines and starts the producer
 * threads; run() drives the whole schedule to completion on the
 * calling thread. One-shot: run() may be called exactly once.
 */
class TenantArena
{
  public:
    /** Per-tenant high-bit address offset (disjoint tenant heaps). */
    static constexpr uint64_t kTenantAddressStride = 1ULL << 40;

    explicit TenantArena(ArenaConfig config);
    ~TenantArena();

    TenantArena(const TenantArena &) = delete;
    TenantArena &operator=(const TenantArena &) = delete;

    /** Attach the xmig-lens journal for tenant scheduling events. */
    void attachJournal(obs::Journal *journal);

    /**
     * Register arena metrics under `prefix` (xmig-scope): per-tenant
     * machine counters (`<prefix>.tenant<i>.*`), per-tenant turn
     * histograms (`<prefix>.tenant<i>.turn_cycles`), and the shared
     * L3 cluster caches (`<prefix>.l3.cluster<k>.*`).
     */
    void registerMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const;

    /** Solo-probe measurements taken at construction. */
    const std::vector<TenantProbe> &probes() const { return probes_; }

    /** Shared-L3 way clusters chosen at construction. */
    const std::vector<ClusterSpec> &clusters() const
    {
        return clusters_;
    }

    /** Drive every tenant to completion; callable exactly once. */
    ArenaResult run();

  private:
    struct Session;

    void probeTenants();
    void buildSharedL3();
    void buildSessions();
    double runMigrationSchedule(TenantScheduler &sched);
    double runThroughputSchedule(TenantScheduler &sched);
    uint64_t feedQuantum(Session &session, uint64_t budget);
    void runTurn(TenantScheduler &sched, unsigned tenant,
                 double *makespan, bool serial_time);
    void retireTenant(TenantScheduler &sched, unsigned tenant,
                      double now_cycles);
    double turnCost(const MachineStats &before,
                    const MachineStats &after) const;

    ArenaConfig config_;
    std::vector<TenantProbe> probes_;
    std::vector<ClusterSpec> clusters_;
    std::vector<std::unique_ptr<Cache>> sharedL3_; ///< one per cluster
    std::vector<std::unique_ptr<Session>> sessions_;
    obs::Journal *journal_ = nullptr;
    uint64_t refClock_ = 0; ///< total refs fed (journal timeline)
    bool ran_ = false;
};

} // namespace xmig
