#include "multicore/timing.hpp"

namespace xmig {

uint64_t
MigrationProtocolModel::simulateMigration(Rng &rng) const
{
    // When the interrupt arrives, X1 marks its youngest fetched
    // instruction as the transition instruction T and stops fetching;
    // X2 receives the transition PC and starts fetching, its issue
    // stage blocked until T retires.
    const unsigned inflight = inflightInstructions();
    const unsigned width = params_.retireWidth;

    // X1 drains `inflight` instructions at `width` per cycle. If one
    // of them mispredicts, everything younger is flushed (shortening
    // the drain), the branch becomes the new transition point, and
    // X2 is flushed and re-steered — losing the fetch progress it
    // had made and re-paying the transition-PC transfer.
    unsigned to_drain = inflight;
    uint64_t drain_cycles = 0;
    uint64_t resteer_cycles = 0;
    // Walk the drain in retirement order.
    unsigned drained = 0;
    while (drained < to_drain) {
        ++drain_cycles;
        for (unsigned slot = 0; slot < width && drained < to_drain;
             ++slot) {
            ++drained;
            if (rng.chance(params_.mispredictPerInstr)) {
                // This branch mispredicted: instructions after it in
                // X1 are flushed (drain ends at the branch), X2
                // restarts from the new transition PC.
                to_drain = drained;
                resteer_cycles += params_.updateBusCycles;
                break;
            }
        }
    }

    // The drain overlaps with X2's fetch, so it does not add to the
    // paper's penalty definition (retirement of T to retirement of
    // its successor) except through re-steers. After T retires: the
    // broadcast of T unlocks X2's issue stage, and T's successor
    // then flows from issue to retirement.
    (void)drain_cycles;
    return params_.updateBusCycles + resteer_cycles +
           params_.issueToRetireStages;
}

double
MigrationProtocolModel::expectedPenaltyCycles(uint64_t samples,
                                              uint64_t seed) const
{
    Rng rng(seed);
    uint64_t total = 0;
    for (uint64_t i = 0; i < samples; ++i)
        total += simulateMigration(rng);
    return static_cast<double>(total) / static_cast<double>(samples);
}

} // namespace xmig
