/**
 * @file
 * xmig-arena tenant scheduler: admission, co-location scoring, turn
 * arbitration, and shared-L3 partitioning policies.
 *
 * The paper's Figure 1 frames the choice this chip faces: run one
 * program in *migration mode* over the aggregate L2, or pack N
 * programs in *throughput mode* and let them contend for the shared
 * cache. Either way some component must decide which programs run
 * together and how the shared level is carved up. This file supplies
 * that component, with policies grounded in the follow-on literature
 * (PAPERS.md): LFOC-style fairness-oriented way-clustering — classify
 * tenants by cache appetite from a solo probe, jail the thrashing
 * ones in a small cluster, give sensitive ones protected clusters —
 * and a co-location order in the spirit of Hassidim/Kaplan/Tuval's
 * joint cache-partition + job-assignment formulation (pair
 * cache-hungry tenants with light ones rather than with each other).
 *
 * Everything here is deterministic: decisions are pure functions of
 * the probe measurements and the configuration, with index-order
 * tie-breaks, so an arena run is byte-identical at any --jobs.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xmig {

/** Solo-probe measurement of one tenant's cache appetite. */
struct TenantProbe
{
    uint64_t instructions = 0;
    uint64_t refs = 0;
    uint64_t l2Misses = 0; ///< misses out of the private L2, alone
    uint64_t l3Misses = 0; ///< misses out of the whole L3, alone
    double soloCycles = 0; ///< stall-model cycles for the probe run

    /** L2 misses per thousand instructions — the appetite score. */
    double
    missesPerKiloInstr() const
    {
        if (instructions == 0)
            return 0.0;
        return 1000.0 * static_cast<double>(l2Misses) /
               static_cast<double>(instructions);
    }
};

/** LFOC-style appetite classes (light / sensitive / thrashing). */
enum class CacheAppetite : uint8_t
{
    Light,     ///< working set fits; indifferent to L3 share
    Sensitive, ///< benefits from protected L3 space
    Thrashing, ///< streams through any share it is given
};

const char *cacheAppetiteName(CacheAppetite appetite);

/**
 * Classify a probe by its miss density: below `light_mpki` → Light,
 * above `thrash_mpki` → Thrashing, Sensitive in between.
 */
CacheAppetite classifyAppetite(const TenantProbe &probe,
                               double light_mpki, double thrash_mpki);

/** Shared-L3 capacity policies swept by bench_figure1. */
enum class L3Policy : uint8_t
{
    Unpartitioned, ///< one cache, free-for-all contention
    WayClustered,  ///< LFOC-style way clusters per appetite class
};

const char *l3PolicyName(L3Policy policy);

/** One way-cluster of the shared L3 and the tenants mapped to it. */
struct ClusterSpec
{
    unsigned ways = 0;
    std::vector<unsigned> tenants; ///< tenant indices, ascending
};

/**
 * Partition `total_ways` L3 ways over the probed tenants,
 * LFOC-style: thrashing tenants share one minimal cluster (they
 * cannot use more), light tenants share a small cluster, and the
 * remaining ways are split between sensitive tenants proportionally
 * to their appetite. Always returns at least one cluster covering
 * every tenant; a single-class population degenerates to one cluster
 * of all ways (== unpartitioned).
 */
std::vector<ClusterSpec>
clusterTenants(const std::vector<TenantProbe> &probes,
               unsigned total_ways, double light_mpki = 1.0,
               double thrash_mpki = 30.0);

/** Turn-arbitration policies. */
enum class SchedPolicy : uint8_t
{
    RoundRobin,        ///< equal quanta, fixed cyclic order
    DeficitRoundRobin, ///< weighted quanta with deficit carry-over
};

const char *schedPolicyName(SchedPolicy policy);

/** Scheduler configuration. */
struct TenantSchedConfig
{
    SchedPolicy policy = SchedPolicy::RoundRobin;

    /** Core slots: tenants resident at once (rest wait to be admitted). */
    unsigned maxResident = 4;

    /** References granted per turn (DRR: per unit of weight). */
    uint64_t quantumRefs = 4096;

    /** DRR weights, indexed by tenant; missing entries default to 1. */
    std::vector<uint32_t> weights;
};

/**
 * Admission + turn arbitration over N tenants.
 *
 * Admission order is the co-location order: tenants sorted by
 * appetite are admitted heaviest-first alternating with lightest-
 * first, so every resident mix pairs cache-hungry tenants with light
 * co-runners instead of with each other. Turns cycle over residents
 * in admission order; DeficitRoundRobin accumulates quantum * weight
 * into a deficit each cycle and grants the whole deficit as the turn
 * budget.
 */
class TenantScheduler
{
  public:
    static constexpr unsigned kNone = ~0u;

    TenantScheduler(TenantSchedConfig config,
                    const std::vector<TenantProbe> &probes);

    /** Tenants not yet admitted. */
    size_t waitingCount() const { return waiting_.size(); }
    /** Admitted, unfinished tenants. */
    size_t residentCount() const { return residents_.size(); }
    bool allFinished() const;

    /**
     * Admit the next tenant in co-location order, if a slot is free.
     * Returns its index, or kNone when none waits or no slot is free.
     */
    unsigned admitNext();

    /** Co-location score used for the admission order (mpki). */
    double colocationScore(unsigned tenant) const;

    /**
     * Resident tenant owning the next turn, or kNone when none are
     * resident. Cycles in admission order; a fresh admission enters
     * the rotation after the current position.
     */
    unsigned nextTurn();

    /** Reference budget for the turn just granted to `tenant`. */
    uint64_t turnBudget(unsigned tenant) const;

    /** Account a finished turn (DRR consumes the used deficit). */
    void onTurnEnd(unsigned tenant, uint64_t refs_used);

    /** Retire `tenant`: frees its slot; admits nothing by itself. */
    void onFinish(unsigned tenant);

    /** Total turns granted so far (scheduler-level accounting). */
    uint64_t turnsGranted() const { return turnsGranted_; }

  private:
    uint32_t weightOf(unsigned tenant) const;

    TenantSchedConfig config_;
    std::vector<double> scores_;      ///< mpki per tenant
    std::vector<unsigned> waiting_;   ///< co-location order, front next
    std::vector<unsigned> residents_; ///< admission order
    std::vector<uint64_t> deficits_;  ///< per tenant, DRR only
    std::vector<bool> finished_;
    size_t rrCursor_ = 0;
    uint64_t turnsGranted_ = 0;
};

/**
 * Unfairness of a set of per-tenant slowdowns: max/min (1.0 =
 * perfectly fair). Empty or non-positive inputs yield 1.0.
 */
double unfairness(const std::vector<double> &slowdowns);

/**
 * Jain fairness index over normalized progress rates (1/slowdown):
 * (sum x)^2 / (n * sum x^2), in (0, 1], 1.0 = perfectly fair.
 */
double jainFairnessIndex(const std::vector<double> &slowdowns);

} // namespace xmig
