#include "multicore/arena.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "mem/trace.hpp"
#include "sim/runner/batch_queue.hpp"
#include "util/contracts.hpp"
#include "workloads/registry.hpp"

namespace xmig {

namespace {

/** Thrown by the feed sink when the consumer cancels the stream. */
struct StreamCancelled
{
};

/**
 * Producer-side sink: offsets every reference into the tenant's
 * private address range and hands full chunks to the session queue.
 * A failed push means the arena abandoned the stream; the exception
 * unwinds out of Workload::run so the producer thread can exit.
 */
class TenantFeedSink : public RefSink
{
  public:
    TenantFeedSink(BatchQueue &queue, uint64_t address_offset)
        : queue_(queue), offset_(address_offset)
    {
    }

    void
    access(const MemRef &ref) override
    {
        MemRef shifted = ref;
        shifted.addr += offset_;
        chunk_.refs[chunk_.count++] = shifted;
        if (chunk_.count == BatchQueue::kChunkRefs)
            handOff();
    }

    /** Push the trailing partial chunk, if any. */
    void
    flush()
    {
        if (chunk_.count > 0)
            handOff();
    }

  private:
    void
    handOff()
    {
        if (!queue_.push(chunk_))
            throw StreamCancelled{};
        chunk_.count = 0;
    }

    BatchQueue &queue_;
    uint64_t offset_;
    BatchQueue::Chunk chunk_;
};

/**
 * Probe-side sink: offsets references straight into a machine, and
 * resets the machine's counters once `warmup_instructions` have
 * executed so the probe measures steady-state behavior (cold
 * compulsory misses would otherwise dominate a short probe and
 * misclassify every tenant as cache-hungry).
 */
class ProbeSink : public RefSink
{
  public:
    ProbeSink(MigrationMachine &machine, uint64_t address_offset,
              uint64_t warmup_instructions)
        : machine_(machine),
          offset_(address_offset),
          warmup_(warmup_instructions)
    {
    }

    void
    access(const MemRef &ref) override
    {
        MemRef shifted = ref;
        shifted.addr += offset_;
        machine_.access(shifted);
        if (!warmedUp_ &&
            machine_.stats().instructions >= warmup_) {
            machine_.resetStats();
            warmedUp_ = true;
        }
    }

  private:
    MigrationMachine &machine_;
    uint64_t offset_;
    uint64_t warmup_;
    bool warmedUp_ = false;
};

} // namespace

const char *
arenaModeName(ArenaMode mode)
{
    switch (mode) {
      case ArenaMode::Migration:
        return "migration";
      case ArenaMode::Throughput:
        return "throughput";
    }
    return "unknown";
}

/** One tenant: machine + pull-inverted reference stream. */
struct TenantArena::Session
{
    unsigned tenant = 0;
    TenantSpec spec;
    unsigned cluster = 0;
    std::unique_ptr<MigrationMachine> machine;
    BatchQueue queue;
    std::thread producer;
    BatchQueue::Chunk pending;
    uint32_t pendingPos = 0;
    bool streamDone = false; ///< queue closed and drained
    bool admitted = false;
    obs::Histogram turnCycles;
    double cycles = 0;      ///< accumulated stall-model cycles
    double startCycles = 0; ///< throughput mode: slot start offset
    uint64_t turns = 0;

    explicit Session(size_t queue_slots) : queue(queue_slots) {}

    /** All references consumed (stream drained past the last chunk). */
    bool
    drained() const
    {
        return streamDone && pendingPos >= pending.count;
    }
};

TenantArena::TenantArena(ArenaConfig config) : config_(std::move(config))
{
    XMIG_ASSERT(!config_.tenants.empty(),
                "an arena needs at least one tenant");
    XMIG_ASSERT(config_.sharedL3Bytes > 0 && config_.sharedL3Ways > 0,
                "arena shared L3 must be finite (got %llu bytes)",
                (unsigned long long)config_.sharedL3Bytes);
    XMIG_ASSERT(config_.machine.faultPlan.empty(),
                "fault plans are per-machine; arena tenants do not "
                "support them yet");
    probeTenants();
    buildSharedL3();
    buildSessions();
}

TenantArena::~TenantArena()
{
    for (auto &session : sessions_) {
        // Unblock a producer mid-push (run() never reached its
        // stream, or an exception unwound the schedule), then join.
        session->queue.cancel();
        if (session->producer.joinable())
            session->producer.join();
    }
}

void
TenantArena::attachJournal(obs::Journal *journal)
{
    journal_ = journal;
}

void
TenantArena::probeTenants()
{
    // Solo baseline: each tenant runs alone for a short, fixed budget
    // on a machine with the *whole* shared L3 to itself. The probe
    // yields the appetite score for clustering/co-location and the
    // per-instruction solo cost that slowdowns are measured against.
    probes_.reserve(config_.tenants.size());
    for (size_t i = 0; i < config_.tenants.size(); ++i) {
        const TenantSpec &spec = config_.tenants[i];
        MachineConfig mc = config_.machine;
        mc.numCores = config_.mode == ArenaMode::Migration
                          ? config_.machine.numCores
                          : 1;
        mc.sharedL3 = nullptr;
        mc.l3Bytes = config_.sharedL3Bytes;
        mc.l3Ways = config_.sharedL3Ways;
        MigrationMachine machine(mc);
        ProbeSink sink(machine,
                       static_cast<uint64_t>(i) *
                           kTenantAddressStride,
                       config_.probeInstructions / 2);
        std::unique_ptr<Workload> workload =
            makeWorkload(spec.benchmark);
        workload->run(sink, config_.probeInstructions, spec.seed);
        const MachineStats &s = machine.stats();
        TenantProbe probe;
        probe.instructions = s.instructions;
        probe.refs = s.refs;
        probe.l2Misses = s.l2Misses;
        probe.l3Misses = s.l3Misses;
        probe.soloCycles = turnCost(MachineStats{}, s);
        XMIG_AUDIT(probe.instructions > 0,
                   "tenant %zu probe executed no instructions", i);
        probes_.push_back(probe);
    }
}

void
TenantArena::buildSharedL3()
{
    if (config_.l3Policy == L3Policy::WayClustered) {
        clusters_ = clusterTenants(probes_, config_.sharedL3Ways);
    } else {
        ClusterSpec all;
        all.ways = config_.sharedL3Ways;
        for (unsigned i = 0; i < probes_.size(); ++i)
            all.tenants.push_back(i);
        clusters_ = {all};
    }
    XMIG_ASSERT(!clusters_.empty(), "L3 clustering returned nothing");
    const uint64_t bytesPerWay =
        config_.sharedL3Bytes / config_.sharedL3Ways;
    for (const ClusterSpec &cluster : clusters_) {
        CacheConfig c;
        c.capacityBytes =
            std::max<uint64_t>(bytesPerWay * cluster.ways,
                               config_.machine.lineBytes);
        c.ways = std::max(1u, cluster.ways);
        c.lineBytes = config_.machine.lineBytes;
        c.write = WritePolicy::WriteBackAllocate;
        c.skewed = false;
        c.seed = 99;
        sharedL3_.push_back(std::make_unique<Cache>(c));
    }
}

void
TenantArena::buildSessions()
{
    sessions_.reserve(config_.tenants.size());
    for (size_t i = 0; i < config_.tenants.size(); ++i) {
        auto session = std::make_unique<Session>(config_.queueSlots);
        session->tenant = static_cast<unsigned>(i);
        session->spec = config_.tenants[i];
        for (size_t k = 0; k < clusters_.size(); ++k) {
            const auto &members = clusters_[k].tenants;
            if (std::find(members.begin(), members.end(),
                          static_cast<unsigned>(i)) != members.end())
                session->cluster = static_cast<unsigned>(k);
        }
        MachineConfig mc = config_.machine;
        mc.numCores = config_.mode == ArenaMode::Migration
                          ? config_.machine.numCores
                          : 1;
        mc.l3Bytes = 0;
        mc.sharedL3 = sharedL3_[session->cluster].get();
        session->machine = std::make_unique<MigrationMachine>(mc);
        XMIG_ASSERT(session->machine->sharesL3(),
                    "tenant %zu machine did not adopt the shared L3",
                    i);
        sessions_.push_back(std::move(session));
    }
    // Producers start only after every session exists: construction
    // order stays deterministic and nothing races the probe phase.
    for (auto &sessionPtr : sessions_) {
        Session &session = *sessionPtr;
        const uint64_t offset =
            static_cast<uint64_t>(session.tenant) *
            kTenantAddressStride;
        session.producer = std::thread([&session, offset] {
            try {
                TenantFeedSink sink(session.queue, offset);
                std::unique_ptr<Workload> workload =
                    makeWorkload(session.spec.benchmark);
                workload->run(sink, session.spec.instructions,
                              session.spec.seed);
                sink.flush();
            } catch (const StreamCancelled &) {
                // Consumer abandoned the stream; just exit.
            }
            session.queue.close();
        });
    }
}

double
TenantArena::turnCost(const MachineStats &before,
                const MachineStats &after) const
{
    XMIG_AUDIT(after.refs >= before.refs &&
                   after.instructions >= before.instructions,
               "machine counters ran backwards across a turn");
    const double cycles = estimatedCycles(
        after.instructions - before.instructions,
        after.l2Misses - before.l2Misses,
        after.migrations - before.migrations,
        config_.timing.stall);
    return cycles +
           config_.timing.memPenalty *
               static_cast<double>(after.l3Misses - before.l3Misses);
}

ArenaResult
TenantArena::run()
{
    XMIG_ASSERT(!ran_, "TenantArena::run() is one-shot");
    ran_ = true;
    // Journal the partition choice first: the journal is attached
    // after construction, so the clustering decision is replayed
    // here, at the head of the schedule's timeline.
    for (size_t k = 0; k < clusters_.size(); ++k) {
        for (unsigned tenant : clusters_[k].tenants) {
            XMIG_JOURNAL(journal_, obs::JournalKind::TenantPartition,
                         obs::JournalCause::Tenant, tenant,
                         static_cast<int64_t>(k),
                         clusters_[k].ways);
        }
    }
    TenantScheduler sched(config_.sched, probes_);
    // Fill the initial resident set in co-location order.
    for (unsigned t = sched.admitNext();
         t != TenantScheduler::kNone; t = sched.admitNext()) {
        sessions_[t]->admitted = true;
        XMIG_JOURNAL(journal_, obs::JournalKind::TenantAdmit,
                     obs::JournalCause::Tenant, t,
                     static_cast<int64_t>(sched.residentCount() - 1),
                     static_cast<int64_t>(
                         sched.colocationScore(t) * 1000.0));
    }
    const double makespan =
        config_.mode == ArenaMode::Migration
            ? runMigrationSchedule(sched)
            : runThroughputSchedule(sched);
    XMIG_ASSERT(sched.allFinished(),
                "arena schedule ended with tenants outstanding");

    ArenaResult result;
    result.makespanCycles = makespan;
    std::vector<double> slowdowns;
    double totalInstructions = 0;
    for (const auto &sessionPtr : sessions_) {
        const Session &session = *sessionPtr;
        const MachineStats &s = session.machine->stats();
        const TenantProbe &probe = probes_[session.tenant];
        TenantResult tr;
        tr.benchmark = session.spec.benchmark;
        tr.instructions = s.instructions;
        tr.refs = s.refs;
        tr.l2Misses = s.l2Misses;
        tr.l3Accesses = s.l3Accesses;
        tr.l3Misses = s.l3Misses;
        tr.migrations = s.migrations;
        tr.turns = session.turns;
        tr.cycles = session.cycles;
        const double soloCpi =
            probe.instructions > 0
                ? probe.soloCycles /
                      static_cast<double>(probe.instructions)
                : config_.timing.stall.baseCpi;
        tr.soloCycles =
            soloCpi * static_cast<double>(s.instructions);
        tr.slowdown = tr.soloCycles > 0
                          ? tr.cycles / tr.soloCycles
                          : 1.0;
        tr.p50TurnCycles = session.turnCycles.percentile(50.0);
        tr.p95TurnCycles = session.turnCycles.percentile(95.0);
        tr.p99TurnCycles = session.turnCycles.percentile(99.0);
        tr.cluster = session.cluster;
        tr.clusterWays = clusters_[session.cluster].ways;
        slowdowns.push_back(tr.slowdown);
        totalInstructions += static_cast<double>(s.instructions);
        if (tr.cycles > 0)
            result.weightedSpeedup += tr.soloCycles / tr.cycles;
        result.tenants.push_back(std::move(tr));
    }
    result.aggregateIpc =
        makespan > 0 ? totalInstructions / makespan : 0.0;
    result.unfairness = xmig::unfairness(slowdowns);
    result.jainFairness = jainFairnessIndex(slowdowns);
    for (const auto &cache : sharedL3_) {
        result.sharedL3Accesses += cache->stats().accesses;
        result.sharedL3Misses += cache->stats().misses;
    }
    return result;
}

/**
 * Feed up to `budget` references from the session's stream into its
 * machine. Returns the number actually fed (short only when the
 * stream ends). Runs on the arena's consumer thread.
 */
uint64_t
TenantArena::feedQuantum(Session &session, uint64_t budget)
{
    uint64_t fed = 0;
    while (fed < budget && !session.drained()) {
        if (session.pendingPos >= session.pending.count) {
            if (!session.queue.pop(session.pending)) {
                session.streamDone = true;
                session.pending.count = 0;
                session.pendingPos = 0;
                break;
            }
            session.pendingPos = 0;
        }
        const uint64_t inChunk =
            session.pending.count - session.pendingPos;
        const uint64_t n = std::min<uint64_t>(inChunk, budget - fed);
        session.machine->accessBatch(
            &session.pending.refs[session.pendingPos],
            static_cast<size_t>(n));
        session.pendingPos += static_cast<uint32_t>(n);
        fed += n;
    }
    XMIG_ASSERT(fed <= budget &&
                    session.pendingPos <= session.pending.count,
                "feedQuantum overran its budget or its chunk "
                "(fed %llu of %llu, pos %u of %u)",
                static_cast<unsigned long long>(fed),
                static_cast<unsigned long long>(budget),
                session.pendingPos, session.pending.count);
    return fed;
}

/**
 * One scheduling turn: feed the tenant its budget, account the
 * stall-model cost, journal the decision, retire the tenant if its
 * stream drained. `serial_time` selects the makespan arithmetic:
 * migration mode time-shares the chip (makespan = sum of turn
 * costs), throughput mode space-shares it (makespan = latest
 * per-slot completion).
 */
void
TenantArena::runTurn(TenantScheduler &sched, unsigned tenant,
               double *makespan, bool serial_time)
{
    Session &session = *sessions_[tenant];
    XMIG_ASSERT(session.admitted,
                "turn granted to unadmitted tenant %u", tenant);
    const uint64_t budget = sched.turnBudget(tenant);
    const MachineStats before = session.machine->stats();
    const uint64_t fed = feedQuantum(session, budget);
    const double cost = turnCost(before, session.machine->stats());
    session.cycles += cost;
    session.turns += 1;
    session.turnCycles.record(static_cast<uint64_t>(cost));
    if (serial_time)
        *makespan += cost;
    refClock_ += fed;
    XMIG_JOURNAL_CLOCK(journal_, refClock_);
    XMIG_JOURNAL(journal_, obs::JournalKind::TenantTurn,
                 obs::JournalCause::Tenant, tenant,
                 static_cast<int64_t>(fed),
                 static_cast<int64_t>(cost));
    sched.onTurnEnd(tenant, fed);
    if (session.drained()) {
        const double completion =
            serial_time ? *makespan
                        : session.startCycles + session.cycles;
        if (!serial_time)
            *makespan = std::max(*makespan, completion);
        retireTenant(sched, tenant, completion);
    }
}

double
TenantArena::runMigrationSchedule(TenantScheduler &sched)
{
    // Migration mode: exactly one tenant runs at a time, roaming the
    // aggregate L2 with its own affinity controller.
    double makespan = 0.0;
    while (!sched.allFinished()) {
        const unsigned t = sched.nextTurn();
        XMIG_ASSERT(t != TenantScheduler::kNone,
                    "unfinished schedule granted no turn");
        runTurn(sched, t, &makespan, /*serial_time=*/true);
    }
    return makespan;
}

double
TenantArena::runThroughputSchedule(TenantScheduler &sched)
{
    // Throughput mode: residents advance concurrently in simulated
    // time on pinned cores. The round-robin quantum interleave is
    // what arbitrates shared-L3 contention — a pure function of the
    // schedule, hence deterministic at any --jobs.
    double makespan = 0.0;
    while (!sched.allFinished()) {
        const unsigned t = sched.nextTurn();
        XMIG_ASSERT(t != TenantScheduler::kNone,
                    "unfinished schedule granted no turn");
        runTurn(sched, t, &makespan, /*serial_time=*/false);
    }
    return makespan;
}

void
TenantArena::retireTenant(TenantScheduler &sched, unsigned tenant,
                    double now_cycles)
{
    Session &session = *sessions_[tenant];
    XMIG_ASSERT(session.drained(),
                "retiring tenant %u with stream outstanding", tenant);
    sched.onFinish(tenant);
    XMIG_JOURNAL(journal_, obs::JournalKind::TenantFinish,
                 obs::JournalCause::Tenant, tenant,
                 static_cast<int64_t>(session.machine->stats().refs),
                 static_cast<int64_t>(session.cycles));
    const unsigned next = sched.admitNext();
    if (next != TenantScheduler::kNone) {
        Session &admitted = *sessions_[next];
        admitted.admitted = true;
        // The newcomer inherits the freed slot: in throughput mode
        // its virtual clock starts at the finisher's completion.
        admitted.startCycles = now_cycles;
        XMIG_JOURNAL(journal_, obs::JournalKind::TenantAdmit,
                     obs::JournalCause::Tenant, next,
                     static_cast<int64_t>(sched.residentCount() - 1),
                     static_cast<int64_t>(
                         sched.colocationScore(next) * 1000.0));
    }
}

void
TenantArena::registerMetrics(obs::MetricsRegistry &registry,
                       const std::string &prefix) const
{
    for (const auto &sessionPtr : sessions_) {
        const Session &session = *sessionPtr;
        const std::string base =
            prefix + ".tenant" + std::to_string(session.tenant);
        session.machine->registerMetrics(registry, base);
        registry.addHistogram(base + ".turn_cycles",
                              &session.turnCycles);
    }
    for (size_t k = 0; k < sharedL3_.size(); ++k) {
        registerCacheMetrics(registry,
                             prefix + ".l3.cluster" +
                                 std::to_string(k),
                             *sharedL3_[k]);
    }
}

} // namespace xmig
