/**
 * @file
 * xmig-scope registration for the machine: kept in its own
 * translation unit so the cold registration code stays out of
 * machine.cpp's hot per-reference text (see
 * core/register_metrics.cpp).
 */

#include "multicore/machine.hpp"
#include "obs/registry.hpp"

namespace xmig {

// Shared with arena.cpp (declared in machine.hpp), which registers
// the arena-owned shared L3 exactly once instead of per machine.
void
registerCacheMetrics(obs::MetricsRegistry &registry,
                     const std::string &prefix, const Cache &cache)
{
    const CacheStats &cs = cache.stats();
    registry.addCounter(prefix + ".accesses", &cs.accesses);
    registry.addCounter(prefix + ".hits", &cs.hits);
    registry.addCounter(prefix + ".misses", &cs.misses);
    registry.addCounter(prefix + ".writebacks", &cs.writebacks);
    registry.addGauge(prefix + ".occupancy", [&cache] {
        return static_cast<double>(cache.tags().occupancy());
    });
}

void
MigrationMachine::registerMetrics(obs::MetricsRegistry &registry,
                                  const std::string &prefix) const
{
    registry.addCounter(prefix + ".instructions",
                        &stats_.instructions);
    registry.addCounter(prefix + ".refs", &stats_.refs);
    registry.addCounter(prefix + ".l1_misses", &stats_.l1Misses);
    registry.addCounter(prefix + ".l2_accesses", &stats_.l2Accesses);
    registry.addCounter(prefix + ".l2_misses", &stats_.l2Misses);
    registry.addCounter(prefix + ".l2_to_l2_forwards",
                        &stats_.l2ToL2Forwards);
    registry.addCounter(prefix + ".l3_writebacks",
                        &stats_.l3Writebacks);
    registry.addCounter(prefix + ".migrations", &stats_.migrations);
    registry.addCounter(prefix + ".update_bus_stores",
                        &stats_.updateBusStores);
    registry.addCounter(prefix + ".prefetch_fills",
                        &stats_.prefetchFills);
    registry.addCounter(prefix + ".prefetch_useful",
                        &stats_.prefetchUseful);
    registry.addCounter(prefix + ".l3_accesses", &stats_.l3Accesses);
    registry.addCounter(prefix + ".l3_misses", &stats_.l3Misses);
    registry.addCounter(prefix + ".memory_writebacks",
                        &stats_.memoryWritebacks);
    registry.addCounter(prefix + ".core_off_events",
                        &stats_.coreOffEvents);
    registry.addCounter(prefix + ".core_on_events",
                        &stats_.coreOnEvents);
    registry.addCounter(prefix + ".dirty_lines_lost",
                        &stats_.dirtyLinesLost);
    registry.addCounter(prefix + ".bus_drops", &stats_.busDrops);
    registry.addCounter(prefix + ".coherence_repairs",
                        &stats_.coherenceRepairs);
    registry.addGauge(prefix + ".active_core", [this] {
        return static_cast<double>(activeCore_);
    });
    registry.addHistogram(prefix + ".inter_migration_refs",
                          &interMigrationGap_);

    const CacheStats &il1 = l1_->il1Stats();
    registry.addCounter(prefix + ".il1.accesses", &il1.accesses);
    registry.addCounter(prefix + ".il1.misses", &il1.misses);
    const CacheStats &dl1 = l1_->dl1Stats();
    registry.addCounter(prefix + ".dl1.accesses", &dl1.accesses);
    registry.addCounter(prefix + ".dl1.misses", &dl1.misses);

    for (size_t c = 0; c < l2s_.size(); ++c) {
        registerCacheMetrics(registry,
                             prefix + ".core" + std::to_string(c) +
                                 ".l2",
                             *l2s_[c]);
    }
    if (l3_)
        registerCacheMetrics(registry, prefix + ".l3", *l3_);

    if (controller_)
        controller_->registerMetrics(registry, prefix + ".controller");
    if (injector_)
        injector_->registerMetrics(registry, prefix + ".faults");
}

} // namespace xmig
