/**
 * @file
 * Register-update cache (section 6 extension).
 *
 * Register updates dominate the update-bus bandwidth (section 2.3's
 * ~45 B/cycle is mostly the 4 register values). The paper's
 * conclusion proposes filtering them "with a small register-update
 * cache: a register update would be sent only upon evicting an entry
 * from the register-update cache. Upon a migration, the content of
 * the register-update cache would be spilled on the update bus."
 *
 * This module implements that structure: a small fully-associative
 * LRU cache over logical register ids. Repeated writes to a hot
 * register coalesce into one eventual broadcast, trading steady-state
 * bandwidth for a burst (the spill) at each migration plus a bounded
 * staleness window on inactive cores.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace xmig {

/** Register-update cache configuration. */
struct RegCacheConfig
{
    unsigned entries = 8;      ///< cached registers (0 = bypass)
    unsigned numRegisters = 64; ///< architectural register count
};

/** Broadcast-traffic counters. */
struct RegCacheStats
{
    uint64_t writes = 0;          ///< register writes observed
    uint64_t broadcasts = 0;      ///< updates actually sent (evictions)
    uint64_t migrationSpills = 0; ///< migrations serviced
    uint64_t spilledEntries = 0;  ///< updates sent during spills

    /** Fraction of writes that reached the bus (lower is better). */
    double
    broadcastRatio() const
    {
        return writes == 0
            ? 0.0
            : static_cast<double>(broadcasts + spilledEntries) /
              static_cast<double>(writes);
    }
};

/**
 * Small fully-associative LRU cache over logical registers.
 */
class RegisterUpdateCache
{
  public:
    explicit RegisterUpdateCache(const RegCacheConfig &config)
        : config_(config)
    {
        XMIG_ASSERT(config.numRegisters >= 1, "need registers");
        slots_.reserve(config.entries);
    }

    /**
     * Observe a register write on the active core. Returns true if
     * an update was broadcast now (cache bypassed or an entry was
     * evicted to make room).
     */
    bool
    write(unsigned reg)
    {
        XMIG_ASSERT(reg < config_.numRegisters, "register %u", reg);
        ++stats_.writes;
        if (config_.entries == 0) {
            ++stats_.broadcasts;
            return true; // no cache: broadcast immediately
        }
        // Hit: coalesce with the pending update.
        for (size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i] == reg) {
                // Move to MRU position.
                slots_.erase(slots_.begin() +
                             static_cast<ptrdiff_t>(i));
                slots_.push_back(reg);
                return false;
            }
        }
        bool broadcast = false;
        if (slots_.size() == config_.entries) {
            // Evict LRU: its pending update goes on the bus.
            slots_.erase(slots_.begin());
            ++stats_.broadcasts;
            broadcast = true;
        }
        slots_.push_back(reg);
        return broadcast;
    }

    /**
     * A migration is happening: spill every pending update onto the
     * bus so the target core's register file is complete. Returns
     * the number of updates spilled (they add to the migration
     * penalty).
     */
    uint64_t
    migrate()
    {
        ++stats_.migrationSpills;
        const uint64_t spilled = slots_.size();
        stats_.spilledEntries += spilled;
        slots_.clear();
        return spilled;
    }

    /** Registers with pending (unbroadcast) updates. */
    size_t pending() const { return slots_.size(); }

    const RegCacheStats &stats() const { return stats_; }
    const RegCacheConfig &config() const { return config_; }

  private:
    RegCacheConfig config_;
    std::vector<unsigned> slots_; ///< LRU order, back = MRU
    RegCacheStats stats_;
};

} // namespace xmig
