/**
 * @file
 * Migration-protocol timing (sections 2.2 and 2.4).
 *
 * The paper never fixes the migration penalty P_mig; it defines it
 * operationally: the cycles between the retirement of the transition
 * instruction T on the old core X1 and the retirement of T's
 * successor on the new core X2, which "corresponds to the number of
 * cycles for broadcasting T on the update bus plus the number of
 * pipeline stages from the issue stage to retirement". Section 2.2
 * adds the drain protocol: after the migration interrupt, X1 stops
 * fetching and drains; a branch mispredict during the drain flushes
 * the younger instructions, moves the transition point to the
 * mispredicted branch, and restarts X2's fetch.
 *
 * This module provides:
 *  - MigrationProtocolModel: a small event model of one migration,
 *    with mispredict re-steers, yielding penalty cycles (expected
 *    value analytically, per-event by simulation);
 *  - TimingModel: stall-cycle accounting that turns MachineStats
 *    into cycles/IPC, expressing the protocol penalty in the paper's
 *    P_mig units (L2-miss/L3-hit penalties).
 */

#pragma once

#include <cstdint>

#include "multicore/machine.hpp" // MachineStats
#include "util/rng.hpp"

namespace xmig {

/** Pipeline and bus parameters of one core (section 2.2 / 2.3). */
struct PipelineParams
{
    /** Stages between issue and retirement (the paper's penalty term). */
    unsigned issueToRetireStages = 10;
    /** Stages between fetch and issue (drain length contribution). */
    unsigned fetchToIssueStages = 5;
    /** Instructions retired (and drained) per cycle. */
    unsigned retireWidth = 4;
    /** Cycles to broadcast one retired instruction on the update bus. */
    unsigned updateBusCycles = 2;
    /** Per-instruction probability of a branch mispredict re-steer. */
    double mispredictPerInstr = 0.01;
};

/**
 * Event model of a single execution migration (section 2.2).
 */
class MigrationProtocolModel
{
  public:
    explicit MigrationProtocolModel(const PipelineParams &params = {})
        : params_(params)
    {
    }

    /** Instructions in flight on X1 when the interrupt arrives. */
    unsigned
    inflightInstructions() const
    {
        return (params_.fetchToIssueStages +
                params_.issueToRetireStages) *
               params_.retireWidth;
    }

    /**
     * Paper definition, no mispredicts: cycles from T's retirement
     * on X1 to its successor's retirement on X2 = update-bus
     * broadcast of T + issue-to-retire depth (X2 fetched and decoded
     * behind the blocked issue stage during the drain).
     */
    unsigned
    basePenaltyCycles() const
    {
        return params_.updateBusCycles + params_.issueToRetireStages;
    }

    /**
     * Simulate one migration, drawing mispredicts among the drained
     * instructions. A mispredict at drain position k flushes X1
     * beyond k, makes the branch the new transition point, and
     * restarts X2's fetch, which adds the cycles X2 had already
     * spent fetching past the old transition PC.
     */
    uint64_t simulateMigration(Rng &rng) const;

    /** Mean of simulateMigration over `samples` draws. */
    double expectedPenaltyCycles(uint64_t samples = 20'000,
                                 uint64_t seed = 1) const;

    const PipelineParams &params() const { return params_; }

  private:
    PipelineParams params_;
};

/** Memory-level latencies for the stall model. */
struct LatencyParams
{
    double baseCpi = 1.0;     ///< CPI with a perfect L2
    unsigned l2HitCycles = 0; ///< folded into baseCpi by default
    unsigned l3HitCycles = 20; ///< the paper's L2-miss/L3-hit penalty
    unsigned memoryCycles = 200; ///< finite-L3 mode only

    // xmig-iron recovery costs (OS/firmware path, not pipeline):
    unsigned resplitCycles = 5000; ///< splitter rebuild after core loss
    unsigned retryCycles = 100;    ///< one migration timeout + retry
};

/**
 * Turns machine event counts into estimated cycles / IPC.
 */
class TimingModel
{
  public:
    TimingModel(const LatencyParams &latency = {},
                const PipelineParams &pipeline = {})
        : latency_(latency),
          protocol_(pipeline)
    {
    }

    /** Migration penalty in cycles (expected, with mispredicts). */
    double
    migrationPenaltyCycles() const
    {
        if (penaltyCycles_ < 0) {
            penaltyCycles_ = protocol_.expectedPenaltyCycles();
        }
        return penaltyCycles_;
    }

    /** The protocol's penalty expressed in P_mig units (L3 hits). */
    double
    pmig() const
    {
        return migrationPenaltyCycles() /
               static_cast<double>(latency_.l3HitCycles);
    }

    /** Estimated execution cycles for a machine run. */
    double
    cycles(const MachineStats &stats) const
    {
        double c = latency_.baseCpi *
                   static_cast<double>(stats.instructions);
        c += static_cast<double>(latency_.l2HitCycles) *
             static_cast<double>(stats.l2Accesses - stats.l2Misses);
        c += static_cast<double>(latency_.l3HitCycles) *
             static_cast<double>(stats.l2Misses);
        // With a perfect L3 (l3Accesses == 0) every L2 miss costs an
        // L3 hit; in finite-L3 mode, L3 misses add memory latency.
        c += static_cast<double>(latency_.memoryCycles) *
             static_cast<double>(stats.l3Misses);
        c += migrationPenaltyCycles() *
             static_cast<double>(stats.migrations);
        return c;
    }

    /**
     * cycles() plus the recovery overheads a degraded run pays:
     * splitter rebuilds after core churn and migration-fabric
     * timeouts (xmig-iron; see RecoveryStats).
     */
    double
    cyclesWithRecovery(const MachineStats &stats,
                       const RecoveryStats &recovery) const
    {
        double c = cycles(stats);
        c += static_cast<double>(latency_.resplitCycles) *
             static_cast<double>(recovery.resplits);
        c += static_cast<double>(latency_.retryCycles) *
             static_cast<double>(recovery.migTimeouts);
        return c;
    }

    /** Instructions per cycle under the stall model. */
    double
    ipc(const MachineStats &stats) const
    {
        const double c = cycles(stats);
        return c == 0.0 ? 0.0
                        : static_cast<double>(stats.instructions) / c;
    }

    /** Speedup of `migration` over `baseline` (same instructions). */
    double
    speedup(const MachineStats &baseline,
            const MachineStats &migration) const
    {
        return cycles(baseline) / cycles(migration);
    }

    const LatencyParams &latency() const { return latency_; }
    const MigrationProtocolModel &protocol() const { return protocol_; }

  private:
    LatencyParams latency_;
    MigrationProtocolModel protocol_;
    mutable double penaltyCycles_ = -1.0;
};

} // namespace xmig
