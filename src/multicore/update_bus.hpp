/**
 * @file
 * Update-bus bandwidth model (section 2.3).
 *
 * In migration mode every retiring instruction is broadcast so that
 * inactive cores keep architectural state (registers, stores, TLB
 * updates, branch outcomes) current. The bandwidth requirement is
 * proportional to the retirement bandwidth; with the paper's example
 * parameters (4-wide retirement, one store and one branch per cycle,
 * 6-bit register ids, 64-bit values, 16 low-order branch-address
 * bits) it comes to roughly 45 bytes per cycle.
 */

#pragma once

#include <cstdint>

namespace xmig {

/** Retirement-bandwidth parameters of the active core. */
struct RetireProfile
{
    unsigned retireWidth = 4;       ///< instructions retired per cycle
    unsigned storesPerCycle = 1;
    unsigned branchesPerCycle = 1;
    unsigned regIdBits = 6;         ///< logical register identifier
    unsigned valueBits = 64;        ///< register / store value width
    unsigned storeAddrBits = 64;
    unsigned branchAddrBits = 16;   ///< low-order bits are enough
    unsigned typeBitsPerInstr = 2;  ///< "a few bits" of instr type
};

/**
 * Analytic update-bus model.
 */
class UpdateBusModel
{
  public:
    explicit UpdateBusModel(const RetireProfile &profile = {})
        : profile_(profile)
    {
    }

    /** Peak broadcast requirement in bits per cycle. */
    uint64_t
    bitsPerCycle() const
    {
        const RetireProfile &p = profile_;
        uint64_t bits = 0;
        // Register updates: one id + one value per retired
        // instruction. A store's value is one of these values (the
        // paper broadcasts "four 64-bit values" total), so stores
        // only add their address below.
        bits += uint64_t(p.retireWidth) * (p.regIdBits + p.valueBits);
        bits += uint64_t(p.storesPerCycle) * p.storeAddrBits;
        // Branches: truncated address (outcome rides in the type bits).
        bits += uint64_t(p.branchesPerCycle) * p.branchAddrBits;
        // Instruction-type tags.
        bits += uint64_t(p.retireWidth) * p.typeBitsPerInstr;
        return bits;
    }

    /** Peak broadcast requirement in bytes per cycle. */
    double
    bytesPerCycle() const
    {
        return static_cast<double>(bitsPerCycle()) / 8.0;
    }

    /**
     * Average bytes per *retired instruction* for a measured dynamic
     * mix, given the fraction of instructions that are stores /
     * branches / register-writing.
     */
    double
    bytesPerInstruction(double store_frac, double branch_frac,
                        double regwrite_frac) const
    {
        const RetireProfile &p = profile_;
        double bits = p.typeBitsPerInstr;
        bits += regwrite_frac * (p.regIdBits + p.valueBits);
        bits += store_frac * p.storeAddrBits;
        bits += branch_frac * p.branchAddrBits;
        return bits / 8.0;
    }

    const RetireProfile &profile() const { return profile_; }

  private:
    RetireProfile profile_;
};

} // namespace xmig
