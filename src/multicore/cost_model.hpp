/**
 * @file
 * Migration-penalty cost model (sections 2.4 and 4.2).
 *
 * The paper deliberately avoids fixing the migration penalty P_mig
 * (expressed in units of one L2-miss/L3-hit penalty) and instead
 * reasons about the trade: a migration pays off when it removes more
 * than P_mig L2 misses. For 181.mcf it derives a break-even of
 * roughly 60. This model reproduces that arithmetic and extends it
 * to a simple stall-cycle performance estimate.
 */

#pragma once

#include <cstdint>

namespace xmig {

/** Inputs: event counts from a baseline and a migration run. */
struct MigrationTradeoff
{
    uint64_t instructions = 0;
    uint64_t l2MissesBaseline = 0;  ///< single-core L2 misses
    uint64_t l2MissesMigration = 0; ///< 4xL2 misses
    uint64_t migrations = 0;
};

/**
 * L2 misses removed per migration — the break-even P_mig.
 *
 * Execution migration wins whenever P_mig is below this value.
 * Returns +infinity (as a large number) when there were migrations
 * but no removed misses would make it negative; returns 0 when no
 * migrations occurred.
 */
inline double
breakEvenPmig(const MigrationTradeoff &t)
{
    if (t.migrations == 0)
        return 0.0;
    const double removed =
        static_cast<double>(t.l2MissesBaseline) -
        static_cast<double>(t.l2MissesMigration);
    return removed / static_cast<double>(t.migrations);
}

/** Simple in-order stall model parameters. */
struct TimingParams
{
    double baseCpi = 1.0;        ///< CPI ignoring L2 misses
    double l3HitPenalty = 20.0;  ///< cycles per L2-miss/L3-hit
    double pmig = 10.0;          ///< migration penalty, in L3-hit units
};

/** Estimated cycles for a run under the stall model. */
inline double
estimatedCycles(uint64_t instructions, uint64_t l2_misses,
                uint64_t migrations, const TimingParams &p)
{
    return p.baseCpi * static_cast<double>(instructions) +
           p.l3HitPenalty * static_cast<double>(l2_misses) +
           p.pmig * p.l3HitPenalty * static_cast<double>(migrations);
}

/**
 * Speedup of the migration machine over the baseline under the stall
 * model: >1 means execution migration helps.
 */
inline double
estimatedSpeedup(const MigrationTradeoff &t, const TimingParams &p)
{
    const double base =
        estimatedCycles(t.instructions, t.l2MissesBaseline, 0, p);
    const double mig =
        estimatedCycles(t.instructions, t.l2MissesMigration,
                        t.migrations, p);
    return base / mig;
}

} // namespace xmig
