/**
 * @file
 * Microbenchmarks (google-benchmark): throughput of the core data
 * structures — affinity engine variants, splitters, cache models,
 * LRU stack, hashes, and the whole migration machine per reference.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "cache/fully_assoc.hpp"
#include "cache/lru_stack.hpp"
#include "core/oe_store.hpp"
#include "core/splitter.hpp"
#include "multicore/machine.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

using namespace xmig;

static void
BM_HashMod31(benchmark::State &state)
{
    uint64_t x = 0x123456789abcULL;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hashMod31(x));
        x += 64;
    }
}
BENCHMARK(BM_HashMod31);

static void
BM_SkewHash(benchmark::State &state)
{
    uint64_t x = 0x123456789abcULL;
    for (auto _ : state) {
        benchmark::DoNotOptimize(skewHash(x, 3, 2048));
        ++x;
    }
}
BENCHMARK(BM_SkewHash);

static void
BM_AffinityEngine(benchmark::State &state)
{
    EngineConfig ec;
    ec.windowSize = 128;
    ec.window = static_cast<WindowKind>(state.range(0));
    ec.ar = static_cast<ArKind>(state.range(1));
    UnboundedOeStore store(16);
    AffinityEngine engine(ec, store);
    CircularStream stream(4000);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.reference(stream.next()).ae);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AffinityEngine)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->ArgNames({"window", "ar"});

static void
BM_FourWaySplitter(benchmark::State &state)
{
    FourWaySplitter::Config c;
    UnboundedOeStore store(16);
    FourWaySplitter splitter(c, store);
    CircularStream stream(20000);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            splitter.onReference(stream.next()).subset);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourWaySplitter);

static void
BM_SetAssocCache(benchmark::State &state)
{
    CacheConfig cc;
    cc.skewed = state.range(0) != 0;
    Cache cache(cc);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.below(16384), false).hit);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocCache)->Arg(0)->Arg(1)->ArgName("skewed");

static void
BM_FullyAssocLru(benchmark::State &state)
{
    FullyAssocLru cache(256);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.below(1024)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullyAssocLru);

static void
BM_LruStack(benchmark::State &state)
{
    LruStack stack;
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(stack.access(rng.below(100000)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruStack);

static void
BM_MigrationMachineRef(benchmark::State &state)
{
    MachineConfig mc;
    MigrationMachine machine(mc);
    auto workload = makeWorkload("179.art");
    RefRecorder recorder;
    workload->run(recorder, 200'000, 42);
    size_t i = 0;
    for (auto _ : state) {
        machine.access(recorder.refs()[i]);
        i = (i + 1) % recorder.refs().size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MigrationMachineRef);

BENCHMARK_MAIN();
