/**
 * @file
 * Pointer-load filtering (section 6 extension).
 *
 * "One could decide to restrict the class of applications triggering
 * migrations by having the transition filter updated only on requests
 * coming from pointer loads." This harness compares the paper's
 * default controller against one with pointer-load filtering enabled:
 * linked-data-structure programs (mcf, health, bisort) keep their
 * behavior, while programs whose misses come from plain array or
 * random accesses (gzip, vpr, art) stop triggering migrations.
 */

#include <cstdio>

#include "sim/options.hpp"
#include "sim/quadcore.hpp"
#include "util/stats.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.instructions == 20'000'000)
        opt.instructions = 10'000'000;

    const std::vector<std::string> benches =
        opt.benchmarks.empty()
            ? std::vector<std::string>{"181.mcf", "health", "bisort",
                                       "179.art", "164.gzip", "175.vpr"}
            : opt.benchmarks;

    AsciiTable table({"benchmark", "filter", "ratio", "migrations"});
    for (const auto &name : benches) {
        for (bool ptr_only : {false, true}) {
            QuadcoreParams params;
            params.instructionsPerBenchmark = opt.instructions;
            params.seed = opt.seed;
            params.machine.controller.pointerLoadFilter = ptr_only;
            const QuadcoreRow r = runQuadcore(name, params);
            char migs[24];
            std::snprintf(migs, sizeof(migs), "%llu",
                          (unsigned long long)r.migrations);
            table.addRow({r.name,
                          ptr_only ? "pointer loads only" : "all (paper)",
                          ratio2(r.missRatio()), migs});
        }
    }
    std::fputs(table.render("Transition filter updated on all L2 "
                            "misses vs only pointer-load misses")
                   .c_str(),
               stdout);
    return 0;
}
