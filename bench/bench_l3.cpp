/**
 * @file
 * Finite shared-L3 study (machine-model extension).
 *
 * The paper counts L2 misses and treats the L3 as a uniform
 * next-level penalty. With the finite-L3 mode of the machine model
 * this harness asks two follow-up questions:
 *  1. how much off-chip (memory) traffic does each benchmark
 *     generate as the shared L3 shrinks, and
 *  2. does execution migration change the L3/memory picture? (It
 *     should: migration turns L3 hits into local L2 hits, cutting
 *     on-chip L3 traffic without touching off-chip traffic.)
 */

#include <cstdio>

#include "multicore/machine.hpp"
#include "sim/options.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.instructions == 20'000'000)
        opt.instructions = 10'000'000;

    const std::vector<std::string> benches =
        opt.benchmarks.empty()
            ? std::vector<std::string>{"179.art", "181.mcf", "171.swim"}
            : opt.benchmarks;

    AsciiTable table({"benchmark", "L3", "machine", "instr/L3access",
                      "instr/L3miss", "instr/mem-writeback"});
    for (const auto &name : benches) {
        for (uint64_t l3_mb : {4u, 8u, 16u}) {
            MachineConfig base_cfg;
            base_cfg.numCores = 1;
            base_cfg.l3Bytes = l3_mb * 1024 * 1024;
            MachineConfig mig_cfg;
            mig_cfg.l3Bytes = base_cfg.l3Bytes;

            MigrationMachine base(base_cfg), mig(mig_cfg);
            TeeSink tee(base, mig);
            auto workload = makeWorkload(name);
            workload->run(tee, opt.instructions, opt.seed);

            auto row = [&](const char *label, const MachineStats &s) {
                table.addRow({workload->info().name,
                              sizeLabel(base_cfg.l3Bytes), label,
                              perEvent(s.instructions, s.l3Accesses),
                              perEvent(s.instructions, s.l3Misses),
                              perEvent(s.instructions,
                                       s.memoryWritebacks)});
            };
            row("1-core", base.stats());
            row("4-core mig", mig.stats());
        }
    }
    std::fputs(table.render("Finite shared L3: on-chip L3 traffic vs "
                            "off-chip memory traffic (higher "
                            "instr/event is better)").c_str(),
               stdout);
    return 0;
}
