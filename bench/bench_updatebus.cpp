/**
 * @file
 * Update-bus bandwidth analysis (section 2.3).
 *
 * Reproduces the paper's ~45 bytes/cycle estimate for a 4-wide core
 * (4 register updates + 1 store + 1 branch per cycle), sweeps the
 * retirement width, and reports the measured per-instruction store
 * mix of each benchmark to translate the peak figure into an average
 * demand.
 */

#include <cstdio>

#include "mem/trace.hpp"
#include "multicore/regcache.hpp"
#include "multicore/update_bus.hpp"
#include "sim/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.instructions == 20'000'000)
        opt.instructions = 4'000'000; // mix measurement only

    UpdateBusModel paper_model;
    std::printf("Update-bus peak bandwidth (section 2.3 parameters):\n");
    std::printf("  4-wide retirement, 1 store + 1 branch/cycle, 6-bit "
                "reg ids, 64-bit values,\n  16-bit branch addresses "
                "=> %.1f bytes/cycle (paper: ~45)\n\n",
                paper_model.bytesPerCycle());

    AsciiTable sweep({"retire-width", "stores/cyc", "branches/cyc",
                      "bytes/cycle"});
    for (unsigned w : {1, 2, 4, 6, 8}) {
        RetireProfile p;
        p.retireWidth = w;
        p.storesPerCycle = (w + 3) / 4;
        p.branchesPerCycle = (w + 3) / 4;
        UpdateBusModel m(p);
        char wb[16], sb[16], bb[16], byb[16];
        std::snprintf(wb, sizeof(wb), "%u", w);
        std::snprintf(sb, sizeof(sb), "%u", p.storesPerCycle);
        std::snprintf(bb, sizeof(bb), "%u", p.branchesPerCycle);
        std::snprintf(byb, sizeof(byb), "%.1f", m.bytesPerCycle());
        sweep.addRow({wb, sb, bb, byb});
    }
    std::fputs(sweep.render("Peak requirement vs retirement width")
                   .c_str(),
               stdout);

    std::printf("\n");
    AsciiTable mix({"benchmark", "stores/instr", "bytes/instr(avg)"});
    for (const auto &name : allWorkloadNames()) {
        auto w = makeWorkload(name);
        RefCounter counter;
        w->run(counter, opt.instructions, opt.seed);
        const double store_frac =
            static_cast<double>(counter.stores()) /
            static_cast<double>(counter.instructions());
        // Branch fraction is not modeled by the kernels; use the
        // classic ~1-in-5 integer-code rule of thumb.
        const double bytes = paper_model.bytesPerInstruction(
            store_frac, 0.2, 0.7);
        char sf[16], bf[16];
        std::snprintf(sf, sizeof(sf), "%.3f", store_frac);
        std::snprintf(bf, sizeof(bf), "%.1f", bytes);
        mix.addRow({name, sf, bf});
    }
    std::fputs(mix.render("Average per-instruction broadcast demand "
                          "by benchmark mix").c_str(),
               stdout);

    // Section 6 extension: filter register updates with a small
    // register-update cache; broadcasts happen only on evictions,
    // with the cache spilled at each migration. Register usage is
    // skewed (stack pointer, loop counters, hot temporaries), so a
    // few entries absorb most of the traffic.
    std::printf("\n");
    AsciiTable rc({"cache-entries", "broadcasts/write",
                   "avg spill/migration", "reg-bandwidth saved"});
    for (unsigned entries : {0u, 2u, 4u, 8u, 16u, 32u}) {
        RegCacheConfig cfg;
        cfg.entries = entries;
        RegisterUpdateCache cache(cfg);
        Rng rng(42);
        const uint64_t kWrites = 2'000'000;
        const uint64_t kMigrationEvery = 4'500; // mcf's Table-2 rate
        for (uint64_t i = 0; i < kWrites; ++i) {
            const double u = rng.uniform();
            cache.write(static_cast<unsigned>(u * u * 63.999));
            if (i % kMigrationEvery == kMigrationEvery - 1)
                cache.migrate();
        }
        const auto &s = cache.stats();
        char ent[8], spill[16], saved[16];
        std::snprintf(ent, sizeof(ent), "%u", entries);
        std::snprintf(spill, sizeof(spill), "%.1f",
                      s.migrationSpills == 0
                          ? 0.0
                          : static_cast<double>(s.spilledEntries) /
                                static_cast<double>(s.migrationSpills));
        std::snprintf(saved, sizeof(saved), "%.0f%%",
                      (1.0 - s.broadcastRatio()) * 100.0);
        rc.addRow({ent, frequency(s.broadcasts, s.writes), spill,
                   saved});
    }
    std::fputs(rc.render("Register-update cache (section 6): "
                         "broadcast reduction vs per-migration spill "
                         "burst (Zipf-skewed writes, migration every "
                         "4500 instructions)").c_str(),
               stdout);
    return 0;
}
