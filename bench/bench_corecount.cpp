/**
 * @file
 * Core-count scaling (section 6 extension).
 *
 * The paper shows 4-way splitting, notes the scheme "works also on
 * 2-core configurations", and conjectures it adapts to more cores.
 * This harness runs each benchmark on 1/2/4/8-core machines (same
 * 512-KB L2 per core, so total L2 = 0.5/1/2/4 MB) and reports
 * instructions per L2 miss and per migration.
 *
 * Expected shape: each benchmark starts benefiting once the total L2
 * crosses its working-set size — e.g. 181.mcf (~4 MB hot footprint)
 * gains little at 4 cores but much more at 8.
 *
 * One sweep cell per benchmark (xmig-swift): all four machines and
 * the workload stream live inside the cell, so --jobs N output is
 * bit-identical to the serial run.
 */

#include <cstdio>

#include "multicore/machine.hpp"
#include "sim/options.hpp"
#include "sim/runner/sweep.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.instructions == 20'000'000)
        opt.instructions = opt.smoke ? 1'000'000 : 12'000'000;

    const std::vector<std::string> benches =
        opt.benchmarks.empty()
            ? std::vector<std::string>{"179.art", "181.mcf",
                                       "197.parser", "mst", "health"}
            : opt.benchmarks;

    SweepSpec spec;
    spec.cells = benches.size();
    spec.run = [&](size_t idx) {
        const std::string &name = benches[idx];
        // Run all four machines over one generated stream.
        MachineConfig c1, c2, c4, c8;
        c1.numCores = 1;
        c2.numCores = 2;
        c4.numCores = 4;
        c8.numCores = 8;
        // Section 3.5: the affinity cache should be proportional to
        // the total on-chip L2 capacity. The paper's 8k entries
        // cover 4 x 512 KB at 25% sampling; scale accordingly.
        c2.controller.affinityCache.entries = 4 * 1024;
        c4.controller.affinityCache.entries = 8 * 1024;
        c8.controller.affinityCache.entries = 16 * 1024;
        MigrationMachine m1(c1), m2(c2), m4(c4), m8(c8);
        TeeSink t12(m1, m2), t48(m4, m8), all(t12, t48);
        auto workload = makeWorkload(name);
        workload->run(all, opt.instructions, opt.seed);

        RunResult res;
        const MigrationMachine *machines[] = {&m1, &m2, &m4, &m8};
        for (const MigrationMachine *m : machines) {
            const auto &s = m->stats();
            char cores[8];
            std::snprintf(cores, sizeof(cores), "%u",
                          m->config().numCores);
            const double ratio = m1.stats().l2Misses == 0
                ? 1.0
                : static_cast<double>(s.l2Misses) /
                  static_cast<double>(m1.stats().l2Misses);
            res.rows.push_back({"",
                                {workload->info().name, cores,
                                 sizeLabel(m->config().numCores *
                                           m->config().l2Bytes),
                                 perEvent(s.instructions, s.l2Misses),
                                 ratio2(ratio),
                                 perEvent(s.instructions,
                                          s.migrations)}});
        }
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);

    AsciiTable table({"benchmark", "cores", "totalL2", "instr/L2miss",
                      "ratio-vs-1core", "instr/migration"});
    collateRows(results, table);
    flushAtomically(table.render("Core-count scaling: L2 misses vs "
                                 "number of 512-KB L2 caches the "
                                 "working-set can spread over"),
                    stdout);
    return 0;
}
