/**
 * @file
 * Reproduces Table 1: the benchmark inventory — dynamic instruction
 * count and IL1/DL1 miss counts through 16-KB fully-associative LRU
 * L1 caches with 64-byte lines (loads and stores not distinguished).
 *
 * Counts are reported in millions, like the paper. Absolute numbers
 * differ from the paper's (different inputs, ~50x shorter runs); the
 * comparison point is each benchmark's *class*: instruction-miss
 * heavy (gcc, crafty, vortex), data-miss heavy (art, mcf, ammp), or
 * light (bh, twolf, ...).
 */

#include <cstdio>

#include "sim/options.hpp"
#include "sim/table1.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    Table1Params params;
    params.instructionsPerBenchmark = opt.instructions;
    params.seed = opt.seed;

    AsciiTable table({"benchmark", "instr(M)", "IL1-miss(M)",
                      "DL1-miss(M)", "loads(M)", "stores(M)"});
    std::string suite;
    const auto &names =
        opt.benchmarks.empty() ? allWorkloadNames() : opt.benchmarks;
    for (const auto &name : names) {
        const Table1Row row = runTable1(name, params);
        if (row.suite != suite) {
            suite = row.suite;
            table.addSection(suite);
        }
        auto millions = [](uint64_t v) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2f",
                          static_cast<double>(v) / 1e6);
            return std::string(buf);
        };
        table.addRow({row.name, millions(row.instructions),
                      millions(row.il1Misses), millions(row.dl1Misses),
                      millions(row.loads), millions(row.stores)});
    }
    std::fputs(table.render("Table 1 reproduction: benchmarks, dynamic "
                            "instructions, 16KB L1 misses").c_str(),
               stdout);
    return 0;
}
