/**
 * @file
 * Mechanism ablations beyond the paper's reported configurations:
 *
 *  - A_R maintenance: the literal Figure-2 register recurrence vs the
 *    exact Definition-1 sum (see ArKind in core/engine.hpp);
 *  - R-window organization: hardware FIFO (duplicates possible) vs
 *    the idealized distinct-LRU window the paper deems inessential;
 *  - L2 filtering on/off: how much it suppresses useless migrations
 *    on working-sets that fit one L2 (the paper credits it for bh,
 *    vortex, crafty staying quiet).
 */

#include <cstdio>

#include "sim/options.hpp"
#include "sim/quadcore.hpp"
#include "util/stats.hpp"

using namespace xmig;

namespace {

void
runCfg(AsciiTable &table, const std::string &bench, const char *label,
       const MigrationControllerConfig &cc, const BenchOptions &opt)
{
    QuadcoreParams params;
    params.instructionsPerBenchmark = opt.instructions;
    params.seed = opt.seed;
    params.machine.controller = cc;
    const QuadcoreRow r = runQuadcore(bench, params);
    char migs[24];
    std::snprintf(migs, sizeof(migs), "%llu",
                  (unsigned long long)r.migrations);
    table.addRow({r.name, label, ratio2(r.missRatio()), migs});
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.instructions == 20'000'000)
        opt.instructions = 10'000'000;

    const MigrationControllerConfig base = MachineConfig::defaultController();

    AsciiTable ar({"benchmark", "A_R maintenance", "ratio", "migrations"});
    for (const char *b : {"179.art", "health", "164.gzip"}) {
        MigrationControllerConfig cc = base;
        cc.ar = ArKind::Exact;
        runCfg(ar, b, "Exact (Definition 1)", cc, opt);
        cc.ar = ArKind::Figure2;
        runCfg(ar, b, "Figure-2 register", cc, opt);
    }
    std::fputs(ar.render("A_R maintenance ablation").c_str(), stdout);

    std::printf("\n");
    AsciiTable win({"benchmark", "R-window", "ratio", "migrations"});
    for (const char *b : {"179.art", "health"}) {
        MigrationControllerConfig cc = base;
        cc.window = WindowKind::Fifo;
        runCfg(win, b, "FIFO (hardware)", cc, opt);
        cc.window = WindowKind::DistinctLru;
        runCfg(win, b, "distinct LRU (ideal)", cc, opt);
    }
    std::fputs(win.render("R-window organization ablation").c_str(),
               stdout);

    std::printf("\n");
    AsciiTable l2f({"benchmark", "L2 filtering", "ratio", "migrations"});
    for (const char *b : {"bh", "300.twolf", "186.crafty", "179.art"}) {
        MigrationControllerConfig cc = base;
        cc.l2Filtering = true;
        runCfg(l2f, b, "on (paper)", cc, opt);
        cc.l2Filtering = false;
        runCfg(l2f, b, "off", cc, opt);
    }
    std::fputs(l2f.render("L2-filtering ablation: small-footprint "
                          "benchmarks must stay quiet").c_str(),
               stdout);
    return 0;
}
