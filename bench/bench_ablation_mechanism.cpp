/**
 * @file
 * Mechanism ablations beyond the paper's reported configurations:
 *
 *  - A_R maintenance: the literal Figure-2 register recurrence vs the
 *    exact Definition-1 sum (see ArKind in core/engine.hpp);
 *  - R-window organization: hardware FIFO (duplicates possible) vs
 *    the idealized distinct-LRU window the paper deems inessential;
 *  - L2 filtering on/off: how much it suppresses useless migrations
 *    on working-sets that fit one L2 (the paper credits it for bh,
 *    vortex, crafty staying quiet).
 *
 * Every (benchmark, variant) run is one sweep cell (xmig-swift);
 * rows collate per table in sweep order, so --jobs N output is
 * bit-identical to the serial run.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/options.hpp"
#include "sim/quadcore.hpp"
#include "sim/runner/sweep.hpp"
#include "util/stats.hpp"

using namespace xmig;

namespace {

/** One ablation run: a controller variant applied to one benchmark. */
struct Case
{
    size_t table; ///< 0 = A_R, 1 = R-window, 2 = L2 filtering
    const char *bench;
    const char *label;
    MigrationControllerConfig cc;
};

SweepRow
runCfg(const Case &c, const BenchOptions &opt)
{
    QuadcoreParams params;
    params.instructionsPerBenchmark = opt.instructions;
    params.seed = opt.seed;
    params.machine.controller = c.cc;
    const QuadcoreRow r = runQuadcore(c.bench, params);
    char migs[24];
    std::snprintf(migs, sizeof(migs), "%llu",
                  (unsigned long long)r.migrations);
    return {"", {r.name, c.label, ratio2(r.missRatio()), migs}};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.instructions == 20'000'000)
        opt.instructions = opt.smoke ? 1'000'000 : 10'000'000;

    const MigrationControllerConfig base =
        MachineConfig::defaultController();

    std::vector<Case> cases;
    for (const char *b : {"179.art", "health", "164.gzip"}) {
        MigrationControllerConfig cc = base;
        cc.ar = ArKind::Exact;
        cases.push_back({0, b, "Exact (Definition 1)", cc});
        cc.ar = ArKind::Figure2;
        cases.push_back({0, b, "Figure-2 register", cc});
    }
    for (const char *b : {"179.art", "health"}) {
        MigrationControllerConfig cc = base;
        cc.window = WindowKind::Fifo;
        cases.push_back({1, b, "FIFO (hardware)", cc});
        cc.window = WindowKind::DistinctLru;
        cases.push_back({1, b, "distinct LRU (ideal)", cc});
    }
    for (const char *b : {"bh", "300.twolf", "186.crafty", "179.art"}) {
        MigrationControllerConfig cc = base;
        cc.l2Filtering = true;
        cases.push_back({2, b, "on (paper)", cc});
        cc.l2Filtering = false;
        cases.push_back({2, b, "off", cc});
    }

    SweepSpec spec;
    spec.cells = cases.size();
    spec.run = [&](size_t i) {
        RunResult res;
        res.rows.push_back(runCfg(cases[i], opt));
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);
    const auto slice = [&](size_t which, AsciiTable &table) {
        for (size_t i = 0; i < cases.size(); ++i) {
            if (cases[i].table == which)
                collateRows({results[i]}, table);
        }
    };

    AsciiTable ar({"benchmark", "A_R maintenance", "ratio",
                   "migrations"});
    slice(0, ar);
    std::string out = ar.render("A_R maintenance ablation");

    out += "\n";
    AsciiTable win({"benchmark", "R-window", "ratio", "migrations"});
    slice(1, win);
    out += win.render("R-window organization ablation");

    out += "\n";
    AsciiTable l2f({"benchmark", "L2 filtering", "ratio",
                    "migrations"});
    slice(2, l2f);
    out += l2f.render("L2-filtering ablation: small-footprint "
                      "benchmarks must stay quiet");
    flushAtomically(out, stdout);
    return 0;
}
