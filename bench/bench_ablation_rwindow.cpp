/**
 * @file
 * R-window size ablation (section 3.3).
 *
 * Paper claims reproduced here:
 *  - Circular(N) splits iff N > 2|R| (the negative feedback needs
 *    elements to spend more time outside R than inside);
 *  - after convergence the transition frequency on Circular stays
 *    under ~1/(2|R|) (the R-window acts as a low-pass filter);
 *  - HalfRandom(m) requires |R| not much larger than m for the
 *    positive feedback to act on synchronous groups.
 *
 * Each (stream, |R|) case is one sweep cell (xmig-swift); rows carry
 * their section label and collate in case order, so --jobs N output
 * is bit-identical to the serial run.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/options.hpp"
#include "sim/runner/sweep.hpp"
#include "sim/snapshot.hpp"
#include "util/stats.hpp"

using namespace xmig;

namespace {

std::unique_ptr<ElementStream>
makeStream(const char *behavior, uint64_t n, uint64_t m)
{
    if (std::string(behavior) == "Circular")
        return std::make_unique<CircularStream>(n);
    return std::make_unique<HalfRandomStream>(n, m);
}

SweepRow
report(const std::string &section, const char *behavior, uint64_t n,
       uint64_t m, size_t window, uint64_t refs)
{
    SnapshotParams params;
    params.numElements = n;
    params.references = refs;
    params.engine.windowSize = window;
    auto s1 = makeStream(behavior, n, m);
    const SnapshotResult r = runAffinitySnapshot(*s1, params);

    // A genuine split is balanced, has few transitions, AND is
    // stable: extend the run by half a pass and check that element
    // signs persist (the degenerate below-threshold "split" just
    // tracks the moving R-window).
    params.references = refs + n / 2;
    auto s2 = makeStream(behavior, n, m);
    const SnapshotResult r2 = runAffinitySnapshot(*s2, params);
    uint64_t pos = 0, stable_pos = 0;
    for (uint64_t e = 0; e < n; ++e) {
        if (r.affinity[e] >= 0) {
            ++pos;
            stable_pos += r2.affinity[e] >= 0 ? 1 : 0;
        }
    }
    const double stability = pos == 0
        ? 0.0
        : static_cast<double>(stable_pos) / static_cast<double>(pos);

    const double balance =
        static_cast<double>(
            std::min(r.positive, r.negative)) /
        static_cast<double>(std::max<uint64_t>(
            1, std::max(r.positive, r.negative)));
    const bool split = balance > 0.6 && r.transitionFrequency < 0.1 &&
                       stability > 0.8;

    char nbuf[48], wbuf[16], bal[16], freq[16], bound[16];
    if (m)
        std::snprintf(nbuf, sizeof(nbuf), "%s(N=%llu,m=%llu)", behavior,
                      (unsigned long long)n, (unsigned long long)m);
    else
        std::snprintf(nbuf, sizeof(nbuf), "%s(N=%llu)", behavior,
                      (unsigned long long)n);
    std::snprintf(wbuf, sizeof(wbuf), "%zu", window);
    std::snprintf(bal, sizeof(bal), "%.2f", balance);
    std::snprintf(freq, sizeof(freq), "%.5f", r.transitionFrequency);
    std::snprintf(bound, sizeof(bound), "%.5f",
                  1.0 / (2.0 * static_cast<double>(window)));
    return {section,
            {nbuf, wbuf, bal, freq, bound, split ? "yes" : "no"}};
}

/** One sweep case: stream parameters under a section label. */
struct Case
{
    std::string section;
    const char *behavior;
    uint64_t n;
    uint64_t m;
    size_t window;
};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const uint64_t kRefs = 1'500'000;

    std::vector<Case> cases;
    const std::string sec1 =
        "Circular, N = 4000: threshold at |R| = 2000";
    for (size_t w : {50, 100, 500, 1000, 1900, 2000, 2500, 3900})
        cases.push_back({sec1, "Circular", 4000, 0, w});
    const std::string sec2 = "Circular, N fixed to 2|R| +/- epsilon";
    for (uint64_t n : {260, 256, 250})
        cases.push_back({sec2, "Circular", n, 0, 128});
    const std::string sec3 =
        "HalfRandom(m=300), N = 4000: |R| <~ m required";
    for (size_t w : {50, 100, 300, 600, 1200})
        cases.push_back({sec3, "HalfRandom", 4000, 300, w});

    SweepSpec spec;
    spec.cells = cases.size();
    spec.run = [&](size_t i) {
        const Case &c = cases[i];
        RunResult res;
        res.rows.push_back(
            report(c.section, c.behavior, c.n, c.m, c.window, kRefs));
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);

    AsciiTable table({"stream", "|R|", "balance", "trans-freq",
                      "1/(2|R|)", "split?"});
    collateRows(results, table);

    std::string out =
        "R-window ablation (section 3.3): Circular splits iff "
        "N > 2|R|;\nHalfRandom(m) needs |R| <~ m.\n\n";
    out += table.render();
    flushAtomically(out, stdout);
    return 0;
}
