/**
 * @file
 * Reproduces Figure 3: affinity A_e for each element of a 4000-element
 * working-set under Circular and HalfRandom(300) behavior, |R| = 100,
 * after 20k, 100k and 1000k references.
 *
 * Output per (behavior, t): a bucketed profile of A_e over element id
 * (the shape of the paper's scatter plots), subset balance, the
 * number of same-sign segments (2 = the optimal contiguous split for
 * Circular), and the transition frequency printed on each graph.
 */

#include <cstdio>
#include <memory>

#include "sim/snapshot.hpp"
#include "util/stats.hpp"

using namespace xmig;

namespace {

void
runCase(const char *behavior, uint64_t refs)
{
    constexpr uint64_t kN = 4000;
    std::unique_ptr<ElementStream> stream;
    if (std::string(behavior) == "Circular")
        stream = std::make_unique<CircularStream>(kN);
    else
        stream = std::make_unique<HalfRandomStream>(kN, 300);

    SnapshotParams params;
    params.numElements = kN;
    params.references = refs;
    const SnapshotResult r = runAffinitySnapshot(*stream, params);

    std::printf("\n== Figure 3: %s, t = %lluk references ==\n", behavior,
                (unsigned long long)(refs / 1000));
    std::printf("positive/negative elements: %llu / %llu\n",
                (unsigned long long)r.positive,
                (unsigned long long)r.negative);
    std::printf("same-sign segments over element space: %llu\n",
                (unsigned long long)r.signSegments);
    std::printf("trans: %.4f\n", r.transitionFrequency);

    // Bucketed affinity profile (the shape of the scatter plot).
    constexpr unsigned kBuckets = 40;
    SeriesWriter series("element_bucket", {"mean_affinity"});
    const uint64_t per = kN / kBuckets;
    for (unsigned b = 0; b < kBuckets; ++b) {
        double sum = 0;
        for (uint64_t e = b * per; e < (b + 1) * per; ++e)
            sum += static_cast<double>(r.affinity[e]);
        char label[32];
        std::snprintf(label, sizeof(label), "%llu",
                      (unsigned long long)(b * per));
        series.addPoint(label, {sum / static_cast<double>(per)});
    }
    std::fputs(series.render().c_str(), stdout);
}

} // namespace

int
main()
{
    std::printf("Figure 3 reproduction: affinity snapshots "
                "(N = 4000, |R| = 100, 16-bit affinities)\n");
    std::printf("Paper: after enough references both behaviors split "
                "into two equal-size subsets;\n"
                "Circular reaches ~1 transition per 2000 refs, "
                "HalfRandom(300) ~1 per 300 refs.\n");
    for (uint64_t refs : {20'000ULL, 100'000ULL, 1'000'000ULL}) {
        runCase("Circular", refs);
        runCase("HalfRandom", refs);
    }
    return 0;
}
