/**
 * @file
 * Reproduces Figure 3: affinity A_e for each element of a 4000-element
 * working-set under Circular and HalfRandom(300) behavior, |R| = 100,
 * after 20k, 100k and 1000k references.
 *
 * Output per (behavior, t): a bucketed profile of A_e over element id
 * (the shape of the paper's scatter plots), subset balance, the
 * number of same-sign segments (2 = the optimal contiguous split for
 * Circular), and the transition frequency printed on each graph.
 *
 * Each (behavior, t) case is one sweep cell (xmig-swift); the text
 * blocks are collated in case order, so --jobs N output is
 * bit-identical to the serial run.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/options.hpp"
#include "sim/runner/sweep.hpp"
#include "sim/snapshot.hpp"
#include "util/stats.hpp"

using namespace xmig;

namespace {

std::string
runCase(const char *behavior, uint64_t refs)
{
    constexpr uint64_t kN = 4000;
    std::unique_ptr<ElementStream> stream;
    if (std::string(behavior) == "Circular")
        stream = std::make_unique<CircularStream>(kN);
    else
        stream = std::make_unique<HalfRandomStream>(kN, 300);

    SnapshotParams params;
    params.numElements = kN;
    params.references = refs;
    const SnapshotResult r = runAffinitySnapshot(*stream, params);

    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "\n== Figure 3: %s, t = %lluk references ==\n",
                  behavior, (unsigned long long)(refs / 1000));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "positive/negative elements: %llu / %llu\n",
                  (unsigned long long)r.positive,
                  (unsigned long long)r.negative);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "same-sign segments over element space: %llu\n",
                  (unsigned long long)r.signSegments);
    out += buf;
    std::snprintf(buf, sizeof(buf), "trans: %.4f\n",
                  r.transitionFrequency);
    out += buf;

    // Bucketed affinity profile (the shape of the scatter plot).
    constexpr unsigned kBuckets = 40;
    SeriesWriter series("element_bucket", {"mean_affinity"});
    const uint64_t per = kN / kBuckets;
    for (unsigned b = 0; b < kBuckets; ++b) {
        double sum = 0;
        for (uint64_t e = b * per; e < (b + 1) * per; ++e)
            sum += static_cast<double>(r.affinity[e]);
        char label[32];
        std::snprintf(label, sizeof(label), "%llu",
                      (unsigned long long)(b * per));
        series.addPoint(label, {sum / static_cast<double>(per)});
    }
    out += series.render();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    struct Case
    {
        const char *behavior;
        uint64_t refs;
    };
    std::vector<Case> cases;
    for (uint64_t refs : {20'000ULL, 100'000ULL, 1'000'000ULL}) {
        cases.push_back({"Circular", refs});
        cases.push_back({"HalfRandom", refs});
    }

    SweepSpec spec;
    spec.cells = cases.size();
    spec.run = [&](size_t i) {
        RunResult res;
        res.text = runCase(cases[i].behavior, cases[i].refs);
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);

    std::string out =
        "Figure 3 reproduction: affinity snapshots "
        "(N = 4000, |R| = 100, 16-bit affinities)\n"
        "Paper: after enough references both behaviors split "
        "into two equal-size subsets;\n"
        "Circular reaches ~1 transition per 2000 refs, "
        "HalfRandom(300) ~1 per 300 refs.\n";
    out += collateText(results);
    flushAtomically(out, stdout);
    return 0;
}
