/**
 * @file
 * End-to-end timing estimate (sections 2.2 + 2.4 combined).
 *
 * Grounds the paper's abstract P_mig in the section 2.2 protocol:
 * the migration penalty is the update-bus broadcast of the
 * transition instruction plus the issue-to-retirement pipeline depth
 * (plus mispredict re-steers during the drain). For reasonable
 * pipelines that is a handful of cycles — a *fraction* of one
 * L2-miss/L3-hit penalty, far below every measured break-even — so
 * the stall model converts Table 2's event counts into IPC and
 * speedup estimates.
 */

#include <cstdio>

#include "multicore/timing.hpp"
#include "sim/options.hpp"
#include "sim/quadcore.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.instructions == 20'000'000)
        opt.instructions = 12'000'000;

    // Protocol penalty across pipeline depths.
    AsciiTable proto({"issue-to-retire", "mispredict/instr",
                      "penalty (cycles)", "P_mig (L3-hit units)"});
    for (unsigned depth : {6u, 10u, 16u, 24u}) {
        for (double mp : {0.0, 0.01, 0.05}) {
            PipelineParams p;
            p.issueToRetireStages = depth;
            p.mispredictPerInstr = mp;
            LatencyParams l;
            TimingModel model(l, p);
            char d[8], m[8], pen[16], pm[16];
            std::snprintf(d, sizeof(d), "%u", depth);
            std::snprintf(m, sizeof(m), "%.2f", mp);
            std::snprintf(pen, sizeof(pen), "%.1f",
                          model.migrationPenaltyCycles());
            std::snprintf(pm, sizeof(pm), "%.2f", model.pmig());
            proto.addRow({d, m, pen, pm});
        }
    }
    std::fputs(proto.render("Section 2.2 protocol: migration penalty "
                            "= T broadcast + issue-to-retire depth "
                            "(+ drain re-steers)").c_str(),
               stdout);

    // IPC and speedup per benchmark under the stall model.
    const std::vector<std::string> benches =
        opt.benchmarks.empty()
            ? std::vector<std::string>{"179.art", "188.ammp", "em3d",
                                       "health", "181.mcf", "164.gzip",
                                       "175.vpr"}
            : opt.benchmarks;
    TimingModel model;
    std::printf("\nStall model: baseCPI 1.0, L3 hit 20 cycles, "
                "migration %.1f cycles (P_mig = %.2f)\n\n",
                model.migrationPenaltyCycles(), model.pmig());

    AsciiTable table({"benchmark", "IPC base", "IPC migration",
                      "speedup"});
    for (const auto &name : benches) {
        QuadcoreParams params;
        params.instructionsPerBenchmark = opt.instructions;
        params.seed = opt.seed;
        const QuadcoreRow r = runQuadcore(name, params);
        MachineStats base, mig;
        base.instructions = mig.instructions = r.instructions;
        base.l2Misses = r.l2MissesBaseline;
        mig.l2Misses = r.l2Misses4x;
        mig.migrations = r.migrations;
        char bi[16], mi[16];
        std::snprintf(bi, sizeof(bi), "%.3f", model.ipc(base));
        std::snprintf(mi, sizeof(mi), "%.3f", model.ipc(mig));
        table.addRow({r.name, bi, mi,
                      ratio2(model.speedup(base, mig))});
    }
    std::fputs(table.render("Estimated IPC: single core vs 4-core "
                            "execution migration").c_str(),
               stdout);
    return 0;
}
