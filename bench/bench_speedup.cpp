/**
 * @file
 * xmig-swift speed baseline: the tracked numbers behind
 * BENCH_swift.json.
 *
 * Two measurements:
 *
 *  1. Sweep scaling — wall-clock time of a fixed quad-core sweep (the
 *     Table 2 smoke set, 1M instructions per benchmark) at
 *     --jobs 1, 2, 4, ... up to the host core count. The --jobs 1 run
 *     is the serial reference; ideal scaling halves the time per
 *     doubling until the cell count (6) or the core count binds.
 *
 *  2. Hot-path ns/reference — single-thread microloops over the
 *     per-reference kernels (AffinityEngine::reference with FIFO and
 *     distinct-LRU windows, MigrationMachine::access on a recorded
 *     179.art stream). These move with the per-reference overhaul,
 *     not with the runner.
 *
 * Results go to stdout, to --csv F (one row per measurement), and to
 * --json F as BENCH_swift.json: a machine-readable baseline a CI job
 * can archive and diff. Wall-clock numbers vary with the host, so the
 * JSON records the core count alongside; byte-identity of *sweep
 * output* across --jobs is asserted here as a side effect (cheap
 * insurance in the binary that owns the speed claim).
 *
 * Flags beyond the common set: --smoke (shrink budgets for CI),
 * --csv F, --json F.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/oe_store.hpp"
#include "multicore/machine.hpp"
#include "sim/options.hpp"
#include "sim/quadcore.hpp"
#include "sim/runner/sweep.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

using namespace xmig;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The fixed sweep under test: Table 2's smoke set. */
const std::vector<std::string> kBenches = {
    "164.gzip", "179.art", "181.mcf", "188.ammp", "em3d", "health",
};

/** Run the sweep once at `jobs` workers; returns (seconds, output). */
std::pair<double, std::string>
timedSweep(uint64_t instructions, uint64_t seed, unsigned jobs)
{
    std::string tables[6];
    SweepSpec spec;
    spec.cells = kBenches.size();
    spec.run = [&](size_t i) {
        QuadcoreParams params;
        params.instructionsPerBenchmark = instructions;
        params.seed = seed;
        const QuadcoreRow r = runQuadcore(kBenches[i], params);
        RunResult res;
        char migs[24];
        std::snprintf(migs, sizeof(migs), "%llu",
                      (unsigned long long)r.migrations);
        res.rows.push_back({"", {r.name, ratio2(r.missRatio()), migs}});
        return res;
    };
    const double t0 = now();
    const std::vector<RunResult> results = runSweep(spec, jobs);
    const double dt = now() - t0;
    AsciiTable table({"benchmark", "ratio", "migrations"});
    collateRows(results, table);
    return {dt, table.render()};
}

/** A recorded reference stream for the machine microloop. */
class RefRecorder : public RefSink
{
  public:
    void access(const MemRef &ref) override { refs_.push_back(ref); }
    const std::vector<MemRef> &refs() const { return refs_; }

  private:
    std::vector<MemRef> refs_;
};

double
engineLoopNs(WindowKind window, uint64_t iters)
{
    EngineConfig ec;
    ec.windowSize = 128;
    ec.window = window;
    UnboundedOeStore store(16);
    AffinityEngine engine(ec, store);
    CircularStream stream(4000);
    int64_t sink = 0;
    const double t0 = now();
    for (uint64_t i = 0; i < iters; ++i)
        sink += engine.reference(stream.next()).ae;
    const double dt = now() - t0;
    // Keep the accumulated value alive so the loop cannot fold away.
    if (sink == 0x7eadbeef)
        std::fprintf(stderr, "#");
    return dt / static_cast<double>(iters) * 1e9;
}

double
machineLoopNs(uint64_t iters)
{
    MachineConfig mc;
    MigrationMachine machine(mc);
    RefRecorder recorder;
    makeWorkload("179.art")->run(recorder, 200'000, 42);
    size_t i = 0;
    const double t0 = now();
    for (uint64_t n = 0; n < iters; ++n) {
        machine.access(recorder.refs()[i]);
        i = (i + 1) % recorder.refs().size();
    }
    const double dt = now() - t0;
    return dt / static_cast<double>(iters) * 1e9;
}

std::string
fmt(const char *f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    std::string csv_path, json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc)
            csv_path = argv[++i];
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }
    const uint64_t instr = opt.smoke ? 200'000 : 1'000'000;
    const uint64_t micro_iters = opt.smoke ? 400'000 : 4'000'000;
    const unsigned cores = JobPool::defaultJobs();

    // Sweep scaling: jobs = 1, 2, 4, ... up to the core count (and
    // always the core count itself), plus an oversubscribed point at
    // 8 to cover workers > cells.
    std::vector<unsigned> ladder = {1};
    for (unsigned j = 2; j < cores; j *= 2)
        ladder.push_back(j);
    if (cores > 1)
        ladder.push_back(cores);
    if (ladder.back() < 8)
        ladder.push_back(8);

    std::string out;
    out += "xmig-swift speed baseline: " +
           std::to_string(kBenches.size()) + "-cell quad-core sweep, " +
           std::to_string(instr) + " instructions per benchmark, " +
           std::to_string(cores) + " host cores\n\n";

    AsciiTable scaling({"--jobs", "wall [s]", "speedup", "identical"});
    std::vector<std::pair<unsigned, double>> sweep_times;
    std::string reference_output;
    double serial_s = 0.0;
    bool all_identical = true;
    for (unsigned jobs : ladder) {
        const auto [dt, text] = timedSweep(instr, opt.seed, jobs);
        if (jobs == 1) {
            serial_s = dt;
            reference_output = text;
        }
        const bool same = text == reference_output;
        all_identical = all_identical && same;
        sweep_times.push_back({jobs, dt});
        scaling.addRow({std::to_string(jobs), fmt("%.3f", dt),
                        fmt("%.2fx", serial_s / dt),
                        same ? "yes" : "NO"});
    }
    out += scaling.render("Sweep scaling (output must stay "
                          "byte-identical)");

    // Hot-path microloops.
    const double fifo_ns = engineLoopNs(WindowKind::Fifo, micro_iters);
    const double lru_ns =
        engineLoopNs(WindowKind::DistinctLru, micro_iters);
    const double machine_ns = machineLoopNs(micro_iters);
    out += "\n";
    AsciiTable micro({"kernel", "ns/reference"});
    micro.addRow({"AffinityEngine FIFO/Exact", fmt("%.1f", fifo_ns)});
    micro.addRow(
        {"AffinityEngine DistinctLru/Exact", fmt("%.1f", lru_ns)});
    micro.addRow({"MigrationMachine 179.art", fmt("%.1f", machine_ns)});
    out += micro.render("Per-reference hot path (single thread)");

    if (!all_identical)
        out += "\nERROR: parallel sweep output diverged from the "
               "serial reference\n";
    flushAtomically(out, stdout);

    if (!csv_path.empty()) {
        if (FILE *f = std::fopen(csv_path.c_str(), "w")) {
            std::fprintf(f, "measurement,value\n");
            for (const auto &[jobs, dt] : sweep_times)
                std::fprintf(f, "sweep_wall_s_jobs%u,%.4f\n", jobs,
                             dt);
            std::fprintf(f, "engine_fifo_ns_per_ref,%.2f\n", fifo_ns);
            std::fprintf(f, "engine_lru_ns_per_ref,%.2f\n", lru_ns);
            std::fprintf(f, "machine_ns_per_ref,%.2f\n", machine_ns);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         csv_path.c_str());
        }
    }
    if (!json_path.empty()) {
        if (FILE *f = std::fopen(json_path.c_str(), "w")) {
            // Host metadata: wall-clock and ns/ref numbers only
            // compare within one (core count, compiler) environment,
            // so xmig_report --diff refuses cross-host gates.
            std::fprintf(f,
                         "{\n"
                         "  \"bench\": \"xmig-swift\",\n"
                         "  \"host_cores\": %u,\n"
                         "  \"compiler\": \"%s\",\n"
                         "  \"sweep_cells\": %zu,\n"
                         "  \"instructions_per_cell\": %llu,\n"
                         "  \"output_identical_across_jobs\": %s,\n"
                         "  \"sweep_wall_s\": {",
                         cores,
#if defined(__VERSION__)
                         "" __VERSION__,
#else
                         "unknown",
#endif
                         kBenches.size(),
                         (unsigned long long)instr,
                         all_identical ? "true" : "false");
            for (size_t i = 0; i < sweep_times.size(); ++i)
                std::fprintf(f, "%s\"%u\": %.4f",
                             i == 0 ? "" : ", ", sweep_times[i].first,
                             sweep_times[i].second);
            std::fprintf(f,
                         "},\n"
                         "  \"ns_per_reference\": {\n"
                         "    \"engine_fifo_exact\": %.2f,\n"
                         "    \"engine_distinctlru_exact\": %.2f,\n"
                         "    \"migration_machine_179art\": %.2f\n"
                         "  }\n"
                         "}\n",
                         fifo_ns, lru_ns, machine_ns);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         json_path.c_str());
        }
    }
    return all_identical ? 0 : 1;
}
