/**
 * @file
 * xmig-swift speed baseline: the tracked numbers behind
 * BENCH_swift.json.
 *
 * Two measurements:
 *
 *  1. Sweep scaling — wall-clock time of a fixed quad-core sweep (the
 *     Table 2 smoke set, 1M instructions per benchmark) at
 *     --jobs 1, 2, 4, ... up to the host core count. The --jobs 1 run
 *     is the serial reference; ideal scaling halves the time per
 *     doubling until the cell count (6) or the core count binds.
 *
 *  2. Hot-path ns/reference — single-thread microloops over the
 *     per-reference kernels: AffinityEngine::reference with FIFO and
 *     distinct-LRU windows, the affinity-cache probe/update loop in
 *     both layouts (virtual AoS store vs devirtualized SoA store),
 *     and MigrationMachine on a recorded 179.art stream both
 *     per-reference (access) and batched (accessBatch, K = 64, the
 *     xmig-bolt pipeline). These move with the per-reference
 *     overhaul, not with the runner. The headline gate number is the
 *     *batched* machine kernel — that is the path the sweep runs.
 *
 * Results go to stdout, to --csv F (one row per measurement), and to
 * --json F as BENCH_swift.json: a machine-readable baseline a CI job
 * can archive and diff. Wall-clock numbers vary with the host, so the
 * JSON records the core count alongside; byte-identity of *sweep
 * output* across --jobs is asserted here as a side effect (cheap
 * insurance in the binary that owns the speed claim).
 *
 * Flags beyond the common set: --smoke (shrink budgets for CI),
 * --csv F, --json F.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/oe_store.hpp"
#include "core/soa_oe_store.hpp"
#include "multicore/arena.hpp"
#include "multicore/machine.hpp"
#include "sim/options.hpp"
#include "sim/quadcore.hpp"
#include "sim/runner/sweep.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

using namespace xmig;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The fixed sweep under test: Table 2's smoke set. */
const std::vector<std::string> kBenches = {
    "164.gzip", "179.art", "181.mcf", "188.ammp", "em3d", "health",
};

/** Run the sweep once at `jobs` workers; returns (seconds, output). */
std::pair<double, std::string>
timedSweep(uint64_t instructions, uint64_t seed, unsigned jobs)
{
    std::string tables[6];
    SweepSpec spec;
    spec.cells = kBenches.size();
    spec.run = [&](size_t i) {
        QuadcoreParams params;
        params.instructionsPerBenchmark = instructions;
        params.seed = seed;
        const QuadcoreRow r = runQuadcore(kBenches[i], params);
        RunResult res;
        char migs[24];
        std::snprintf(migs, sizeof(migs), "%llu",
                      (unsigned long long)r.migrations);
        res.rows.push_back({"", {r.name, ratio2(r.missRatio()), migs}});
        return res;
    };
    const double t0 = now();
    const std::vector<RunResult> results = runSweep(spec, jobs);
    const double dt = now() - t0;
    AsciiTable table({"benchmark", "ratio", "migrations"});
    collateRows(results, table);
    return {dt, table.render()};
}

/** A recorded reference stream for the machine microloop. */
class RefRecorder : public RefSink
{
  public:
    void access(const MemRef &ref) override { refs_.push_back(ref); }
    const std::vector<MemRef> &refs() const { return refs_; }

  private:
    std::vector<MemRef> refs_;
};

double
engineLoopNs(WindowKind window, uint64_t iters)
{
    EngineConfig ec;
    ec.windowSize = 128;
    ec.window = window;
    UnboundedOeStore store(16);
    AffinityEngine engine(ec, store);
    CircularStream stream(4000);
    int64_t sink = 0;
    // Untimed warm-up: fill the R-window and the O_e map so the
    // measured loop is steady-state at any --smoke budget.
    for (uint64_t i = 0; i < 8'000; ++i)
        sink += engine.reference(stream.next()).ae;
    const double t0 = now();
    for (uint64_t i = 0; i < iters; ++i)
        sink += engine.reference(stream.next()).ae;
    const double dt = now() - t0;
    // Keep the accumulated value alive so the loop cannot fold away.
    if (sink == 0x7eadbeef)
        std::fprintf(stderr, "#");
    return dt / static_cast<double>(iters) * 1e9;
}

/**
 * Affinity-cache probe/update loop, isolated from the engine: the
 * access pattern is a circular sweep wider than the cache, so every
 * iteration probes and every fourth updates (forcing evictions). The
 * AoS arm goes through the OeStore interface exactly as the scalar
 * engine does; the SoA arm uses the devirtualized *Fast entry points
 * the batched engine uses. Identical streams, so the delta is the
 * layout + dispatch cost alone.
 */
double
probeLoopNs(bool soa, uint64_t iters)
{
    AffinityCacheConfig ac; // the section 4.2 default: 8k, 4-way
    std::unique_ptr<OeStore> aosStore;
    std::unique_ptr<SoaAffinityStore> soaStore;
    OeStore *vstore = nullptr;
    if (soa)
        soaStore = std::make_unique<SoaAffinityStore>(ac);
    else
        vstore = (aosStore = std::make_unique<AffinityCacheStore>(ac))
                     .get();
    // Prime, ~3/4 of the entry count: the sweep mostly hits (the
    // affinity cache's operating regime), with enough conflict misses
    // in the skewed banks to keep the install path warm.
    const uint64_t span = 6'151;
    int64_t sink = 0;
    uint64_t line = 0;
    // Untimed warm-up: two full sweeps install the working set so the
    // measured loop starts in the mostly-hit regime.
    for (uint64_t i = 0; i < 2 * span; ++i) {
        line = line + 1 == span ? 0 : line + 1;
        if (soa)
            sink += soaStore->lookupFast(line, 3);
        else
            sink += vstore->lookup(line, 3);
    }
    const double t0 = now();
    for (uint64_t i = 0; i < iters; ++i) {
        line = line + 1 == span ? 0 : line + 1;
        if (soa) {
            sink += soaStore->lookupFast(line, 3);
            if ((i & 3) == 0)
                soaStore->storeFast(line ^ 0x1555, sink & 0xff);
        } else {
            sink += vstore->lookup(line, 3);
            if ((i & 3) == 0)
                vstore->store(line ^ 0x1555, sink & 0xff);
        }
    }
    const double dt = now() - t0;
    if (sink == 0x7eadbeef)
        std::fprintf(stderr, "#");
    return dt / static_cast<double>(iters) * 1e9;
}

/** Machine kernel over a recorded 179.art stream. With `batched`,
 *  references go through accessBatch() in K = 64 chunks — the path
 *  the quad-core sweep feeds — otherwise one access() per reference
 *  (the pre-bolt baseline, kept to track the amortization win). */
double
machineLoopNs(uint64_t iters, bool batched)
{
    MachineConfig mc;
    MigrationMachine machine(mc);
    RefRecorder recorder;
    makeWorkload("179.art")->run(recorder, 200'000, 42);
    const std::vector<MemRef> &refs = recorder.refs();
    // Untimed warm-up: one full pass fills the L1s/L2s and the
    // affinity cache, so the cold-fill transient does not dominate
    // short --smoke budgets.
    for (const MemRef &ref : refs)
        machine.access(ref);
    size_t i = 0;
    const double t0 = now();
    if (batched) {
        for (uint64_t left = iters; left > 0;) {
            size_t k = MigrationMachine::kBatchRefs;
            if (left < k)
                k = static_cast<size_t>(left);
            if (refs.size() - i < k)
                k = refs.size() - i;
            machine.accessBatch(refs.data() + i, k);
            i = (i + k) % refs.size();
            left -= k;
        }
    } else {
        for (uint64_t n = 0; n < iters; ++n) {
            machine.access(refs[i]);
            i = (i + 1) % refs.size();
        }
    }
    const double dt = now() - t0;
    return dt / static_cast<double>(iters) * 1e9;
}

/**
 * End-to-end xmig-arena feed: ns per reference of a two-tenant
 * throughput arena — probe, producer threads, scheduler arbitration
 * and shared-L3 contention included. This is the whole-pipeline cost
 * bench_figure1 pays per cell, so it moves with the arena plumbing
 * (queue handoff, session bookkeeping), not just the machine kernel.
 */
double
arenaLoopNs(uint64_t instr)
{
    ArenaConfig cfg;
    cfg.mode = ArenaMode::Throughput;
    cfg.tenants = {{"mst", instr, 42}, {"bisort", instr, 42}};
    cfg.probeInstructions = 50'000;
    const double t0 = now();
    TenantArena arena(cfg);
    const ArenaResult r = arena.run();
    const double dt = now() - t0;
    uint64_t refs = 0;
    for (const TenantResult &t : r.tenants)
        refs += t.refs;
    return dt / static_cast<double>(refs > 0 ? refs : 1) * 1e9;
}

std::string
fmt(const char *f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    std::string csv_path, json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc)
            csv_path = argv[++i];
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }
    const uint64_t instr = opt.smoke ? 200'000 : 1'000'000;
    const uint64_t micro_iters = opt.smoke ? 400'000 : 4'000'000;
    const unsigned cores = JobPool::defaultJobs();

    // Sweep scaling: jobs = 1, 2, 4, ... up to the core count (and
    // always the core count itself), plus an oversubscribed point at
    // 8 to cover workers > cells.
    std::vector<unsigned> ladder = {1};
    for (unsigned j = 2; j < cores; j *= 2)
        ladder.push_back(j);
    if (cores > 1)
        ladder.push_back(cores);
    if (ladder.back() < 8)
        ladder.push_back(8);

    std::string out;
    out += "xmig-swift speed baseline: " +
           std::to_string(kBenches.size()) + "-cell quad-core sweep, " +
           std::to_string(instr) + " instructions per benchmark, " +
           std::to_string(cores) + " host cores\n\n";

    AsciiTable scaling({"--jobs", "wall [s]", "speedup", "identical"});
    std::vector<std::pair<unsigned, double>> sweep_times;
    std::string reference_output;
    double serial_s = 0.0;
    bool all_identical = true;
    for (unsigned jobs : ladder) {
        const auto [dt, text] = timedSweep(instr, opt.seed, jobs);
        if (jobs == 1) {
            serial_s = dt;
            reference_output = text;
        }
        const bool same = text == reference_output;
        all_identical = all_identical && same;
        sweep_times.push_back({jobs, dt});
        scaling.addRow({std::to_string(jobs), fmt("%.3f", dt),
                        fmt("%.2fx", serial_s / dt),
                        same ? "yes" : "NO"});
    }
    out += scaling.render("Sweep scaling (output must stay "
                          "byte-identical)");

    // Hot-path microloops.
    const double fifo_ns = engineLoopNs(WindowKind::Fifo, micro_iters);
    const double lru_ns =
        engineLoopNs(WindowKind::DistinctLru, micro_iters);
    const double probe_aos_ns = probeLoopNs(false, micro_iters);
    const double probe_soa_ns = probeLoopNs(true, micro_iters);
    const double machine_ns = machineLoopNs(micro_iters, true);
    const double machine_scalar_ns = machineLoopNs(micro_iters, false);
    const double arena_ns = arenaLoopNs(instr);
    out += "\n";
    AsciiTable micro({"kernel", "ns/reference"});
    micro.addRow({"AffinityEngine FIFO/Exact", fmt("%.1f", fifo_ns)});
    micro.addRow(
        {"AffinityEngine DistinctLru/Exact", fmt("%.1f", lru_ns)});
    micro.addRow({"AffinityCache probe AoS", fmt("%.1f", probe_aos_ns)});
    micro.addRow({"AffinityCache probe SoA", fmt("%.1f", probe_soa_ns)});
    micro.addRow({"MigrationMachine 179.art (K=64)",
                  fmt("%.1f", machine_ns)});
    micro.addRow({"MigrationMachine 179.art (scalar)",
                  fmt("%.1f", machine_scalar_ns)});
    micro.addRow({"TenantArena 2-tenant throughput",
                  fmt("%.1f", arena_ns)});
    out += micro.render("Per-reference hot path (single thread)");

    if (!all_identical)
        out += "\nERROR: parallel sweep output diverged from the "
               "serial reference\n";
    flushAtomically(out, stdout);

    if (!csv_path.empty()) {
        if (FILE *f = std::fopen(csv_path.c_str(), "w")) {
            std::fprintf(f, "measurement,value\n");
            for (const auto &[jobs, dt] : sweep_times)
                std::fprintf(f, "sweep_wall_s_jobs%u,%.4f\n", jobs,
                             dt);
            std::fprintf(f, "engine_fifo_ns_per_ref,%.2f\n", fifo_ns);
            std::fprintf(f, "engine_lru_ns_per_ref,%.2f\n", lru_ns);
            std::fprintf(f, "affinity_probe_aos_ns,%.2f\n",
                         probe_aos_ns);
            std::fprintf(f, "affinity_probe_soa_ns,%.2f\n",
                         probe_soa_ns);
            std::fprintf(f, "machine_ns_per_ref,%.2f\n", machine_ns);
            std::fprintf(f, "machine_scalar_ns_per_ref,%.2f\n",
                         machine_scalar_ns);
            std::fprintf(f, "arena_2tenant_ns_per_ref,%.2f\n",
                         arena_ns);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         csv_path.c_str());
        }
    }
    if (!json_path.empty()) {
        if (FILE *f = std::fopen(json_path.c_str(), "w")) {
            // Host metadata: wall-clock and ns/ref numbers only
            // compare within one (core count, compiler) environment,
            // so xmig_report --diff refuses cross-host gates.
            std::fprintf(f,
                         "{\n"
                         "  \"bench\": \"xmig-swift\",\n"
                         "  \"host_cores\": %u,\n"
                         "  \"compiler\": \"%s\",\n"
                         "  \"sweep_cells\": %zu,\n"
                         "  \"instructions_per_cell\": %llu,\n"
                         "  \"batch_size\": %zu,\n"
                         "  \"output_identical_across_jobs\": %s,\n"
                         "  \"sweep_wall_s\": {",
                         cores,
#if defined(__VERSION__)
                         "" __VERSION__,
#else
                         "unknown",
#endif
                         kBenches.size(),
                         (unsigned long long)instr,
                         MigrationMachine::kBatchRefs,
                         all_identical ? "true" : "false");
            for (size_t i = 0; i < sweep_times.size(); ++i)
                std::fprintf(f, "%s\"%u\": %.4f",
                             i == 0 ? "" : ", ", sweep_times[i].first,
                             sweep_times[i].second);
            std::fprintf(f,
                         "},\n"
                         "  \"ns_per_reference\": {\n"
                         "    \"engine_fifo_exact\": %.2f,\n"
                         "    \"engine_distinctlru_exact\": %.2f,\n"
                         "    \"affinity_probe_aos\": %.2f,\n"
                         "    \"affinity_probe_soa\": %.2f,\n"
                         "    \"migration_machine_179art\": %.2f,\n"
                         "    \"migration_machine_179art_unbatched\":"
                         " %.2f,\n"
                         "    \"arena_2tenant_throughput\": %.2f\n"
                         "  }\n"
                         "}\n",
                         fifo_ns, lru_ns, probe_aos_ns, probe_soa_ns,
                         machine_ns, machine_scalar_ns, arena_ns);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         json_path.c_str());
        }
    }
    return all_identical ? 0 : 1;
}
