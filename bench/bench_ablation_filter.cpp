/**
 * @file
 * Transition-filter ablation (section 3.4).
 *
 * On an unsplittable (uniform random) working-set the affinities
 * saturate to +/-2^15 with equal probability, so with b filter bits
 * the filter performs a +/-2^15 random walk over a 2^b range: the
 * sign-flip frequency halves per extra bit, approximately
 * 1/2^(1+b-16). On a splittable (Circular) set, extra bits only add
 * detection delay at subset boundaries. This bench measures both
 * sides of the trade.
 *
 * Every (regime, filter-bits) pair is one sweep cell (xmig-swift);
 * cells carry their own stream, store and splitter, so --jobs N
 * output is bit-identical to the serial run.
 */

#include <cstdio>

#include "core/oe_store.hpp"
#include "core/splitter.hpp"
#include "sim/options.hpp"
#include "sim/runner/sweep.hpp"
#include "util/stats.hpp"
#include "workloads/synthetic.hpp"

using namespace xmig;

namespace {

SweepRow
randomCase(unsigned filter_bits)
{
    UniformRandomStream stream(4000);
    UnboundedOeStore store(16);
    TwoWaySplitter::Config c;
    c.engine.windowSize = 100;
    c.filterBits = filter_bits;
    TwoWaySplitter splitter(c, store);

    const uint64_t kWarm = 400'000, kMeasure = 1'000'000;
    for (uint64_t t = 0; t < kWarm; ++t)
        splitter.onReference(stream.next());
    const uint64_t t0 = splitter.transitions();
    for (uint64_t t = 0; t < kMeasure; ++t)
        splitter.onReference(stream.next());
    const uint64_t trans = splitter.transitions() - t0;

    char fb[8], pred[16];
    std::snprintf(fb, sizeof(fb), "%u", filter_bits);
    std::snprintf(pred, sizeof(pred), "%.5f",
                  1.0 / static_cast<double>(
                            1ULL << (1 + filter_bits - 16)));
    return {"", {fb, frequency(trans, kMeasure), pred}};
}

SweepRow
circularCase(unsigned filter_bits)
{
    // Measure transitions per cycle and total migration opportunity
    // on a splittable stream: extra bits must not stop transitions.
    CircularStream stream(4000);
    UnboundedOeStore store(16);
    TwoWaySplitter::Config c;
    c.engine.windowSize = 100;
    c.filterBits = filter_bits;
    TwoWaySplitter splitter(c, store);

    const uint64_t kWarm = 1'000'000, kMeasure = 400'000; // 100 cycles
    for (uint64_t t = 0; t < kWarm; ++t)
        splitter.onReference(stream.next());
    const uint64_t t0 = splitter.transitions();
    for (uint64_t t = 0; t < kMeasure; ++t)
        splitter.onReference(stream.next());
    const uint64_t trans = splitter.transitions() - t0;

    char fb[8], per_cycle[16];
    std::snprintf(fb, sizeof(fb), "%u", filter_bits);
    std::snprintf(per_cycle, sizeof(per_cycle), "%.2f",
                  static_cast<double>(trans) / (kMeasure / 4000.0));
    return {"", {fb, frequency(trans, kMeasure), per_cycle}};
}

SweepRow
saturatedCase(unsigned filter_bits)
{
    // The regime the paper's 1/2^(1+b-16) formula describes: the
    // affinity "appears saturated positive or negative with
    // probability 1/2" — a full-magnitude random walk on the filter.
    TransitionFilter filter(filter_bits);
    Rng rng(filter_bits * 17);
    const uint64_t kSteps = 1'000'000;
    for (uint64_t t = 0; t < kSteps; ++t)
        filter.update(rng.chance(0.5) ? 32767 : -32768);

    char fb[8], pred[16];
    std::snprintf(fb, sizeof(fb), "%u", filter_bits);
    std::snprintf(pred, sizeof(pred), "%.5f",
                  1.0 / static_cast<double>(
                            1ULL << (1 + filter_bits - 16)));
    return {"", {fb, frequency(filter.transitions(), kSteps), pred}};
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    constexpr unsigned kMinBits = 16, kMaxBits = 22;
    constexpr size_t kPerRegime = kMaxBits - kMinBits + 1;

    // Cells 0..6 saturated, 7..13 random, 14..20 circular.
    SweepSpec spec;
    spec.cells = 3 * kPerRegime;
    spec.run = [&](size_t i) {
        const unsigned bits =
            kMinBits + static_cast<unsigned>(i % kPerRegime);
        RunResult res;
        if (i < kPerRegime)
            res.rows.push_back(saturatedCase(bits));
        else if (i < 2 * kPerRegime)
            res.rows.push_back(randomCase(bits));
        else
            res.rows.push_back(circularCase(bits));
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);
    const auto slice = [&](size_t regime, AsciiTable &table) {
        const std::vector<RunResult> part(
            results.begin() +
                static_cast<long>(regime * kPerRegime),
            results.begin() +
                static_cast<long>((regime + 1) * kPerRegime));
        collateRows(part, table);
    };

    std::string out =
        "Transition-filter ablation (section 3.4), "
        "16-bit affinities, |R| = 100\n\n";

    AsciiTable sat({"filter-bits", "trans-freq(saturated)",
                    "predicted 1/2^(1+b-16)"});
    slice(0, sat);
    out += sat.render("Saturated +/-2^15 random inputs (the "
                      "formula's regime): measured vs predicted");

    out += "\n";
    AsciiTable rnd({"filter-bits", "trans-freq(random)",
                    "predicted 1/2^(1+b-16)"});
    slice(1, rnd);
    out += rnd.render("Engine-driven uniform-random stream: "
                      "affinities are not always saturated, so "
                      "frequencies sit below the bound but still "
                      "halve per bit");

    out += "\n";
    AsciiTable circ({"filter-bits", "trans-freq(circular)",
                     "transitions/cycle"});
    slice(2, circ);
    out += circ.render("Splittable (Circular N=4000) stream: "
                       "transitions survive (2/cycle ideal), only "
                       "delayed");
    flushAtomically(out, stdout);
    return 0;
}
