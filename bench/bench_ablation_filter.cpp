/**
 * @file
 * Transition-filter ablation (section 3.4).
 *
 * On an unsplittable (uniform random) working-set the affinities
 * saturate to +/-2^15 with equal probability, so with b filter bits
 * the filter performs a +/-2^15 random walk over a 2^b range: the
 * sign-flip frequency halves per extra bit, approximately
 * 1/2^(1+b-16). On a splittable (Circular) set, extra bits only add
 * detection delay at subset boundaries. This bench measures both
 * sides of the trade.
 */

#include <cstdio>

#include "core/oe_store.hpp"
#include "core/splitter.hpp"
#include "util/stats.hpp"
#include "workloads/synthetic.hpp"

using namespace xmig;

namespace {

void
randomCase(AsciiTable &table, unsigned filter_bits)
{
    UniformRandomStream stream(4000);
    UnboundedOeStore store(16);
    TwoWaySplitter::Config c;
    c.engine.windowSize = 100;
    c.filterBits = filter_bits;
    TwoWaySplitter splitter(c, store);

    const uint64_t kWarm = 400'000, kMeasure = 1'000'000;
    for (uint64_t t = 0; t < kWarm; ++t)
        splitter.onReference(stream.next());
    const uint64_t t0 = splitter.transitions();
    for (uint64_t t = 0; t < kMeasure; ++t)
        splitter.onReference(stream.next());
    const uint64_t trans = splitter.transitions() - t0;

    char fb[8], pred[16];
    std::snprintf(fb, sizeof(fb), "%u", filter_bits);
    std::snprintf(pred, sizeof(pred), "%.5f",
                  1.0 / static_cast<double>(
                            1ULL << (1 + filter_bits - 16)));
    table.addRow({fb, frequency(trans, kMeasure), pred});
}

void
circularCase(AsciiTable &table, unsigned filter_bits)
{
    // Measure transitions per cycle and total migration opportunity
    // on a splittable stream: extra bits must not stop transitions.
    CircularStream stream(4000);
    UnboundedOeStore store(16);
    TwoWaySplitter::Config c;
    c.engine.windowSize = 100;
    c.filterBits = filter_bits;
    TwoWaySplitter splitter(c, store);

    const uint64_t kWarm = 1'000'000, kMeasure = 400'000; // 100 cycles
    for (uint64_t t = 0; t < kWarm; ++t)
        splitter.onReference(stream.next());
    const uint64_t t0 = splitter.transitions();
    for (uint64_t t = 0; t < kMeasure; ++t)
        splitter.onReference(stream.next());
    const uint64_t trans = splitter.transitions() - t0;

    char fb[8], per_cycle[16];
    std::snprintf(fb, sizeof(fb), "%u", filter_bits);
    std::snprintf(per_cycle, sizeof(per_cycle), "%.2f",
                  static_cast<double>(trans) / (kMeasure / 4000.0));
    table.addRow({fb, frequency(trans, kMeasure), per_cycle});
}

} // namespace

void
saturatedCase(AsciiTable &table, unsigned filter_bits)
{
    // The regime the paper's 1/2^(1+b-16) formula describes: the
    // affinity "appears saturated positive or negative with
    // probability 1/2" — a full-magnitude random walk on the filter.
    TransitionFilter filter(filter_bits);
    Rng rng(filter_bits * 17);
    const uint64_t kSteps = 1'000'000;
    for (uint64_t t = 0; t < kSteps; ++t)
        filter.update(rng.chance(0.5) ? 32767 : -32768);

    char fb[8], pred[16];
    std::snprintf(fb, sizeof(fb), "%u", filter_bits);
    std::snprintf(pred, sizeof(pred), "%.5f",
                  1.0 / static_cast<double>(
                            1ULL << (1 + filter_bits - 16)));
    table.addRow({fb, frequency(filter.transitions(), kSteps), pred});
}

int
main()
{
    std::printf("Transition-filter ablation (section 3.4), "
                "16-bit affinities, |R| = 100\n\n");

    AsciiTable sat({"filter-bits", "trans-freq(saturated)",
                    "predicted 1/2^(1+b-16)"});
    for (unsigned b = 16; b <= 22; ++b)
        saturatedCase(sat, b);
    std::fputs(sat.render("Saturated +/-2^15 random inputs (the "
                          "formula's regime): measured vs predicted")
                   .c_str(),
               stdout);

    std::printf("\n");
    AsciiTable rnd({"filter-bits", "trans-freq(random)",
                    "predicted 1/2^(1+b-16)"});
    for (unsigned b = 16; b <= 22; ++b)
        randomCase(rnd, b);
    std::fputs(rnd.render("Engine-driven uniform-random stream: "
                          "affinities are not always saturated, so "
                          "frequencies sit below the bound but still "
                          "halve per bit").c_str(),
               stdout);

    std::printf("\n");
    AsciiTable circ({"filter-bits", "trans-freq(circular)",
                     "transitions/cycle"});
    for (unsigned b = 16; b <= 22; ++b)
        circularCase(circ, b);
    std::fputs(circ.render("Splittable (Circular N=4000) stream: "
                           "transitions survive (2/cycle ideal), only "
                           "delayed").c_str(),
               stdout);
    return 0;
}
