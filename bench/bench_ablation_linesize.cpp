/**
 * @file
 * Cache-line-size ablation (end of section 4.1).
 *
 * The paper observes that splittability is less pronounced with
 * larger lines: merging nodes of the reference graph (larger lines)
 * can only increase the minimum cut. This bench runs the Figures 4/5
 * profile experiment at 32/64/128/256-byte lines on representative
 * splittable benchmarks and reports the p1-p4 gap and the transition
 * frequency.
 *
 * One sweep cell per (benchmark, line size) pair (xmig-swift); rows
 * collate in sweep order, so --jobs N output is bit-identical to the
 * serial run.
 */

#include <cstdio>

#include "sim/options.hpp"
#include "sim/runner/sweep.hpp"
#include "sim/stack_profile.hpp"
#include "util/stats.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.instructions == 20'000'000)
        opt.instructions = opt.smoke ? 1'000'000 : 10'000'000;

    const std::vector<std::string> benches =
        opt.benchmarks.empty()
            ? std::vector<std::string>{"179.art", "188.ammp", "health"}
            : opt.benchmarks;
    const uint64_t lines[] = {32, 64, 128, 256};
    constexpr size_t kNumLines = 4;

    SweepSpec spec;
    spec.cells = benches.size() * kNumLines;
    spec.run = [&](size_t i) {
        const std::string &name = benches[i / kNumLines];
        const uint64_t line = lines[i % kNumLines];
        StackProfileParams params;
        params.instructionsPerBenchmark = opt.instructions;
        params.seed = opt.seed;
        params.lineBytes = line;
        const StackProfileResult r = runStackProfile(name, params);
        char gap[16];
        std::snprintf(gap, sizeof(gap), "%.3f", r.maxGap());
        RunResult res;
        res.rows.push_back(
            {"",
             {r.name, sizeLabel(line), gap,
              frequency(r.transitions, r.stackAccesses),
              sizeLabel(r.footprintLines * line)}});
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);

    AsciiTable table({"benchmark", "line", "max(p1-p4)", "trans-freq",
                      "footprint"});
    collateRows(results, table);
    flushAtomically(table.render("Line-size ablation: splittability "
                                 "gap p1-p4 vs line size"),
                    stdout);
    return 0;
}
