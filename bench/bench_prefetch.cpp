/**
 * @file
 * Prefetching vs execution migration (section 6 extension).
 *
 * The paper's conclusion leaves open how the two combine: much of
 * the observed splittability comes from circular behavior that a
 * prefetcher also captures, but "prefetching into a larger cache
 * leaves more room for the unpredictable portion of the working-set".
 * This harness runs each benchmark under four machines — baseline,
 * baseline+stride-prefetch, migration, migration+prefetch — and
 * reports instructions per L2 miss for each, plus prefetch accuracy.
 *
 * Expected shape: array scanners (art, swim) are served by either
 * technique; pointer chasers (health, em3d, mcf) defeat the
 * prefetcher but still split; random programs (gzip) gain from
 * neither; and migration+prefetch together cover the union.
 */

#include <cstdio>

#include "multicore/machine.hpp"
#include "sim/options.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.instructions == 20'000'000)
        opt.instructions = 12'000'000; // 4 machines per benchmark

    const std::vector<std::string> benches =
        opt.benchmarks.empty()
            ? std::vector<std::string>{"179.art", "171.swim", "181.mcf",
                                       "188.ammp", "em3d", "health",
                                       "164.gzip"}
            : opt.benchmarks;

    AsciiTable table({"benchmark", "base", "base+pf", "mig", "mig+pf",
                      "pf-accuracy"});
    for (const auto &name : benches) {
        MachineConfig base_cfg;
        base_cfg.numCores = 1;
        MachineConfig pf_cfg = base_cfg;
        pf_cfg.prefetch.kind = PrefetchKind::Stride;
        pf_cfg.prefetch.degree = 4;
        MachineConfig mig_cfg; // 4-core paper machine
        MachineConfig migpf_cfg = mig_cfg;
        migpf_cfg.prefetch = pf_cfg.prefetch;

        MigrationMachine base(base_cfg), pf(pf_cfg), mig(mig_cfg),
            migpf(migpf_cfg);
        TeeSink t1(base, pf), t2(mig, migpf), all(t1, t2);
        auto workload = makeWorkload(name);
        workload->run(all, opt.instructions, opt.seed);

        const uint64_t instr = base.stats().instructions;
        const double accuracy = pf.stats().prefetchFills == 0
            ? 0.0
            : static_cast<double>(pf.stats().prefetchUseful) /
              static_cast<double>(pf.stats().prefetchFills);
        table.addRow({workload->info().name,
                      perEvent(instr, base.stats().l2Misses),
                      perEvent(instr, pf.stats().l2Misses),
                      perEvent(instr, mig.stats().l2Misses),
                      perEvent(instr, migpf.stats().l2Misses),
                      ratio2(accuracy)});
    }
    std::fputs(table.render("Instructions per L2 miss (higher is "
                            "better): baseline, stride prefetch "
                            "(degree 4), 4-core migration, and both")
                   .c_str(),
               stdout);
    return 0;
}
