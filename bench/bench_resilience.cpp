/**
 * @file
 * xmig-iron resilience benchmark: degradation curves and recovery.
 *
 * Two experiments on the section 4.2 quad-core machine:
 *
 *  1. Degradation sweep — a soft-error rate r is swept over decades
 *     and applied to every affinity-state site (A_e, Delta, A_R, O_e,
 *     tags); the migration fabric and update bus degrade with it
 *     (drop/delay rates scale with r, capped; the fabric sees orders
 *     of magnitude fewer opportunities, hence the larger multiplier).
 *     Reports L2 misses, the miss ratio vs the clean run, migration
 *     frequency, fault/recovery counters, watchdog interventions,
 *     and estimated cycles including recovery overheads
 *     (TimingModel::cyclesWithRecovery). The watchdog is enabled so
 *     its livelock suppression shows up in the curve.
 *
 *  2. Recovery after core loss — a scripted `core_off` unplugs core 2
 *     (and its L2) mid-run; the windowed L2-miss rate around the
 *     event yields the recovery time: references until the miss rate
 *     first returns to the post-loss steady state (tail mean).
 *
 * Flags beyond the common BenchOptions set:
 *   --smoke        tiny budgets + a 2-point sweep (CI)
 *   --csv-dir DIR  write degradation.csv and recovery.csv into DIR
 *
 * On a -DXMIG_FAULT=OFF build only the clean row runs (the hooks are
 * compiled away; arming a plan would be a fatal error).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "multicore/machine.hpp"
#include "multicore/timing.hpp"
#include "sim/options.hpp"
#include "sim/runner/sweep.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

namespace {

/** Forward refs into a machine, recording per-window event deltas. */
class WindowedSink : public RefSink
{
  public:
    struct Window
    {
        uint64_t endRef = 0;
        uint64_t l2Misses = 0;
        uint64_t migrations = 0;
    };

    WindowedSink(MigrationMachine &machine, uint64_t every)
        : machine_(machine),
          every_(every)
    {
    }

    void
    access(const MemRef &ref) override
    {
        machine_.access(ref);
        if (++refs_ % every_ != 0)
            return;
        const MachineStats &s = machine_.stats();
        windows_.push_back({refs_, s.l2Misses - lastMisses_,
                            s.migrations - lastMigrations_});
        lastMisses_ = s.l2Misses;
        lastMigrations_ = s.migrations;
    }

    uint64_t refs() const { return refs_; }
    const std::vector<Window> &windows() const { return windows_; }

  private:
    MigrationMachine &machine_;
    uint64_t every_;
    uint64_t refs_ = 0;
    uint64_t lastMisses_ = 0;
    uint64_t lastMigrations_ = 0;
    std::vector<Window> windows_;
};

/** Count the references a workload emits (for placing `at=` rules). */
class RefCounterSink : public RefSink
{
  public:
    void access(const MemRef &) override { ++refs_; }
    uint64_t refs() const { return refs_; }

  private:
    uint64_t refs_ = 0;
};

/** The sweep's fault plan: every affinity site at r, fabric scaled. */
std::string
sweepPlan(double r)
{
    // Fabric opportunities (migration issues) are ~1000x rarer than
    // soft-error opportunities (requests), so the drop/delay rates
    // scale up with a cap; bus drops sit in between.
    const double fabric = std::min(0.25, r * 2.5e3);
    const double bus = std::min(0.01, r * 10.0);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "seed=7;"
                  "rate=%g:flip=ae;rate=%g:flip=delta;rate=%g:flip=ar;"
                  "rate=%g:flip=oe;rate=%g:flip=tag;"
                  "rate=%g:mig_drop;rate=%g:mig_delay=16;"
                  "rate=%g:bus_drop",
                  r, r, r, r, r, fabric, fabric, bus);
    return buf;
}

FILE *
openCsv(const std::string &dir, const char *name)
{
    if (dir.empty())
        return nullptr;
    const std::string path = dir + "/" + name;
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
    return f;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    const bool smoke = opt.smoke;
    std::string csv_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc)
            csv_dir = argv[++i];
    }
    if (opt.instructions == 20'000'000)
        opt.instructions = 8'000'000; // resilience curves, not Table 2
    if (smoke)
        opt.instructions = std::min<uint64_t>(opt.instructions,
                                              2'000'000);

    // mcf migrates every ~4500 instructions (Table 2), so both the
    // affinity state and the fabric see constant fault pressure —
    // the curve is monotone where low-migration kernels are flat.
    const std::string bench =
        opt.benchmarks.empty() ? "181.mcf" : opt.benchmarks.front();
    const std::vector<double> rates =
        smoke ? std::vector<double>{0.0, 1e-4}
              : std::vector<double>{0.0, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4};

    std::printf("xmig-iron resilience: %s, %llu instructions per "
                "point%s\n\n",
                bench.c_str(),
                static_cast<unsigned long long>(opt.instructions),
                smoke ? " (smoke)" : "");

    // ----- Experiment 1: degradation sweep ---------------------------
    TimingModel timing;
    FILE *deg_csv = openCsv(csv_dir, "degradation.csv");
    if (deg_csv)
        std::fprintf(deg_csv,
                     "rate,l2_misses,miss_ratio_vs_clean,migrations,"
                     "faults_injected,mig_timeouts,mig_retries,"
                     "wd_livelocks,wd_suppressed,cycles,slowdown\n");

    AsciiTable table({"fault-rate", "L2miss", "ratio", "migration",
                      "faults", "timeouts", "wd-stops", "slowdown"});

    // The sweep points are independent simulations (the cross-point
    // ratio/slowdown columns derive from the clean point at collation
    // time), so each rate is one xmig-swift sweep cell.
    std::vector<double> run_rates;
    bool hooks_out = false;
    for (double r : rates) {
        if (r > 0.0 && !kFaultEnabled) {
            hooks_out = true;
            break;
        }
        run_rates.push_back(r);
    }

    /** Raw per-point results; ratios are derived after the join. */
    struct DegPoint
    {
        MachineStats stats;
        RecoveryStats rec;
        WatchdogStats wd;
        uint64_t faults = 0;
        double cycles = 0.0;
    };
    std::vector<DegPoint> points(run_rates.size());

    SweepSpec spec;
    spec.cells = run_rates.size();
    spec.run = [&](size_t i) {
        const double r = run_rates[i];
        MachineConfig cfg;
        cfg.controller.watchdog.enabled = true;
        if (r > 0.0)
            cfg.faultPlan = sweepPlan(r);
        MigrationMachine machine(cfg);
        makeWorkload(bench)->run(machine, opt.instructions, opt.seed);

        DegPoint &p = points[i];
        p.stats = machine.stats();
        p.rec = machine.controller()->recovery();
        p.wd = machine.controller()->watchdog().stats();
        p.faults = machine.injector()
            ? machine.injector()->stats().total()
            : 0;
        p.cycles = timing.cyclesWithRecovery(p.stats, p.rec);
        return RunResult{};
    };
    runSweep(spec, opt.jobs);

    if (hooks_out)
        std::printf("(fault hooks compiled out: faulted rows "
                    "skipped)\n");

    uint64_t clean_misses = 0;
    double clean_cycles = 0.0;
    for (size_t i = 0; i < run_rates.size(); ++i) {
        const double r = run_rates[i];
        const DegPoint &p = points[i];
        const MachineStats &s = p.stats;
        if (r == 0.0) {
            clean_misses = s.l2Misses;
            clean_cycles = p.cycles;
        }
        const double ratio =
            clean_misses == 0
                ? 1.0
                : static_cast<double>(s.l2Misses) /
                      static_cast<double>(clean_misses);
        const double slowdown =
            clean_cycles == 0.0 ? 1.0 : p.cycles / clean_cycles;

        char rb[24], miss[24], fl[24], to[24], wds[24], sd[24];
        std::snprintf(rb, sizeof(rb), "%g", r);
        std::snprintf(miss, sizeof(miss), "%llu",
                      static_cast<unsigned long long>(s.l2Misses));
        std::snprintf(fl, sizeof(fl), "%llu",
                      static_cast<unsigned long long>(p.faults));
        std::snprintf(to, sizeof(to), "%llu",
                      static_cast<unsigned long long>(
                          p.rec.migTimeouts));
        std::snprintf(wds, sizeof(wds), "%llu",
                      static_cast<unsigned long long>(
                          p.wd.suppressed));
        std::snprintf(sd, sizeof(sd), "%.3f", slowdown);
        table.addRow({rb, miss, ratio2(ratio),
                      perEvent(s.instructions, s.migrations), fl, to,
                      wds, sd});
        if (deg_csv)
            std::fprintf(deg_csv,
                         "%g,%llu,%.4f,%llu,%llu,%llu,%llu,%llu,"
                         "%llu,%.0f,%.4f\n",
                         r,
                         static_cast<unsigned long long>(s.l2Misses),
                         ratio,
                         static_cast<unsigned long long>(s.migrations),
                         static_cast<unsigned long long>(p.faults),
                         static_cast<unsigned long long>(
                             p.rec.migTimeouts),
                         static_cast<unsigned long long>(
                             p.rec.migRetries),
                         static_cast<unsigned long long>(
                             p.wd.livelocks),
                         static_cast<unsigned long long>(
                             p.wd.suppressed),
                         p.cycles, slowdown);
    }
    std::fputs(table.render("Degradation curve: affinity soft-error "
                            "rate vs misses, migrations and estimated "
                            "slowdown (watchdog on)").c_str(),
               stdout);
    if (deg_csv)
        std::fclose(deg_csv);

    if (!kFaultEnabled) {
        std::printf("\nRecovery experiment needs the fault hooks; "
                    "rebuild with -DXMIG_FAULT=ON.\n");
        return 0;
    }

    // ----- Experiment 2: recovery after core loss --------------------
    // Size the scripted unplug in references: replay the workload
    // through a counting sink (deterministic streams make the count
    // exact), then fire core_off=2 at the halfway reference.
    RefCounterSink counter;
    makeWorkload(bench)->run(counter, opt.instructions, opt.seed);
    const uint64_t fault_ref = counter.refs() / 2;
    const uint64_t window =
        std::max<uint64_t>(counter.refs() / 100, 10'000);

    char plan[64];
    std::snprintf(plan, sizeof(plan), "seed=1;at=%llu:core_off=2",
                  static_cast<unsigned long long>(fault_ref));
    MachineConfig cfg;
    cfg.faultPlan = plan;
    MigrationMachine machine(cfg);
    WindowedSink sink(machine, window);
    makeWorkload(bench)->run(sink, opt.instructions, opt.seed);

    const auto &windows = sink.windows();
    // Post-loss steady state: mean windowed miss count over the tail
    // quarter; recovery = first post-fault window back within 1.5x.
    std::vector<WindowedSink::Window> post;
    for (const auto &w : windows)
        if (w.endRef > fault_ref)
            post.push_back(w);
    double steady = 0.0;
    uint64_t recovered_at = 0;
    if (post.size() >= 4) {
        const size_t tail = post.size() / 4;
        for (size_t i = post.size() - tail; i < post.size(); ++i)
            steady += static_cast<double>(post[i].l2Misses);
        steady /= static_cast<double>(tail);
        for (const auto &w : post) {
            if (static_cast<double>(w.l2Misses) <= steady * 1.5) {
                recovered_at = w.endRef;
                break;
            }
        }
    }

    const RecoveryStats &rec = machine.controller()->recovery();
    std::printf("\nRecovery after core loss (core_off=2 at reference "
                "%llu):\n",
                static_cast<unsigned long long>(fault_ref));
    std::printf("  live cores %u, split ways %u, resplits %llu, "
                "forced migrations %llu\n",
                machine.controller()->liveCores(),
                machine.controller()->splitWays(),
                static_cast<unsigned long long>(rec.resplits),
                static_cast<unsigned long long>(rec.forcedMigrations));
    std::printf("  dirty L2 lines lost %llu, post-loss steady state "
                "%.0f misses/%lluk refs\n",
                static_cast<unsigned long long>(
                    machine.stats().dirtyLinesLost),
                steady,
                static_cast<unsigned long long>(window / 1000));
    if (recovered_at > 0)
        std::printf("  recovered (windowed miss rate within 1.5x of "
                    "steady state) after %llu references\n",
                    static_cast<unsigned long long>(recovered_at -
                                                    fault_ref));
    else
        std::printf("  run too short to locate the recovery point\n");

    FILE *rec_csv = openCsv(csv_dir, "recovery.csv");
    if (rec_csv) {
        std::fprintf(rec_csv,
                     "end_ref,l2_misses,migrations,phase\n");
        for (const auto &w : windows)
            std::fprintf(rec_csv, "%llu,%llu,%llu,%s\n",
                         static_cast<unsigned long long>(w.endRef),
                         static_cast<unsigned long long>(w.l2Misses),
                         static_cast<unsigned long long>(w.migrations),
                         w.endRef <= fault_ref ? "pre" : "post");
        std::fclose(rec_csv);
    }
    return 0;
}
