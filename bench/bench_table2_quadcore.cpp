/**
 * @file
 * Reproduces Table 2: the 4-core machine with 512-KB L2 caches.
 *
 * Columns, as in the paper, are instructions per event (higher is
 * better): L1 miss, L2 miss (single-core baseline), 4xL2 miss (four
 * cores with execution migration), the L2-miss ratio (< 1 means
 * migration removed L2 misses), and migrations. The final column is
 * the paper's measured ratio for reference.
 *
 * Each benchmark is one sweep cell (xmig-swift): cells run on --jobs
 * workers with fully private machines, and the table is collated in
 * benchmark order, so the output is bit-identical at any job count.
 * --smoke selects a 6-benchmark subset at 1M instructions (CI and the
 * parallel-determinism test).
 */

#include <cstdio>
#include <map>
#include <memory>

#include "sim/observe.hpp"
#include "sim/options.hpp"
#include "sim/quadcore.hpp"
#include "sim/runner/sweep.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

namespace {

/** Paper Table 2 "ratio" column, for side-by-side comparison. */
const std::map<std::string, double> kPaperRatio = {
    {"164.gzip", 1.01}, {"171.swim", 1.00}, {"172.mgrid", 1.00},
    {"175.vpr", 1.60},  {"176.gcc", 0.95},  {"179.art", 0.03},
    {"181.mcf", 0.67},  {"186.crafty", 1.13}, {"188.ammp", 0.17},
    {"197.parser", 1.00}, {"255.vortex", 1.10}, {"256.bzip2", 0.35},
    {"300.twolf", 1.00}, {"bh", 2.16}, {"bisort", 1.08},
    {"em3d", 0.14}, {"health", 0.14}, {"mst", 1.00},
};

/** --smoke subset: a splittable/neutral mix that runs in seconds. */
const std::vector<std::string> kSmokeBenches = {
    "164.gzip", "179.art", "181.mcf", "188.ammp", "em3d", "health",
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.smoke && opt.instructions == 20'000'000)
        opt.instructions = 1'000'000;
    QuadcoreParams params;
    params.instructionsPerBenchmark = opt.instructions;
    params.warmupInstructions = opt.warmup;
    params.seed = opt.seed;
    // Faults apply to the migration machine only; the single-core
    // baseline stays a clean reference (see runQuadcore).
    params.machine.faultPlan = opt.faultPlan;

    const std::vector<std::string> names = !opt.benchmarks.empty()
        ? opt.benchmarks
        : opt.smoke ? kSmokeBenches : allWorkloadNames();

    // xmig-scope outputs observe the first selected benchmark (one
    // registry per run; see sim/observe.hpp).
    std::unique_ptr<RunObservatory> observatory;
    if (opt.observing())
        observatory =
            std::make_unique<RunObservatory>(observeOptionsOf(opt));

    SweepSpec spec;
    spec.cells = names.size();
    spec.run = [&](size_t i) {
        const QuadcoreRow r =
            runQuadcore(names[i], params,
                        i == 0 ? observatory.get() : nullptr);
        const auto paper = kPaperRatio.find(r.name);
        RunResult res;
        res.rows.push_back({r.suite,
                            {
                                r.name,
                                perEvent(r.instructions, r.l1Misses),
                                perEvent(r.instructions,
                                         r.l2MissesBaseline),
                                perEvent(r.instructions, r.l2Misses4x),
                                ratio2(r.missRatio()),
                                perEvent(r.instructions, r.migrations),
                                paper == kPaperRatio.end()
                                    ? "-"
                                    : ratio2(paper->second),
                            }});
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);

    AsciiTable table({"benchmark", "L1miss", "L2miss", "4xL2miss",
                      "ratio", "migration", "paper-ratio"});
    collateRows(results, table);
    std::string out =
        table.render("Table 2 reproduction: instructions per event "
                     "(higher is better); ratio < 1 means migration "
                     "removed L2 misses");
    out += "\nNotes: 16KB 4-way L1s (WT/NWA DL1), 512KB 4-way "
           "skewed L2 per core,\n8k-entry affinity cache, 25% "
           "sampling, 18-bit filters, L2 filtering.\n";
    flushAtomically(out, stdout);
    return 0;
}
