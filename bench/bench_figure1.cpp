/**
 * @file
 * Reproduces Figure 1: migration mode vs throughput mode.
 *
 * The paper's opening comparison pits one program roaming the
 * aggregate L2 (*migration mode*) against N programs pinned to N
 * cores and contending for the shared cache (*throughput mode*).
 * bench_figure1 sweeps Table-1 workload mixes through both modes of
 * the xmig-arena multi-tenant machine and emits the crossover the
 * figure plots: cache-hungry pairs finish sooner time-sharing the
 * chip in migration mode (the aggregate 2-MB L2 removes their
 * misses), while cache-light quads finish sooner space-sharing it in
 * throughput mode (4-way parallelism with nothing to fight over).
 *
 * Each (mix, mode, L3-policy) triple is one sweep cell (xmig-swift):
 * cells run on --jobs workers with fully private arenas and results
 * are collated in cell order, so stdout and the --csv file are
 * byte-identical at any job count. Throughput mode is additionally
 * swept under both shared-L3 policies (unpartitioned vs LFOC-style
 * way clusters), and the CSV carries the fairness metrics that
 * separate them.
 *
 * xmig-scope: --metrics-out dumps the first cell's registry —
 * per-tenant machine counters, per-tenant turn-latency histograms
 * (p50/p95/p99 in the JSONL), shared-L3 cluster stats. --journal-out
 * dumps the first cell's xmig-lens journal (tenant admission, turns,
 * finishes, partitions).
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "multicore/arena.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "sim/options.hpp"
#include "sim/runner/sweep.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

using namespace xmig;

namespace {

struct MixSpec
{
    const char *name;
    std::vector<const char *> benches;
};

/**
 * Table-1 mixes: three cache-hungry pairs (Table 2 shows art, mcf,
 * ammp, em3d and health losing most L2 misses to migration), one
 * contending hungry+light pair (the fairness showcase), and two
 * cache-light quads.
 */
const std::vector<MixSpec> kMixes = {
    {"art+mcf", {"179.art", "181.mcf"}},
    {"art+ammp", {"179.art", "188.ammp"}},
    {"em3d+health", {"em3d", "health"}},
    {"mcf+gzip", {"181.mcf", "164.gzip"}},
    {"gzip+swim+mgrid+parser",
     {"164.gzip", "171.swim", "172.mgrid", "197.parser"}},
    {"bisort+mst+twolf+vortex",
     {"bisort", "mst", "300.twolf", "255.vortex"}},
};

/** The three swept (mode, policy) arms. */
struct Arm
{
    ArenaMode mode;
    L3Policy policy;
};

const std::vector<Arm> kArms = {
    {ArenaMode::Migration, L3Policy::Unpartitioned},
    {ArenaMode::Throughput, L3Policy::Unpartitioned},
    {ArenaMode::Throughput, L3Policy::WayClustered},
};

/** Everything one cell reports (collated post-join, cell order). */
struct CellOut
{
    double makespan = 0;
    double aggregateIpc = 0;
    double weightedSpeedup = 0;
    double unfairness = 1;
    double jainFairness = 1;
    uint64_t l3Accesses = 0;
    uint64_t l3Misses = 0;
    uint64_t instructions = 0;
    double maxP99 = 0;
};

std::string
fmt1(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

std::string
fmtU(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (!opt.samplesOut.empty() || !opt.traceOut.empty())
        XMIG_FATAL("bench_figure1 supports --metrics-out and "
                   "--journal-out only (arena runs have no sampler "
                   "or tracer hookup)");
    if (opt.instructions == 20'000'000)
        opt.instructions = opt.smoke ? 2'000'000 : 8'000'000;

    std::vector<MixSpec> mixes;
    for (const MixSpec &mix : kMixes) {
        if (opt.benchmarks.empty() ||
            std::find(opt.benchmarks.begin(), opt.benchmarks.end(),
                      mix.name) != opt.benchmarks.end())
            mixes.push_back(mix);
    }
    if (mixes.empty())
        XMIG_FATAL("--bench matched no Figure-1 mix (use the mix "
                   "name, e.g. --bench art+mcf)");

    const size_t cells = mixes.size() * kArms.size();
    std::vector<CellOut> outs(cells);
    std::string firstCellMetrics;
    std::string firstCellJournal;

    SweepSpec spec;
    spec.cells = cells;
    spec.run = [&](size_t i) {
        const MixSpec &mix = mixes[i / kArms.size()];
        const Arm &arm = kArms[i % kArms.size()];
        ArenaConfig cfg;
        cfg.mode = arm.mode;
        cfg.l3Policy = arm.policy;
        for (const char *bench : mix.benches)
            cfg.tenants.push_back(
                {bench, opt.instructions, opt.seed});
        // A 512-KB shared L3 makes the capacity fight visible at
        // smoke scale: contending throughput tenants thrash it,
        // while a migration-mode tenant's 2-MB aggregate L2 absorbs
        // the working set before the L3 matters.
        cfg.sharedL3Bytes = 512 * 1024;
        cfg.sched.maxResident = 4;
        // Migration mode time-shares the chip at OS-timeslice
        // granularity (one program owns every cache for a long
        // stretch); throughput mode interleaves finely to emulate
        // concurrent progress on pinned cores. A fine quantum in
        // migration mode would ping-pong the shared L3 between
        // tenants and erase exactly the capacity benefit Figure 1
        // measures.
        cfg.sched.quantumRefs =
            arm.mode == ArenaMode::Migration ? 1'048'576 : 4096;
        cfg.probeInstructions =
            std::max<uint64_t>(100'000, opt.instructions / 10);

        // Per-cell journal/registry (determinism contract: all
        // mutable state private to the cell).
        obs::Journal journal;
        TenantArena arena(cfg);
        arena.attachJournal(&journal);
        const ArenaResult r = arena.run();

        CellOut &cell = outs[i];
        cell.makespan = r.makespanCycles;
        cell.aggregateIpc = r.aggregateIpc;
        cell.weightedSpeedup = r.weightedSpeedup;
        cell.unfairness = r.unfairness;
        cell.jainFairness = r.jainFairness;
        cell.l3Accesses = r.sharedL3Accesses;
        cell.l3Misses = r.sharedL3Misses;
        for (const TenantResult &t : r.tenants) {
            cell.instructions += t.instructions;
            cell.maxP99 = std::max(cell.maxP99, t.p99TurnCycles);
        }
        if (i == 0 && (!opt.metricsOut.empty() ||
                       !opt.journalOut.empty())) {
            obs::MetricsRegistry registry;
            arena.registerMetrics(registry, "figure1");
            firstCellMetrics = registry.renderJsonl();
            firstCellJournal = journal.renderJsonl();
        }

        RunResult res;
        res.rows.push_back(
            {mix.name,
             {arenaModeName(arm.mode), l3PolicyName(arm.policy),
              fmt1(cell.makespan / 1e6),
              fmt1(cell.aggregateIpc),
              fmt1(cell.weightedSpeedup), fmt1(cell.unfairness),
              fmt1(cell.jainFairness), fmtU(cell.l3Misses)}});
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);

    // Crossover verdicts: migration's makespan vs the best
    // throughput arm's, per mix.
    std::string crossover;
    for (size_t m = 0; m < mixes.size(); ++m) {
        const double mig = outs[m * kArms.size() + 0].makespan;
        const double thr =
            std::min(outs[m * kArms.size() + 1].makespan,
                     outs[m * kArms.size() + 2].makespan);
        crossover += mixes[m].name;
        crossover += ",";
        crossover += mig < thr ? "migration" : "throughput";
        crossover += "," + fmt1(mig / 1e6) + "," + fmt1(thr / 1e6);
        crossover += "\n";
    }

    std::string csv =
        "mix,mode,policy,tenants,instr_total,makespan_mcycles,"
        "aggregate_ipc,weighted_speedup,unfairness,jain_fairness,"
        "l3_accesses,l3_misses,max_p99_turn_cycles\n";
    for (size_t i = 0; i < cells; ++i) {
        const MixSpec &mix = mixes[i / kArms.size()];
        const Arm &arm = kArms[i % kArms.size()];
        const CellOut &cell = outs[i];
        csv += mix.name;
        csv += ",";
        csv += arenaModeName(arm.mode);
        csv += ",";
        csv += l3PolicyName(arm.policy);
        csv += "," + fmtU(mix.benches.size());
        csv += "," + fmtU(cell.instructions);
        csv += "," + fmt1(cell.makespan / 1e6);
        csv += "," + fmt1(cell.aggregateIpc);
        csv += "," + fmt1(cell.weightedSpeedup);
        csv += "," + fmt1(cell.unfairness);
        csv += "," + fmt1(cell.jainFairness);
        csv += "," + fmtU(cell.l3Accesses);
        csv += "," + fmtU(cell.l3Misses);
        csv += "," + fmt1(cell.maxP99);
        csv += "\n";
    }
    // Crossover verdicts ride along as CSV comment lines.
    csv += "# crossover: mix,winner,migration_mcycles,"
           "best_throughput_mcycles\n";
    size_t lineStart = 0;
    while (lineStart < crossover.size()) {
        const size_t lineEnd = crossover.find('\n', lineStart);
        csv += "# " +
               crossover.substr(lineStart, lineEnd - lineStart) +
               "\n";
        lineStart = lineEnd + 1;
    }

    AsciiTable table({"mode", "policy", "makespan(Mcyc)", "ipc",
                      "wspeedup", "unfairness", "jain", "l3miss"});
    collateRows(results, table);
    std::string out = table.render(
        "Figure 1: migration mode vs throughput mode (lower "
        "makespan wins the mix)");
    out += "\nCrossover (mix,winner,migration_mcycles,best_"
           "throughput_mcycles):\n";
    out += crossover;
    out += "\nNotes: per-tenant machines share a 512KB/16-way L3; "
           "migration mode\ntime-shares the chip at OS-timeslice "
           "quanta (makespan = sum of turns),\nthroughput mode "
           "space-shares it at fine quanta (makespan = max).\nStall "
           "model: 1 CPI + 20 cyc/L2 miss + 200 cyc/L3 miss + "
           "10*20 cyc/migration.\n";
    flushAtomically(out, stdout);

    if (!opt.csvOut.empty()) {
        std::FILE *f = std::fopen(opt.csvOut.c_str(), "w");
        if (f == nullptr)
            XMIG_FATAL("cannot open --csv output '%s'",
                       opt.csvOut.c_str());
        flushAtomically(csv, f);
        std::fclose(f);
    }
    if (!opt.metricsOut.empty()) {
        std::FILE *f = std::fopen(opt.metricsOut.c_str(), "w");
        if (f == nullptr)
            XMIG_FATAL("cannot open --metrics-out '%s'",
                       opt.metricsOut.c_str());
        flushAtomically(firstCellMetrics, f);
        std::fclose(f);
    }
    if (!opt.journalOut.empty()) {
        std::FILE *f = std::fopen(opt.journalOut.c_str(), "w");
        if (f == nullptr)
            XMIG_FATAL("cannot open --journal-out '%s'",
                       opt.journalOut.c_str());
        flushAtomically(firstCellJournal, f);
        std::fclose(f);
    }
    return 0;
}
