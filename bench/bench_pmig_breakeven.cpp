/**
 * @file
 * Migration-penalty break-even analysis (sections 2.4 and 4.2).
 *
 * For each benchmark where migration removes L2 misses, reports the
 * number of L2 misses removed per migration — execution migration
 * wins whenever P_mig (the migration penalty in L2-miss/L3-hit
 * units) is below that number. The paper works this out for 181.mcf
 * (~60). A stall-cycle model then translates the trade into
 * estimated speedups for several P_mig values.
 */

#include <cstdio>

#include "multicore/cost_model.hpp"
#include "sim/options.hpp"
#include "sim/quadcore.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    QuadcoreParams params;
    params.instructionsPerBenchmark = opt.instructions;
    params.seed = opt.seed;

    const std::vector<std::string> benches =
        opt.benchmarks.empty()
            ? std::vector<std::string>{"179.art", "181.mcf", "188.ammp",
                                       "256.bzip2", "em3d", "health",
                                       "164.gzip"}
            : opt.benchmarks;

    const double pmigs[] = {5, 10, 20, 60, 100};

    AsciiTable table({"benchmark", "ratio", "breakeven-Pmig",
                      "speedup@5", "speedup@10", "speedup@20",
                      "speedup@60", "speedup@100"});
    for (const auto &name : benches) {
        const QuadcoreRow r = runQuadcore(name, params);
        MigrationTradeoff t;
        t.instructions = r.instructions;
        t.l2MissesBaseline = r.l2MissesBaseline;
        t.l2MissesMigration = r.l2Misses4x;
        t.migrations = r.migrations;

        std::vector<std::string> row{r.name, ratio2(r.missRatio()),
                                     ratio2(breakEvenPmig(t))};
        for (double pmig : pmigs) {
            TimingParams tp;
            tp.pmig = pmig;
            row.push_back(ratio2(estimatedSpeedup(t, tp)));
        }
        table.addRow(row);
    }
    std::fputs(
        table.render("Break-even P_mig and modeled speedups "
                     "(baseCPI=1, L3-hit penalty=20 cycles); "
                     "speedup > 1 means migration wins").c_str(),
        stdout);
    std::printf("\nPaper reference: 181.mcf removes ~60 L2 misses per "
                "migration, so P_mig < 60 wins.\n");
    return 0;
}
