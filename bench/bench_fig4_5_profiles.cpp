/**
 * @file
 * Reproduces Figures 4 and 5: LRU stack profiles p1(x) (single stack,
 * "normal") and p4(x) (four affinity-split stacks, "split") for every
 * benchmark, for cache sizes 16 KB .. 16 MB, plus the transition
 * frequency printed on each graph.
 *
 * A benchmark is "splittable" when p4 falls clearly below p1 over
 * some size range (paper: art, ammp, bh, health, em3d, mcf, ...);
 * non-splittable programs (gzip, vpr, parser, bisort) show p1 == p4.
 *
 * One sweep cell per benchmark (xmig-swift): each cell returns its
 * figure block plus its summary-table row, both collated in benchmark
 * order, so --jobs N output is bit-identical to the serial run.
 */

#include <cstdio>

#include "sim/options.hpp"
#include "sim/runner/sweep.hpp"
#include "sim/stack_profile.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    StackProfileParams params;
    params.instructionsPerBenchmark = opt.instructions;
    params.seed = opt.seed;

    const auto &names =
        opt.benchmarks.empty() ? allWorkloadNames() : opt.benchmarks;

    SweepSpec spec;
    spec.cells = names.size();
    spec.run = [&](size_t i) {
        const StackProfileResult r = runStackProfile(names[i], params);

        RunResult res;
        char buf[128];
        std::snprintf(buf, sizeof(buf), "\n== %s  (trans: %.4f) ==\n",
                      r.name.c_str(), r.transitionFrequency);
        res.text = buf;
        SeriesWriter series("size", {"normal_p1", "split_p4"});
        for (size_t s = 0; s < r.plotSizes.size(); ++s) {
            series.addPoint(sizeLabel(r.plotSizes[s]),
                            {r.p1[s], r.p4[s]});
        }
        res.text += series.render();

        char refs_m[32], gap[32];
        std::snprintf(refs_m, sizeof(refs_m), "%.2f",
                      static_cast<double>(r.stackAccesses) / 1e6);
        std::snprintf(gap, sizeof(gap), "%.3f", r.maxGap());
        res.rows.push_back({"",
                            {r.name, refs_m,
                             frequency(r.transitions, r.stackAccesses),
                             sizeLabel(r.footprintLines * 64), gap,
                             r.maxGap() > 0.15 ? "yes" : "no"}});
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);

    std::string out =
        "Figures 4-5 reproduction: p1 (normal) vs p4 (split) "
        "LRU stack profiles\n"
        "(fraction of L1-filtered refs with stack depth > "
        "cache size; 20-bit filters,\n |R_X|=128, |R_Y|=64, "
        "unlimited affinity cache)\n";
    out += collateText(results);
    out += "\n";
    AsciiTable summary({"benchmark", "refs(M)", "trans-freq",
                        "footprint", "max(p1-p4)", "splittable?"});
    collateRows(results, summary);
    out += summary.render("Splittability summary");
    flushAtomically(out, stdout);
    return 0;
}
