/**
 * @file
 * Reproduces Figures 4 and 5: LRU stack profiles p1(x) (single stack,
 * "normal") and p4(x) (four affinity-split stacks, "split") for every
 * benchmark, for cache sizes 16 KB .. 16 MB, plus the transition
 * frequency printed on each graph.
 *
 * A benchmark is "splittable" when p4 falls clearly below p1 over
 * some size range (paper: art, ammp, bh, health, em3d, mcf, ...);
 * non-splittable programs (gzip, vpr, parser, bisort) show p1 == p4.
 */

#include <cstdio>

#include "sim/options.hpp"
#include "sim/stack_profile.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    StackProfileParams params;
    params.instructionsPerBenchmark = opt.instructions;
    params.seed = opt.seed;

    const auto &names =
        opt.benchmarks.empty() ? allWorkloadNames() : opt.benchmarks;

    std::printf("Figures 4-5 reproduction: p1 (normal) vs p4 (split) "
                "LRU stack profiles\n");
    std::printf("(fraction of L1-filtered refs with stack depth > "
                "cache size; 20-bit filters,\n |R_X|=128, |R_Y|=64, "
                "unlimited affinity cache)\n");

    AsciiTable summary({"benchmark", "refs(M)", "trans-freq",
                        "footprint", "max(p1-p4)", "splittable?"});
    for (const auto &name : names) {
        const StackProfileResult r = runStackProfile(name, params);

        std::printf("\n== %s  (trans: %.4f) ==\n", r.name.c_str(),
                    r.transitionFrequency);
        SeriesWriter series("size", {"normal_p1", "split_p4"});
        for (size_t i = 0; i < r.plotSizes.size(); ++i) {
            series.addPoint(sizeLabel(r.plotSizes[i]),
                            {r.p1[i], r.p4[i]});
        }
        std::fputs(series.render().c_str(), stdout);

        char refs_m[32], gap[32];
        std::snprintf(refs_m, sizeof(refs_m), "%.2f",
                      static_cast<double>(r.stackAccesses) / 1e6);
        std::snprintf(gap, sizeof(gap), "%.3f", r.maxGap());
        summary.addRow({r.name, refs_m,
                        frequency(r.transitions, r.stackAccesses),
                        sizeLabel(r.footprintLines * 64), gap,
                        r.maxGap() > 0.15 ? "yes" : "no"});
    }
    std::printf("\n");
    std::fputs(summary.render("Splittability summary").c_str(), stdout);
    return 0;
}
