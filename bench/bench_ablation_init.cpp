/**
 * @file
 * Initial-affinity ablation (section 3.3, "Initial affinity").
 *
 * The paper: "We ran the algorithm on a Circular behavior with
 * different initialization methods (non-null constant, random value,
 * O_e(t_e) = 0) and with different values for |R|. ... the splitting
 * for Circular was not optimal, which is not a problem as long as
 * transitions do not happen too often. ... after enough time, the
 * transition frequency never exceeded one transition every 2|R|
 * references."
 *
 * This harness reproduces exactly that sweep and checks the low-pass
 * bound. Each (initialization, |R|) point is one sweep cell
 * (xmig-swift), so --jobs N output is bit-identical to the serial
 * run.
 */

#include <cstdio>
#include <vector>

#include "core/oe_store.hpp"
#include "core/splitter.hpp"
#include "sim/options.hpp"
#include "sim/runner/sweep.hpp"
#include "util/stats.hpp"
#include "workloads/synthetic.hpp"

using namespace xmig;

namespace {

const char *
initName(OeInitPolicy policy)
{
    switch (policy) {
      case OeInitPolicy::ZeroAffinity:
        return "A_e = 0 (paper default)";
      case OeInitPolicy::ConstantAffinity:
        return "A_e = +1000 constant";
      case OeInitPolicy::RandomAffinity:
        return "A_e = random";
    }
    return "?";
}

SweepRow
runPoint(OeInitPolicy policy, size_t window)
{
    UnboundedOeStore store(16, policy);
    TwoWaySplitter::Config c;
    c.engine.windowSize = window;
    c.filterBits = 16; // raw affinity signs, like Figure 3
    TwoWaySplitter splitter(c, store);
    CircularStream s(4000);

    // "After enough time": random initialization starts from
    // a fragmented split and coalesces slowly, so the warm-up
    // is generous.
    const uint64_t kWarm = 12'000'000, kMeasure = 1'000'000;
    for (uint64_t t = 0; t < kWarm; ++t)
        splitter.onReference(s.next());
    const uint64_t t0 = splitter.transitions();
    uint64_t pos = 0;
    for (uint64_t t = 0; t < kMeasure; ++t) {
        const SplitDecision d = splitter.onReference(s.next());
        pos += d.subset == 0 ? 1 : 0;
    }
    const double freq =
        static_cast<double>(splitter.transitions() - t0) /
        static_cast<double>(kMeasure);
    const double bound = 1.0 / (2.0 * static_cast<double>(window));
    const double balance =
        static_cast<double>(std::min(pos, kMeasure - pos)) /
        static_cast<double>(
            std::max<uint64_t>(1, std::max(pos, kMeasure - pos)));
    char wbuf[16], bal[16], fbuf[16], bbuf[16];
    std::snprintf(wbuf, sizeof(wbuf), "%zu", window);
    std::snprintf(bal, sizeof(bal), "%.2f", balance);
    std::snprintf(fbuf, sizeof(fbuf), "%.5f", freq);
    std::snprintf(bbuf, sizeof(bbuf), "%.5f", bound);
    return {"",
            {initName(policy), wbuf, bal, fbuf, bbuf,
             freq <= bound * 1.3 ? "yes" : "NO"}};
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    struct Point
    {
        OeInitPolicy policy;
        size_t window;
    };
    std::vector<Point> points;
    for (OeInitPolicy policy :
         {OeInitPolicy::ZeroAffinity, OeInitPolicy::ConstantAffinity,
          OeInitPolicy::RandomAffinity}) {
        for (size_t window : {50u, 100u, 400u, 1000u})
            points.push_back({policy, window});
    }

    SweepSpec spec;
    spec.cells = points.size();
    spec.run = [&](size_t i) {
        RunResult res;
        res.rows.push_back(
            runPoint(points[i].policy, points[i].window));
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);

    AsciiTable table({"initialization", "|R|", "balance",
                      "steady trans-freq", "bound 1/(2|R|)", "ok?"});
    collateRows(results, table);

    std::string out =
        "Initial-affinity ablation (section 3.3): Circular "
        "N = 4000, 16-bit affinities.\nClaim: whatever the "
        "initialization, the steady-state transition "
        "frequency\nstays below 1/(2|R|).\n\n";
    out += table.render();
    flushAtomically(out, stdout);
    return 0;
}
