/**
 * @file
 * Working-set sampling ablation (section 3.5).
 *
 * The affinity cache can shrink by tracking only lines with
 * H(e) = e mod 31 below a cutoff: cutoff 31 tracks everything
 * (32k entries / 152 KB in the paper's sizing), cutoff 8 tracks ~25%
 * (8k entries / 38 KB). This bench reports the storage arithmetic
 * and re-runs the Table 2 experiment on representative benchmarks at
 * several sampling ratios to show the miss-reduction is preserved.
 *
 * One sweep cell per (benchmark, sampling config) pair (xmig-swift);
 * rows collate in sweep order, so --jobs N output is bit-identical
 * to the serial run.
 */

#include <cstdio>

#include "core/oe_store.hpp"
#include "sim/options.hpp"
#include "sim/quadcore.hpp"
#include "sim/runner/sweep.hpp"
#include "util/stats.hpp"

using namespace xmig;

namespace {

/** One sampling configuration of the affinity cache. */
struct Cfg
{
    const char *label;
    uint32_t cutoff;
    uint64_t entries;
};

constexpr Cfg kCfgs[] = {
    {"100% (32k entries)", 31, 32 * 1024},
    {"~50% (16k entries)", 16, 16 * 1024},
    {"~25% (8k entries, paper)", 8, 8 * 1024},
    {"~13% (4k entries)", 4, 4 * 1024},
};
constexpr size_t kNumCfgs = sizeof(kCfgs) / sizeof(kCfgs[0]);

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.instructions == 20'000'000)
        opt.instructions =
            opt.smoke ? 1'000'000
                      : 10'000'000; // several configs x benchmarks

    // Storage arithmetic of section 3.5 (20-bit tags, 16-bit
    // affinities, 2 age bits).
    std::string out =
        "Affinity-cache storage (section 3.5 arithmetic):\n";
    for (unsigned entries_k : {32, 16, 8, 4}) {
        AffinityCacheConfig c;
        c.entries = uint64_t(entries_k) * 1024;
        AffinityCacheStore store(c);
        char buf[128];
        std::snprintf(
            buf, sizeof(buf),
            "  %2uk entries: %5.1f KB (%s of 2 MB L2 data)\n",
            entries_k,
            static_cast<double>(store.storageBits()) / 8.0 / 1024.0,
            ratio2(static_cast<double>(store.storageBits()) / 8.0 /
                   (2.0 * 1024 * 1024) * 100.0)
                .append("%")
                .c_str());
        out += buf;
    }

    const std::vector<std::string> benches =
        opt.benchmarks.empty()
            ? std::vector<std::string>{"179.art", "health", "164.gzip"}
            : opt.benchmarks;

    SweepSpec spec;
    spec.cells = benches.size() * kNumCfgs;
    spec.run = [&](size_t i) {
        const std::string &name = benches[i / kNumCfgs];
        const Cfg &cfg = kCfgs[i % kNumCfgs];
        QuadcoreParams params;
        params.instructionsPerBenchmark = opt.instructions;
        params.seed = opt.seed;
        params.machine.controller.samplingCutoff = cfg.cutoff;
        params.machine.controller.affinityCache.entries = cfg.entries;
        const QuadcoreRow r = runQuadcore(name, params);
        char migs[24];
        std::snprintf(migs, sizeof(migs), "%llu",
                      (unsigned long long)r.migrations);
        RunResult res;
        res.rows.push_back({"",
                            {r.name, cfg.label, ratio2(r.missRatio()),
                             migs,
                             perEvent(r.instructions, r.migrations)}});
        return res;
    };
    const std::vector<RunResult> results = runSweep(spec, opt.jobs);

    AsciiTable table({"benchmark", "sampling", "ratio", "migrations",
                      "instr/mig"});
    collateRows(results, table);
    out += "\n";
    out += table.render("Table-2-style runs under different "
                        "sampling ratios");
    flushAtomically(out, stdout);
    return 0;
}
