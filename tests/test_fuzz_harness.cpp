/**
 * @file
 * xmig-forge PropertyHarness: the oracle battery on clean, faulty,
 * invalid, and deliberately "bad" plans.
 */

#include <string>

#include <gtest/gtest.h>

#include "fuzz/property_harness.hpp"

using namespace xmig;

namespace {

/** Short cases keep the battery (5 machine runs each) fast. */
FuzzCase
shortCase(const std::string &plan)
{
    FuzzCase c;
    c.plan = plan;
    c.instructions = 40'000;
    return c;
}

std::string
oracles(const CaseResult &r)
{
    std::string out;
    for (const OracleFailure &f : r.failures)
        out += f.oracle + "(" + f.detail + ") ";
    return out;
}

} // namespace

TEST(PropertyHarness, InertPlanPassesAllOracles)
{
    const PropertyHarness harness;
    const CaseResult r = harness.run(shortCase("seed=3"));
    EXPECT_FALSE(r.failed()) << oracles(r);
    EXPECT_GT(r.refs, 40'000u);
    EXPECT_EQ(r.faultsInjected, 0u);
}

TEST(PropertyHarness, DenseFaultPlanPassesAllOracles)
{
    const PropertyHarness harness;
    const CaseResult r = harness.run(shortCase(
        "seed=11;at=5000:core_off=2;at=40000:core_on=2;"
        "rate=1e-4:flip=ae;rate=1e-4:flip=delta;rate=1e-5:mig_drop;"
        "at=60000:mig_delay=16;rate=1e-4:bus_drop;at=0:flip=tag"));
    EXPECT_FALSE(r.failed()) << oracles(r);
    EXPECT_GT(r.faultsInjected, 0u);
}

TEST(PropertyHarness, InvalidPlanFailsFastWithoutRunning)
{
    const PropertyHarness harness;
    const CaseResult r = harness.run(shortCase("rate=7:flip=ae"));
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_EQ(r.failures[0].oracle, "invalid_plan");
    EXPECT_EQ(r.refs, 0u) << "no machine may be constructed";
}

TEST(PropertyHarness, AccountingSeesCertainFireInjections)
{
    const PropertyHarness harness;
    const CaseResult r = harness.run(shortCase("seed=2;rate=1:flip=ae"));
    EXPECT_FALSE(r.failed()) << oracles(r);
    // rate=1 fires at every opportunity; the accounting oracle
    // reconciles those totals, so a nonzero count proves both the
    // injection path and the oracle saw them.
    EXPECT_GT(r.faultsInjected, 1000u);
}

TEST(PropertyHarness, ResultsAreDeterministic)
{
    const PropertyHarness harness;
    const FuzzCase c = shortCase(
        "seed=5;at=9000:core_off=1;at=30000:core_on=1;"
        "rate=1e-4:flip=oe;rate=1e-5:bus_drop");
    const CaseResult r1 = harness.run(c);
    const CaseResult r2 = harness.run(c);
    EXPECT_EQ(r1.failed(), r2.failed());
    EXPECT_EQ(r1.refs, r2.refs);
    EXPECT_EQ(r1.migrations, r2.migrations);
    EXPECT_EQ(r1.faultsInjected, r2.faultsInjected);
}

TEST(PropertyHarness, BrokenOracleFiresOnlyWhenArmed)
{
    const std::string plan =
        "seed=4;at=8000:core_off=3;rate=1e-5:bus_drop";

    const PropertyHarness clean;
    EXPECT_FALSE(clean.run(shortCase(plan)).failed());

    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness broken(hc);
    const CaseResult r = broken.run(shortCase(plan));
    ASSERT_TRUE(r.failed());
    EXPECT_EQ(r.failures[0].oracle, "broken_self_test");
}

TEST(PropertyHarness, BrokenOracleNeedsBothSites)
{
    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness broken(hc);
    EXPECT_FALSE(
        broken.run(shortCase("seed=4;at=8000:core_off=3")).failed());
    EXPECT_FALSE(
        broken.run(shortCase("seed=4;rate=1e-5:bus_drop")).failed());
}

TEST(PropertyHarness, WatchdogDisabledByZeroTimeout)
{
    HarnessConfig hc;
    hc.timeoutMs = 0;
    const PropertyHarness harness(hc);
    EXPECT_FALSE(harness.run(shortCase("seed=1")).failed());
}
