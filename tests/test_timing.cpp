/**
 * @file
 * Tests for the migration-protocol timing model (sections 2.2, 2.4).
 */

#include <gtest/gtest.h>

#include "multicore/timing.hpp"

namespace xmig {
namespace {

TEST(MigrationProtocol, BasePenaltyIsBroadcastPlusPipeline)
{
    // The paper: "the migration penalty corresponds to the number of
    // cycles for broadcasting T on the update bus plus the number of
    // pipeline stages from the issue stage to retirement."
    PipelineParams p;
    p.updateBusCycles = 2;
    p.issueToRetireStages = 10;
    MigrationProtocolModel model(p);
    EXPECT_EQ(model.basePenaltyCycles(), 12u);
}

TEST(MigrationProtocol, NoMispredictsMeansBasePenalty)
{
    PipelineParams p;
    p.mispredictPerInstr = 0.0;
    MigrationProtocolModel model(p);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(model.simulateMigration(rng),
                  model.basePenaltyCycles());
    EXPECT_DOUBLE_EQ(model.expectedPenaltyCycles(100),
                     model.basePenaltyCycles());
}

TEST(MigrationProtocol, MispredictsAddResteerCycles)
{
    PipelineParams p;
    p.mispredictPerInstr = 0.5; // mispredicts almost guaranteed
    MigrationProtocolModel model(p);
    EXPECT_GT(model.expectedPenaltyCycles(5000),
              model.basePenaltyCycles());
    // At most one re-steer per migration (the drain ends there).
    PipelineParams q = p;
    q.mispredictPerInstr = 1.0;
    MigrationProtocolModel certain(q);
    Rng rng(2);
    EXPECT_EQ(certain.simulateMigration(rng),
              certain.basePenaltyCycles() + q.updateBusCycles);
}

TEST(MigrationProtocol, InflightScalesWithDepthAndWidth)
{
    PipelineParams p;
    p.fetchToIssueStages = 5;
    p.issueToRetireStages = 10;
    p.retireWidth = 4;
    MigrationProtocolModel model(p);
    EXPECT_EQ(model.inflightInstructions(), 60u);
}

TEST(TimingModel, PmigInPaperUnits)
{
    PipelineParams p;
    p.updateBusCycles = 2;
    p.issueToRetireStages = 10;
    p.mispredictPerInstr = 0.0;
    LatencyParams l;
    l.l3HitCycles = 20;
    TimingModel model(l, p);
    // 12 cycles / 20 cycles-per-L3-hit = 0.6 P_mig units: a cheap
    // migration, comfortably below every measured break-even.
    EXPECT_NEAR(model.pmig(), 0.6, 1e-9);
}

TEST(TimingModel, CyclesDecomposition)
{
    LatencyParams l;
    l.baseCpi = 1.0;
    l.l3HitCycles = 20;
    l.memoryCycles = 200;
    PipelineParams p;
    p.mispredictPerInstr = 0.0; // penalty = 12 cycles exactly
    TimingModel model(l, p);

    MachineStats s;
    s.instructions = 1000;
    s.l2Accesses = 100;
    s.l2Misses = 10;
    s.l3Misses = 2;
    s.migrations = 5;
    EXPECT_DOUBLE_EQ(model.cycles(s),
                     1000.0 + 20.0 * 10 + 200.0 * 2 + 12.0 * 5);
    EXPECT_NEAR(model.ipc(s), 1000.0 / 1660.0, 1e-12);
}

TEST(TimingModel, SpeedupFavorsFewerMisses)
{
    TimingModel model;
    MachineStats base, mig;
    base.instructions = mig.instructions = 1'000'000;
    base.l2Misses = 50'000;
    mig.l2Misses = 5'000;
    mig.migrations = 200;
    EXPECT_GT(model.speedup(base, mig), 1.5);
}

} // namespace
} // namespace xmig
