/**
 * @file
 * Unit and invariant tests for the migration-mode multi-core machine
 * (section 2 semantics).
 */

#include <gtest/gtest.h>

#include "multicore/machine.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

/** Small machine for hand-traced scenarios. */
MachineConfig
tinyMachine(unsigned cores)
{
    MachineConfig c;
    c.numCores = cores;
    c.il1Bytes = 4 * 64;
    c.dl1Bytes = 4 * 64;
    c.l1Ways = 2;
    c.l2Bytes = 16 * 64;
    c.l2Ways = 4;
    c.l2Skewed = false;
    c.controller.windowX = 8;
    c.controller.windowY = 4;
    c.controller.filterBits = 16;
    c.controller.l2Filtering = false;
    c.controller.boundedStore = false;
    c.controller.samplingCutoff = 31;
    return c;
}

/** Drive a machine with a Circular data stream. */
void
driveCircular(MigrationMachine &m, uint64_t lines, uint64_t refs,
              uint64_t base = 0x100000)
{
    CircularStream s(lines);
    for (uint64_t t = 0; t < refs; ++t)
        m.access(MemRef::load(base + s.next() * 64));
}

TEST(MigrationMachine, CountsInstructionsViaIfetch)
{
    MigrationMachine m(tinyMachine(1));
    m.access(MemRef::ifetch(0x1000));
    m.access(MemRef::load(0x2000));
    m.access(MemRef::store(0x2000));
    EXPECT_EQ(m.stats().instructions, 1u);
    EXPECT_EQ(m.stats().refs, 3u);
}

TEST(MigrationMachine, SingleCoreHasNoMigrations)
{
    MigrationMachine m(tinyMachine(1));
    driveCircular(m, 1000, 50'000);
    EXPECT_EQ(m.stats().migrations, 0u);
    EXPECT_EQ(m.controller(), nullptr);
    EXPECT_EQ(m.activeCore(), 0u);
}

TEST(MigrationMachine, L1MissCountIndependentOfMigration)
{
    // Section 2.3: L1 fills are broadcast, so the L1 miss stream is
    // the same with and without migration.
    MigrationMachine base(tinyMachine(1));
    MigrationMachine mig(tinyMachine(4));
    CircularStream s(500);
    for (uint64_t t = 0; t < 100'000; ++t) {
        const MemRef r = MemRef::load(0x100000 + s.next() * 64);
        base.access(r);
        mig.access(r);
    }
    EXPECT_EQ(base.stats().l1Misses, mig.stats().l1Misses);
}

TEST(MigrationMachine, AtMostOneModifiedCopyInvariant)
{
    MachineConfig cfg = tinyMachine(4);
    MigrationMachine m(cfg);
    // Mixed loads and stores over a set that forces migrations and
    // replication, then audit the coherence invariant.
    CircularStream s(200);
    Rng rng(3);
    for (uint64_t t = 0; t < 200'000; ++t) {
        const uint64_t addr = 0x100000 + s.next() * 64;
        if (rng.chance(0.3))
            m.access(MemRef::store(addr));
        else
            m.access(MemRef::load(addr));
        if (t % 10000 == 0) {
            ASSERT_EQ(m.countMultiModifiedLines(), 0u) << "t=" << t;
        }
    }
    EXPECT_EQ(m.countMultiModifiedLines(), 0u);
    EXPECT_GT(m.stats().migrations, 0u);
}

TEST(MigrationMachine, StoresBroadcastResetRemoteModified)
{
    // After heavy store traffic with migrations, remote copies exist
    // but never two modified ones; the update-bus counter moves.
    MigrationMachine m(tinyMachine(4));
    CircularStream s(100);
    for (uint64_t t = 0; t < 100'000; ++t)
        m.access(MemRef::store(0x100000 + s.next() * 64));
    EXPECT_GT(m.stats().updateBusStores, 0u);
    EXPECT_EQ(m.countMultiModifiedLines(), 0u);
}

TEST(MigrationMachine, WritebackOnlyForModifiedLines)
{
    // Pure loads: nothing is ever modified, so no L3 writebacks.
    MigrationMachine m(tinyMachine(1));
    driveCircular(m, 5000, 50'000);
    EXPECT_EQ(m.stats().l3Writebacks, 0u);
}

TEST(MigrationMachine, DirtyEvictionsWriteBack)
{
    MigrationMachine m(tinyMachine(1));
    CircularStream s(5000); // far exceeds the 16-line L2
    for (uint64_t t = 0; t < 50'000; ++t)
        m.access(MemRef::store(0x100000 + s.next() * 64));
    EXPECT_GT(m.stats().l3Writebacks, 0u);
}

TEST(MigrationMachine, MigrationReducesMissesOnCircular)
{
    // The paper's core claim, end to end on the real machine: a
    // Circular working-set larger than one L2 but fitting the union
    // of four gets most of its L2 misses removed.
    MachineConfig base_cfg;
    base_cfg.numCores = 1;
    MachineConfig mig_cfg; // defaults: full section 4.2 machine
    MigrationMachine base(base_cfg), mig(mig_cfg);
    // 512 KB < footprint 1.25 MB < 2 MB.
    CircularStream s1(20'000), s2(20'000);
    for (uint64_t t = 0; t < 3'000'000; ++t) {
        base.access(MemRef::load(0x40000000 + s1.next() * 64));
        mig.access(MemRef::load(0x40000000 + s2.next() * 64));
    }
    EXPECT_LT(mig.stats().l2Misses, base.stats().l2Misses / 2);
    EXPECT_GT(mig.stats().migrations, 0u);
    EXPECT_EQ(mig.countMultiModifiedLines(), 0u);
}

TEST(MigrationMachine, L2ToL2ForwardRequiresModifiedCopy)
{
    // Construct forwarding: store lines on one core (making them
    // modified), force migration, re-read them from another core.
    MigrationMachine m(tinyMachine(4));
    Rng rng(9);
    CircularStream s(64);
    for (uint64_t t = 0; t < 100'000; ++t) {
        const uint64_t addr = 0x100000 + s.next() * 64;
        m.access(rng.chance(0.5) ? MemRef::store(addr)
                                 : MemRef::load(addr));
    }
    // With migrations over a dirty working set, at least some misses
    // must have been served by remote modified copies.
    if (m.stats().migrations > 10) {
        EXPECT_GT(m.stats().l2ToL2Forwards, 0u);
    }
    // Every forward also wrote back to L3 (section 2.1).
    EXPECT_LE(m.stats().l2ToL2Forwards, m.stats().l3Writebacks);
}

TEST(MigrationMachine, RejectsUnsupportedCoreCounts)
{
    MachineConfig c = tinyMachine(1);
    c.numCores = 12;
    EXPECT_DEATH({ MigrationMachine m(c); }, "numCores");
}

TEST(MigrationMachine, EightCoreMachineRuns)
{
    MachineConfig c = tinyMachine(4);
    c.numCores = 8;
    MigrationMachine m(c);
    driveCircular(m, 400, 100'000);
    EXPECT_EQ(m.countMultiModifiedLines(), 0u);
    EXPECT_GT(m.stats().l2Accesses, 0u);
}

} // namespace
} // namespace xmig
