/**
 * @file
 * xmig-iron graceful-degradation tests: core hot-unplug/replug with
 * working-set re-splitting onto the survivors, forced migrations off
 * a dying core, watchdog containment of migration livelock, and the
 * machine-level scheduled core-loss path.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/migration_controller.hpp"
#include "mem/ref.hpp"
#include "multicore/machine.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

MigrationControllerConfig
baseConfig(unsigned cores)
{
    MigrationControllerConfig c;
    c.numCores = cores;
    c.windowX = 64;
    c.windowY = 32;
    c.filterBits = 18;
    return c;
}

void
train(MigrationController &ctrl, ElementStream &stream, uint64_t refs)
{
    for (uint64_t i = 0; i < refs; ++i)
        ctrl.onRequest(stream.next());
}

/** Per-core request share over the next `probe` requests. */
std::map<unsigned, uint64_t>
targetHistogram(MigrationController &ctrl, ElementStream &stream,
                uint64_t probe)
{
    std::map<unsigned, uint64_t> hist;
    for (uint64_t i = 0; i < probe; ++i)
        ++hist[ctrl.onRequest(stream.next())];
    return hist;
}

TEST(Recovery, OfflineShrinksTheSplitToSurvivors)
{
    MigrationController ctrl(baseConfig(4));
    EXPECT_EQ(ctrl.liveCores(), 4u);
    EXPECT_EQ(ctrl.splitWays(), 4u);

    ctrl.setCoreOffline(2);
    EXPECT_EQ(ctrl.liveCores(), 3u);
    EXPECT_EQ(ctrl.splitWays(), 2u); // largest power of two <= 3
    EXPECT_EQ(ctrl.liveMask(), 0b1011u);
    EXPECT_EQ(ctrl.recovery().coresLost, 1u);
    EXPECT_GE(ctrl.recovery().resplits, 1u);
    for (unsigned s = 0; s < ctrl.splitWays(); ++s) {
        const unsigned core = ctrl.coreForSubset(s);
        EXPECT_NE(core, 2u);
        EXPECT_TRUE(ctrl.liveMask() & (uint64_t{1} << core));
    }
}

TEST(Recovery, ResplitsReconvergeToABalancedSplit)
{
    MigrationController ctrl(baseConfig(4));
    CircularStream stream(4000);
    train(ctrl, stream, 1'000'000);

    ctrl.setCoreOffline(2);
    // Bounded recovery budget: after 500k requests the 2-way splitter
    // must be retrained and spreading the circular working set over
    // exactly the two mapped survivors, roughly evenly.
    train(ctrl, stream, 500'000);
    const auto hist = targetHistogram(ctrl, stream, 8000);
    ASSERT_EQ(hist.size(), 2u);
    uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto &[core, count] : hist) {
        EXPECT_NE(core, 2u);
        lo = std::min(lo, count);
        hi = std::max(hi, count);
    }
    EXPECT_GT(static_cast<double>(lo) / static_cast<double>(hi), 0.25);
}

TEST(Recovery, ActiveCoreDeathForcesAMigration)
{
    MigrationController ctrl(baseConfig(4));
    CircularStream stream(4000);
    train(ctrl, stream, 200'000);
    const unsigned active = ctrl.activeCore();
    const uint64_t migrations_before = ctrl.stats().migrations;

    ctrl.setCoreOffline(active);
    EXPECT_NE(ctrl.activeCore(), active);
    EXPECT_TRUE(ctrl.liveMask() & (uint64_t{1} << ctrl.activeCore()));
    EXPECT_EQ(ctrl.recovery().forcedMigrations, 1u);
    EXPECT_EQ(ctrl.stats().migrations, migrations_before + 1);
}

TEST(Recovery, RefusesToKillTheLastCore)
{
    MigrationController ctrl(baseConfig(4));
    ctrl.setCoreOffline(1);
    ctrl.setCoreOffline(2);
    ctrl.setCoreOffline(3);
    EXPECT_EQ(ctrl.liveCores(), 1u);
    EXPECT_EQ(ctrl.splitWays(), 1u);
    ctrl.setCoreOffline(0); // refused with a warning
    EXPECT_EQ(ctrl.liveCores(), 1u);
    EXPECT_EQ(ctrl.activeCore(), 0u);
    EXPECT_EQ(ctrl.recovery().coresLost, 3u);

    // A 1-way controller still answers requests, pinned to core 0.
    CircularStream stream(1000);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_EQ(ctrl.onRequest(stream.next()), 0u);
}

TEST(Recovery, BogusTopologyEventsAreIgnored)
{
    MigrationController ctrl(baseConfig(4));
    ctrl.setCoreOffline(7);  // no such core
    ctrl.setCoreOnline(1);   // already online
    EXPECT_EQ(ctrl.liveCores(), 4u);
    EXPECT_EQ(ctrl.recovery().coresLost, 0u);
    EXPECT_EQ(ctrl.recovery().coresJoined, 0u);
    ctrl.setCoreOffline(1);
    ctrl.setCoreOffline(1); // already offline
    EXPECT_EQ(ctrl.recovery().coresLost, 1u);
}

TEST(Recovery, RejoinRestoresTheFullSplit)
{
    MigrationController ctrl(baseConfig(4));
    CircularStream stream(4000);
    train(ctrl, stream, 500'000);
    ctrl.setCoreOffline(2);
    train(ctrl, stream, 200'000);

    ctrl.setCoreOnline(2);
    EXPECT_EQ(ctrl.liveCores(), 4u);
    EXPECT_EQ(ctrl.splitWays(), 4u);
    EXPECT_EQ(ctrl.recovery().coresJoined, 1u);

    train(ctrl, stream, 2'000'000);
    const auto hist = targetHistogram(ctrl, stream, 8000);
    EXPECT_EQ(hist.size(), 4u);
}

TEST(Recovery, WatchdogBoundsPingPongLivelock)
{
    // Uniform-random streams are unsplittable: the subset flips
    // almost every other request (section 3.4), the worst case for
    // migration thrash. The watchdog must contain it.
    MigrationControllerConfig plain = baseConfig(4);
    MigrationController unguarded(plain);

    MigrationControllerConfig guarded_cfg = baseConfig(4);
    guarded_cfg.watchdog.enabled = true;
    guarded_cfg.watchdog.pingPongWindow = 256;
    guarded_cfg.watchdog.pingPongLimit = 8;
    guarded_cfg.watchdog.cooldownBase = 1024;
    MigrationController guarded(guarded_cfg);

    UniformRandomStream s1(4000), s2(4000);
    train(unguarded, s1, 200'000);
    train(guarded, s2, 200'000);

    EXPECT_GT(guarded.watchdog().stats().livelocks, 0u);
    EXPECT_GT(guarded.watchdog().stats().suppressed, 0u);
    // The filters already low-pass most of the thrash; the watchdog
    // must still cut what remains substantially (not a fixed 10x --
    // the unguarded baseline is itself only a few hundred).
    EXPECT_LT(guarded.stats().migrations,
              unguarded.stats().migrations / 2);
}

TEST(Recovery, FilterResetKeepsTheControllerConsistent)
{
    MigrationController ctrl(baseConfig(4));
    CircularStream stream(4000);
    train(ctrl, stream, 300'000);
    ctrl.resetFilters();
    EXPECT_EQ(ctrl.rootFilter().value(), 0);
    // The controller keeps answering and retrains.
    train(ctrl, stream, 300'000);
    const auto hist = targetHistogram(ctrl, stream, 8000);
    EXPECT_GE(hist.size(), 2u);
}

TEST(Recovery, MachineAppliesScheduledCoreLoss)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    MachineConfig cfg;
    cfg.numCores = 4;
    // Kill core 0: it starts active, so its L2 is guaranteed to hold
    // modified lines by the time the event lands.
    cfg.faultPlan = "seed=1;at=50000:core_off=0";
    MigrationMachine machine(cfg);

    Rng rng(5);
    CircularStream stream(20'000);
    for (uint64_t i = 0; i < 200'000; ++i) {
        const uint64_t addr = stream.next() * 64;
        machine.access(MemRef::ifetch(0x400000 + (i % 4096) * 4));
        if (rng.below(4) == 0)
            machine.access(MemRef::store(addr));
        else
            machine.access(MemRef::load(addr));
    }

    EXPECT_EQ(machine.stats().coreOffEvents, 1u);
    ASSERT_NE(machine.controller(), nullptr);
    EXPECT_EQ(machine.controller()->liveCores(), 3u);
    EXPECT_FALSE(machine.controller()->liveMask() & (1u << 0));
    EXPECT_NE(machine.activeCore(), 0u);
    // The unplugged core's L2 was written to before the event, so
    // dirty lines were lost with it.
    EXPECT_GT(machine.stats().dirtyLinesLost, 0u);
    // The machine and its controller agree on the active core.
    EXPECT_EQ(machine.activeCore(),
              machine.controller()->activeCore());
}

TEST(Recovery, RestoredDegradedControllerAccumulatesRecoveryStats)
{
    // A checkpoint taken between core_off and core_on carries the
    // degraded mask *and* the recovery counters; churn after restore
    // must accumulate on top of the restored values, not reset them.
    MigrationController a(baseConfig(4));
    CircularStream stream(4000);
    train(a, stream, 300'000);
    a.setCoreOffline(2);
    train(a, stream, 100'000);
    const ControllerCheckpoint ckpt = a.checkpoint();

    MigrationController b(baseConfig(4));
    b.restore(ckpt);
    EXPECT_EQ(b.liveMask(), 0b1011u);
    EXPECT_EQ(b.recovery().coresLost, 1u);

    // Further churn on the restored controller: lose another core,
    // then complete the original pair's rejoin.
    b.setCoreOffline(3);
    b.setCoreOnline(2);
    EXPECT_EQ(b.recovery().coresLost, 2u);
    EXPECT_EQ(b.recovery().coresJoined, 1u);
    EXPECT_EQ(b.liveCores(), 3u); // 0, 1, 2
    EXPECT_EQ(b.splitWays(), 2u);
    EXPECT_GE(b.recovery().resplits, ckpt.recovery.resplits);

    // And it keeps serving requests over the survivors.
    const auto hist = targetHistogram(b, stream, 8000);
    for (const auto &[core, count] : hist)
        EXPECT_NE(core, 3u);
}

TEST(Recovery, MachineRestoredMidChurnCompletesTheRejoin)
{
    // Machine-level mirror of the controller test above: checkpoint
    // while a scheduled core_off/core_on pair is half-applied, restore
    // into a fresh machine whose injector carries the matching
    // core_on, and check the rejoin completes on restored state.
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.faultPlan = "seed=6;at=40000:core_off=2";
    MigrationMachine machine(cfg);
    CircularStream stream(20'000);
    for (uint64_t i = 0; i < 60'000; ++i) {
        machine.access(MemRef::ifetch(0x400000 + (i % 4096) * 4));
        machine.access(MemRef::load(stream.next() * 64));
    }
    ASSERT_EQ(machine.stats().coreOffEvents, 1u);
    const MachineCheckpoint ckpt = machine.checkpoint();
    ASSERT_EQ(ckpt.controller.liveMask, 0b1011u);

    MachineConfig cfg2 = cfg;
    cfg2.faultPlan = "seed=6;at=30000:core_on=2";
    MigrationMachine restored(cfg2);
    restored.restore(ckpt);
    ASSERT_NE(restored.controller(), nullptr);
    EXPECT_EQ(restored.controller()->liveCores(), 3u);

    for (uint64_t i = 0; i < 60'000; ++i) {
        restored.access(MemRef::ifetch(0x400000 + (i % 4096) * 4));
        restored.access(MemRef::load(stream.next() * 64));
    }
    EXPECT_EQ(restored.stats().coreOffEvents, 1u); // restored value
    EXPECT_EQ(restored.stats().coreOnEvents, 1u);
    EXPECT_EQ(restored.controller()->liveCores(), 4u);
    EXPECT_EQ(restored.controller()->splitWays(), 4u);
    EXPECT_EQ(restored.controller()->recovery().coresLost, 1u);
    EXPECT_EQ(restored.controller()->recovery().coresJoined, 1u);
    EXPECT_EQ(restored.countMultiModifiedLines(), 0u);
}

TEST(Recovery, MachineSurvivesChurnAndRejoin)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.faultPlan =
        "seed=2;at=50000:core_off=1;at=80000:core_off=3;"
        "at=120000:core_on=1";
    MigrationMachine machine(cfg);
    CircularStream stream(20'000);
    for (uint64_t i = 0; i < 200'000; ++i) {
        machine.access(MemRef::ifetch(0x400000 + (i % 4096) * 4));
        machine.access(MemRef::load(stream.next() * 64));
    }
    EXPECT_EQ(machine.stats().coreOffEvents, 2u);
    EXPECT_EQ(machine.stats().coreOnEvents, 1u);
    ASSERT_NE(machine.controller(), nullptr);
    EXPECT_EQ(machine.controller()->liveCores(), 3u); // 0, 1, 2
    EXPECT_EQ(machine.controller()->recovery().coresLost, 2u);
    EXPECT_EQ(machine.controller()->recovery().coresJoined, 1u);
    // Only the 4-live -> 3-live drop changed the split arity (4 -> 2);
    // 3 -> 2 live and the rejoin to 3 keep it at 2 ways.
    EXPECT_EQ(machine.controller()->recovery().resplits, 1u);
    EXPECT_EQ(machine.controller()->splitWays(), 2u);
}

} // namespace
} // namespace xmig
