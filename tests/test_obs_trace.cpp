/**
 * @file
 * xmig-scope tracing (obs/trace.hpp) and profiling (obs/prof.hpp):
 * every emitted trace document must parse as JSON, the macros must be
 * free when no session is active, and the buffer limit must drop
 * rather than grow.
 *
 * The Tracer is process-global state, so each test runs against a
 * fresh start() and stop()s before leaving.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "obs/json.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace xmig::obs {
namespace {

std::string
tempTracePath(const char *name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

class TraceTest : public testing::Test
{
  protected:
    void
    TearDown() override
    {
        // Never leak an enabled session into the next test.
        if (tracer().enabled())
            tracer().stop();
        tracer().setLimit(1'000'000);
        std::remove(path_.c_str());
    }

    std::string path_ = tempTracePath("xmig_trace_test.json");
};

TEST_F(TraceTest, DisabledMacrosEmitNothing)
{
    ASSERT_FALSE(tracer().enabled());
    const size_t before = tracer().events();
    XMIG_TRACE("cat", "event", {{"k", 1}});
    XMIG_TRACE("cat", "note_event", "a note");
    XMIG_TRACE_COUNTER("cat", "ctr", 5);
    XMIG_TRACE_CLOCK(123);
    EXPECT_EQ(tracer().events(), before);
}

TEST_F(TraceTest, RenderedDocumentParsesAndCarriesEvents)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "tracing compiled out (-DXMIG_TRACE=OFF)";
    tracer().start(path_);
    XMIG_TRACE_CLOCK(100);
    XMIG_TRACE("migration", "migrate",
               {{"from", 0}, {"to", 2}, {"line", 0xdeadbeef}});
    XMIG_TRACE("shadow", "disarm", "A_R saturated \"hard\"");
    XMIG_TRACE_COUNTER("machine", "active_core", 2);

    EXPECT_EQ(tracer().events(), 3u);
    const std::string doc = tracer().renderJson();
    EXPECT_TRUE(jsonParseOk(doc)) << doc;
    // The simulated-time clock stamps every event.
    EXPECT_NE(doc.find("\"ts\":100"), std::string::npos);
    EXPECT_NE(doc.find("\"migrate\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
    // Escaping survived into the note argument.
    EXPECT_NE(doc.find("A_R saturated \\\"hard\\\""),
              std::string::npos);
    tracer().stop();
}

TEST_F(TraceTest, StopWritesTheFileAndDisables)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "tracing compiled out (-DXMIG_TRACE=OFF)";
    tracer().start(path_);
    XMIG_TRACE("cat", "only_event", {{"v", 7}});
    tracer().stop();
    EXPECT_FALSE(tracer().enabled());

    const std::string doc = slurp(path_);
    ASSERT_FALSE(doc.empty());
    EXPECT_TRUE(jsonParseOk(doc));
    EXPECT_NE(doc.find("\"only_event\""), std::string::npos);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"droppedEvents\":0"), std::string::npos);

    // A stopped tracer records nothing further.
    XMIG_TRACE("cat", "late", {{"v", 1}});
    EXPECT_EQ(tracer().events(), 0u);
}

TEST_F(TraceTest, BufferLimitDropsAndCounts)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "tracing compiled out (-DXMIG_TRACE=OFF)";
    tracer().start(path_);
    tracer().setLimit(3);
    for (int i = 0; i < 10; ++i)
        XMIG_TRACE("cat", "e", {{"i", i}});
    EXPECT_EQ(tracer().events(), 3u);
    EXPECT_EQ(tracer().dropped(), 7u);
    const std::string doc = tracer().renderJson();
    EXPECT_TRUE(jsonParseOk(doc));
    EXPECT_NE(doc.find("\"droppedEvents\":7"), std::string::npos);
    tracer().stop();
}

TEST_F(TraceTest, EmptySessionStillRendersValidJson)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "tracing compiled out (-DXMIG_TRACE=OFF)";
    tracer().start(path_);
    const std::string doc = tracer().renderJson();
    EXPECT_TRUE(jsonParseOk(doc));
    // Only the two process_name metadata records are present.
    EXPECT_NE(doc.find("simulated time"), std::string::npos);
    EXPECT_NE(doc.find("wall clock"), std::string::npos);
    tracer().stop();
}

TEST(Prof, ScopesAccumulateSelfAndTotal)
{
    ProfileRegistry::instance().reset();
    {
        XMIG_PROF_SCOPE("outer");
        {
            XMIG_PROF_SCOPE("inner");
        }
        {
            XMIG_PROF_SCOPE("inner");
        }
    }
    const ProfEntry *outer = ProfileRegistry::instance().find("outer");
    const ProfEntry *inner = ProfileRegistry::instance().find("inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->calls, 1u);
    EXPECT_EQ(inner->calls, 2u);
    // The inner scopes' time is the outer scope's child time.
    EXPECT_GE(outer->totalNs, outer->childNs);
    EXPECT_GE(outer->childNs, inner->totalNs);
    EXPECT_EQ(outer->selfNs(), outer->totalNs - outer->childNs);

    const std::string report = ProfileRegistry::instance().report();
    EXPECT_NE(report.find("outer"), std::string::npos);
    EXPECT_NE(report.find("inner"), std::string::npos);
    ProfileRegistry::instance().reset();
    EXPECT_TRUE(ProfileRegistry::instance().entries().empty());
}

TEST(Prof, ScopesLandInActiveTraceOnWallClockPid)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "tracing compiled out (-DXMIG_TRACE=OFF)";
    const std::string path = tempTracePath("xmig_trace_prof.json");
    tracer().start(path);
    {
        XMIG_PROF_SCOPE("traced_phase");
    }
    const std::string doc = tracer().renderJson();
    EXPECT_TRUE(jsonParseOk(doc));
    EXPECT_NE(doc.find("\"traced_phase\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":1"), std::string::npos);
    tracer().stop();
    std::remove(path.c_str());
}

} // namespace
} // namespace xmig::obs
