/**
 * @file
 * Integration tests for the experiment drivers: Figure 3 snapshots,
 * Table 1 inventory, Figures 4/5 stack profiles, Table 2 quad-core.
 * These exercise the full pipeline workload -> L1 filter ->
 * controller/stacks/machine at reduced scale.
 */

#include <gtest/gtest.h>

#include "sim/quadcore.hpp"
#include "sim/snapshot.hpp"
#include "sim/stack_profile.hpp"
#include "sim/table1.hpp"

namespace xmig {
namespace {

TEST(SnapshotExperiment, Figure3CircularShape)
{
    CircularStream s(4000);
    SnapshotParams p;
    const SnapshotResult r = runAffinitySnapshot(s, p); // t = 100k
    EXPECT_EQ(r.affinity.size(), 4000u);
    EXPECT_EQ(r.positive + r.negative, 4000u);
    EXPECT_GT(r.positive, 1200u);
    EXPECT_GT(r.negative, 1200u);
    EXPECT_LT(r.transitionFrequency, 0.01);
}

TEST(Table1Experiment, ProducesSaneCounts)
{
    Table1Params p;
    p.instructionsPerBenchmark = 400'000;
    const Table1Row row = runTable1("179.art", p);
    EXPECT_EQ(row.name, "179.art");
    EXPECT_EQ(row.suite, "SPEC2000");
    EXPECT_GE(row.instructions, 400'000u);
    EXPECT_GT(row.dl1Misses, 0u);
    EXPECT_LE(row.il1Misses, row.instructions);
    EXPECT_LE(row.dl1Misses, row.loads + row.stores);
}

TEST(StackProfileExperiment, ProfilesAreMonotoneNonIncreasing)
{
    StackProfileParams p;
    p.instructionsPerBenchmark = 1'500'000;
    const StackProfileResult r = runStackProfile("188.ammp", p);
    ASSERT_EQ(r.p1.size(), r.plotSizes.size());
    for (size_t i = 1; i < r.p1.size(); ++i) {
        EXPECT_LE(r.p1[i], r.p1[i - 1] + 1e-12);
        EXPECT_LE(r.p4[i], r.p4[i - 1] + 1e-12);
    }
    for (size_t i = 0; i < r.p1.size(); ++i) {
        EXPECT_GE(r.p1[i], 0.0);
        EXPECT_LE(r.p1[i], 1.0);
        EXPECT_GE(r.p4[i], 0.0);
        EXPECT_LE(r.p4[i], 1.0);
    }
    EXPECT_GT(r.stackAccesses, 0u);
}

TEST(StackProfileExperiment, SplittableBenchmarkShowsGap)
{
    StackProfileParams p;
    p.instructionsPerBenchmark = 4'000'000;
    const StackProfileResult art = runStackProfile("179.art", p);
    EXPECT_GT(art.maxGap(), 0.15) << "art must be splittable";
    const StackProfileResult gzip = runStackProfile("164.gzip", p);
    EXPECT_LT(gzip.maxGap(), 0.12) << "gzip must not be splittable";
    // Transition frequency stays low even on the random benchmark
    // (the transition filter's job).
    EXPECT_LT(gzip.transitionFrequency, 0.05);
}

TEST(QuadcoreExperiment, ArtWinsGzipDoesNot)
{
    QuadcoreParams p;
    p.instructionsPerBenchmark = 6'000'000;
    const QuadcoreRow art = runQuadcore("179.art", p);
    EXPECT_LT(art.missRatio(), 0.5);
    EXPECT_GT(art.migrations, 0u);
    EXPECT_GT(art.removedMissesPerMigration(), 10.0);

    const QuadcoreRow gzip = runQuadcore("164.gzip", p);
    EXPECT_GT(gzip.missRatio(), 0.9);
    EXPECT_LT(gzip.missRatio(), 1.15);
}

TEST(QuadcoreExperiment, CountsAreConsistent)
{
    QuadcoreParams p;
    p.instructionsPerBenchmark = 1'000'000;
    const QuadcoreRow r = runQuadcore("health", p);
    EXPECT_GE(r.instructions, 1'000'000u);
    EXPECT_GT(r.l1Misses, 0u);
    EXPECT_LE(r.l2MissesBaseline, r.l1Misses + r.instructions);
    EXPECT_GT(r.l2Misses4x, 0u);
}

} // namespace
} // namespace xmig
