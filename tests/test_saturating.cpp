/**
 * @file
 * Unit tests for runtime-width saturating integers and the paper's
 * sign convention.
 */

#include <gtest/gtest.h>

#include "util/saturating.hpp"

namespace xmig {
namespace {

TEST(SatInt, BoundsMatchWidth)
{
    EXPECT_EQ(SatInt::minForBits(16), -32768);
    EXPECT_EQ(SatInt::maxForBits(16), 32767);
    EXPECT_EQ(SatInt::minForBits(2), -2);
    EXPECT_EQ(SatInt::maxForBits(2), 1);
    EXPECT_EQ(SatInt::minForBits(20), -(1 << 19));
    EXPECT_EQ(SatInt::maxForBits(20), (1 << 19) - 1);
}

TEST(SatInt, StartsAtZero)
{
    SatInt v(16);
    EXPECT_EQ(v.get(), 0);
    EXPECT_FALSE(v.saturated());
}

TEST(SatInt, AddsWithinRange)
{
    SatInt v(16);
    v.add(100);
    v.add(-30);
    EXPECT_EQ(v.get(), 70);
}

TEST(SatInt, SaturatesHigh)
{
    SatInt v(8); // range [-128, 127]
    v.add(1000);
    EXPECT_EQ(v.get(), 127);
    EXPECT_TRUE(v.saturated());
    v.add(1);
    EXPECT_EQ(v.get(), 127);
    v.add(-1);
    EXPECT_EQ(v.get(), 126);
    EXPECT_FALSE(v.saturated());
}

TEST(SatInt, SaturatesLow)
{
    SatInt v(8);
    v.add(-1000);
    EXPECT_EQ(v.get(), -128);
    EXPECT_TRUE(v.saturated());
    v -= 5;
    EXPECT_EQ(v.get(), -128);
    v += 3;
    EXPECT_EQ(v.get(), -125);
}

TEST(SatInt, InitialValueClamped)
{
    SatInt v(8, 500);
    EXPECT_EQ(v.get(), 127);
    SatInt w(8, -500);
    EXPECT_EQ(w.get(), -128);
}

TEST(SatInt, SetClamps)
{
    SatInt v(16);
    v.set(1 << 20);
    EXPECT_EQ(v.get(), 32767);
    v.set(-(1 << 20));
    EXPECT_EQ(v.get(), -32768);
    v.set(5);
    EXPECT_EQ(v.get(), 5);
}

TEST(SatInt, AddReportsClamping)
{
    // add() returns whether the value was clamped: the shadow-audit
    // oracle uses this as its saturation disarm signal.
    SatInt v(8);
    EXPECT_FALSE(v.add(100));
    EXPECT_TRUE(v.add(100)); // 200 clamps to 127
    EXPECT_EQ(v.get(), 127);
    EXPECT_FALSE(v.add(-255));
    EXPECT_TRUE(v.add(-1)); // -129 clamps to -128
    EXPECT_EQ(v.get(), -128);
    EXPECT_FALSE(v.add(0));
}

TEST(SatInt, SetReportsClamping)
{
    SatInt v(16);
    EXPECT_FALSE(v.set(32767));
    EXPECT_TRUE(v.set(32768));
    EXPECT_EQ(v.get(), 32767);
    EXPECT_TRUE(v.set(-32769));
    EXPECT_EQ(v.get(), -32768);
    EXPECT_FALSE(v.set(-32768));
}

TEST(SatInt, NarrowestWidthCorners)
{
    // 2 bits: range [-2, 1], the smallest legal SatInt.
    SatInt v(2);
    EXPECT_TRUE(v.add(2));
    EXPECT_EQ(v.get(), 1);
    EXPECT_FALSE(v.add(-3));
    EXPECT_EQ(v.get(), -2);
    EXPECT_TRUE(v.add(-1));
    EXPECT_EQ(v.get(), -2);
    // Crossing zero in one step is not a clamp.
    EXPECT_FALSE(v.add(3));
    EXPECT_EQ(v.get(), 1);
}

TEST(SatInt, WidestWidthCorners)
{
    // 62 bits: the widest supported width must clamp exactly at its
    // bounds, not wrap in the int64_t arithmetic underneath.
    SatInt v(62);
    const int64_t hi = SatInt::maxForBits(62);
    const int64_t lo = SatInt::minForBits(62);
    EXPECT_FALSE(v.add(hi));
    EXPECT_EQ(v.get(), hi);
    EXPECT_TRUE(v.add(hi));
    EXPECT_EQ(v.get(), hi);
    EXPECT_FALSE(v.set(0));
    EXPECT_FALSE(v.add(lo));
    EXPECT_EQ(v.get(), lo);
    EXPECT_TRUE(v.add(lo));
    EXPECT_EQ(v.get(), lo);
}

TEST(SatInt, SignFlipsAroundZeroWithoutClamping)
{
    SatInt v(8);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(v.add(i % 2 == 0 ? 1 : -1));
        EXPECT_TRUE(v.get() == 0 || v.get() == 1);
    }
}

TEST(SignFunction, ZeroIsPositive)
{
    // The paper defines sign(0) = +1 (section 3.2).
    EXPECT_EQ(affinitySign(0), 1);
    EXPECT_EQ(affinitySign(5), 1);
    EXPECT_EQ(affinitySign(-1), -1);
    EXPECT_EQ(affinitySign(-1000000), -1);
}

TEST(SaturateToBits, ClampsBothSides)
{
    EXPECT_EQ(saturateToBits(40000, 16), 32767);
    EXPECT_EQ(saturateToBits(-40000, 16), -32768);
    EXPECT_EQ(saturateToBits(123, 16), 123);
    EXPECT_EQ(saturateToBits(-123, 16), -123);
}

/** Saturating addition never escapes the representable range. */
class SatIntWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatIntWidthTest, RandomWalkStaysInRange)
{
    const unsigned bits = GetParam();
    SatInt v(bits);
    uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 10000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const int64_t delta =
            static_cast<int64_t>(x >> 40) - (1 << 23);
        v.add(delta);
        EXPECT_GE(v.get(), v.min());
        EXPECT_LE(v.get(), v.max());
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SatIntWidthTest,
                         ::testing::Values(2u, 8u, 16u, 17u, 18u, 20u,
                                           24u, 32u, 62u));

} // namespace
} // namespace xmig
