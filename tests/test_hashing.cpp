/**
 * @file
 * Unit and property tests for the sampling hash and skewing hashes.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "util/hashing.hpp"
#include "util/rng.hpp"

namespace xmig {
namespace {

TEST(HashMod31, MatchesArithmeticModulo)
{
    // Exhaustive on small values.
    for (uint64_t e = 0; e < 100000; ++e)
        ASSERT_EQ(hashMod31(e), e % 31) << "e=" << e;
}

TEST(HashMod31, MatchesOnLargeRandomValues)
{
    Rng rng(123);
    for (int i = 0; i < 100000; ++i) {
        const uint64_t e = rng.next();
        ASSERT_EQ(hashMod31(e), e % 31) << "e=" << e;
    }
}

TEST(HashMod31, EdgeCases)
{
    EXPECT_EQ(hashMod31(0), 0u);
    EXPECT_EQ(hashMod31(31), 0u);
    EXPECT_EQ(hashMod31(30), 30u);
    EXPECT_EQ(hashMod31(32), 1u);
    EXPECT_EQ(hashMod31(UINT64_MAX), UINT64_MAX % 31);
}

TEST(SampledLine, CutoffSemantics)
{
    // cutoff 31 keeps everything; cutoff 0 keeps nothing.
    for (uint64_t e = 1000; e < 1100; ++e) {
        EXPECT_TRUE(sampledLine(e, 31));
        EXPECT_FALSE(sampledLine(e, 0));
        EXPECT_EQ(sampledLine(e, 8), hashMod31(e) < 8);
    }
}

TEST(SampledLine, QuarterSamplingRatio)
{
    // cutoff 8 keeps 8 of the 31 residues: ~25.8% of consecutive
    // lines (the paper's "one fourth of the working-set").
    uint64_t kept = 0;
    const uint64_t n = 31 * 1000;
    for (uint64_t e = 0; e < n; ++e)
        kept += sampledLine(e, 8) ? 1 : 0;
    EXPECT_EQ(kept, n * 8 / 31);
}

TEST(SkewHash, StaysInRange)
{
    Rng rng(7);
    for (unsigned bank = 0; bank < 4; ++bank) {
        for (int i = 0; i < 10000; ++i) {
            const uint64_t h = skewHash(rng.next(), bank, 2048);
            EXPECT_LT(h, 2048u);
        }
    }
}

TEST(SkewHash, BankZeroIsConventionalIndexing)
{
    for (uint64_t line = 0; line < 5000; ++line)
        EXPECT_EQ(skewHash(line, 0, 1024), line & 1023);
}

TEST(SkewHash, SequentialLinesDisperseInEveryBank)
{
    // The property that makes skewed associativity (and the 512-KB
    // L2 on sequential scans) work: a run of consecutive lines must
    // spread over nearly all sets of every bank.
    const uint64_t sets = 2048;
    for (unsigned bank = 1; bank < 4; ++bank) {
        std::set<uint64_t> used;
        for (uint64_t line = 0x4000000; line < 0x4000000 + sets; ++line)
            used.insert(skewHash(line, bank, sets));
        EXPECT_GT(used.size(), sets / 2)
            << "bank " << bank << " collapses sequential lines";
    }
}

TEST(SkewHash, MaxLoadBoundedOnSequentialLines)
{
    const uint64_t sets = 2048;
    for (unsigned bank = 1; bank < 4; ++bank) {
        std::unordered_map<uint64_t, unsigned> load;
        for (uint64_t line = 0; line < 6 * sets; ++line)
            ++load[skewHash(line + 0x12345, bank, sets)];
        unsigned max_load = 0;
        for (const auto &[s, c] : load)
            max_load = std::max(max_load, c);
        // Balls-in-bins: mean 6, a healthy hash stays well under 30.
        EXPECT_LT(max_load, 30u) << "bank " << bank;
    }
}

TEST(SkewHash, BanksAreDecorrelated)
{
    // Two lines colliding in one bank should almost never collide in
    // another.
    const uint64_t sets = 1024;
    Rng rng(99);
    uint64_t both = 0, trials = 0;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t a = rng.next(), b = rng.next();
        if (skewHash(a, 1, sets) == skewHash(b, 1, sets)) {
            ++trials;
            if (skewHash(a, 2, sets) == skewHash(b, 2, sets))
                ++both;
        }
    }
    // P(collide in bank 2 | collide in bank 1) should be ~1/sets.
    EXPECT_LT(both, trials / 16 + 3);
}

TEST(Mix64, IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    // Low bits of consecutive inputs should differ frequently.
    unsigned same = 0;
    for (uint64_t i = 0; i < 1000; ++i)
        same += ((mix64(i) ^ mix64(i + 1)) & 0xff) == 0 ? 1 : 0;
    EXPECT_LT(same, 20u);
}

} // namespace
} // namespace xmig
