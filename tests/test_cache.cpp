/**
 * @file
 * Unit tests for the write-policy cache model (section 2.1 semantics).
 */

#include <gtest/gtest.h>

#include "cache/cache.hpp"

namespace xmig {
namespace {

CacheConfig
tinyConfig(WritePolicy write)
{
    CacheConfig c;
    c.capacityBytes = 4 * 64; // 4 lines
    c.ways = 2;
    c.lineBytes = 64;
    c.write = write;
    return c;
}

TEST(Cache, ReadMissFillsThenHits)
{
    Cache cache(tinyConfig(WritePolicy::WriteBackAllocate));
    AccessOutcome first = cache.access(10, false);
    EXPECT_FALSE(first.hit);
    EXPECT_TRUE(first.filled);
    AccessOutcome second = cache.access(10, false);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, WriteBackAllocateSetsModified)
{
    Cache cache(tinyConfig(WritePolicy::WriteBackAllocate));
    AccessOutcome out = cache.access(10, true);
    EXPECT_FALSE(out.hit);
    EXPECT_TRUE(out.filled);
    EXPECT_FALSE(out.writeThrough);
    ASSERT_NE(cache.findEntry(10), nullptr);
    EXPECT_TRUE(cache.findEntry(10)->modified);
}

TEST(Cache, WriteThroughNoAllocateStoreMiss)
{
    Cache cache(tinyConfig(WritePolicy::WriteThroughNoAllocate));
    AccessOutcome out = cache.access(10, true);
    EXPECT_FALSE(out.hit);
    EXPECT_FALSE(out.filled); // non-write-allocate
    EXPECT_TRUE(out.writeThrough);
    EXPECT_FALSE(cache.contains(10));
}

TEST(Cache, WriteThroughStoreHitPropagates)
{
    Cache cache(tinyConfig(WritePolicy::WriteThroughNoAllocate));
    cache.access(10, false); // allocate via load
    AccessOutcome out = cache.access(10, true);
    EXPECT_TRUE(out.hit);
    EXPECT_TRUE(out.writeThrough);
    // WT caches never hold dirty lines.
    EXPECT_FALSE(cache.findEntry(10)->modified);
}

TEST(Cache, EvictingModifiedLineWritesBack)
{
    CacheConfig c = tinyConfig(WritePolicy::WriteBackAllocate);
    c.capacityBytes = 2 * 64; // 2 lines, 2 ways: one set
    Cache cache(c);
    cache.access(1, true); // dirty
    cache.access(2, false);
    AccessOutcome out = cache.access(3, false); // evicts line 1 (LRU)
    EXPECT_TRUE(out.evictedValid);
    EXPECT_EQ(out.evictedLine, 1u);
    EXPECT_TRUE(out.writeback);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, EvictingCleanLineNoWriteback)
{
    CacheConfig c = tinyConfig(WritePolicy::WriteBackAllocate);
    c.capacityBytes = 2 * 64;
    Cache cache(c);
    cache.access(1, false);
    cache.access(2, false);
    AccessOutcome out = cache.access(3, false);
    EXPECT_TRUE(out.evictedValid);
    EXPECT_FALSE(out.writeback);
}

TEST(Cache, FillInstallsWithoutCountingAccess)
{
    Cache cache(tinyConfig(WritePolicy::WriteBackAllocate));
    AccessOutcome out = cache.fill(42, false);
    EXPECT_TRUE(out.filled);
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.contains(42));
}

TEST(Cache, FillOnResidentLineOrsModified)
{
    Cache cache(tinyConfig(WritePolicy::WriteBackAllocate));
    cache.fill(42, false);
    EXPECT_FALSE(cache.findEntry(42)->modified);
    cache.fill(42, true);
    EXPECT_TRUE(cache.findEntry(42)->modified);
    cache.fill(42, false); // must not clear
    EXPECT_TRUE(cache.findEntry(42)->modified);
}

TEST(Cache, InvalidateClearsLine)
{
    Cache cache(tinyConfig(WritePolicy::WriteBackAllocate));
    cache.access(10, true);
    EXPECT_TRUE(cache.invalidate(10));
    EXPECT_FALSE(cache.contains(10));
    EXPECT_FALSE(cache.invalidate(10));
}

TEST(Cache, SkewedConfigWorksEndToEnd)
{
    CacheConfig c;
    c.capacityBytes = 512 * 1024;
    c.ways = 4;
    c.skewed = true;
    Cache cache(c);
    // Fill with a sequential run the size of the cache; a healthy
    // skewed cache retains most of it.
    const uint64_t lines = c.numLines();
    for (uint64_t l = 0; l < lines; ++l)
        cache.access(0x4000000 + l, false);
    uint64_t resident = 0;
    for (uint64_t l = 0; l < lines; ++l)
        resident += cache.contains(0x4000000 + l) ? 1 : 0;
    EXPECT_GT(resident, lines * 3 / 4);
}

} // namespace
} // namespace xmig
