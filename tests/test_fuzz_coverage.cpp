/**
 * @file
 * xmig-storm coverage layer: bucket math, surface read-back, the
 * site-causality table, guided-campaign determinism, and the A/B
 * proof that guidance beats uniform sampling at equal budget.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/campaign.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/coverage_generator.hpp"
#include "multicore/machine.hpp"
#include "sim/runner/job_pool.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

namespace {

/**
 * The fixed A/B configuration: seed and budget chosen (and verified
 * by this test, forever) such that the uniform campaign leaves a
 * solid margin of recovery/injection counters unlit. Both arms are
 * deterministic, so the comparison cannot flake — it can only break
 * when someone changes the generators, which is exactly when it
 * should speak up.
 */
CampaignConfig
abConfig()
{
    CampaignConfig config;
    config.seed = 3;
    config.plans = 16;
    config.instructions = 40'000;
    config.minimize = false;
    return config;
}

} // namespace

TEST(CoverageMap, BucketIsLog2Magnitude)
{
    EXPECT_EQ(CoverageMap::bucketOf(0), 0u);
    EXPECT_EQ(CoverageMap::bucketOf(1), 1u);
    EXPECT_EQ(CoverageMap::bucketOf(2), 2u);
    EXPECT_EQ(CoverageMap::bucketOf(3), 2u);
    EXPECT_EQ(CoverageMap::bucketOf(4), 3u);
    EXPECT_EQ(CoverageMap::bucketOf(255), 8u);
    EXPECT_EQ(CoverageMap::bucketOf(256), 9u);
    EXPECT_EQ(CoverageMap::bucketOf(~uint64_t{0}), 64u);
}

TEST(CoverageMap, ObserveCountsNovelFeaturesOnly)
{
    CoverageMap map;
    // First sight: counter "a" at bucket 2 => 2 features (buckets 1
    // and 2); counter "b" unlit => 0 features but joins the universe.
    EXPECT_EQ(map.observe({{"a", 3}, {"b", 0}}), 2u);
    EXPECT_EQ(map.countersTotal(), 2u);
    EXPECT_EQ(map.countersHit(), 1u);
    EXPECT_EQ(map.bucketsHit(), 2u);

    // Same magnitudes teach nothing.
    EXPECT_EQ(map.observe({{"a", 2}, {"b", 0}}), 0u);

    // "a" jumps two buckets, "b" lights up: 3 novel features.
    EXPECT_EQ(map.observe({{"a", 12}, {"b", 1}}), 3u);
    EXPECT_EQ(map.countersHit(), 2u);
    EXPECT_EQ(map.maxBucketOf("a"), 4u);
    EXPECT_TRUE(map.hit("b"));
    EXPECT_FALSE(map.hit("unknown"));
}

TEST(CoverageMap, ReportNamesTheMisses)
{
    CoverageMap map;
    map.observe({{"zulu", 5}, {"alpha", 0}, {"mike", 0}});
    EXPECT_EQ(map.reportLine(),
              "coverage: counters_hit=1/3 buckets_hit=3");
    const std::string report = map.report();
    EXPECT_NE(report.find("  MISS alpha\n"), std::string::npos);
    EXPECT_NE(report.find("  MISS mike\n"), std::string::npos);
    EXPECT_EQ(report.find("MISS zulu"), std::string::npos);
    // Misses are name-sorted.
    EXPECT_LT(report.find("MISS alpha"), report.find("MISS mike"));
}

TEST(Coverage, CollectReadsTheRecoverySurface)
{
    MachineConfig config;
    config.faultPlan = "seed=5;at=1000:core_off=2;at=9000:core_on=2";
    MigrationMachine m(config);
    RefRecorder recorder;
    makeWorkload("181.mcf")->run(recorder, 20'000, 11);
    for (const MemRef &ref : recorder.refs())
        m.access(ref);

    const std::vector<CoveragePoint> points = collectCoverage(m);
    ASSERT_FALSE(points.empty());

    // Name-sorted, and confined to the coverage surface.
    for (size_t i = 1; i < points.size(); ++i)
        EXPECT_LT(points[i - 1].path, points[i].path);
    const auto valueOf = [&](const std::string &path) -> int64_t {
        for (const CoveragePoint &p : points) {
            if (p.path == path)
                return static_cast<int64_t>(p.value);
        }
        return -1;
    };
    // The scheduled churn pair must show up in both the injection
    // and the recovery counters.
    EXPECT_EQ(valueOf("machine.faults.injected.core_off"), 1);
    EXPECT_EQ(valueOf("machine.faults.injected.core_on"), 1);
    EXPECT_EQ(valueOf("machine.controller.recovery.cores_lost"), 1);
    EXPECT_EQ(valueOf("machine.controller.recovery.cores_joined"), 1);
    // Non-surface counters (hit-path stats) must not leak in.
    for (const CoveragePoint &p : points)
        EXPECT_EQ(p.path.find(".store.lookups"), std::string::npos)
            << p.path;
}

TEST(CoverageGenerator, SiteTableMapsCountersToActuators)
{
    using CGG = CoverageGuidedGenerator;
    const auto only = [](const std::vector<FaultSite> &v, FaultSite s) {
        return v.size() == 1 && v[0] == s;
    };
    EXPECT_TRUE(only(CGG::sitesFor("machine.faults.injected.oe"),
                     FaultSite::OeEntry));
    EXPECT_TRUE(only(CGG::sitesFor("machine.faults.injected.mig_drop"),
                     FaultSite::MigDrop));
    EXPECT_TRUE(
        only(CGG::sitesFor("machine.controller.recovery.mig_timeouts"),
             FaultSite::MigDrop));
    EXPECT_TRUE(
        only(CGG::sitesFor("machine.controller.recovery.store_drops"),
             FaultSite::CacheTag));
    EXPECT_TRUE(only(CGG::sitesFor("machine.bus_drops"),
                     FaultSite::BusDrop));
    // Rejoin-side counters need the off/on pair.
    const auto joined =
        CGG::sitesFor("machine.controller.recovery.cores_joined");
    EXPECT_EQ(joined.size(), 2u);
    // Watchdog counters have no actuator.
    EXPECT_TRUE(
        CGG::sitesFor("machine.controller.watchdog.trips").empty());
}

TEST(CoverageGenerator, SameSeedSameCaseSequence)
{
    GuidedConfig config;
    config.workloadPool = {"storm.phase", "181.mcf"};
    CoverageGuidedGenerator g1(99, config);
    CoverageGuidedGenerator g2(99, config);
    for (int i = 0; i < 20; ++i) {
        const FuzzCase c1 = g1.next("181.mcf", 10'000);
        const FuzzCase c2 = g2.next("181.mcf", 10'000);
        EXPECT_EQ(c1.plan, c2.plan);
        EXPECT_EQ(c1.benchmark, c2.benchmark);
        EXPECT_EQ(c1.workloadSeed, c2.workloadSeed);
        // Identical feedback keeps them in lockstep.
        g1.feedback(c1, {{"machine.bus_drops", uint64_t(i)}});
        g2.feedback(c2, {{"machine.bus_drops", uint64_t(i)}});
    }
}

TEST(GuidedCampaign, ByteIdenticalAcrossJobs)
{
    const CampaignConfig config = abConfig();
    GuidedConfig guided;
    guided.workloadPool = {"storm.unsplit", "181.mcf"};
    const PropertyHarness harness;
    const std::string s1 =
        runGuidedCampaign(config, guided, harness, JobPool(1))
            .summary();
    const std::string s2 =
        runGuidedCampaign(config, guided, harness, JobPool(2))
            .summary();
    const std::string s4 =
        runGuidedCampaign(config, guided, harness, JobPool(4))
            .summary();
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s4);
    EXPECT_NE(s1.find("coverage: counters_hit="), std::string::npos);
}

/**
 * The xmig-storm acceptance proof: at equal case budget and fixed
 * seed, the guided campaign lights up strictly more of the
 * recovery/injection counter surface than the uniform one — both
 * with guidance alone and with the adversarial workload pool
 * paired in.
 */
TEST(GuidedCampaign, BeatsUniformCoverageAtEqualBudget)
{
    const CampaignConfig config = abConfig();
    const PropertyHarness harness;
    const JobPool pool(4);

    const CampaignResult uniform = runCampaign(config, harness, pool);

    const GuidedConfig pure; // no workload pool: guidance alone
    const CampaignResult guided =
        runGuidedCampaign(config, pure, harness, pool);

    GuidedConfig storm;
    storm.workloadPool = adversarialWorkloadNames();
    storm.workloadPool.push_back(config.benchmark);
    const CampaignResult stormed =
        runGuidedCampaign(config, storm, harness, pool);

    // Both campaigns observed the same counter universe.
    ASSERT_EQ(uniform.coverage.countersTotal(),
              guided.coverage.countersTotal());

    EXPECT_GT(guided.coverage.countersHit(),
              uniform.coverage.countersHit())
        << "uniform: " << uniform.coverage.report()
        << "guided: " << guided.coverage.report();
    EXPECT_GT(guided.coverage.bucketsHit(),
              uniform.coverage.bucketsHit());
    EXPECT_GT(stormed.coverage.countersHit(),
              uniform.coverage.countersHit())
        << "uniform: " << uniform.coverage.report()
        << "stormed: " << stormed.coverage.report();
}

TEST(Campaign, SummaryReportsOracleCountsAndCoverage)
{
    // The broken test-only oracle gives deterministic failures to
    // count (same seed as test_fuzz_campaign's pipeline test).
    CampaignConfig config;
    config.seed = 3;
    config.plans = 20;
    config.instructions = 25'000;
    config.minimize = false;

    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness harness(hc);
    const CampaignResult r = runCampaign(config, harness, JobPool(2));
    ASSERT_FALSE(r.failures.empty());

    const auto counts = r.oracleCounts();
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts[0].first, "broken_self_test");
    EXPECT_EQ(counts[0].second, r.failures.size());

    const std::string summary = r.summary();
    EXPECT_NE(summary.find("oracle_failures: broken_self_test=" +
                           std::to_string(r.failures.size())),
              std::string::npos);
    EXPECT_NE(summary.find("coverage: counters_hit="),
              std::string::npos);

    // A clean campaign says so.
    const PropertyHarness clean;
    const std::string ok =
        runCampaign(config, clean, JobPool(2)).summary();
    EXPECT_NE(ok.find("oracle_failures: none"), std::string::npos);
}
