/**
 * @file
 * Tests for the workload substrate: registry completeness, kernel
 * determinism, budget adherence, address sanity, and the footprint /
 * behavior classes each benchmark is tuned to (see DESIGN.md).
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "cache/l1_filter.hpp"
#include "workloads/code_walker.hpp"
#include "workloads/registry.hpp"

namespace xmig {
namespace {

TEST(Registry, HasAllEighteenBenchmarks)
{
    EXPECT_EQ(allWorkloadNames().size(), 18u);
    EXPECT_EQ(specWorkloadNames().size(), 13u);
    EXPECT_EQ(oldenWorkloadNames().size(), 5u);
}

TEST(Registry, FactoriesProduceMatchingInfo)
{
    for (const auto &name : allWorkloadNames()) {
        auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->info().name, name);
        EXPECT_FALSE(w->info().suite.empty());
        EXPECT_FALSE(w->info().description.empty());
    }
}

TEST(Registry, ShortNamesResolve)
{
    EXPECT_EQ(makeWorkload("mcf")->info().name, "181.mcf");
    EXPECT_EQ(makeWorkload("art")->info().name, "179.art");
    EXPECT_EQ(makeWorkload("bh")->info().name, "bh");
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_DEATH({ makeWorkload("nonexistent"); }, "unknown workload");
}

TEST(CodeWalker, AddressesStayInCodeImage)
{
    CodeWalkerConfig c;
    c.codeBytes = 4096;
    c.baseAddr = 0x400000;
    CodeWalker walker(c);
    RefRecorder rec;
    for (int i = 0; i < 10000; ++i)
        walker.step(rec);
    for (const MemRef &r : rec.refs()) {
        ASSERT_TRUE(r.isIfetch());
        ASSERT_GE(r.addr, c.baseAddr);
        // Function carving may round up by one function length.
        ASSERT_LT(r.addr, c.baseAddr + c.codeBytes + 4096);
    }
}

TEST(CodeWalker, Deterministic)
{
    CodeWalkerConfig c;
    CodeWalker a(c), b(c);
    RefRecorder ra, rb;
    for (int i = 0; i < 2000; ++i) {
        a.step(ra);
        b.step(rb);
    }
    EXPECT_EQ(ra.refs(), rb.refs());
}

TEST(Workloads, DeterministicForSeed)
{
    for (const char *name : {"179.art", "health", "164.gzip"}) {
        auto w1 = makeWorkload(name);
        auto w2 = makeWorkload(name);
        RefRecorder r1, r2;
        w1->run(r1, 20'000, 7);
        w2->run(r2, 20'000, 7);
        EXPECT_EQ(r1.refs(), r2.refs()) << name;
    }
}

TEST(Workloads, BudgetRespectedWithinSlack)
{
    for (const auto &name : allWorkloadNames()) {
        auto w = makeWorkload(name);
        RefCounter c;
        const uint64_t budget = 300'000;
        w->run(c, budget);
        EXPECT_GE(c.instructions(), budget) << name;
        // Kernels may overshoot by at most one inner phase.
        EXPECT_LT(c.instructions(), budget * 3 / 2) << name;
    }
}

TEST(Workloads, EmitBothInstructionAndDataRefs)
{
    for (const auto &name : allWorkloadNames()) {
        auto w = makeWorkload(name);
        RefCounter c;
        // art's store-free recognition phase alone covers ~150k
        // instructions; use a budget that reaches every phase.
        w->run(c, 400'000);
        EXPECT_GT(c.ifetches(), 0u) << name;
        EXPECT_GT(c.loads(), 0u) << name;
        EXPECT_GT(c.stores(), 0u) << name;
        // Data refs should not outnumber instructions.
        EXPECT_LE(c.loads() + c.stores(), c.instructions()) << name;
    }
}

/** Measure the post-L1 data footprint of a kernel, in bytes. */
uint64_t
dataFootprint(const std::string &name, uint64_t instructions)
{
    struct FootprintSink : LineSink
    {
        std::unordered_set<uint64_t> lines;
        void
        onLine(const LineEvent &e) override
        {
            if (e.type != RefType::Ifetch)
                lines.insert(e.line);
        }
    } sink;
    L1FilterConfig c; // 16 KB fully-associative, unified
    L1Filter filter(c, sink);
    makeWorkload(name)->run(filter, instructions);
    return sink.lines.size() * 64;
}

TEST(Workloads, FootprintClasses)
{
    const uint64_t kInstr = 3'000'000;
    const uint64_t kL2 = 512 * 1024, k4L2 = 2 * 1024 * 1024;

    // Splittable class: bigger than one L2, within (or near) 4xL2.
    for (const char *name : {"179.art", "188.ammp", "em3d"}) {
        const uint64_t fp = dataFootprint(name, kInstr);
        EXPECT_GT(fp, kL2) << name;
        EXPECT_LT(fp, k4L2) << name;
    }
    // Streaming class: far beyond the total on-chip capacity.
    for (const char *name : {"171.swim", "172.mgrid", "mst"}) {
        const uint64_t fp = dataFootprint(name, kInstr);
        EXPECT_GT(fp, 2 * k4L2) << name;
    }
    // Fits-one-L2 class.
    for (const char *name : {"300.twolf", "bh", "175.vpr"}) {
        const uint64_t fp = dataFootprint(name, kInstr);
        EXPECT_LT(fp, kL2) << name;
    }
}

TEST(Workloads, InstructionHeavyClassMissesInIL1)
{
    // gcc/crafty/vortex carry large code images (Table 1).
    for (const char *name : {"176.gcc", "186.crafty", "255.vortex"}) {
        L1FilterConfig c;
        NullLineSink null_sink;
        L1Filter filter(c, null_sink);
        makeWorkload(name)->run(filter, 1'000'000);
        const double imiss_per_kinstr =
            static_cast<double>(filter.il1Stats().misses) / 1000.0;
        EXPECT_GT(imiss_per_kinstr, 5.0) << name;
    }
    // Most other benchmarks barely miss in IL1.
    for (const char *name : {"179.art", "171.swim", "bh"}) {
        L1FilterConfig c;
        NullLineSink null_sink;
        L1Filter filter(c, null_sink);
        makeWorkload(name)->run(filter, 1'000'000);
        EXPECT_LT(filter.il1Stats().missRatio(), 0.01) << name;
    }
}

} // namespace
} // namespace xmig
