/**
 * @file
 * xmig-storm soak mode: corpus round-trips, persistence across runs,
 * determinism at any jobs count, and the failure path — minimized
 * repro plus attached journal, replayable to the same oracle.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/soak.hpp"
#include "obs/journal.hpp"
#include "sim/runner/job_pool.hpp"

namespace xmig {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** A small deterministic soak configuration. */
SoakConfig
smallSoak(uint64_t seed, uint64_t budget)
{
    SoakConfig config;
    config.campaign.seed = seed;
    config.campaign.instructions = 25'000;
    config.budget = budget;
    config.batch = 8;
    return config;
}

TEST(SoakCorpus, EntryRoundTripsAndIsContentAddressed)
{
    FuzzCase c;
    c.plan = "seed=9;at=100:core_off=1;rate=0.01:bus_drop";
    c.benchmark = "storm.phase";
    c.workloadSeed = 77;
    c.instructions = 12'345;

    const std::string body = renderCorpusEntry(c);
    FuzzCase back;
    ASSERT_TRUE(parseCorpusEntry(body, &back));
    EXPECT_EQ(back.plan, c.plan);
    EXPECT_EQ(back.benchmark, c.benchmark);
    EXPECT_EQ(back.workloadSeed, c.workloadSeed);
    EXPECT_EQ(back.instructions, c.instructions);

    // Content addressing: same case, same name; any field change,
    // different name.
    const std::string name = corpusEntryName(c);
    EXPECT_EQ(name.find("case-"), 0u);
    EXPECT_EQ(name.substr(name.size() - 4), ".txt");
    EXPECT_EQ(corpusEntryName(back), name);
    FuzzCase other = c;
    other.workloadSeed = 78;
    EXPECT_NE(corpusEntryName(other), name);
}

TEST(SoakCorpus, MalformedEntriesAreRejectedNotFatal)
{
    FuzzCase out;
    EXPECT_FALSE(parseCorpusEntry("", &out));
    EXPECT_FALSE(parseCorpusEntry("plan=\nbenchmark=x\n", &out));
    EXPECT_FALSE(
        parseCorpusEntry("plan=seed=1\nbenchmark=\n", &out));
    EXPECT_FALSE(parseCorpusEntry(
        "plan=not a plan at all\nbenchmark=181.mcf\n", &out));
    EXPECT_FALSE(parseCorpusEntry(
        "plan=seed=1\nbenchmark=181.mcf\nmystery=1\n", &out));
    EXPECT_FALSE(parseCorpusEntry(
        "plan=seed=1\nbenchmark=181.mcf\ninstructions=0\n", &out));
    // Comments and defaults are fine.
    EXPECT_TRUE(parseCorpusEntry(
        "# a comment\nplan=seed=1\nbenchmark=181.mcf\n"
        "workload_seed=3\ninstructions=1000\n",
        &out));
    EXPECT_EQ(out.workloadSeed, 3u);
}

TEST(Soak, PersistsNovelCasesAndReplaysThemNextRun)
{
    const std::string corpus =
        ::testing::TempDir() + "soak_corpus_persist";
    std::filesystem::remove_all(corpus);
    const PropertyHarness harness;
    const JobPool pool(2);

    SoakConfig config = smallSoak(11, 24);
    config.corpusDir = corpus;
    const SoakResult first = runSoak(config, harness, pool);
    EXPECT_EQ(first.cases, 24u);
    EXPECT_EQ(first.corpusLoaded, 0u);
    EXPECT_GT(first.corpusSaved, 0u);
    EXPECT_TRUE(first.failures.empty());

    // A second run over the same directory warms up from the saved
    // corpus and, having seen those cases, saves nothing for them.
    const SoakResult second = runSoak(config, harness, pool);
    EXPECT_EQ(second.corpusLoaded, first.corpusSaved);
    EXPECT_GT(second.coverage.countersHit(), 0u);
}

TEST(Soak, SummaryIsByteIdenticalAcrossJobs)
{
    // A soak run is a pure function of (seed, config, corpus
    // contents) — and it *appends* to its corpus, so each jobs count
    // gets its own copy of one seeded directory.
    const std::string seedDir =
        ::testing::TempDir() + "soak_corpus_jobs_seed";
    std::filesystem::remove_all(seedDir);
    const PropertyHarness harness;

    SoakConfig config = smallSoak(13, 16);
    config.corpusDir = seedDir;
    runSoak(config, harness, JobPool(2));

    std::vector<std::string> summaries;
    for (const unsigned jobs : {1u, 2u, 4u}) {
        const std::string dir = ::testing::TempDir() +
                                "soak_corpus_jobs_" +
                                std::to_string(jobs);
        std::filesystem::remove_all(dir);
        std::filesystem::copy(seedDir, dir);
        SoakConfig run = config;
        run.corpusDir = dir;
        summaries.push_back(
            runSoak(run, harness, JobPool(jobs)).summary());
    }
    EXPECT_EQ(summaries[0], summaries[1]);
    EXPECT_EQ(summaries[0], summaries[2]);
    EXPECT_NE(summaries[0].find("soak: cases=16"), std::string::npos);
    EXPECT_GT(
        runSoak(config, harness, JobPool(2)).corpusLoaded, 0u);
    EXPECT_NE(summaries[0].find("coverage: counters_hit="),
              std::string::npos);
}

TEST(Soak, FailuresArriveMinimizedWithJournalAndReplay)
{
    const std::string repros =
        ::testing::TempDir() + "soak_repros";
    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness harness(hc);
    const JobPool pool(2);

    // Seed 3 samples plans targeting both core_off and bus_drop
    // within a small budget (same property test_fuzz_campaign's
    // pipeline test leans on), so the broken oracle fires.
    SoakConfig config = smallSoak(3, 32);
    config.campaign.reproDir = repros;
    const SoakResult r = runSoak(config, harness, pool);
    ASSERT_FALSE(r.failures.empty());

    const SoakFailure &f = r.failures.front();
    EXPECT_EQ(f.failure.oracle, "broken_self_test");

    // Pre-minimized: the written repro holds the ddmin'd plan, which
    // must be no longer than the original and still failing.
    EXPECT_LE(f.minimized.plan.size(), f.original.plan.size());
    ASSERT_FALSE(f.reproPath.empty());
    const std::string repro = slurp(f.reproPath);
    EXPECT_NE(repro.find(f.minimized.plan), std::string::npos);
    EXPECT_NE(repro.find("--replay"), std::string::npos);

    // The journal ships next to the repro when compiled in.
    if (obs::kJournalCompiled) {
        ASSERT_FALSE(f.journalPath.empty());
        const std::string journal = slurp(f.journalPath);
        EXPECT_FALSE(journal.empty());
        EXPECT_EQ(journal[0], '{');
    } else {
        EXPECT_TRUE(f.journalPath.empty());
    }

    // And the minimized case replays to the same oracle verdict.
    const CaseResult replay = harness.run(f.minimized);
    ASSERT_TRUE(replay.failed());
    EXPECT_EQ(replay.failures.front().oracle, "broken_self_test");

    // Bit-identical reruns: same seed, same failures, same bytes.
    const SoakResult again = runSoak(config, harness, pool);
    EXPECT_EQ(again.summary(), r.summary());
    EXPECT_EQ(slurp(again.failures.front().reproPath), repro);
}

} // namespace
} // namespace xmig
