/**
 * @file
 * Unit tests for the RNG and the stats/report formatting helpers.
 */

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace xmig {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 31ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, InRangeInclusive)
{
    Rng rng(7);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = rng.inRange(10, 13);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 13u);
        hit_lo |= v == 10;
        hit_hi |= v == 13;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ReseedReproduces)
{
    Rng rng(5);
    const uint64_t first = rng.next();
    rng.next();
    rng.reseed(5);
    EXPECT_EQ(rng.next(), first);
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SnapshotAndResetDrains)
{
    Counter c;
    c.add(7);
    EXPECT_EQ(c.snapshotAndReset(), 7u);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(c.snapshotAndReset(), 0u);
    c.inc();
    EXPECT_EQ(c.snapshotAndReset(), 1u);
}

TEST(CounterDeathTest, WrapPastMaxIsAudited)
{
    if (!kAuditCheap)
        GTEST_SKIP() << "audits compiled out at level " << kAuditLevel;
    Counter c;
    c.add(UINT64_MAX);
    EXPECT_DEATH(c.add(1), "counter wrapped");
}

TEST(PerEvent, FormatsLikeTable2)
{
    EXPECT_EQ(perEvent(1000, 0), "inf");
    EXPECT_EQ(perEvent(640, 10), "64");
    EXPECT_EQ(perEvent(1000000000, 455), "2.2e6");
    EXPECT_EQ(perEvent(1000000000, 71), "1.4e7");
}

TEST(PerEvent, ZeroOverZeroIsZeroNotInf)
{
    // An empty run never retired an instruction either; reporting
    // "inf" would read as "event never occurs", which is unknowable.
    EXPECT_EQ(perEvent(0, 0), "0");
    EXPECT_EQ(perEvent(1, 0), "inf");
    EXPECT_EQ(perEvent(0, 5), "0");
}

TEST(PerEvent, AbbreviationBoundaryRounds)
{
    // Below the threshold: plain integers, rounded.
    EXPECT_EQ(perEvent(99999, 1), "99999");
    EXPECT_EQ(perEvent(199998, 2), "99999");
    // At and above: abbreviated power-of-ten form. 99999.5 rounds to
    // 100000, so it must abbreviate (and the mantissa carry makes it
    // 1.0e5, never the six-digit "100000" or "10.0e4").
    EXPECT_EQ(perEvent(199999, 2), "1.0e5");
    EXPECT_EQ(perEvent(100000, 1), "1.0e5");

    // Mantissa 9.96 must carry into the exponent, not print 10.0e5.
    EXPECT_EQ(perEvent(996000, 1), "1.0e6");
    EXPECT_EQ(perEvent(9960000, 1), "1.0e7");
    EXPECT_EQ(perEvent(994000, 1), "9.9e5");
}

TEST(Frequency, FourDecimals)
{
    EXPECT_EQ(frequency(134, 10000), "0.0134");
    EXPECT_EQ(frequency(0, 10000), "0.0000");
    EXPECT_EQ(frequency(0, 0), "0.0000");
}

TEST(SizeLabel, PaperAxisLabels)
{
    EXPECT_EQ(sizeLabel(16 * 1024), "16k");
    EXPECT_EQ(sizeLabel(64 * 1024), "64k");
    EXPECT_EQ(sizeLabel(1024 * 1024), "1M");
    EXPECT_EQ(sizeLabel(16 * 1024 * 1024), "16M");
    EXPECT_EQ(sizeLabel(100), "100");
}

TEST(Ratio2, TwoDecimals)
{
    EXPECT_EQ(ratio2(0.03), "0.03");
    EXPECT_EQ(ratio2(1.6), "1.60");
}

TEST(AsciiTable, AlignsAndSections)
{
    AsciiTable t({"name", "value"});
    t.addSection("SPEC2000");
    t.addRow({"gzip", "64"});
    t.addRow({"longername", "123456"});
    const std::string out = t.render("title");
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("-- SPEC2000"), std::string::npos);
    EXPECT_NE(out.find("longername"), std::string::npos);
    // Right-aligned numeric column: "64" ends where "123456" ends.
    EXPECT_NE(out.find("    64"), std::string::npos);
}

TEST(SeriesWriter, CsvShape)
{
    SeriesWriter s("x", {"a", "b"});
    s.addPoint("16k", {0.5, 0.25});
    const std::string out = s.render();
    EXPECT_NE(out.find("x,a,b"), std::string::npos);
    EXPECT_NE(out.find("16k,0.5,0.25"), std::string::npos);
}

TEST(SeriesWriter, RenderCsvOmitsTitleRule)
{
    SeriesWriter s("size", {"ratio"});
    s.addPoint("64k", {1.5});
    // render() may carry a '# title' comment; renderCsv() never does.
    const std::string titled = s.render("figure 4");
    EXPECT_EQ(titled.find("# figure 4"), 0u);
    const std::string csv = s.renderCsv();
    EXPECT_EQ(csv.find('#'), std::string::npos);
    EXPECT_EQ(csv, "size,ratio\n64k,1.5\n");
    // And render() without a title is exactly the CSV.
    EXPECT_EQ(s.render(), csv);
}

TEST(SeriesWriter, QuotesAwkwardCells)
{
    SeriesWriter s("benchmark, suite", {"miss \"ratio\""});
    s.addPoint("179.art, SPEC", {0.03});
    const std::string csv = s.renderCsv();
    EXPECT_NE(csv.find("\"benchmark, suite\",\"miss \"\"ratio\"\"\""),
              std::string::npos);
    EXPECT_NE(csv.find("\"179.art, SPEC\",0.03"), std::string::npos);
}

TEST(CsvQuote, Rfc4180Rules)
{
    EXPECT_EQ(csvQuote("plain"), "plain");
    EXPECT_EQ(csvQuote("1.25e6"), "1.25e6");
    EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
    EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvQuote("two words"), "\"two words\"");
    EXPECT_EQ(csvQuote("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(csvQuote(""), "");
}

} // namespace
} // namespace xmig
