/**
 * @file
 * End-to-end xmig-swift determinism: the flagship Table 2 harness
 * must emit *byte-identical* stdout whatever --jobs is set to, with
 * and without an armed fault plan. This is the acceptance property
 * the sweep runner promises (docs/parallelism.md) — everything the
 * serial run prints, the parallel run prints, in the same order.
 */

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fault/fault_injector.hpp"
#include "obs/journal.hpp"

namespace xmig {
namespace {

#ifndef XMIG_BENCH_DIR
#define XMIG_BENCH_DIR "bench"
#endif

/** Run a shell command, capture stdout; abort the test on failure. */
std::string
capture(const std::string &cmd)
{
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
        ADD_FAILURE() << "popen failed: " << cmd;
        return "";
    }
    std::string out;
    std::array<char, 4096> buf;
    size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        out.append(buf.data(), n);
    const int rc = pclose(pipe);
    EXPECT_EQ(rc, 0) << "non-zero exit from: " << cmd;
    return out;
}

std::string
table2(const std::string &extra)
{
    // Clear XMIG_JOBS so the environment of the ctest runner cannot
    // leak into the comparison.
    return capture("env -u XMIG_JOBS " XMIG_BENCH_DIR
                   "/bench_table2_quadcore --smoke " +
                   extra + " 2>/dev/null");
}

TEST(ParallelDeterminism, Table2SmokeIsByteIdenticalAcrossJobs)
{
    const std::string serial = table2("--jobs 1");
    ASSERT_FALSE(serial.empty());
    // The smoke sweep has 6 cells; 8 workers also covers the
    // workers > cells corner.
    EXPECT_EQ(serial, table2("--jobs 8"));
    EXPECT_EQ(serial, table2("--jobs 3"));
}

TEST(ParallelDeterminism, Table2SmokeWithFaultPlanIsByteIdentical)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    // Per-cell machines own their fault RNGs, so an armed plan must
    // not break the byte-identity contract either.
    const std::string plan =
        "--fault-plan \"seed=5;rate=2e-5:flip=oe;rate=2e-5:flip=tag;"
        "rate=1e-3:mig_drop\"";
    const std::string serial = table2("--jobs 1 " + plan);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, table2("--jobs 8 " + plan));
}

TEST(ParallelDeterminism, JournalIsByteIdenticalAcrossJobs)
{
    // The xmig-lens journal is owned by the sampled machine, not the
    // process, so arming it must not force jobs=1 — and its JSONL
    // must still be a pure function of (seed, config, fault plan).
    if (!obs::kJournalCompiled)
        GTEST_SKIP() << "journal compiled out (-DXMIG_JOURNAL=OFF)";
    const std::string plan =
        kFaultEnabled ? " --fault-plan \"at=200000:core_off=1;"
                        "at=500000:core_on=1\""
                      : "";
    const std::string dir = testing::TempDir();
    auto journalAt = [&](int jobs) {
        const std::string path =
            dir + "xmig_pd_journal_j" + std::to_string(jobs) + ".jsonl";
        table2("--jobs " + std::to_string(jobs) + plan +
               " --journal-out " + path);
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in.good()) << path;
        std::ostringstream ss;
        ss << in.rdbuf();
        std::remove(path.c_str());
        return ss.str();
    };
    const std::string serial = journalAt(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_NE(serial.find("\"journal\":\"xmig-lens\""),
              std::string::npos);
    EXPECT_EQ(serial, journalAt(3));
    EXPECT_EQ(serial, journalAt(8));
}

/**
 * bench_figure1 runs a multi-tenant arena per cell: every cell owns
 * producer threads and a shared L3, so this exercises xmig-arena's
 * claim that reference-interleave arbitration is deterministic at
 * any job count. A reduced mix set and budget keep it CI-sized —
 * byte-identity does not need the full crossover sweep.
 */
std::string
figure1(const std::string &extra)
{
    return capture("env -u XMIG_JOBS " XMIG_BENCH_DIR
                   "/bench_figure1 --instr 400000"
                   " --bench em3d+health"
                   " --bench bisort+mst+twolf+vortex " +
                   extra + " 2>/dev/null");
}

TEST(ParallelDeterminism, Figure1IsByteIdenticalAcrossJobs)
{
    const std::string serial = figure1("--jobs 1");
    ASSERT_FALSE(serial.empty());
    EXPECT_NE(serial.find("Crossover"), std::string::npos);
    EXPECT_EQ(serial, figure1("--jobs 3"));
    EXPECT_EQ(serial, figure1("--jobs 8"));
}

TEST(ParallelDeterminism, Figure1CsvIsByteIdenticalAcrossJobs)
{
    // The --csv artifact is what CI uploads; it must hold the same
    // bytes whatever worker count produced it.
    const std::string dir = testing::TempDir();
    auto csvAt = [&](int jobs) {
        const std::string path =
            dir + "xmig_pd_fig1_j" + std::to_string(jobs) + ".csv";
        figure1("--jobs " + std::to_string(jobs) + " --csv " + path);
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in.good()) << path;
        std::ostringstream ss;
        ss << in.rdbuf();
        std::remove(path.c_str());
        return ss.str();
    };
    const std::string serial = csvAt(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_NE(serial.find("# crossover:"), std::string::npos);
    EXPECT_EQ(serial, csvAt(3));
    EXPECT_EQ(serial, csvAt(8));
}

TEST(ParallelDeterminism, JobsEnvironmentVariableIsHonored)
{
    const std::string serial = table2("--jobs 1");
    const std::string env =
        capture("env XMIG_JOBS=8 " XMIG_BENCH_DIR
                "/bench_table2_quadcore --smoke 2>/dev/null");
    EXPECT_EQ(serial, env);
}

} // namespace
} // namespace xmig
