/**
 * @file
 * Unit and behavior tests for the 2-way and 4-way splitters
 * (sections 3.4-3.6).
 */

#include <gtest/gtest.h>

#include <map>

#include "core/oe_store.hpp"
#include "core/splitter.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

TEST(TwoWaySplitter, SubsetFollowsFilterSign)
{
    UnboundedOeStore store(16);
    TwoWaySplitter::Config c;
    c.engine.windowSize = 16;
    TwoWaySplitter splitter(c, store);
    EXPECT_EQ(splitter.subset(), 0u); // filter starts at +
    const SplitDecision d = splitter.onReference(1);
    EXPECT_TRUE(d.sampled);
    EXPECT_LT(d.subset, 2u);
}

TEST(TwoWaySplitter, SamplingCutoffSkipsLines)
{
    UnboundedOeStore store(16);
    TwoWaySplitter::Config c;
    c.engine.windowSize = 16;
    c.samplingCutoff = 8;
    TwoWaySplitter splitter(c, store);
    uint64_t sampled = 0, skipped = 0;
    for (uint64_t line = 0; line < 310; ++line) {
        const SplitDecision d = splitter.onReference(line);
        (d.sampled ? sampled : skipped) += 1;
        EXPECT_EQ(d.sampled, hashMod31(line) < 8);
        if (!d.sampled) {
            EXPECT_EQ(d.ae, 0);
        }
    }
    EXPECT_EQ(sampled, 80u); // 8 of 31 residues over 310 lines
    // Unsampled lines must not touch the O_e store.
    EXPECT_EQ(store.stats().lookups, sampled);
}

TEST(TwoWaySplitter, FilterFrozenWithoutUpdateFlag)
{
    // L2 filtering: with update_filter = false the subset can never
    // change, whatever the affinities do.
    UnboundedOeStore store(16);
    TwoWaySplitter::Config c;
    c.engine.windowSize = 16;
    c.filterBits = 16;
    TwoWaySplitter splitter(c, store);
    UniformRandomStream s(1000);
    for (int t = 0; t < 50000; ++t) {
        const SplitDecision d = splitter.onReference(s.next(), false);
        ASSERT_FALSE(d.transition);
        ASSERT_EQ(d.subset, 0u);
    }
    EXPECT_EQ(splitter.transitions(), 0u);
    // Engine state advanced regardless.
    EXPECT_GT(splitter.engine().references(), 0u);
}

TEST(TwoWaySplitter, CircularConvergesToTwoBalancedSubsets)
{
    UnboundedOeStore store(16);
    TwoWaySplitter::Config c;
    c.engine.windowSize = 100;
    TwoWaySplitter splitter(c, store);
    CircularStream s(4000);
    for (int t = 0; t < 1'000'000; ++t)
        splitter.onReference(s.next());
    std::map<unsigned, uint64_t> count;
    for (int t = 0; t < 4000; ++t)
        ++count[splitter.onReference(s.next()).subset];
    EXPECT_GT(count[0], 1000u);
    EXPECT_GT(count[1], 1000u);
}

TEST(FourWaySplitter, SubsetEncodingIsConsistent)
{
    UnboundedOeStore store(16);
    FourWaySplitter::Config c;
    FourWaySplitter splitter(c, store);
    const unsigned s = splitter.subset();
    EXPECT_LT(s, 4u);
    // Fresh filters are all positive: subset 0.
    EXPECT_EQ(s, 0u);
}

TEST(FourWaySplitter, OddResiduesDriveXEvenDriveY)
{
    UnboundedOeStore store(16);
    FourWaySplitter::Config c;
    c.windowX = 8;
    c.windowY = 4;
    FourWaySplitter splitter(c, store);
    // Line with odd H drives X only.
    uint64_t odd_line = 1; // H(1) = 1
    ASSERT_EQ(hashMod31(odd_line) % 2, 1u);
    splitter.onReference(odd_line);
    EXPECT_EQ(splitter.engineX().references(), 1u);
    // Even-H line drives a Y engine, not X.
    uint64_t even_line = 2; // H(2) = 2
    ASSERT_EQ(hashMod31(even_line) % 2, 0u);
    splitter.onReference(even_line);
    EXPECT_EQ(splitter.engineX().references(), 1u);
}

TEST(FourWaySplitter, CircularConvergesToFourBalancedSubsets)
{
    UnboundedOeStore store(16);
    FourWaySplitter::Config c;
    c.windowX = 128;
    c.windowY = 64;
    c.filterBits = 20;
    FourWaySplitter splitter(c, store);
    CircularStream s(4000);
    for (int t = 0; t < 2'000'000; ++t)
        splitter.onReference(s.next());
    std::map<unsigned, uint64_t> count;
    unsigned prev = 99;
    uint64_t segments = 0;
    for (int t = 0; t < 4000; ++t) {
        const unsigned sub = splitter.onReference(s.next()).subset;
        ++count[sub];
        if (sub != prev)
            ++segments;
        prev = sub;
    }
    for (unsigned k = 0; k < 4; ++k)
        EXPECT_GT(count[k], 600u) << "subset " << k << " too small";
    // Near-contiguous quarters: a handful of time segments per cycle.
    EXPECT_LE(segments, 16u);
}

TEST(FourWaySplitter, TransitionsCounted)
{
    UnboundedOeStore store(16);
    FourWaySplitter::Config c;
    FourWaySplitter splitter(c, store);
    UniformRandomStream s(2000);
    for (int t = 0; t < 200'000; ++t)
        splitter.onReference(s.next());
    EXPECT_GT(splitter.transitions(), 0u);
}

} // namespace
} // namespace xmig
