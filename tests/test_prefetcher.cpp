/**
 * @file
 * Unit and integration tests for the L2 prefetchers and their
 * machine-model plumbing (section 6 extension).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cache/prefetcher.hpp"
#include "multicore/machine.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

TEST(Prefetcher, NoneIssuesNothing)
{
    Prefetcher pf(PrefetcherConfig{});
    std::vector<uint64_t> out;
    pf.onDemand(100, true, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.stats().issued, 0u);
}

TEST(Prefetcher, NextLineIssuesDegreeCandidates)
{
    PrefetcherConfig c;
    c.kind = PrefetchKind::NextLine;
    c.degree = 3;
    Prefetcher pf(c);
    std::vector<uint64_t> out;
    pf.onDemand(100, true, out);
    EXPECT_EQ(out, (std::vector<uint64_t>{101, 102, 103}));
    out.clear();
    pf.onDemand(200, false, out); // hits do not trigger next-line
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.stats().triggers, 1u);
    EXPECT_EQ(pf.stats().issued, 3u);
}

TEST(Prefetcher, StrideDetectsPositiveStride)
{
    PrefetcherConfig c;
    c.kind = PrefetchKind::Stride;
    c.degree = 2;
    c.confidenceThreshold = 2;
    c.regionShift = 20; // one region: pure stride stream
    Prefetcher pf(c);
    std::vector<uint64_t> out;
    // Stride-4 stream: 0, 4, 8, 12, ...
    for (uint64_t line = 0; line <= 12; line += 4) {
        out.clear();
        pf.onDemand(line, true, out);
    }
    // By line 12 confidence reached the threshold.
    EXPECT_EQ(out, (std::vector<uint64_t>{16, 20}));
}

TEST(Prefetcher, StrideDetectsNegativeStride)
{
    PrefetcherConfig c;
    c.kind = PrefetchKind::Stride;
    c.degree = 1;
    c.confidenceThreshold = 2;
    c.regionShift = 20;
    Prefetcher pf(c);
    std::vector<uint64_t> out;
    for (uint64_t line = 1000; line >= 976; line -= 8) {
        out.clear();
        pf.onDemand(line, true, out);
    }
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 976u - 8);
}

TEST(Prefetcher, StrideResetsOnPatternBreak)
{
    PrefetcherConfig c;
    c.kind = PrefetchKind::Stride;
    c.confidenceThreshold = 2;
    c.regionShift = 20;
    Prefetcher pf(c);
    std::vector<uint64_t> out;
    for (uint64_t line : {0u, 4u, 8u, 12u}) {
        out.clear();
        pf.onDemand(line, true, out);
    }
    EXPECT_FALSE(out.empty());
    out.clear();
    pf.onDemand(1000, true, out); // break
    EXPECT_TRUE(out.empty());
    out.clear();
    pf.onDemand(1004, true, out); // new stride, confidence 0
    EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, RandomStreamStaysQuiet)
{
    PrefetcherConfig c;
    c.kind = PrefetchKind::Stride;
    c.confidenceThreshold = 2;
    Prefetcher pf(c);
    Rng rng(4);
    std::vector<uint64_t> out;
    for (int i = 0; i < 20000; ++i)
        pf.onDemand(rng.below(1 << 20), true, out);
    // Essentially no stride should survive the confidence gate.
    EXPECT_LT(pf.stats().issued, 600u);
}

TEST(PrefetchMachine, NextLineRemovesSequentialMisses)
{
    MachineConfig plain;
    plain.numCores = 1;
    MachineConfig with_pf = plain;
    with_pf.prefetch.kind = PrefetchKind::NextLine;
    with_pf.prefetch.degree = 4;

    MigrationMachine base(plain), pf(with_pf);
    // A large sequential stream: next-line prefetching should remove
    // the bulk of the L2 misses.
    for (int round = 0; round < 4; ++round) {
        for (uint64_t line = 0; line < 100'000; ++line) {
            const MemRef r = MemRef::load(0x40000000 + line * 64);
            base.access(r);
            pf.access(r);
        }
    }
    EXPECT_LT(pf.stats().l2Misses, base.stats().l2Misses / 3);
    EXPECT_GT(pf.stats().prefetchUseful, 0u);
    EXPECT_LE(pf.stats().prefetchUseful, pf.stats().prefetchFills);
}

TEST(PrefetchMachine, PrefetchDoesNotBreakCoherence)
{
    MachineConfig c; // 4-core migration machine
    c.prefetch.kind = PrefetchKind::Stride;
    c.prefetch.degree = 2;
    MigrationMachine m(c);
    CircularStream s(20'000);
    Rng rng(5);
    for (int t = 0; t < 500'000; ++t) {
        const uint64_t addr = 0x40000000 + s.next() * 64;
        m.access(rng.chance(0.2) ? MemRef::store(addr)
                                 : MemRef::load(addr));
    }
    EXPECT_EQ(m.countMultiModifiedLines(), 0u);
}

} // namespace
} // namespace xmig
