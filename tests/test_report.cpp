/**
 * @file
 * xmig-lens report library (tools/xmig_report/report.hpp): artifact
 * sniffing, journal/metrics/bench parsing, the causal `explain`
 * renderer, and the diff + gate machinery — self-diff must be zero
 * deltas, regressions beyond the gate must fail, and host-metadata
 * mismatches must refuse the comparison rather than verdict on it.
 */

#include <gtest/gtest.h>

#include <string>

#include "../tools/xmig_report/report.hpp"

using namespace xmig::report;

namespace {

const char kJournalFixture[] =
    "{\"journal\":\"xmig-lens\",\"capacity\":8,\"recorded\":5,"
    "\"dropped\":0}\n"
    "{\"seq\":0,\"t\":100,\"kind\":\"transition\",\"cause\":"
    "\"threshold\",\"subset\":1,\"ae\":3,\"filter\":2,\"ar\":5}\n"
    "{\"seq\":1,\"t\":120,\"kind\":\"migration\",\"cause\":"
    "\"threshold\",\"from\":0,\"to\":1,\"n\":1,\"ar\":6,\"filter\":3}\n"
    "{\"seq\":2,\"t\":150,\"kind\":\"fault_inject\",\"cause\":"
    "\"plan_event\",\"site\":2,\"tick\":150}\n"
    "{\"seq\":3,\"t\":180,\"kind\":\"transition\",\"cause\":"
    "\"threshold\",\"subset\":0,\"ae\":2,\"filter\":1,\"ar\":4}\n"
    "{\"seq\":4,\"t\":200,\"kind\":\"migration\",\"cause\":"
    "\"threshold\",\"from\":1,\"to\":0,\"n\":2,\"ar\":7,\"filter\":2}\n";

const char kMetricsFixture[] =
    "{\"name\":\"machine.migrations\",\"kind\":\"counter\","
    "\"value\":2}\n"
    "{\"name\":\"machine.refs\",\"kind\":\"counter\",\"value\":1000}\n"
    "{\"name\":\"machine.inter_migration_refs\",\"kind\":\"histogram\","
    "\"value\":2,\"p50\":80,\"p95\":80,\"p99\":80,\"p999\":80,"
    "\"buckets\":[0,0,0,0,0,0,2]}\n";

const char kBenchA[] =
    "{\"bench\": \"xmig-swift\", \"host_cores\": 4,\n"
    " \"compiler\": \"12.2.0\",\n"
    " \"ns_per_reference\": {\"engine_fifo_exact\": 20.0,\n"
    "                       \"migration_machine_179art\": 30.0}}\n";

std::string
benchWith(double fifo, double machine, const std::string &compiler,
          int cores)
{
    std::string out = "{\"bench\": \"xmig-swift\", \"host_cores\": ";
    out += std::to_string(cores);
    out += ", \"compiler\": \"" + compiler + "\",";
    out += " \"ns_per_reference\": {\"engine_fifo_exact\": ";
    out += std::to_string(fifo);
    out += ", \"migration_machine_179art\": ";
    out += std::to_string(machine);
    out += "}}";
    return out;
}

const char kGate[] =
    "{\"require_same_host\": true,\n"
    " \"max_regress_frac\": {\n"
    "   \"ns_per_reference.engine_fifo_exact\": 0.05,\n"
    "   \"ns_per_reference.migration_machine_179art\": 0.05}}\n";

TEST(DetectInput, SniffsEveryArtifactKind)
{
    EXPECT_EQ(detectInput(kJournalFixture), InputKind::Journal);
    EXPECT_EQ(detectInput(kMetricsFixture), InputKind::Metrics);
    EXPECT_EQ(detectInput(kBenchA), InputKind::Bench);
    EXPECT_EQ(detectInput("t,interval,refs\n0,1,100\n"),
              InputKind::Samples);
    EXPECT_EQ(detectInput("not an artifact"), InputKind::Unknown);
    EXPECT_EQ(detectInput(""), InputKind::Unknown);
}

TEST(ParseJournal, HeaderEventsAndArgs)
{
    const JournalDoc doc = parseJournal(kJournalFixture);
    ASSERT_TRUE(doc.ok) << doc.error;
    EXPECT_EQ(doc.capacity, 8u);
    EXPECT_EQ(doc.recorded, 5u);
    EXPECT_EQ(doc.dropped, 0u);
    ASSERT_EQ(doc.events.size(), 5u);
    EXPECT_EQ(doc.events[1].kind, "migration");
    EXPECT_EQ(doc.events[1].cause, "threshold");
    EXPECT_DOUBLE_EQ(doc.events[1].arg("to"), 1.0);
    EXPECT_DOUBLE_EQ(doc.events[1].arg("ar"), 6.0);
    EXPECT_DOUBLE_EQ(doc.events[1].arg("absent", -1.0), -1.0);
}

TEST(ParseJournal, RejectsForeignHeader)
{
    EXPECT_FALSE(parseJournal("{\"journal\":\"other\"}\n").ok);
    EXPECT_FALSE(parseJournal("").ok);
}

TEST(ParseMetrics, RowsAndPercentiles)
{
    const MetricsDoc doc = parseMetrics(kMetricsFixture);
    ASSERT_TRUE(doc.ok) << doc.error;
    ASSERT_EQ(doc.rows.size(), 3u);
    const MetricRow *h = doc.find("machine.inter_migration_refs");
    ASSERT_NE(h, nullptr);
    EXPECT_TRUE(h->hasPercentiles);
    EXPECT_DOUBLE_EQ(h->p50, 80.0);
    const MetricRow *c = doc.find("machine.refs");
    ASSERT_NE(c, nullptr);
    EXPECT_FALSE(c->hasPercentiles);
    EXPECT_DOUBLE_EQ(c->value, 1000.0);
    EXPECT_EQ(doc.find("no.such.metric"), nullptr);
}

TEST(ParseBench, FlattensNumbersAndHostMetadata)
{
    const BenchDoc doc = parseBench(kBenchA);
    ASSERT_TRUE(doc.ok) << doc.error;
    EXPECT_EQ(doc.bench, "xmig-swift");
    EXPECT_EQ(doc.compiler, "12.2.0");
    EXPECT_DOUBLE_EQ(doc.hostCores, 4.0);
    EXPECT_DOUBLE_EQ(
        doc.numbers.at("ns_per_reference.engine_fifo_exact"), 20.0);
}

TEST(ParseBench, OldBaselineWithoutCompilerStillParses)
{
    const BenchDoc doc = parseBench(
        "{\"bench\": \"xmig-swift\", \"host_cores\": 2,"
        " \"ns_per_reference\": {\"engine_fifo_exact\": 10}}");
    ASSERT_TRUE(doc.ok) << doc.error;
    EXPECT_EQ(doc.compiler, "");
}

TEST(Explain, RendersCausalChainForMigrationN)
{
    const JournalDoc doc = parseJournal(kJournalFixture);
    ASSERT_TRUE(doc.ok);
    const std::string out = renderExplain(doc, 2);
    // Golden shape: verdict line, decision state, then the window
    // opening right after migration 1 (fault_inject + transition +
    // migration 2 itself = 3 events).
    EXPECT_NE(out.find("migration 2: core 1 -> 0 at t=200 (threshold)"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("decision state: A_R=7 filter=2"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("causal chain (3 event(s) since migration 1):"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("fault_inject"), std::string::npos) << out;
}

TEST(Explain, MissingMigrationIsAnError)
{
    const JournalDoc doc = parseJournal(kJournalFixture);
    ASSERT_TRUE(doc.ok);
    EXPECT_EQ(renderExplain(doc, 99).rfind("error:", 0), 0u);
    EXPECT_EQ(renderExplain(parseJournal(""), 1).rfind("error:", 0), 0u);
}

TEST(Diff, SelfDiffIsZeroDeltasAndPasses)
{
    for (const char *fixture :
         {kJournalFixture, kMetricsFixture, kBenchA}) {
        const DiffResult r = diffTexts(fixture, fixture, "");
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_TRUE(r.deltas.empty());
        EXPECT_FALSE(r.gateFailed);
        EXPECT_FALSE(r.refused);
        EXPECT_NE(r.render().find("verdict: PASS"), std::string::npos);
    }
}

TEST(Diff, PerturbedJournalYieldsCausalDeltas)
{
    std::string perturbed = kJournalFixture;
    // Turn the second transition into a second fault injection: both
    // per-(kind, cause) counts shift, and the positional comparison
    // must name the first divergent event.
    const std::string line3 =
        "{\"seq\":3,\"t\":180,\"kind\":\"transition\",\"cause\":"
        "\"threshold\",\"subset\":0,\"ae\":2,\"filter\":1,\"ar\":4}";
    const size_t at = perturbed.find(line3);
    ASSERT_NE(at, std::string::npos);
    perturbed.replace(at, line3.size(),
                      "{\"seq\":3,\"t\":180,\"kind\":\"fault_inject\","
                      "\"cause\":\"plan_event\",\"site\":1,"
                      "\"tick\":180}");
    const DiffResult r = diffTexts(kJournalFixture, perturbed, "");
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.deltas.size(), 2u) << r.render();
    bool sawInjectDelta = false, sawTransitionDelta = false;
    for (const Delta &d : r.deltas) {
        if (d.key == "count.fault_inject.plan_event")
            sawInjectDelta = d.a == 1.0 && d.b == 2.0;
        if (d.key == "count.transition.threshold")
            sawTransitionDelta = d.a == 2.0 && d.b == 1.0;
    }
    EXPECT_TRUE(sawInjectDelta) << r.render();
    EXPECT_TRUE(sawTransitionDelta) << r.render();
    bool sawDivergence = false;
    for (const std::string &note : r.notes)
        if (note.find("first divergence at event 3") !=
            std::string::npos)
            sawDivergence = true;
    EXPECT_TRUE(sawDivergence) << r.render();
    // A gate turns any journal delta into a failure (self-diff CI).
    EXPECT_TRUE(diffTexts(kJournalFixture, perturbed,
                          "{\"require_same_host\": false}")
                    .gateFailed);
}

TEST(Diff, MismatchedKindsAreAnError)
{
    const DiffResult r = diffTexts(kBenchA, kMetricsFixture, "");
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
}

TEST(Gate, RegressionBeyondBoundFails)
{
    // 20 -> 22 ns is +10% against a 5% bound.
    const DiffResult r = diffTexts(
        kBenchA, benchWith(22.0, 30.0, "12.2.0", 4), kGate);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.gateFailed);
    EXPECT_NE(r.render().find("verdict: FAIL"), std::string::npos);
}

TEST(Gate, WithinBoundAndImprovementsPass)
{
    // +2.5% on one metric, a speedup on the other: both inside gate.
    const DiffResult r = diffTexts(
        kBenchA, benchWith(20.5, 25.0, "12.2.0", 4), kGate);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.gateFailed);
    EXPECT_FALSE(r.refused);
}

TEST(Gate, HostMetadataMismatchRefusesComparison)
{
    // Different core count.
    DiffResult r = diffTexts(kBenchA,
                             benchWith(20.0, 30.0, "12.2.0", 64), kGate);
    EXPECT_TRUE(r.refused);
    EXPECT_NE(r.render().find("verdict: REFUSED"), std::string::npos);
    // The refusal quotes the raw host-metadata lines of both inputs
    // so the mismatch can be inspected without opening the files.
    EXPECT_NE(r.render().find("A: \"host_cores\": 4"),
              std::string::npos)
        << r.render();
    EXPECT_NE(r.render().find("B: \"host_cores\": 64"),
              std::string::npos)
        << r.render();
    // Different compiler.
    r = diffTexts(kBenchA, benchWith(20.0, 30.0, "13.1.0", 4), kGate);
    EXPECT_TRUE(r.refused);
    // Without a gate the same diff is informational, not refused.
    r = diffTexts(kBenchA, benchWith(20.0, 30.0, "13.1.0", 4), "");
    EXPECT_FALSE(r.refused);
}

TEST(Gate, RefusalNamesTheFirstMismatchedKey)
{
    // The refusal line must say *which* key disagreed, not just
    // that host metadata differs. host_cores is checked first.
    DiffResult r = diffTexts(kBenchA,
                             benchWith(20.0, 30.0, "12.2.0", 64),
                             kGate);
    ASSERT_TRUE(r.refused);
    EXPECT_NE(
        r.render().find("first mismatched key: host_cores"),
        std::string::npos)
        << r.render();

    // Same cores, different compiler: the message names compiler.
    r = diffTexts(kBenchA, benchWith(20.0, 30.0, "13.1.0", 4), kGate);
    ASSERT_TRUE(r.refused);
    EXPECT_NE(r.render().find("first mismatched key: compiler"),
              std::string::npos)
        << r.render();

    // Both differ: host_cores wins as the first checked key.
    r = diffTexts(kBenchA, benchWith(20.0, 30.0, "13.1.0", 64),
                  kGate);
    ASSERT_TRUE(r.refused);
    EXPECT_NE(
        r.render().find("first mismatched key: host_cores"),
        std::string::npos)
        << r.render();
}

TEST(Gate, GatedKeyMissingFromRunFails)
{
    const DiffResult r = diffTexts(
        kBenchA,
        "{\"bench\": \"xmig-swift\", \"host_cores\": 4,"
        " \"compiler\": \"12.2.0\","
        " \"ns_per_reference\": {\"engine_fifo_exact\": 20.0}}",
        kGate);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.gateFailed) << r.render();
}

TEST(Gate, MalformedGateIsAnError)
{
    const DiffResult r = diffTexts(kBenchA, kBenchA, "not json");
    EXPECT_FALSE(r.error.empty());
}

} // namespace
