/**
 * @file
 * Unit tests for the L1 filtering level (section 4.1 and 4.2 modes).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/l1_filter.hpp"

namespace xmig {
namespace {

struct CaptureSink : LineSink
{
    std::vector<LineEvent> events;
    void onLine(const LineEvent &e) override { events.push_back(e); }
};

L1FilterConfig
smallConfig(bool fully, bool unified)
{
    L1FilterConfig c;
    c.il1Bytes = 4 * 64; // 4 lines each
    c.dl1Bytes = 4 * 64;
    c.lineBytes = 64;
    c.fullyAssociative = fully;
    c.ways = 2;
    c.unifiedReadWrite = unified;
    return c;
}

TEST(L1Filter, ForwardsMissesOnlyOncePerResidentLine)
{
    CaptureSink sink;
    L1Filter filter(smallConfig(true, true), sink);
    filter.access(MemRef::load(0x1000));
    filter.access(MemRef::load(0x1000)); // hit: not forwarded
    filter.access(MemRef::load(0x1010)); // same line: hit
    ASSERT_EQ(sink.events.size(), 1u);
    EXPECT_EQ(sink.events[0].line, 0x1000u / 64);
    EXPECT_TRUE(sink.events[0].l1Miss);
}

TEST(L1Filter, SeparatesInstructionAndDataCaches)
{
    CaptureSink sink;
    L1Filter filter(smallConfig(true, true), sink);
    filter.access(MemRef::ifetch(0x2000));
    // Same line as a data ref still misses: different cache.
    filter.access(MemRef::load(0x2000));
    EXPECT_EQ(sink.events.size(), 2u);
    EXPECT_EQ(filter.il1Stats().misses, 1u);
    EXPECT_EQ(filter.dl1Stats().misses, 1u);
}

TEST(L1Filter, UnifiedModeTreatsStoresAsLoads)
{
    CaptureSink sink;
    L1Filter filter(smallConfig(true, true), sink);
    filter.access(MemRef::store(0x1000)); // miss: allocates
    filter.access(MemRef::store(0x1000)); // hit: silent
    EXPECT_EQ(sink.events.size(), 1u);
}

TEST(L1Filter, WriteThroughForwardsEveryStore)
{
    CaptureSink sink;
    L1Filter filter(smallConfig(false, false), sink);
    filter.access(MemRef::load(0x1000));  // miss, forwarded
    filter.access(MemRef::store(0x1000)); // WT hit: forwarded too
    ASSERT_EQ(sink.events.size(), 2u);
    EXPECT_TRUE(sink.events[0].l1Miss);
    EXPECT_FALSE(sink.events[1].l1Miss); // store hit, not a miss
    EXPECT_EQ(sink.events[1].type, RefType::Store);
}

TEST(L1Filter, WriteThroughStoreMissDoesNotAllocate)
{
    CaptureSink sink;
    L1Filter filter(smallConfig(false, false), sink);
    filter.access(MemRef::store(0x1000)); // NWA miss
    filter.access(MemRef::store(0x1000)); // still a miss
    ASSERT_EQ(sink.events.size(), 2u);
    EXPECT_TRUE(sink.events[0].l1Miss);
    EXPECT_TRUE(sink.events[1].l1Miss);
}

TEST(L1Filter, LruEvictionInFullyAssociativeMode)
{
    CaptureSink sink;
    L1Filter filter(smallConfig(true, true), sink);
    // Fill the 4-line DL1, then re-touch line 0 and add a 5th line:
    // line 1 is the LRU victim, so touching line 0 again still hits.
    for (uint64_t l = 0; l < 4; ++l)
        filter.access(MemRef::load(l * 64));
    filter.access(MemRef::load(0));
    filter.access(MemRef::load(4 * 64));
    sink.events.clear();
    filter.access(MemRef::load(0)); // must still hit
    EXPECT_TRUE(sink.events.empty());
    filter.access(MemRef::load(64)); // line 1 was evicted: miss
    EXPECT_EQ(sink.events.size(), 1u);
}

TEST(L1Filter, LineSizeRespected)
{
    CaptureSink sink;
    L1FilterConfig c = smallConfig(true, true);
    c.lineBytes = 128;
    L1Filter filter(c, sink);
    filter.access(MemRef::load(0x1000));
    filter.access(MemRef::load(0x1040)); // same 128-B line
    EXPECT_EQ(sink.events.size(), 1u);
    EXPECT_EQ(filter.geometry().lineBytes(), 128u);
}

} // namespace
} // namespace xmig
