/**
 * @file
 * xmig-iron soak test: a dense FaultPlan (every fault site armed,
 * plus scheduled core churn) over more than a million references.
 * The machine must absorb all of it without tripping an audit, the
 * injected-corruption disarm rules must keep the shadow oracle from
 * false-alarming, and — at paranoid — corruption the controller did
 * NOT knowingly cause must still die loudly.
 */

#include <gtest/gtest.h>

#include "core/migration_controller.hpp"
#include "core/shadow_audit.hpp"
#include "fault/fault_injector.hpp"
#include "mem/ref.hpp"
#include "multicore/machine.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

constexpr const char *kDensePlan =
    "seed=9;"
    // Soft-error rates are per-request; the fabric rates are per
    // migration *issue* (orders of magnitude rarer), hence larger.
    // The engine-register rates keep every site's expected hit count
    // well above zero over the soak, so the every-site-fired
    // assertions below are robust to trajectory shifts, not
    // seed-lucky.
    "rate=1e-4:flip=ae;rate=1e-4:flip=delta;rate=1e-4:flip=ar;"
    "rate=5e-5:flip=oe;rate=5e-5:flip=tag;"
    "rate=0.05:mig_drop;rate=0.05:mig_delay=16;rate=5e-4:bus_drop;"
    "at=300000:core_off=1;at=600000:core_on=1;at=800000:core_off=3";

void
soak(MigrationMachine &machine, uint64_t iterations)
{
    Rng rng(123);
    CircularStream stream(20'000);
    for (uint64_t i = 0; i < iterations; ++i) {
        machine.access(MemRef::ifetch(0x400000 + (i % 4096) * 4));
        const uint64_t addr = stream.next() * 64;
        if (rng.below(4) == 0)
            machine.access(MemRef::store(addr));
        else
            machine.access(MemRef::load(addr));
    }
}

TEST(FaultSoak, DensePlanOverAMillionReferences)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.faultPlan = kDensePlan;
    MigrationMachine machine(cfg);
    soak(machine, 600'000); // 1.2M references

    EXPECT_GE(machine.stats().refs, 1'000'000u);
    ASSERT_NE(machine.injector(), nullptr);
    const FaultStats &fs = machine.injector()->stats();
    // Every armed site must actually have fired.
    EXPECT_GT(fs.of(FaultSite::Ae), 0u);
    EXPECT_GT(fs.of(FaultSite::Delta), 0u);
    EXPECT_GT(fs.of(FaultSite::Ar), 0u);
    EXPECT_GT(fs.of(FaultSite::BusDrop), 0u);
    EXPECT_EQ(fs.of(FaultSite::CoreOff), 2u);
    EXPECT_EQ(fs.of(FaultSite::CoreOn), 1u);
    EXPECT_EQ(machine.stats().coreOffEvents, 2u);
    EXPECT_EQ(machine.stats().coreOnEvents, 1u);
    EXPECT_EQ(machine.stats().busDrops, fs.of(FaultSite::BusDrop));

    ASSERT_NE(machine.controller(), nullptr);
    const MigrationController &ctrl = *machine.controller();
    EXPECT_EQ(ctrl.liveCores(), 3u); // 0, 1, 2 survive
    EXPECT_EQ(ctrl.splitWays(), 2u);
    const RecoveryStats &rec = ctrl.recovery();
    EXPECT_EQ(rec.coresLost, 2u);
    EXPECT_EQ(rec.coresJoined, 1u);
    // The lossy fabric was exercised and self-healed.
    EXPECT_GT(rec.migDropped + rec.migDelayed, 0u);
    if (rec.migDropped > 0)
        EXPECT_GT(rec.migTimeouts, 0u);
    // Store corruption landed (oe/tag sites at 5e-5 over >1M refs).
    EXPECT_GT(rec.storeCorruptions + rec.storeDrops, 0u);
    // Through all of it the machine kept migrating usefully.
    EXPECT_GT(machine.stats().migrations, 0u);
}

TEST(FaultSoak, SamePlanReplaysBitIdentically)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.faultPlan = kDensePlan;
    MigrationMachine a(cfg), b(cfg);
    soak(a, 500'000);
    soak(b, 500'000);
    EXPECT_EQ(a.stats().l2Misses, b.stats().l2Misses);
    EXPECT_EQ(a.stats().migrations, b.stats().migrations);
    EXPECT_EQ(a.stats().busDrops, b.stats().busDrops);
    EXPECT_EQ(a.stats().dirtyLinesLost, b.stats().dirtyLinesLost);
    EXPECT_EQ(a.stats().coherenceRepairs, b.stats().coherenceRepairs);
    EXPECT_EQ(a.activeCore(), b.activeCore());
    ASSERT_NE(a.injector(), nullptr);
    ASSERT_NE(b.injector(), nullptr);
    EXPECT_EQ(a.injector()->stats().total(),
              b.injector()->stats().total());
    EXPECT_EQ(a.controller()->recovery().migTimeouts,
              b.controller()->recovery().migTimeouts);
}

TEST(FaultSoak, InjectedCorruptionDisarmsTheShadowInsteadOfPanicking)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    MachineConfig cfg;
    cfg.numCores = 4;
    // Unbounded store + shadow armed: without the injected-fault
    // disarm rule the oracle would panic on the first landed flip.
    cfg.controller.boundedStore = false;
    cfg.controller.shadowAudit = true;
    cfg.faultPlan = "seed=3;rate=1e-4:flip=delta;rate=1e-4:flip=oe";
    MigrationMachine machine(cfg);
    soak(machine, 300'000);
    ASSERT_NE(machine.injector(), nullptr);
    EXPECT_GT(machine.injector()->stats().total(), 0u);
    ASSERT_NE(machine.controller()->shadowAudit(), nullptr);
    EXPECT_FALSE(machine.controller()->shadowAudit()->armed());
}

TEST(FaultSoakDeathTest, UnhandledCorruptionStillTripsAtParanoid)
{
    if (!kAuditParanoid)
        GTEST_SKIP() << "window-sum audit only runs at paranoid";
    // Corruption injected *behind the controller's back* (a tampered
    // checkpoint, not a FaultInjector hook) must still be caught: the
    // disarm rules only cover faults the injector accounted for.
    MigrationControllerConfig cfg;
    cfg.numCores = 4;
    cfg.windowX = 64;
    cfg.windowY = 32;
    cfg.filterBits = 18;
    MigrationController ctrl(cfg);
    CircularStream stream(4000);
    for (int i = 0; i < 200'000; ++i)
        ctrl.onRequest(stream.next());
    ControllerCheckpoint ckpt = ctrl.checkpoint();
    ASSERT_FALSE(ckpt.engines.empty());
    ckpt.engines[0].sumIe += 12345;
    ctrl.restore(ckpt); // the record is trusted at restore time...
    EXPECT_DEATH(
        {
            for (int i = 0; i < 10'000; ++i)
                ctrl.onRequest(stream.next());
        },
        ""); // ...and the A_R window-sum audit catches it right after
}

} // namespace
} // namespace xmig
