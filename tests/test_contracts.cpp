/**
 * @file
 * Contract-layer macros (util/contracts.hpp).
 *
 * These tests adapt to the compile-time audit level: XMIG_AUDIT must
 * panic at level >= cheap and evaluate nothing below it, XMIG_EXPECT
 * the same at level >= paranoid, and XMIG_ASSERT must fire at every
 * level. The full suite is expected to be run at each level (the CI
 * matrix builds off / cheap / paranoid).
 */

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace xmig {
namespace {

TEST(Contracts, LevelConstantsAreConsistent)
{
    EXPECT_EQ(kAuditLevel, XMIG_AUDIT_LEVEL);
    EXPECT_EQ(kAuditCheap, kAuditLevel >= 1);
    EXPECT_EQ(kAuditParanoid, kAuditLevel >= 2);
    // Paranoid implies cheap: the levels are a ladder, not a set.
    EXPECT_TRUE(!kAuditParanoid || kAuditCheap);
}

TEST(Contracts, AssertPassesOnTrueCondition)
{
    int evaluations = 0;
    XMIG_ASSERT(++evaluations > 0, "must not fire");
    EXPECT_EQ(evaluations, 1);
}

TEST(ContractsDeathTest, AssertFiresAtEveryLevel)
{
    EXPECT_DEATH(XMIG_ASSERT(1 == 2, "width %d", 42),
                 "assertion failed.*1 == 2.*width 42");
}

TEST(Contracts, AuditEvaluatesOnlyWhenCompiledIn)
{
    int evaluations = 0;
    XMIG_AUDIT(++evaluations > 0, "must not fire");
    EXPECT_EQ(evaluations, kAuditCheap ? 1 : 0);
}

TEST(ContractsDeathTest, AuditFiresAtCheapAndAbove)
{
    if (!kAuditCheap)
        GTEST_SKIP() << "audits compiled out at level "
                     << kAuditLevel;
    EXPECT_DEATH(XMIG_AUDIT(false, "counter %u", 7u),
                 "audit failed.*counter 7");
}

TEST(Contracts, AuditIsInertWhenDisabled)
{
    if (kAuditCheap)
        GTEST_SKIP() << "audits are live at level " << kAuditLevel;
    // Must neither evaluate nor panic, even on a false condition.
    int evaluations = 0;
    XMIG_AUDIT((++evaluations, false), "must not fire");
    EXPECT_EQ(evaluations, 0);
}

TEST(Contracts, ExpectEvaluatesOnlyWhenParanoid)
{
    int evaluations = 0;
    XMIG_EXPECT(++evaluations > 0, "must not fire");
    EXPECT_EQ(evaluations, kAuditParanoid ? 1 : 0);
}

TEST(ContractsDeathTest, ExpectFiresOnlyAtParanoid)
{
    if (!kAuditParanoid)
        GTEST_SKIP() << "paranoid audits compiled out at level "
                     << kAuditLevel;
    EXPECT_DEATH(XMIG_EXPECT(false, "sweep %d", -1),
                 "paranoid audit failed.*sweep -1");
}

TEST(Contracts, ExpectIsInertBelowParanoid)
{
    if (kAuditParanoid)
        GTEST_SKIP() << "paranoid audits are live";
    int evaluations = 0;
    XMIG_EXPECT((++evaluations, false), "must not fire");
    EXPECT_EQ(evaluations, 0);
}

TEST(Contracts, DisabledMacrosStillParseTheirArguments)
{
    // A syntactically valid but disabled check must compile and not
    // warn about the variables it mentions; this is the anti-rot
    // guarantee that lets audits reference state in release builds.
    const int occupancy = 3;
    const int capacity = 4;
    XMIG_EXPECT(occupancy <= capacity, "%d of %d", occupancy, capacity);
    XMIG_AUDIT(occupancy <= capacity, "%d of %d", occupancy, capacity);
    SUCCEED();
}

} // namespace
} // namespace xmig
